//! Chaos differential suite: fault-injected sweeps must degrade
//! gracefully — retry, time out, quarantine, survive store faults —
//! and, whenever they ultimately succeed, produce results
//! **byte-identical** to a clean run. Faults are deterministic
//! functions of (point index, attempt) or of operation counters (see
//! `ovlp_core::sweep::chaos`), so every scenario here is reproducible.

use overlap_sim::core::sweep::chaos::ChaosPolicy;
use overlap_sim::core::sweep::guard::{PointGuard, RetryPolicy};
use overlap_sim::core::sweep::{sweep, FailKind, SweepCache};
use overlap_sim::serve::SweepSpec;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ovlp-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> SweepSpec {
    let mut s = SweepSpec::new("nas-cg", 4);
    s.chunks = vec![1, 4];
    s
}

/// The clean-run reference: no guard, no chaos, fresh in-memory cache.
fn clean_reference() -> (String, u64) {
    let (grid, config) = spec().build().unwrap();
    let report = sweep(&grid, &config, &SweepCache::new());
    assert_eq!(report.err_count(), 0);
    (report.render_full(&grid), report.grid_hash())
}

fn guarded(policy: RetryPolicy, chaos: &str) -> Arc<PointGuard> {
    let chaos: ChaosPolicy = chaos.parse().unwrap();
    Arc::new(PointGuard::new(policy).with_chaos(Arc::new(chaos)))
}

fn fast_retries() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 3,
        backoff_base: Duration::from_millis(2),
        deadline: None,
    }
}

#[test]
fn panicking_point_is_retried_to_a_byte_identical_result() {
    let (reference, reference_hash) = clean_reference();
    let (grid, mut config) = spec().build().unwrap();
    // Point 1 panics on its first two attempts; the third succeeds.
    let guard = guarded(fast_retries(), "panic@1:2");
    config.guard = Some(Arc::clone(&guard));
    let report = sweep(&grid, &config, &SweepCache::new());
    assert_eq!(report.err_count(), 0, "{:?}", report.outcomes);
    assert_eq!(report.render_full(&grid), reference);
    assert_eq!(report.grid_hash(), reference_hash);
    let stats = guard.stats();
    assert_eq!(stats.panics, 2);
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn exhausted_retries_quarantine_the_point_and_spare_the_rest() {
    let (grid, mut config) = spec().build().unwrap();
    // Point 0 panics on every attempt it will ever get.
    let guard = guarded(fast_retries(), "panic@0:99");
    config.guard = Some(Arc::clone(&guard));
    let cache = SweepCache::new();
    let report = sweep(&grid, &config, &cache);
    assert_eq!(report.err_count(), 1);
    let err = report.outcomes[0].as_ref().unwrap_err();
    assert_eq!(err.kind, FailKind::Quarantined);
    assert!(
        err.message.contains("quarantined after 3 attempts"),
        "{err:?}"
    );
    assert!(report.outcomes[1].is_ok(), "healthy points unaffected");
    let stats = guard.stats();
    assert_eq!(stats.panics, 3);
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.quarantine_rejections, 0);

    // Sweeping again under the same guard: the poisoned point fails
    // fast (no attempts burned), everything else still succeeds.
    let report = sweep(&grid, &config, &cache);
    let err = report.outcomes[0].as_ref().unwrap_err();
    assert_eq!(err.kind, FailKind::Quarantined);
    assert_eq!(err.message, "quarantined after repeated failures");
    let stats = guard.stats();
    assert_eq!(stats.panics, 3, "no further attempts");
    assert_eq!(stats.quarantine_rejections, 1);
}

#[test]
fn deadline_timeout_is_retried_to_a_byte_identical_result() {
    let (reference, _) = clean_reference();
    let (grid, mut config) = spec().build().unwrap();
    // Point 0 stalls far past the per-attempt deadline once; the
    // watchdog abandons that attempt and the retry succeeds.
    let guard = guarded(
        RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(2),
            deadline: Some(Duration::from_millis(150)),
        },
        "stall=2000@0:1",
    );
    config.guard = Some(Arc::clone(&guard));
    let report = sweep(&grid, &config, &SweepCache::new());
    assert_eq!(report.err_count(), 0, "{:?}", report.outcomes);
    assert_eq!(report.render_full(&grid), reference);
    let stats = guard.stats();
    assert_eq!(stats.timeouts, 1);
    assert_eq!(stats.retries, 1);
    assert_eq!(stats.quarantined, 0);
}

#[test]
fn deadline_exhaustion_quarantines_with_a_timeout_trail() {
    let (grid, mut config) = spec().build().unwrap();
    let guard = guarded(
        RetryPolicy {
            max_attempts: 2,
            backoff_base: Duration::from_millis(2),
            deadline: Some(Duration::from_millis(100)),
        },
        "stall=5000@1:99",
    );
    config.guard = Some(Arc::clone(&guard));
    let report = sweep(&grid, &config, &SweepCache::new());
    assert_eq!(report.err_count(), 1);
    let err = report.outcomes[1].as_ref().unwrap_err();
    assert_eq!(err.kind, FailKind::Quarantined);
    assert!(err.message.contains("deadline"), "{err:?}");
    let stats = guard.stats();
    assert_eq!(stats.timeouts, 2);
    assert_eq!(stats.quarantined, 1);
}

#[test]
fn store_faults_degrade_without_changing_results() {
    let (reference, reference_hash) = clean_reference();
    let dir = temp_dir("store-faults");

    // Write faults: the first store write fails, degrading that point
    // to the in-memory tier. Results are unaffected.
    {
        let cache = SweepCache::persistent(&dir).unwrap();
        cache
            .disk()
            .unwrap()
            .set_chaos(Arc::new("store-write-fail=1".parse().unwrap()));
        let (grid, config) = spec().build().unwrap();
        let report = sweep(&grid, &config, &cache);
        assert_eq!(report.err_count(), 0);
        assert_eq!(report.render_full(&grid), reference);
        assert_eq!(report.grid_hash(), reference_hash);
        assert_eq!(cache.disk().unwrap().entries(), 1, "one write was eaten");
    }

    // Read faults on a fresh process-equivalent: failed reads count as
    // corruption, the points recompute, and the re-put heals the store.
    {
        let cache = SweepCache::persistent(&dir).unwrap();
        cache
            .disk()
            .unwrap()
            .set_chaos(Arc::new("store-read-fail=2".parse().unwrap()));
        let (grid, config) = spec().build().unwrap();
        let report = sweep(&grid, &config, &cache);
        assert_eq!(report.err_count(), 0);
        assert_eq!(report.render_full(&grid), reference);
        assert_eq!(report.grid_hash(), reference_hash);
        let stats = cache.disk().unwrap().stats();
        assert!(stats.corrupt >= 1, "{stats:?}");
    }

    // A clean reopen now serves everything from the healed store.
    {
        let cache = SweepCache::persistent(&dir).unwrap();
        let (grid, config) = spec().build().unwrap();
        let report = sweep(&grid, &config, &cache);
        assert_eq!(report.render_full(&grid), reference);
        assert_eq!(cache.disk().unwrap().stats().hits, 2);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unguarded_sweeps_are_untouched_by_config_defaults() {
    // The batch CLI path: no guard, no cancel. One evaluation per
    // point, bytes identical to the reference.
    let (reference, _) = clean_reference();
    let (grid, config) = spec().build().unwrap();
    assert!(config.guard.is_none() && config.cancel.is_none());
    let report = sweep(&grid, &config, &SweepCache::new());
    assert_eq!(report.render_full(&grid), reference);
}
