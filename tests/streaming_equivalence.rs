//! Bit-identity of the streamed record supply against the materialized
//! path.
//!
//! The lazy `TraceSource` supply (per-rank cursors, on-demand
//! collective expansion) is pure memory work: `simulate_source_with`
//! must produce exactly the same replay — every timestamp, timeline,
//! transfer, network statistic, and engine counter — as `simulate_with`
//! on the materialized trace, on every topology and engine, with and
//! without fault schedules. Any divergence is a correctness bug in the
//! streaming path, never an acceptable tolerance. `render_exact`
//! round-trips every float, so string equality is bit equality.

use overlap_sim::machine::{
    render_exact, replay_scale, simulate_source_with, simulate_with, Platform, ReplayEngine,
    Topology,
};
use overlap_sim::trace::mlgen::{MlAllreduce, MlConfig};
use overlap_sim::trace::{synth, text, Trace, TraceSource};
use std::path::PathBuf;

fn fixture(name: &str) -> Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).unwrap();
    text::parse(&content).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn engines() -> Vec<(String, ReplayEngine)> {
    std::iter::once(("seq".to_string(), ReplayEngine::Sequential))
        .chain(
            [1usize, 2, 4, 8]
                .into_iter()
                .map(|w| (format!("par:{w}"), ReplayEngine::Parallel { workers: w })),
        )
        .collect()
}

fn topologies(nranks: usize) -> Vec<(&'static str, Topology)> {
    let torus = match nranks {
        4 => Topology::Torus { dims: vec![2, 2] },
        8 => Topology::Torus {
            dims: vec![2, 2, 2],
        },
        n => Topology::Torus {
            dims: vec![2, n.div_ceil(2) as u32],
        },
    };
    vec![
        ("crossbar", Topology::Crossbar),
        (
            "fat-tree:4",
            Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            },
        ),
        ("torus", torus),
    ]
}

/// Streamed supply vs materialized slice on one (trace, platform):
/// byte-identical rendering or bust.
fn assert_stream_identity(label: &str, trace: &Trace, platform: &Platform, engine: ReplayEngine) {
    let materialized = simulate_with(trace, platform, engine);
    let streamed = simulate_source_with(trace, platform, engine);
    assert_eq!(
        render_exact(&streamed),
        render_exact(&materialized),
        "{label}: streamed replay diverged from the materialized path"
    );
}

#[test]
fn streamed_matches_materialized_on_fixtures() {
    for name in ["sweep3d_4r.trf", "nas_cg_8r.trf"] {
        let trace = fixture(name);
        for (eng_name, engine) in engines() {
            // bus model first — the weak-scaling configuration
            assert_stream_identity(
                &format!("{name}/bus/{eng_name}"),
                &trace,
                &Platform::default(),
                engine,
            );
            for (topo_name, topo) in topologies(trace.nranks()) {
                let platform = Platform::default().with_topology(topo);
                assert_stream_identity(
                    &format!("{name}/{topo_name}/{eng_name}"),
                    &trace,
                    &platform,
                    engine,
                );
            }
        }
    }
}

#[test]
fn streamed_matches_materialized_on_synth_seeds() {
    // seeded generator output covers collectives, non-blocking rings,
    // chains, and chunked exchanges the goldens don't
    for seed in 0..10u64 {
        let trace = synth::generate(seed);
        for engine in [
            ReplayEngine::Sequential,
            ReplayEngine::Parallel { workers: 4 },
        ] {
            assert_stream_identity(
                &format!("synth-{seed}/bus"),
                &trace,
                &Platform::default(),
                engine,
            );
            let crossbar = Platform::default().with_topology(Topology::Crossbar);
            assert_stream_identity(&format!("synth-{seed}/crossbar"), &trace, &crossbar, engine);
        }
    }
}

#[test]
fn streamed_matches_materialized_on_tiled_traces() {
    // rank-tiled copies exercise the supply's per-rank cursors well
    // past the base trace's width
    let tiled = synth::tile_ranks(&synth::generate(7), 8);
    for engine in [
        ReplayEngine::Sequential,
        ReplayEngine::Parallel { workers: 8 },
    ] {
        assert_stream_identity("tiled/bus", &tiled, &Platform::default(), engine);
    }
}

#[test]
fn streamed_matches_materialized_under_faults() {
    let trace = fixture("nas_cg_8r.trf");
    let schedule: overlap_sim::machine::FaultSchedule =
        "degrade=0.5@1ms:n0->sw;restore@3ms:n0->sw".parse().unwrap();
    let platform = Platform::default()
        .with_topology(Topology::Crossbar)
        .with_faults(schedule);
    for (eng_name, engine) in engines() {
        assert_stream_identity(&format!("faults/{eng_name}"), &trace, &platform, engine);
    }
}

#[test]
fn generated_workload_stream_equals_its_materialization() {
    // the ML workload both ways: records pulled lazily from the
    // generator vs the same generator materialized up front
    let cfg = MlConfig::new(16, 0x6d6c_6172).unwrap();
    let source = MlAllreduce::new(cfg);
    let trace = source.materialize();
    for (eng_name, engine) in engines() {
        let from_source =
            overlap_sim::machine::simulate_source_with(&source, &Platform::marenostrum(0), engine);
        let from_trace = simulate_with(&trace, &Platform::marenostrum(0), engine);
        assert_eq!(
            render_exact(&from_source),
            render_exact(&from_trace),
            "ml-allreduce/{eng_name}: generator stream diverged from its materialization"
        );
    }
}

#[test]
fn scale_replay_cross_checks_full_fidelity_stream() {
    // summary mode recycles engine state; runtime and event count must
    // still be bit-identical to the full-fidelity streamed replay
    let cfg = MlConfig::new(64, 0x6d6c_6172).unwrap();
    let source = MlAllreduce::new(cfg);
    let platform = Platform::marenostrum(0);
    let full = simulate_source_with(&source, &platform, ReplayEngine::Sequential).unwrap();
    let scale = replay_scale(&source, &platform).unwrap();
    assert_eq!(scale.nranks, 64);
    assert_eq!(scale.runtime, full.runtime, "summary-mode runtime drifted");
    assert_eq!(scale.events_processed, full.events_processed);
    assert!(
        scale.records_peak < scale.records_streamed,
        "streaming kept every record resident ({} of {})",
        scale.records_peak,
        scale.records_streamed
    );
    // summary mode refuses flow topologies instead of approximating them
    let flowed = Platform::marenostrum(0).with_topology(Topology::Crossbar);
    assert!(replay_scale(&source, &flowed).is_err());
}

#[test]
fn registry_rank_override_streams_identically() {
    // the CLI's `--ranks` path end to end: registry source at a
    // non-default rank count vs its materialization
    let entry = overlap_sim::apps::registry::by_name("ml-allreduce").unwrap();
    let source = entry.source(24).unwrap();
    let run = entry.trace_run(24).unwrap();
    let platform = Platform::marenostrum(0);
    let streamed = simulate_source_with(source.as_ref(), &platform, ReplayEngine::Sequential);
    let materialized = simulate_with(&run.trace, &platform, ReplayEngine::Sequential);
    assert_eq!(render_exact(&streamed), render_exact(&materialized));
}
