//! Deterministic link-fault injection, pinned on the committed trace
//! fixtures.
//!
//! The fault schedule is part of the platform, so a faulted replay must
//! be exactly as deterministic as a healthy one: bit-identical across
//! repeat runs and across sweep worker counts. Faults that never touch
//! a flow must be invisible to timing, and an empty schedule must be
//! indistinguishable from a build without the feature.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::sweep::{sweep, SweepApp, SweepCache, SweepConfig, SweepGrid};
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, FaultSchedule, Platform, SimError, SimResult};
use overlap_sim::trace::text;
use std::path::PathBuf;

fn fixture(name: &str) -> overlap_sim::trace::Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).unwrap();
    text::parse(&content).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Everything observable about a replay's timing, rendered exactly
/// (float Debug output is round-trip precise).
fn timing(sim: &SimResult) -> String {
    format!(
        "{:?} {:?} {:?} {:?}",
        sim.runtime, sim.totals, sim.timelines, sim.markers
    )
}

fn transfers(sim: &SimResult) -> Vec<String> {
    let mut c: Vec<String> = sim.comms.iter().map(|r| format!("{r:?}")).collect();
    c.sort();
    c
}

fn faults(spec: &str) -> FaultSchedule {
    spec.parse().unwrap_or_else(|e| panic!("{spec}: {e}"))
}

/// The acceptance scenario: kill a fat-tree up-link mid-run, restore it
/// later. The replay must complete (ECMP reroutes around the dead
/// link), reproduce bit-identically, and differ from the fault-free
/// baseline — a fault on a traffic-carrying link is not a no-op.
#[test]
fn fat_tree_uplink_kill_restore_reroutes_and_replays_identically() {
    let trace = fixture("nas_cg_8r.trf");
    let base = Platform::default().with_contention("fat-tree:4".parse().unwrap());
    let clean = simulate(&trace, &base).unwrap();
    let faulted_p = base
        .clone()
        .with_faults(faults("kill@50us:e0->a0;restore@120us:e0->a0"));
    let a = simulate(&trace, &faulted_p).unwrap();
    let b = simulate(&trace, &faulted_p).unwrap();
    assert_eq!(timing(&a), timing(&b), "faulted replay nondeterministic");
    assert_eq!(transfers(&a), transfers(&b));
    assert_eq!(a.network.faults_applied, 2);
    assert_eq!(a.fault_log.len(), 2);
    assert!(a.fault_log[0].desc.contains("kill"), "{:?}", a.fault_log);
    assert_ne!(
        timing(&clean),
        timing(&a),
        "killing a traffic-carrying up-link must perturb the replay"
    );
    let killed = a.links.iter().find(|l| &*l.label == "e0->a0").unwrap();
    assert_eq!(killed.faults, 2, "kill + restore both touch the link");
}

/// Killing the only path between two endpoints must fail fast with a
/// partition error naming the dead link — never a silent hang.
#[test]
fn crossbar_kill_partitions_with_a_clean_error() {
    let trace = fixture("nas_cg_8r.trf");
    let p = Platform::default()
        .with_contention("crossbar".parse().unwrap())
        .with_faults(faults("kill@1us:n0->sw"));
    match simulate(&trace, &p) {
        Err(SimError::Partitioned { src, dst, link }) => {
            assert_eq!(src, 0, "node 0 lost its only up-link");
            assert_eq!(link, "n0->sw");
            assert_ne!(dst, 0);
        }
        other => panic!("expected a partition error, got {other:?}"),
    }
}

/// A schedule whose faults never coincide with traffic must leave
/// every timing observable bit-identical to the fault-free replay, on
/// every flow topology and both fixtures: mid-run faults on a link
/// that carries zero traffic, or — where every link is busy (CG on the
/// crossbar) — faults landing after the last flow has drained. (Fault
/// bookkeeping — event counts, per-link fault markers — may differ;
/// timing may not.)
#[test]
fn faults_on_idle_links_are_timing_invisible() {
    let cases = [
        (
            "sweep3d_4r.trf",
            vec!["crossbar", "fat-tree:4", "torus:2x2"],
        ),
        (
            "nas_cg_8r.trf",
            vec!["crossbar", "fat-tree:4", "torus:2x2x2"],
        ),
    ];
    for (name, topologies) in cases {
        let trace = fixture(name);
        for spec in topologies {
            let base = Platform::default().with_contention(spec.parse().unwrap());
            let clean = simulate(&trace, &base).unwrap();
            let (label, t0) = match clean.links.iter().find(|l| l.bytes == 0.0) {
                Some(idle) => (idle.label.clone(), 20e-6),
                None => (clean.links[0].label.clone(), clean.runtime() + 1e-3),
            };
            let schedule = faults(&format!(
                "degrade=0.5@{t0}s:{label};kill@{t1}s:{label};restore@{t2}s:{label}",
                t1 = t0 + 20e-6,
                t2 = t0 + 40e-6,
            ));
            let faulted = simulate(&trace, &base.clone().with_faults(schedule))
                .unwrap_or_else(|e| panic!("{name} on {spec}: {e}"));
            assert_eq!(
                timing(&clean),
                timing(&faulted),
                "{name} on {spec}: idle-link faults perturbed timing"
            );
            assert_eq!(transfers(&clean), transfers(&faulted));
            assert_eq!(faulted.network.faults_applied, 3);
            assert_eq!(faulted.network.flows_rerouted, 0);
        }
    }
}

/// The empty schedule is the feature turned off: replays must be
/// bit-identical in every observable, including engine event counts.
#[test]
fn empty_fault_schedule_is_bit_identical_everywhere() {
    let cases = [
        (
            "sweep3d_4r.trf",
            vec!["crossbar", "fat-tree:4", "torus:2x2"],
        ),
        (
            "nas_cg_8r.trf",
            vec!["crossbar", "fat-tree:4", "torus:2x2x2"],
        ),
    ];
    for (name, topologies) in cases {
        let trace = fixture(name);
        for spec in topologies {
            let base = Platform::default().with_contention(spec.parse().unwrap());
            let clean = simulate(&trace, &base).unwrap();
            let empty = simulate(&trace, &base.clone().with_faults(FaultSchedule::default()))
                .unwrap_or_else(|e| panic!("{name} on {spec}: {e}"));
            assert_eq!(timing(&clean), timing(&empty), "{name} on {spec}");
            assert_eq!(transfers(&clean), transfers(&empty));
            assert_eq!(clean.events_processed, empty.events_processed);
            assert_eq!(format!("{:?}", clean.links), format!("{:?}", empty.links));
            assert!(empty.fault_log.is_empty());
        }
    }
}

/// Resilience sweeps: a grid mixing fault-free and faulted platforms
/// must stay bit-identical for any worker count, and the retention
/// section must quantify each scenario against its clean baseline.
#[test]
fn resilience_sweep_is_bit_identical_across_jobs() {
    let app = overlap_sim::apps::nas_cg::NasCgApp::quick();
    let run = trace_app(&app, 8).unwrap();
    let base = Platform::marenostrum(6).with_contention("fat-tree:4".parse().unwrap());
    let scenarios = [
        faults("degrade=0.25@50us:uplink:*"),
        faults("kill@50us:e0->a0;restore@120us:e0->a0"),
    ];
    let mut platforms = vec![base.clone()];
    platforms.extend(
        scenarios
            .iter()
            .map(|s| base.clone().with_faults(s.clone())),
    );
    let grid = SweepGrid {
        apps: vec![SweepApp::new("nas-cg", run)],
        platforms,
        policies: [2u32, 4]
            .into_iter()
            .map(ChunkPolicy::with_chunks)
            .collect(),
    };
    let outputs: Vec<(String, String)> = [1usize, 2, 4]
        .into_iter()
        .map(|jobs| {
            let report = sweep(&grid, &SweepConfig::with_jobs(jobs), &SweepCache::new());
            assert_eq!(report.err_count(), 0, "jobs={jobs}");
            (report.render(&grid), report.render_retention(&grid))
        })
        .collect();
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    let (render, retention) = &outputs[0];
    assert!(render.contains("faults=none"), "{render}");
    assert!(render.contains("faults=kill@0.00005s:e0->a0"), "{render}");
    assert!(retention.contains("retention"), "{retention}");
    assert!(
        retention.contains("degrade=0.25@0.00005s:uplink:*"),
        "{retention}"
    );
    // one retention row per (policy, scenario)
    assert_eq!(retention.lines().count(), 2 + 2 * 2, "{retention}");
}

/// Satellite coverage for the parallel replay driver: kill, degrade,
/// and restore faults striking mid-replay must match the sequential
/// engine byte for byte at every flow topology — including the
/// schedule that partitions the fabric and fails the replay.
#[test]
fn fault_schedules_match_sequential_under_parallel_engine() {
    use overlap_sim::machine::{render_exact, simulate_with, ReplayEngine};
    let cases = [
        (
            "sweep3d_4r.trf",
            vec!["crossbar", "fat-tree:4", "torus:2x2"],
        ),
        (
            "nas_cg_8r.trf",
            vec!["crossbar", "fat-tree:4", "torus:2x2x2"],
        ),
    ];
    for (name, topologies) in cases {
        let trace = fixture(name);
        for spec in topologies {
            let base = Platform::default().with_contention(spec.parse().unwrap());
            // Schedules spanning all three actions. On the crossbar the
            // mid-run kill partitions the fabric: the *error* must then
            // be identical too. Fat-tree/torus reroute around it.
            let link = match spec {
                "crossbar" => "n0->sw",
                "fat-tree:4" => "e0->a0",
                _ => "n0->n1(+x)",
            };
            let schedules = [
                format!("degrade=0.5@30us:{link};restore@90us:{link}"),
                format!("kill@50us:{link};restore@120us:{link}"),
                format!("degrade=0.25@20us:{link};kill@60us:{link};restore@100us:{link}"),
            ];
            for schedule in &schedules {
                let p = base.clone().with_faults(faults(schedule));
                let seq = simulate(&trace, &p);
                for workers in [2usize, 8] {
                    let par = simulate_with(&trace, &p, ReplayEngine::Parallel { workers });
                    assert_eq!(
                        render_exact(&seq),
                        render_exact(&par),
                        "{name} on {spec} with {schedule}: parallel:{workers} diverged"
                    );
                }
            }
        }
    }
}
