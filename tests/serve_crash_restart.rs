//! Crash-and-restart differential tests against the real `ovlp serve`
//! binary: SIGKILL mid-job must lose nothing that matters — a restart
//! on the same store resumes the journaled job and streams bytes
//! identical to a never-crashed daemon — and SIGTERM must drain
//! gracefully (finish in-flight work, flush the journal, exit 0).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus, Stdio};
use std::time::{Duration, Instant};

const JOB: &str = r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"jobs":2,"chunks":[1,2,4,8],"bw":[100,175,250,325],"buses":[4,6],"topology":["bus","crossbar"]}"#;
const JOB_POINTS: u64 = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ovlp-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A daemon child process. Dropped = SIGKILLed, so a failing assertion
/// never leaks a listener.
struct Daemon {
    child: Child,
    addr: SocketAddr,
    // Keeps the stdout pipe open so the daemon never blocks on it.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Daemon {
    fn spawn(store: &Path, chaos: Option<&str>) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ovlp"));
        cmd.args(["serve", "--addr", "127.0.0.1:0", "--store"])
            .arg(store)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .env_remove("OVLP_CHAOS");
        if let Some(spec) = chaos {
            cmd.env("OVLP_CHAOS", spec);
        }
        let mut child = cmd.spawn().unwrap();
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut banner = String::new();
        stdout.read_line(&mut banner).unwrap();
        let addr = banner
            .trim()
            .strip_prefix("ovlp serve listening on http://")
            .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
            .parse()
            .unwrap();
        Daemon {
            child,
            addr,
            _stdout: stdout,
        }
    }

    fn sigkill(&mut self) {
        self.child.kill().unwrap();
        self.child.wait().unwrap();
    }

    fn sigterm(&self) {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .unwrap();
        assert!(ok.success());
    }

    fn wait_exit(&mut self, limit: Duration) -> ExitStatus {
        let deadline = Instant::now() + limit;
        loop {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status;
            }
            assert!(
                Instant::now() < deadline,
                "daemon did not exit within {limit:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Minimal HTTP/1.1 client (the daemon is `Connection: close`).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let (head, payload) = text.split_once("\r\n\r\n").unwrap();
    let status: u16 = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let chunked = head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked");
    let body = if chunked {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, body)
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").unwrap();
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
    out
}

fn json_u64(doc: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":");
    let tail = &doc[doc
        .find(&pat)
        .unwrap_or_else(|| panic!("no {field} in {doc}"))
        + pat.len()..];
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no sample {name} in:\n{body}"))
        .parse()
        .unwrap()
}

fn submit(addr: SocketAddr) -> String {
    let (status, body) = http(addr, "POST", "/v1/sweeps", JOB);
    assert_eq!(status, 202, "{body}");
    let pat = "\"job\":\"";
    let tail = &body[body.find(pat).unwrap() + pat.len()..];
    tail[..tail.find('"').unwrap()].to_string()
}

fn wait_summary(addr: SocketAddr, job: &str) -> String {
    let (status, body) = http(addr, "GET", &format!("/v1/sweeps/{job}/summary?wait=1"), "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"done\":true"), "{body}");
    body
}

fn tmp_files_under(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "tmp") {
                found.push(path);
            }
        }
    }
    found
}

#[test]
fn sigkill_mid_stream_then_restart_is_byte_identical() {
    // Reference: a never-crashed daemon on its own store.
    let ref_store = temp_dir("reference");
    let reference = {
        let daemon = Daemon::spawn(&ref_store, None);
        let job = submit(daemon.addr);
        wait_summary(daemon.addr, &job);
        let (status, stream) = http(daemon.addr, "GET", &format!("/v1/sweeps/{job}"), "");
        assert_eq!(status, 200);
        stream
    };
    assert_eq!(reference.lines().count() as u64, JOB_POINTS + 1);

    // Crash run: point 40 stalls for seconds, pinning the job mid-grid.
    // We start streaming, read a few lines, then SIGKILL the daemon
    // with the job incomplete and a client attached.
    let store = temp_dir("crash");
    {
        let mut daemon = Daemon::spawn(&store, Some("stall=30000@40:1"));
        let job = submit(daemon.addr);
        assert_eq!(job, "j1");
        let mut stream = TcpStream::connect(daemon.addr).unwrap();
        write!(stream, "GET /v1/sweeps/j1 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut some = [0u8; 512];
        assert!(stream.read(&mut some).unwrap() > 0, "stream started");
        // Let the pre-stall points land in the store and journal.
        std::thread::sleep(Duration::from_millis(800));
        daemon.sigkill();
    }

    // Restart on the same store: the journal brings j1 back, the store
    // serves everything already computed, the stall never replays (the
    // chaos env is gone), and the stream is byte-identical.
    {
        let mut daemon = Daemon::spawn(&store, None);
        let (_, metrics) = http(daemon.addr, "GET", "/metrics", "");
        assert_eq!(metric(&metrics, "ovlp_jobs_resumed_total"), 1, "{metrics}");
        let summary = wait_summary(daemon.addr, "j1");
        assert_eq!(json_u64(&summary, "points"), JOB_POINTS);
        let (status, stream) = http(daemon.addr, "GET", "/v1/sweeps/j1", "");
        assert_eq!(status, 200);
        assert_eq!(
            stream, reference,
            "resumed job must stream the same bytes as a never-crashed daemon"
        );
        assert_eq!(
            tmp_files_under(&store),
            Vec::<PathBuf>::new(),
            "no orphaned temp files survive recovery"
        );
        let journal = std::fs::read_to_string(store.join("journal").join("j1.journal")).unwrap();
        assert!(journal.contains("\"end\":\"complete\""), "{journal}");

        // Graceful exit: SIGTERM drains and the process exits 0.
        daemon.sigterm();
        let status = daemon.wait_exit(Duration::from_secs(15));
        assert!(status.success(), "drain exit: {status:?}");
    }

    // Second restart is idempotent: the job ended cleanly, so nothing
    // resumes, and a fresh identical submission is served entirely
    // from the store with — again — the same bytes.
    {
        let daemon = Daemon::spawn(&store, None);
        let (_, metrics) = http(daemon.addr, "GET", "/metrics", "");
        assert_eq!(metric(&metrics, "ovlp_jobs_resumed_total"), 0, "{metrics}");
        let job = submit(daemon.addr);
        let summary = wait_summary(daemon.addr, &job);
        assert_eq!(json_u64(&summary, "store_hits"), JOB_POINTS, "{summary}");
        assert_eq!(json_u64(&summary, "store_misses"), 0, "{summary}");
        let (_, stream) = http(daemon.addr, "GET", &format!("/v1/sweeps/{job}"), "");
        assert_eq!(stream, reference);
    }
    let _ = std::fs::remove_dir_all(&ref_store);
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn sigterm_with_a_job_in_flight_finishes_it_and_exits_zero() {
    let store = temp_dir("drain");
    let mut daemon = Daemon::spawn(&store, Some("stall=1200@0:1"));
    let small =
        r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"jobs":1,"chunks":[1,4]}"#;
    let (status, body) = http(daemon.addr, "POST", "/v1/sweeps", small);
    assert_eq!(status, 202, "{body}");

    // The job is mid-stall when the signal lands.
    std::thread::sleep(Duration::from_millis(200));
    daemon.sigterm();
    let status = daemon.wait_exit(Duration::from_secs(20));
    assert!(status.success(), "drain exit: {status:?}");

    // The drain let the job run to completion and sealed its journal.
    let journal = std::fs::read_to_string(store.join("journal").join("j1.journal")).unwrap();
    assert!(
        journal.contains("\"schema\":\"ovlp.journal.v1\""),
        "{journal}"
    );
    assert!(journal.contains("\"end\":\"complete\""), "{journal}");
    assert_eq!(journal.matches("{\"point\":").count(), 2, "{journal}");
    assert_eq!(tmp_files_under(&store), Vec::<PathBuf>::new());
    let _ = std::fs::remove_dir_all(&store);
}
