//! Property-based pinning of the parallel replay engine over seeded
//! generated applications: any small valid app replays byte-identically
//! for every worker count on every topology, and repeated runs at the
//! same width are bit-stable (no dependence on scheduling).
//!
//! Off by default; run with `cargo test --features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use overlap_sim::machine::{render_exact, simulate_with, Platform, ReplayEngine};
use overlap_sim::trace::{synth, validate, Trace};
use proptest::prelude::*;

/// Strategy: a small valid application derived deterministically from a
/// seed — mixed point-to-point and collective phases over 4 or 8 ranks,
/// both send modes, skewed and uniform compute.
fn small_app() -> impl Strategy<Value = Trace> {
    (0u64..u64::MAX).prop_map(synth::generate)
}

/// Contention specs shaped for the generator's rank counts.
fn contention_specs(nranks: usize) -> [&'static str; 3] {
    match nranks {
        4 => ["crossbar", "fat-tree:4", "torus:2x2"],
        _ => ["crossbar", "fat-tree:4", "torus:2x2x2"],
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The generator's output is a valid trace for every seed.
    #[test]
    fn generated_apps_are_valid(trace in small_app()) {
        let errors = validate(&trace);
        prop_assert!(errors.is_empty(), "validation errors: {:?}", errors);
    }

    /// Worker-count invariance: the sequential oracle and every
    /// parallel width agree to the byte, on every topology.
    #[test]
    fn engine_is_worker_count_invariant(trace in small_app(), spec_idx in 0usize..3) {
        let spec = contention_specs(trace.nranks())[spec_idx];
        let platform = Platform::default().with_contention(spec.parse().unwrap());
        let want = render_exact(&simulate_with(&trace, &platform, ReplayEngine::Sequential));
        for workers in [1, 2, 4, 8] {
            let got = render_exact(&simulate_with(
                &trace,
                &platform,
                ReplayEngine::Parallel { workers },
            ));
            prop_assert_eq!(&want, &got, "diverged at workers={} on {}", workers, spec);
        }
    }

    /// Scheduling invariance: the same app at the same width replays
    /// bit-identically run to run.
    #[test]
    fn parallel_replay_is_run_to_run_stable(trace in small_app()) {
        let platform = Platform::default().with_contention("fat-tree:4".parse().unwrap());
        let eng = ReplayEngine::Parallel { workers: 4 };
        let first = render_exact(&simulate_with(&trace, &platform, eng));
        let second = render_exact(&simulate_with(&trace, &platform, eng));
        prop_assert_eq!(first, second);
    }
}
