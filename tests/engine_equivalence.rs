//! Bit-identity of the incremental flow engine against the
//! from-scratch reference solver, pinned on the committed trace
//! fixtures across every topology family.
//!
//! The incremental max-min allocator and the dense replay state are
//! pure performance work: `simulate` must produce exactly the same
//! replay — every timestamp, timeline, transfer, link statistic, and
//! engine counter — as `simulate_reference`, which forces the original
//! from-scratch solver. Any divergence here is a correctness bug in
//! the incremental path, never an acceptable tolerance.

use overlap_sim::machine::replay::simulate_reference;
use overlap_sim::machine::{simulate, Platform, SimResult, Topology};
use overlap_sim::trace::text;
use std::path::PathBuf;

fn fixture(name: &str) -> overlap_sim::trace::Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).unwrap();
    text::parse(&content).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Every observable of a replay, rendered exactly (float Debug output
/// is round-trip precise, so equal strings mean equal bits).
fn full_render(sim: &SimResult) -> String {
    format!(
        "{:?} {:?} {:?} {:?} {:?} {:?} {:?} {} {} {}",
        sim.runtime,
        sim.totals,
        sim.timelines,
        sim.comms,
        sim.markers,
        sim.network,
        sim.links,
        sim.events_processed,
        sim.queue_peak,
        sim.stale_events,
    )
}

fn topologies(nranks: usize) -> Vec<(&'static str, Topology)> {
    let torus = match nranks {
        4 => Topology::Torus { dims: vec![2, 2] },
        8 => Topology::Torus {
            dims: vec![2, 2, 2],
        },
        n => panic!("no torus shape for {n} ranks"),
    };
    vec![
        ("crossbar", Topology::Crossbar),
        (
            "fat-tree",
            Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            },
        ),
        ("torus", torus),
    ]
}

#[test]
fn incremental_engine_matches_reference_solver_on_fixtures() {
    for name in ["sweep3d_4r.trf", "nas_cg_8r.trf"] {
        let trace = fixture(name);
        for (label, topo) in topologies(trace.nranks()) {
            let platform = Platform::default().with_topology(topo);
            let fast = simulate(&trace, &platform).unwrap();
            let reference = simulate_reference(&trace, &platform).unwrap();
            assert_eq!(
                full_render(&fast),
                full_render(&reference),
                "{name} on {label}: incremental engine diverged from reference solver"
            );
        }
    }
}

#[test]
fn bus_model_replays_are_unaffected_by_solver_choice() {
    // under the bus model there is no flow solver at all; the reference
    // entry must be a strict no-op relative to `simulate`
    for name in ["sweep3d_4r.trf", "nas_cg_8r.trf"] {
        let trace = fixture(name);
        let platform = Platform::default();
        let fast = simulate(&trace, &platform).unwrap();
        let reference = simulate_reference(&trace, &platform).unwrap();
        assert_eq!(full_render(&fast), full_render(&reference), "{name}");
        assert_eq!(fast.stale_events, 0, "{name}: bus model has no flows");
    }
}

#[test]
fn stale_event_counter_accounts_for_reshared_estimates() {
    // The fixtures replay with single ports per node, so concurrent
    // flows never share a link and no estimate ever goes stale (the
    // committed goldens pin stale_events == 0 there). Force contention
    // instead: four senders into one receiver with wide-open ports all
    // share the receiver's down link, so every departure re-estimates
    // the survivors and the superseded completions surface as stale
    // pops.
    use overlap_sim::trace::record::{Record, SendMode};
    use overlap_sim::trace::{Bytes, Rank, Tag, Trace, TransferId};
    let n = 5usize;
    let mut trace = Trace::new(n);
    for src in 0..4u32 {
        trace.rank_mut(Rank(src)).push(Record::Send {
            dst: Rank(4),
            tag: Tag::user(src),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(src), 0),
        });
        trace.rank_mut(Rank(4)).push(Record::Recv {
            src: Rank(src),
            tag: Tag::user(src),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(4), src),
        });
    }
    let platform = Platform {
        input_ports: 4,
        output_ports: 4,
        ..Platform::default().with_topology(Topology::Crossbar)
    };
    let sim = simulate(&trace, &platform).unwrap();
    assert!(
        sim.stale_events > 0,
        "4 flows sharing a down link must shed estimates as they finish"
    );
    assert!(sim.queue_peak > 0);
    assert!(
        sim.stale_events < sim.events_processed,
        "stale {} of {} total",
        sim.stale_events,
        sim.events_processed
    );
    // the reference engine counts the identical stale pops
    let reference = simulate_reference(&trace, &platform).unwrap();
    assert_eq!(full_render(&sim), full_render(&reference));
}
