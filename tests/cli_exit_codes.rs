//! Pins the `ovlp` exit-code convention: 0 on success, 1 when
//! well-formed inputs fail at runtime (I/O, tracing, simulation), 2
//! for usage and parse errors — with the message on stderr and nothing
//! on stdout.

use std::process::{Command, Output};

fn ovlp(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ovlp"))
        .args(args)
        .output()
        .unwrap()
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let out = ovlp(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2: {out:?}"
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
    assert!(
        out.stdout.is_empty(),
        "{args:?} should not write results to stdout"
    );
}

#[test]
fn success_exits_zero() {
    for args in [
        &["help"][..],
        &["list"][..],
        &["sweep", "nas-cg", "4", "--chunks", "1", "--bw", "250"][..],
    ] {
        let out = ovlp(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}: {out:?}");
        assert!(!out.stdout.is_empty(), "{args:?} printed nothing");
    }
}

#[test]
fn usage_and_parse_errors_exit_two() {
    assert_usage_error(&["no-such-command"], "usage:");
    assert_usage_error(&["sweep", "nas-cg", "four"], "bad rank count");
    assert_usage_error(&["sweep", "no-such-app", "4"], "unknown app");
    assert_usage_error(&["sweep", "nas-cg", "4", "--chunks", "0"], "--chunks");
    assert_usage_error(&["sweep", "nas-cg", "4", "--engine", "warp"], "--engine");
    assert_usage_error(&["sweep", "nas-cg", "4", "--bw"], "--bw");
    assert_usage_error(
        &["sweep", "nas-cg", "4", "--probe-window", "-5"],
        "--probe-window",
    );
    assert_usage_error(
        &["sweep", "nas-cg", "4", "--topology", "hypercube"],
        "--topology",
    );
    assert_usage_error(&["chunks", "nas-cg", "bogus"], "bad rank count");
    assert_usage_error(&["analyze", "no-such-app", "4"], "unknown app");
    assert_usage_error(&["simulate", "trace.trf", "--engine", "warp"], "--engine");
    assert_usage_error(&["serve", "--max-running", "0"], "--max-running");
    assert_usage_error(&["serve", "positional"], "unknown `serve` argument");
    assert_usage_error(
        &[
            "report",
            "nas-cg",
            "4",
            "/tmp/out.html",
            "--probe-window",
            "0",
        ],
        "--probe-window",
    );
}

#[test]
fn rank_overrides_are_validated_as_usage_errors() {
    // untileable rank counts are the caller's mistake, caught before
    // any tracing or streaming work starts: exit 2, never a panic
    assert_usage_error(&["analyze", "nas-cg", "5"], "even");
    assert_usage_error(&["chunks", "specfem3d", "7"], "even");
    assert_usage_error(&["analyze", "pop", "1"], "at least 2");
    assert_usage_error(&["analyze", "pop", "5000"], "cap");
    assert_usage_error(&["sweep", "nas-cg", "5", "--chunks", "1"], "even");
    assert_usage_error(&["scale", "ml-allreduce", "100001"], "multiple");
    assert_usage_error(&["scale", "no-such-app", "64"], "unknown app");
    assert_usage_error(&["scale", "ml-allreduce", "sixty-four"], "bad rank count");
    assert_usage_error(
        &["simulate", "ml-allreduce", "--ranks", "100001"],
        "multiple",
    );
    assert_usage_error(
        &["simulate", "ml-allreduce", "--stream", "--engine", "par:4"],
        "--stream",
    );
}

#[test]
fn streamed_simulate_and_scale_succeed() {
    let out = ovlp(&["scale", "ml-allreduce", "64"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("records resident"), "{stdout}");

    let streamed = ovlp(&["simulate", "ml-allreduce", "--ranks", "16", "--stream"]);
    assert_eq!(streamed.status.code(), Some(0), "{streamed:?}");
    let classic = ovlp(&["simulate", "ml-allreduce", "--ranks", "16"]);
    assert_eq!(classic.status.code(), Some(0), "{classic:?}");
    assert_eq!(
        String::from_utf8(streamed.stdout).unwrap(),
        String::from_utf8(classic.stdout).unwrap(),
        "streamed and materialized CLI output must be identical"
    );
}

#[test]
fn runtime_failures_exit_one() {
    // Well-formed invocations that fail while running: missing input
    // file, unreadable trace content, unwritable store directory.
    let missing = ovlp(&["simulate", "/no/such/trace.trf"]);
    assert_eq!(missing.status.code(), Some(1), "{missing:?}");
    assert!(String::from_utf8(missing.stderr)
        .unwrap()
        .contains("error:"));

    let dir = std::env::temp_dir().join(format!("ovlp-exit1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let garbled = dir.join("garbled.trf");
    std::fs::write(&garbled, "this is not a trace\n").unwrap();
    let bad_trace = ovlp(&["simulate", garbled.to_str().unwrap()]);
    assert_eq!(bad_trace.status.code(), Some(1), "{bad_trace:?}");

    // --store pointing at a path that exists as a *file* cannot be
    // opened as a store directory.
    let blocker = dir.join("not-a-dir");
    std::fs::write(&blocker, "x").unwrap();
    let bad_store = ovlp(&[
        "sweep",
        "nas-cg",
        "4",
        "--chunks",
        "1",
        "--store",
        blocker.to_str().unwrap(),
    ]);
    assert_eq!(bad_store.status.code(), Some(1), "{bad_store:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
