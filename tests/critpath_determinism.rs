//! The causal critical-path layer must be an exact observer: attaching
//! a `CritPathRecorder` never perturbs the replay, the recorded path is
//! byte-identical across replay engines and sweep worker counts, and
//! every path is a *certified* partition — the blame totals sum exactly
//! (not approximately) to the simulated runtime.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::sweep::{sweep, SweepApp, SweepCache, SweepConfig, SweepGrid};
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{
    simulate, simulate_probed_with, CritPath, CritPathRecorder, FaultSchedule, NoopSink, Platform,
    ReplayEngine, SimResult, Topology,
};
use overlap_sim::trace::{synth, text, Trace};
use std::path::PathBuf;

fn load_fixture(name: &str) -> Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    text::parse(&std::fs::read_to_string(path).unwrap()).unwrap()
}

fn critpath_with(
    trace: &Trace,
    platform: &Platform,
    engine: ReplayEngine,
) -> (SimResult, CritPath) {
    let mut rec = CritPathRecorder::new();
    let sim = simulate_probed_with(trace, platform, &mut rec, engine).unwrap();
    (sim, rec.into_critpath())
}

/// Every f64 the simulation reports, as bits.
fn result_bits(sim: &SimResult) -> Vec<u64> {
    let mut bits = vec![sim.runtime().to_bits()];
    for c in &sim.comms {
        for t in [c.t_send, c.t_start, c.t_arrive, c.t_consume] {
            bits.push(t.as_secs().to_bits());
        }
    }
    bits
}

/// Golden fixture x platform cases: bus, torus, fat-tree, and a
/// degraded torus fabric (mid-replay link kill + restore) so the
/// `fault-reroute` blame class is exercised too.
fn golden_cases() -> Vec<(&'static str, Platform)> {
    let killed: FaultSchedule = "kill@50us:n0->n1(+x);restore@100us:n0->n1(+x)"
        .parse()
        .unwrap();
    vec![
        ("sweep3d_4r.trf", Platform::marenostrum(4)),
        (
            "sweep3d_4r.trf",
            Platform::marenostrum(4).with_topology(Topology::Torus { dims: vec![2, 2] }),
        ),
        (
            "sweep3d_4r.trf",
            Platform::marenostrum(4)
                .with_topology(Topology::Torus { dims: vec![2, 2] })
                .with_faults(killed),
        ),
        ("nas_cg_8r.trf", Platform::marenostrum(8)),
        (
            "nas_cg_8r.trf",
            Platform::marenostrum(8).with_topology(Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            }),
        ),
    ]
}

#[test]
fn critpath_recorder_does_not_perturb_the_replay() {
    for (name, platform) in &golden_cases() {
        let trace = load_fixture(name);
        let mut noop = NoopSink;
        let plain =
            simulate_probed_with(&trace, platform, &mut noop, ReplayEngine::Sequential).unwrap();
        let (recorded, _) = critpath_with(&trace, platform, ReplayEngine::Sequential);
        assert_eq!(
            result_bits(&plain),
            result_bits(&recorded),
            "{name}: recording the critical path changed the simulation"
        );
        assert_eq!(
            result_bits(&plain),
            result_bits(&simulate(&trace, platform).unwrap()),
            "{name}: NoopSink diverged from simulate()"
        );
    }
}

#[test]
fn critpath_is_byte_identical_across_replay_engines() {
    for (name, platform) in &golden_cases() {
        let trace = load_fixture(name);
        let (_, seq) = critpath_with(&trace, platform, ReplayEngine::Sequential);
        let want = seq.to_json();
        for workers in [1, 2, 4, 8] {
            let (_, par) = critpath_with(&trace, platform, ReplayEngine::Parallel { workers });
            assert_eq!(
                want,
                par.to_json(),
                "{name}: critpath diverged at workers={workers}"
            );
        }
    }
}

#[test]
fn blame_totals_sum_exactly_to_runtime_on_golden_fixtures() {
    for (name, platform) in &golden_cases() {
        let trace = load_fixture(name);
        let (sim, cp) = critpath_with(&trace, platform, ReplayEngine::Sequential);
        assert!(
            cp.exact,
            "{name}: blame partition not certified exact (runtime {})",
            sim.runtime()
        );
        assert!(!cp.segments.is_empty(), "{name}: empty path");
        assert_eq!(
            cp.runtime.as_secs().to_bits(),
            sim.runtime().to_bits(),
            "{name}: path runtime is not the simulated runtime"
        );
        // the certified partition also chains bitwise through time
        assert_eq!(cp.segments.first().unwrap().start.as_secs(), 0.0);
        for pair in cp.segments.windows(2) {
            assert_eq!(
                pair[0].end.as_secs().to_bits(),
                pair[1].start.as_secs().to_bits(),
                "{name}: gap in the segment chain"
            );
        }
        assert_eq!(
            cp.segments.last().unwrap().end.as_secs().to_bits(),
            sim.runtime().to_bits(),
            "{name}: path does not end at the runtime"
        );
    }
}

fn small_grid() -> SweepGrid {
    let app = overlap_sim::apps::synthetic::PatternApp::quick();
    let run = trace_app(&app, 4).unwrap();
    SweepGrid {
        apps: vec![SweepApp::new("pattern", run)],
        platforms: vec![
            Platform::marenostrum(4),
            Platform::marenostrum(4).with_bandwidth(50.0),
        ],
        policies: [1u32, 4]
            .into_iter()
            .map(ChunkPolicy::with_chunks)
            .collect(),
    }
}

#[test]
fn sweep_critpaths_are_identical_for_any_worker_count() {
    let grid = small_grid();
    let run_with = |jobs: usize| {
        let mut config = SweepConfig::with_jobs(jobs);
        config.critpath = true;
        sweep(&grid, &config, &SweepCache::new())
    };
    let base = run_with(1);
    for outcome in &base.outcomes {
        let cp = outcome.as_ref().unwrap().critpaths.as_ref().unwrap();
        assert!(cp.original.exact && cp.overlapped.exact && cp.ideal.exact);
    }
    // critpaths are excluded from the replay fingerprint by construction
    let unprobed = sweep(&grid, &SweepConfig::with_jobs(2), &SweepCache::new());
    assert_eq!(base.result_hashes(), unprobed.result_hashes());
    for jobs in [2, 4] {
        let r = run_with(jobs);
        assert_eq!(r.result_hashes(), base.result_hashes(), "jobs={jobs}");
        for (a, b) in base.outcomes.iter().zip(&r.outcomes) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.critpaths, b.critpaths, "jobs={jobs}: critpaths diverged");
        }
    }
}

/// Deterministic seeded sweep over generated applications: every seed,
/// on every topology its rank count supports, yields a certified-exact
/// path that is engine-invariant. (The proptest variant below explores
/// the seed space further when `--features proptest-tests` is on.)
#[test]
fn generated_apps_have_exact_engine_invariant_paths() {
    for seed in [1u64, 7, 42, 1234, 0xFEED_5EED] {
        let trace = synth::generate(seed);
        let specs: &[&str] = if trace.nranks() == 4 {
            &["bus", "crossbar", "fat-tree:4", "torus:2x2"]
        } else {
            &["bus", "crossbar", "fat-tree:4", "torus:2x2x2"]
        };
        for spec in specs {
            let platform = Platform::default().with_contention(spec.parse().unwrap());
            let (_, seq) = critpath_with(&trace, &platform, ReplayEngine::Sequential);
            assert!(seq.exact, "seed {seed} on {spec}: partition not exact");
            let (_, par) = critpath_with(&trace, &platform, ReplayEngine::Parallel { workers: 4 });
            assert_eq!(
                seq.to_json(),
                par.to_json(),
                "seed {seed} on {spec}: engines disagree"
            );
        }
    }
}

#[cfg(feature = "proptest-tests")]
mod props {
    use super::*;
    use proptest::prelude::*;

    fn small_app() -> impl Strategy<Value = Trace> {
        (0u64..u64::MAX).prop_map(synth::generate)
    }

    fn contention_specs(nranks: usize) -> [&'static str; 4] {
        match nranks {
            4 => ["bus", "crossbar", "fat-tree:4", "torus:2x2"],
            _ => ["bus", "crossbar", "fat-tree:4", "torus:2x2x2"],
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The blame partition is certified exact for arbitrary
        /// generated apps on every topology family.
        #[test]
        fn blame_sum_is_exact_for_generated_apps(trace in small_app(), spec_idx in 0usize..4) {
            let spec = contention_specs(trace.nranks())[spec_idx];
            let platform = Platform::default().with_contention(spec.parse().unwrap());
            let (sim, cp) = critpath_with(&trace, &platform, ReplayEngine::Sequential);
            prop_assert!(cp.exact, "partition not exact on {}", spec);
            prop_assert_eq!(cp.runtime.as_secs().to_bits(), sim.runtime().to_bits());
        }

        /// Engine invariance holds pointwise over the seed space, not
        /// just on the golden fixtures.
        #[test]
        fn critpath_is_engine_invariant_for_generated_apps(trace in small_app(), spec_idx in 0usize..4) {
            let spec = contention_specs(trace.nranks())[spec_idx];
            let platform = Platform::default().with_contention(spec.parse().unwrap());
            let (_, seq) = critpath_with(&trace, &platform, ReplayEngine::Sequential);
            for workers in [2, 8] {
                let (_, par) = critpath_with(&trace, &platform, ReplayEngine::Parallel { workers });
                prop_assert_eq!(seq.to_json(), par.to_json(), "workers={} on {}", workers, spec);
            }
        }
    }
}
