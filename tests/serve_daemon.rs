//! Daemon-vs-CLI differential tests for `ovlp serve`.
//!
//! The sweep daemon must be an *exact* front end swap: the same grid,
//! in the same canonical order, with byte-identical results — plus the
//! persistent-store guarantees (resubmission is served entirely from
//! the store; concurrent identical submissions compute each point
//! exactly once).

use overlap_sim::serve::{ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::Command;

/// The pinned 64-point job: 4 chunk counts x 4 bandwidths x 2 bus
/// counts x 2 topologies.
const JOB: &str = r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"jobs":2,"chunks":[1,2,4,8],"bw":[100,175,250,325],"buses":[4,6],"topology":["bus","crossbar"]}"#;
const JOB_POINTS: u64 = 64;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ovlp-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(store: Option<PathBuf>, max_running: usize) -> (SocketAddr, ServerHandle) {
    start_with(ServeConfig {
        store_dir: store,
        max_running,
        ..test_config()
    })
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        max_connections: 64,
        ..ServeConfig::default()
    }
}

fn start_with(config: ServeConfig) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle().unwrap();
    std::thread::spawn(move || server.run().unwrap());
    (addr, handle)
}

/// Minimal HTTP/1.1 client: one request per connection (the daemon is
/// `Connection: close`), de-chunking the body when needed.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let (head, payload) = text.split_once("\r\n\r\n").unwrap();
    let status: u16 = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let chunked = head
        .to_ascii_lowercase()
        .contains("transfer-encoding: chunked");
    let body = if chunked {
        dechunk(payload)
    } else {
        payload.to_string()
    };
    (status, body)
}

fn dechunk(payload: &str) -> String {
    let mut out = String::new();
    let mut rest = payload;
    loop {
        let (size_line, tail) = rest.split_once("\r\n").unwrap();
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = &tail[size + 2..];
    }
    out
}

/// Pull `"field":<number>` out of a JSON document (the daemon emits
/// canonical JSON with no whitespace, so this is exact).
fn json_u64(doc: &str, field: &str) -> u64 {
    let pat = format!("\"{field}\":");
    let tail = &doc[doc
        .find(&pat)
        .unwrap_or_else(|| panic!("no {field} in {doc}"))
        + pat.len()..];
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

fn submit(addr: SocketAddr) -> String {
    let (status, body) = http(addr, "POST", "/v1/sweeps", JOB);
    assert_eq!(status, 202, "{body}");
    assert_eq!(json_u64(&body, "points"), JOB_POINTS);
    let pat = "\"job\":\"";
    let tail = &body[body.find(pat).unwrap() + pat.len()..];
    tail[..tail.find('"').unwrap()].to_string()
}

fn wait_summary(addr: SocketAddr, job: &str) -> String {
    let (status, body) = http(addr, "GET", &format!("/v1/sweeps/{job}/summary?wait=1"), "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"done\":true"), "{body}");
    body
}

#[test]
fn daemon_report_is_byte_identical_to_the_cli() {
    let store = temp_dir("differential");
    let (addr, handle) = start(Some(store.clone()), 2);

    let job = submit(addr);
    let (status, daemon_report) = http(addr, "GET", &format!("/v1/sweeps/{job}/report"), "");
    assert_eq!(status, 200);

    let cli = Command::new(env!("CARGO_BIN_EXE_ovlp"))
        .args([
            "sweep",
            "nas-cg",
            "4",
            "--jobs",
            "2",
            "--chunks",
            "1,2,4,8",
            "--bw",
            "100,175,250,325",
            "--buses",
            "4,6",
            "--topology",
            "bus,crossbar",
        ])
        .output()
        .unwrap();
    assert!(cli.status.success(), "{:?}", cli);
    let cli_report = String::from_utf8(cli.stdout).unwrap();
    assert_eq!(
        daemon_report, cli_report,
        "daemon report and `ovlp sweep` stdout must match byte for byte"
    );

    // The NDJSON stream covers the same 64 points in canonical order.
    let (status, stream) = http(addr, "GET", &format!("/v1/sweeps/{job}"), "");
    assert_eq!(status, 200);
    let lines: Vec<&str> = stream.lines().collect();
    assert_eq!(lines.len() as u64, JOB_POINTS + 1);
    for (i, line) in lines[..JOB_POINTS as usize].iter().enumerate() {
        assert!(
            line.contains("\"schema\":\"ovlp.sweep-point.v1\""),
            "{line}"
        );
        assert!(line.contains(&format!("\"index\":{i},")), "{line}");
    }
    assert!(
        lines[JOB_POINTS as usize].contains("\"schema\":\"ovlp.sweep-done.v1\""),
        "{stream}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn resubmission_is_served_entirely_from_the_store() {
    let store = temp_dir("resubmit");
    let (addr, handle) = start(Some(store.clone()), 2);

    let first = submit(addr);
    let summary = wait_summary(addr, &first);
    assert_eq!(json_u64(&summary, "store_misses"), JOB_POINTS);
    assert_eq!(json_u64(&summary, "store_hits"), 0);
    let (_, first_stream) = http(addr, "GET", &format!("/v1/sweeps/{first}"), "");

    // Same daemon, same job: zero replays, identical bytes.
    let second = submit(addr);
    let summary = wait_summary(addr, &second);
    assert_eq!(json_u64(&summary, "store_hits"), JOB_POINTS);
    assert_eq!(json_u64(&summary, "store_misses"), 0);
    let (_, second_stream) = http(addr, "GET", &format!("/v1/sweeps/{second}"), "");
    assert_eq!(first_stream, second_stream);
    handle.shutdown();

    // A restarted daemon on the same store directory: the points come
    // back from disk (cross-process persistence), still byte-identical.
    let (addr, handle) = start(Some(store.clone()), 2);
    let third = submit(addr);
    let summary = wait_summary(addr, &third);
    assert_eq!(json_u64(&summary, "store_hits"), JOB_POINTS);
    assert_eq!(json_u64(&summary, "store_misses"), 0);
    let (_, third_stream) = http(addr, "GET", &format!("/v1/sweeps/{third}"), "");
    assert_eq!(first_stream, third_stream);
    let (_, stats) = http(addr, "GET", "/v1/store/stats", "");
    assert!(
        stats.contains("\"schema\":\"ovlp.store-stats.v1\""),
        "{stats}"
    );
    assert_eq!(json_u64(&stats, "entries"), JOB_POINTS);
    assert_eq!(json_u64(&stats, "corrupt"), 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn concurrent_identical_submissions_compute_each_point_exactly_once() {
    // Four identical jobs racing on a fresh daemon: every point is
    // simulated exactly once (64 misses); the other three observers of
    // each point are either in-flight coalescings or cache hits.
    let store = temp_dir("coalesce");
    let (addr, handle) = start(Some(store.clone()), 4);

    let jobs: Vec<String> = {
        let submits: Vec<std::thread::JoinHandle<String>> = (0..4)
            .map(|_| std::thread::spawn(move || submit(addr)))
            .collect();
        submits.into_iter().map(|t| t.join().unwrap()).collect()
    };
    let mut streams = Vec::new();
    for job in &jobs {
        wait_summary(addr, job);
        let (status, stream) = http(addr, "GET", &format!("/v1/sweeps/{job}"), "");
        assert_eq!(status, 200);
        streams.push(stream);
    }
    for s in &streams[1..] {
        assert_eq!(&streams[0], s, "racing jobs must stream identical bytes");
    }

    let (_, stats) = http(addr, "GET", "/v1/store/stats", "");
    let misses = json_u64(&stats, "misses");
    let hits = json_u64(&stats, "hits");
    let coalesced = json_u64(&stats, "coalesced");
    assert_eq!(
        misses, JOB_POINTS,
        "each point computed exactly once: {stats}"
    );
    assert_eq!(
        hits + coalesced,
        3 * JOB_POINTS,
        "the other three claims per point hit or coalesced: {stats}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&store);
}

/// Value of one un-labelled sample in a Prometheus text exposition.
fn metric(body: &str, name: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("no sample {name} in:\n{body}"))
        .parse()
        .unwrap()
}

#[test]
fn metrics_endpoint_exposes_daemon_counters() {
    let (addr, handle) = start(None, 2);

    // Fresh daemon: families are present with zeroed job counters.
    let (status, before) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        before.contains("# HELP ovlp_jobs_submitted_total"),
        "{before}"
    );
    assert!(before.contains("# TYPE ovlp_jobs_submitted_total counter"));
    assert!(before.contains("# TYPE ovlp_jobs_running gauge"));
    assert_eq!(metric(&before, "ovlp_jobs_submitted_total"), 0);
    assert_eq!(metric(&before, "ovlp_points_completed_total"), 0);
    // No persistent store, but the store series still scrape (as 0).
    assert_eq!(metric(&before, "ovlp_store_corruption_heals_total"), 0);

    let job = submit(addr);
    wait_summary(addr, &job);
    let (_, after) = http(addr, "GET", "/metrics", "");
    assert_eq!(metric(&after, "ovlp_jobs_submitted_total"), 1);
    assert_eq!(metric(&after, "ovlp_jobs_completed_total"), 1);
    assert_eq!(metric(&after, "ovlp_jobs_running"), 0);
    assert_eq!(metric(&after, "ovlp_points_completed_total"), JOB_POINTS);
    assert_eq!(metric(&after, "ovlp_cache_memory_misses_total"), JOB_POINTS);
    assert!(
        metric(&after, "ovlp_connections_admitted_total") >= 3,
        "{after}"
    );
    assert_eq!(metric(&after, "ovlp_connections_rejected_total"), 0);

    handle.shutdown();
}

#[test]
fn critpath_jobs_stream_deterministic_blame_attribution() {
    let (addr, handle) = start(None, 2);
    let job_doc = r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"jobs":2,"chunks":[1,4],"critpath":true}"#;

    let submit_critpath = || {
        let (status, body) = http(addr, "POST", "/v1/sweeps", job_doc);
        assert_eq!(status, 202, "{body}");
        let pat = "\"job\":\"";
        let tail = &body[body.find(pat).unwrap() + pat.len()..];
        tail[..tail.find('"').unwrap()].to_string()
    };

    let first = submit_critpath();
    wait_summary(addr, &first);
    let (status, stream1) = http(addr, "GET", &format!("/v1/sweeps/{first}"), "");
    assert_eq!(status, 200);
    let points: Vec<&str> = stream1
        .lines()
        .filter(|l| l.contains("\"schema\":\"ovlp.sweep-point.v1\""))
        .collect();
    assert_eq!(points.len(), 2);
    for line in &points {
        assert!(line.contains("\"critpath\":{\"original\":{"), "{line}");
        assert!(line.contains("\"overlapped\":"), "{line}");
        assert!(line.contains("\"ideal\":"), "{line}");
        // every variant's blame partition is certified exact
        assert_eq!(line.matches("\"exact\":true").count(), 3, "{line}");
        assert!(line.contains("\"compute\":"), "{line}");
    }

    // Critpath points bypass the result cache, so a resubmission
    // recomputes — and must still stream byte-identical lines.
    let second = submit_critpath();
    wait_summary(addr, &second);
    let (_, stream2) = http(addr, "GET", &format!("/v1/sweeps/{second}"), "");
    assert_eq!(stream1, stream2);

    handle.shutdown();
}

#[test]
fn malformed_and_unknown_requests_are_rejected() {
    let (addr, handle) = start(None, 1);

    let (status, body) = http(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    for (body, needle) in [
        ("not json", "bad JSON"),
        ("{}", "schema"),
        (
            r#"{"schema":"ovlp.sweep-job.v1","app":"nope","ranks":4}"#,
            "unknown app",
        ),
        (
            r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"zap":1}"#,
            "unknown field",
        ),
    ] {
        let (status, reply) = http(addr, "POST", "/v1/sweeps", body);
        assert_eq!(status, 400, "{body} -> {reply}");
        assert!(reply.contains(needle), "{body} -> {reply}");
    }

    let (status, _) = http(addr, "GET", "/v1/sweeps/j999", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/v1/nope", "");
    assert_eq!(status, 404);
    let (status, _) = http(addr, "DELETE", "/v1/sweeps", "");
    assert_eq!(status, 405);

    handle.shutdown();
}

/// Like [`http`] but also returns the raw response head, for header
/// assertions.
fn http_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8(raw).unwrap();
    let (head, payload) = text.split_once("\r\n\r\n").unwrap();
    let status: u16 = head
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    (status, head.to_string(), payload.to_string())
}

#[test]
fn health_endpoint_reports_live_and_ready() {
    let (addr, handle) = start(None, 2);
    let (status, body) = http(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"schema\":\"ovlp.health.v1\""), "{body}");
    assert!(body.contains("\"live\":true"), "{body}");
    assert!(body.contains("\"ready\":true"), "{body}");
    assert!(body.contains("\"draining\":false"), "{body}");
    assert_eq!(json_u64(&body, "jobs"), 0);
    assert_eq!(json_u64(&body, "unfinished"), 0);
    handle.shutdown();
}

#[test]
fn fresh_daemon_scrapes_robustness_families_as_zeros() {
    let (addr, handle) = start(None, 2);
    let (_, body) = http(addr, "GET", "/metrics", "");
    for family in [
        "ovlp_draining",
        "ovlp_jobs_rejected_draining_total",
        "ovlp_jobs_cancelled_total",
        "ovlp_client_disconnects_total",
        "ovlp_jobs_resumed_total",
        "ovlp_journal_points_replayed_total",
        "ovlp_points_retried_total",
        "ovlp_point_panics_total",
        "ovlp_point_timeouts_total",
        "ovlp_points_quarantined_total",
        "ovlp_quarantine_rejections_total",
        "ovlp_store_orphans_removed_total",
    ] {
        assert_eq!(metric(&body, family), 0, "{family}");
    }
    handle.shutdown();
}

#[test]
fn drain_rejects_new_jobs_and_finishes_running_ones() {
    use std::time::{Duration, Instant};
    // Point 0 stalls so the job is reliably still running when the
    // drain begins (the per-attempt deadline is far above the stall).
    let (addr, handle) = start_with(ServeConfig {
        max_running: 1,
        chaos: Some("stall=1500@0:1".to_string()),
        ..test_config()
    });
    let small =
        r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"jobs":1,"chunks":[1,4]}"#;
    let (status, body) = http(addr, "POST", "/v1/sweeps", small);
    assert_eq!(status, 202, "{body}");

    let drainer = {
        let handle = handle.clone();
        std::thread::spawn(move || handle.drain(Duration::from_secs(60)))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, health) = http(addr, "GET", "/v1/health", "");
        if health.contains("\"draining\":true") {
            assert!(health.contains("\"ready\":false"), "{health}");
            break;
        }
        assert!(Instant::now() < deadline, "daemon never started draining");
        std::thread::sleep(Duration::from_millis(10));
    }

    // While draining: submissions bounce with 503 + Retry-After, and
    // the drain state is visible to scrapes.
    let (status, head, body) = http_full(addr, "POST", "/v1/sweeps", small);
    assert_eq!(status, 503, "{body}");
    assert!(head.contains("Retry-After:"), "{head}");
    assert!(body.contains("draining"), "{body}");
    let (_, metrics_body) = http(addr, "GET", "/metrics", "");
    assert_eq!(metric(&metrics_body, "ovlp_draining"), 1);
    assert_eq!(
        metric(&metrics_body, "ovlp_jobs_rejected_draining_total"),
        1
    );

    // The in-flight job still runs to completion under the drain.
    let summary = wait_summary(addr, "j1");
    assert!(summary.contains("\"cancelled\":false"), "{summary}");
    drainer.join().unwrap();
}

#[test]
fn client_disconnect_cancels_the_job_and_frees_its_slot() {
    // Every point after the first stalls, pinning the timeline: the
    // client vanishes during point 1, the daemon notices on a chunk
    // write well before the grid would finish.
    let (addr, handle) = start_with(ServeConfig {
        max_running: 1,
        chaos: Some("stall=400@1:1;stall=400@2:1;stall=400@3:1".to_string()),
        ..test_config()
    });
    let small =
        r#"{"schema":"ovlp.sweep-job.v1","app":"nas-cg","ranks":4,"jobs":1,"chunks":[1,2,4,8]}"#;
    let (status, body) = http(addr, "POST", "/v1/sweeps", small);
    assert_eq!(status, 202, "{body}");

    // Stream, read one line, hang up mid-job.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /v1/sweeps/j1 HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut one = [0u8; 512];
        let n = std::io::Read::read(&mut stream, &mut one).unwrap();
        assert!(n > 0, "got the response head");
    } // dropped: the daemon's next writes hit a closed socket

    // The job drains quickly (cancelled points short-circuit) and the
    // disconnect is visible in summary and metrics.
    let summary = wait_summary(addr, "j1");
    assert!(summary.contains("\"cancelled\":true"), "{summary}");
    let (_, metrics_body) = http(addr, "GET", "/metrics", "");
    assert!(
        metric(&metrics_body, "ovlp_client_disconnects_total") >= 1,
        "{metrics_body}"
    );
    assert_eq!(metric(&metrics_body, "ovlp_jobs_cancelled_total"), 1);

    // The execution slot is free again: a second job completes even
    // with max_running = 1.
    let (status, body) = http(addr, "POST", "/v1/sweeps", small);
    assert_eq!(status, 202, "{body}");
    // Its first point was stored by job 1 before the cancel, but the
    // stalled/cancelled tail recomputes; just require completion.
    let summary = wait_summary(addr, "j2");
    assert!(summary.contains("\"done\":true"), "{summary}");
    handle.shutdown();
}
