//! Design-choice ablations as tests: the knobs DESIGN.md calls out must
//! actually move the results in the expected direction.

use overlap_sim::apps::synthetic::{Consumption, PatternApp, Production};
use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::core::transform::transform;
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, CollectiveAlgo, Platform};
use overlap_sim::trace::record::SendMode;

/// A workload with ideal (linear) patterns where chunking genuinely
/// pipelines: production and consumption both spread over the phase.
fn linear_app() -> PatternApp {
    PatternApp {
        elems: 4_000,
        iters: 4,
        phase_instr: 2_000_000,
        production: Production::Linear,
        consumption: Consumption::Linear,
    }
}

#[test]
fn more_chunks_help_until_latency_dominates() {
    let run = trace_app(&linear_app(), 4).unwrap();
    let platform = Platform::marenostrum(0);
    let orig = simulate(&run.trace, &platform).unwrap().runtime();
    let runtime_at = |chunks: u32| {
        let t = transform(&run.trace, &run.access, &ChunkPolicy::with_chunks(chunks));
        simulate(&t, &platform).unwrap().runtime()
    };
    let one = runtime_at(1);
    let four = runtime_at(4);
    let sixteen = runtime_at(16);
    // 4 chunks must beat whole-message overlap on linear patterns
    assert!(four < one, "4 chunks {four} vs 1 chunk {one}");
    assert!(four <= orig);
    // at 16 chunks the per-chunk latency begins to bite; it must not
    // be catastrophically worse than 4 (sanity of the latency model)
    assert!(sixteen < orig, "16 chunks should still beat the original");
}

#[test]
fn rendezvous_chunks_model_missing_double_buffering() {
    // late production + early consumption: chunks want to land during
    // the previous interval, which rendezvous (single-buffer) forbids
    let app = PatternApp {
        elems: 4_000,
        iters: 4,
        phase_instr: 2_000_000,
        production: Production::Window { from: 0.5, to: 1.0 },
        consumption: Consumption::Linear,
    };
    let run = trace_app(&app, 4).unwrap();
    let platform = Platform::marenostrum(0);
    let eager = ChunkPolicy::paper_default();
    let rendezvous = ChunkPolicy {
        mode: SendMode::Rendezvous,
        ..ChunkPolicy::paper_default()
    };
    let t_eager = simulate(&transform(&run.trace, &run.access, &eager), &platform)
        .unwrap()
        .runtime();
    let t_rdv = simulate(&transform(&run.trace, &run.access, &rendezvous), &platform)
        .unwrap()
        .runtime();
    assert!(
        t_eager <= t_rdv + 1e-12,
        "double buffering (eager chunks) can only help: eager {t_eager} vs rendezvous {t_rdv}"
    );
}

#[test]
fn binomial_collectives_beat_linear_at_scale() {
    use overlap_sim::instr::{FnApp, RankCtx, ReduceOp};
    let app = FnApp::new("allreduce-chain", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(512);
        for i in 0..4u32 {
            buf.store(0, i as f64);
            ctx.allreduce(ReduceOp::Sum, &mut buf);
            ctx.compute(10_000);
        }
    });
    let run = trace_app(&app, 16).unwrap();
    let base = Platform::marenostrum(0);
    let binomial = simulate(
        &run.trace,
        &Platform {
            collective: CollectiveAlgo::Binomial,
            ..base.clone()
        },
    )
    .unwrap()
    .runtime();
    let linear = simulate(
        &run.trace,
        &Platform {
            collective: CollectiveAlgo::Linear,
            ..base
        },
    )
    .unwrap()
    .runtime();
    assert!(
        binomial < linear,
        "log-depth trees must beat the 15-message star: binomial {binomial} vs linear {linear}"
    );
}

#[test]
fn bus_count_reproduces_contention_calibration() {
    // Table I exists because the bus count changes simulated runtimes;
    // verify the knob bites on a communication-heavy workload
    let app = PatternApp {
        elems: 16_000,
        iters: 3,
        phase_instr: 500_000,
        production: Production::Linear,
        consumption: Consumption::Linear,
    };
    let run = trace_app(&app, 8).unwrap();
    let one = simulate(&run.trace, &Platform::marenostrum(1))
        .unwrap()
        .runtime();
    let many = simulate(&run.trace, &Platform::marenostrum(0))
        .unwrap()
        .runtime();
    assert!(
        one > many * 1.2,
        "1 bus must visibly serialize 8 ranks' traffic: {one} vs {many}"
    );
}

#[test]
fn chunk_count_sweep_is_stable() {
    // every chunk count produces a valid, simulable trace with
    // conserved compute (complements the proptest with larger sizes)
    let run = trace_app(&linear_app(), 4).unwrap();
    let platform = Platform::marenostrum(0);
    for chunks in [1u32, 2, 3, 4, 5, 8, 13, 16, 32, 64] {
        let bundle = build_variants(&run, &ChunkPolicy::with_chunks(chunks));
        let sim = simulate(&bundle.overlapped, &platform)
            .unwrap_or_else(|e| panic!("chunks={chunks}: {e}"));
        assert!(sim.runtime() > 0.0);
    }
}
