//! Golden-file tests for the Paraver export: the `.prv`/`.pcf`/`.row`
//! triple produced from the committed trace fixtures is pinned
//! byte-for-byte, both without metrics (the legacy export) and with the
//! windowed counter records appended. Any formatting or semantic drift
//! in the exporter fails loudly here instead of silently changing what
//! wxParaver displays.
//!
//! Regenerate deliberately with
//! `OVLP_REGEN=1 cargo test --test paraver_golden`.

use overlap_sim::machine::{
    simulate, simulate_probed, Platform, SimResult, Time, Topology, WindowedRecorder,
};
use overlap_sim::trace::{text, Trace};
use overlap_sim::viz::paraver;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn load(trf: &str) -> Trace {
    let body = std::fs::read_to_string(fixture_path(trf)).unwrap();
    text::parse(&body).unwrap()
}

/// Compare `body` against `tests/fixtures/paraver/<name>` (or rewrite
/// it under `OVLP_REGEN=1`).
fn check_golden(name: &str, body: &str) {
    let path = fixture_path("paraver").join(name);
    if std::env::var_os("OVLP_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, body).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}; run OVLP_REGEN=1 to create", path.display()));
    assert_eq!(
        golden, body,
        "{name}: Paraver export drifted from the committed golden; \
         if intentional, regenerate with OVLP_REGEN=1"
    );
}

fn check_export(stem: &str, export: &paraver::ParaverExport) {
    check_golden(&format!("{stem}.prv"), &export.prv);
    check_golden(&format!("{stem}.pcf"), &export.pcf);
    check_golden(&format!("{stem}.row"), &export.row);
}

/// Replay `trf` on `platform` twice — unprobed and probed with a fixed
/// `window` — and pin both export flavours. The probed replay must not
/// perturb the simulation, so the plain export is also asserted
/// identical across the two runs.
fn check_fixture_exports(trf: &str, stem: &str, platform: &Platform, window: Time) {
    let trace = load(trf);
    let plain = simulate(&trace, platform).unwrap();
    let mut rec = WindowedRecorder::new(window);
    let probed: SimResult = simulate_probed(&trace, platform, &mut rec).unwrap();
    let metrics = rec.into_metrics();

    let bare = paraver::export(stem, &plain);
    assert_eq!(
        bare,
        paraver::export(stem, &probed),
        "{stem}: probing changed the simulated execution"
    );
    check_export(stem, &bare);
    check_export(
        &format!("{stem}_counters"),
        &paraver::export_with_metrics(stem, &probed, Some(&metrics)),
    );
}

#[test]
fn sweep3d_4r_torus_export_is_stable() {
    let platform = Platform::marenostrum(4).with_topology(Topology::Torus { dims: vec![2, 2] });
    check_fixture_exports(
        "sweep3d_4r.trf",
        "sweep3d_4r_torus",
        &platform,
        Time::micros(20.0),
    );
}

#[test]
fn nas_cg_8r_fat_tree_export_is_stable() {
    let platform = Platform::marenostrum(8).with_topology(Topology::FatTree {
        radix: 4,
        oversubscription: 1,
    });
    check_fixture_exports(
        "nas_cg_8r.trf",
        "nas_cg_8r_fattree",
        &platform,
        Time::micros(20.0),
    );
}

#[test]
fn counter_records_are_well_formed() {
    let trace = load("nas_cg_8r.trf");
    let platform = Platform::marenostrum(8);
    let mut rec = WindowedRecorder::new(Time::micros(20.0));
    let sim = simulate_probed(&trace, &platform, &mut rec).unwrap();
    let m = rec.into_metrics();
    let e = paraver::export_with_metrics("nas_cg_8r", &sim, Some(&m));
    let mut counters = 0usize;
    for l in e.prv.lines().filter(|l| l.starts_with("2:")) {
        counters += 1;
        let f: Vec<&str> = l.split(':').collect();
        assert!(f.len() >= 8, "{l}");
        // object fields + timestamp, then type:value pairs
        assert_eq!(f.len() % 2, 0, "{l}");
        for v in &f[1..] {
            v.parse::<u64>().unwrap_or_else(|e| panic!("{l}: {e}"));
        }
    }
    assert_eq!(counters, m.windows * (1 + m.ranks.len()));
}
