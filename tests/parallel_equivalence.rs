//! The parallel-engine contract, pinned differentially: for any
//! worker count, `ReplayEngine::Parallel` must produce **byte-identical**
//! output to the sequential oracle — every timestamp, timeline,
//! transfer, counter, windowed metric, and Paraver export, on every
//! topology, with and without fault schedules, on golden fixtures and
//! on randomized generated traces alike. Errors too: a deadlocked or
//! partitioned replay must report the identical diagnosis.
//!
//! Test names carry their worker count (`_w1`/`_w2`/`_w4`/`_w8`) so CI
//! can slice the suite (`cargo test --test parallel_equivalence w8`).
//! Debug builds double the protection: the engine itself re-runs the
//! sequential oracle inside every parallel replay and asserts equality.

use overlap_sim::machine::{
    render_exact, simulate, simulate_probed, simulate_probed_with, simulate_with, Platform,
    ReplayEngine, SimResult, Time, WindowedRecorder,
};
use overlap_sim::trace::{synth, text, Trace};
use overlap_sim::viz::paraver;
use std::path::PathBuf;

fn fixture(name: &str) -> Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).unwrap();
    text::parse(&content).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Every observable of a replay, rendered exactly (float Debug output
/// is round-trip precise, so equal strings mean equal bits).
fn full_render(sim: &SimResult) -> String {
    format!(
        "{:?} {:?} {:?} {:?} {:?} {:?} {:?} {} {} {} {:?}",
        sim.runtime,
        sim.totals,
        sim.timelines,
        sim.comms,
        sim.markers,
        sim.network,
        sim.links,
        sim.events_processed,
        sim.queue_peak,
        sim.stale_events,
        sim.fault_log,
    )
}

/// All four contention models, shaped for `nranks`: the bus model plus
/// the three flow topologies.
fn platforms(nranks: usize) -> Vec<(String, Platform)> {
    let torus = match nranks {
        4 => "torus:2x2",
        8 => "torus:2x2x2",
        n => panic!("no torus shape for {n} ranks"),
    };
    let mut out = vec![("bus".to_string(), Platform::default())];
    for spec in ["crossbar", "fat-tree:4", torus] {
        out.push((
            spec.to_string(),
            Platform::default().with_contention(spec.parse().unwrap()),
        ));
    }
    out
}

fn parallel(workers: usize) -> ReplayEngine {
    ReplayEngine::Parallel { workers }
}

/// Golden fixtures on all four topologies: unprobed results, windowed
/// metrics JSON, and the Paraver export triple must all match byte for
/// byte at the given worker count.
fn check_golden_fixtures(workers: usize) {
    for name in ["sweep3d_4r.trf", "nas_cg_8r.trf"] {
        let trace = fixture(name);
        for (label, platform) in platforms(trace.nranks()) {
            let seq = simulate(&trace, &platform).unwrap();
            let par = simulate_with(&trace, &platform, parallel(workers)).unwrap();
            assert_eq!(
                full_render(&seq),
                full_render(&par),
                "{name} on {label}: parallel:{workers} diverged from sequential"
            );

            let window = Time::micros(20.0);
            let mut seq_rec = WindowedRecorder::new(window);
            let seq_probed = simulate_probed(&trace, &platform, &mut seq_rec).unwrap();
            let mut par_rec = WindowedRecorder::new(window);
            let par_probed =
                simulate_probed_with(&trace, &platform, &mut par_rec, parallel(workers)).unwrap();
            assert_eq!(
                full_render(&seq_probed),
                full_render(&par_probed),
                "{name} on {label}: probed parallel:{workers} diverged"
            );
            assert_eq!(
                seq_rec.into_metrics().to_json(),
                par_rec.into_metrics().to_json(),
                "{name} on {label}: metrics JSON diverged at parallel:{workers}"
            );
            let seq_prv = paraver::export(name, &seq);
            let par_prv = paraver::export(name, &par);
            assert_eq!(
                (seq_prv.prv, seq_prv.pcf, seq_prv.row),
                (par_prv.prv, par_prv.pcf, par_prv.row),
                "{name} on {label}: Paraver export diverged at parallel:{workers}"
            );
        }
    }
}

/// 64 generated traces, rotated across the four contention models;
/// every even seed on a flow topology is additionally replayed under a
/// degrade/restore fault schedule derived from its own clean run (so
/// the faults always name real links and strike mid-run).
fn check_generated(workers: usize) {
    for seed in 0..64u64 {
        let trace = synth::generate(seed);
        let plats = platforms(trace.nranks());
        let (label, platform) = &plats[(seed as usize) % plats.len()];
        let clean = simulate(&trace, platform);
        assert_eq!(
            render_exact(&clean),
            render_exact(&simulate_with(&trace, platform, parallel(workers))),
            "seed {seed} on {label}: parallel:{workers} diverged"
        );
        let faultable = match &clean {
            Ok(sim) => !sim.links.is_empty() && sim.runtime() > 0.0 && seed % 2 == 0,
            Err(_) => false,
        };
        if faultable {
            let sim = clean.as_ref().unwrap();
            let link = &sim.links[(seed as usize / 4) % sim.links.len()].label;
            let t0 = (sim.runtime() * 0.25 * 1e6).max(1.0) as u64;
            let t1 = (sim.runtime() * 0.6 * 1e6).max(2.0) as u64;
            let spec = format!("degrade=0.5@{t0}us:{link};restore@{t1}us:{link}");
            let faulted = platform.clone().with_faults(spec.parse().unwrap());
            assert_eq!(
                render_exact(&simulate(&trace, &faulted)),
                render_exact(&simulate_with(&trace, &faulted, parallel(workers))),
                "seed {seed} on {label} with {spec}: parallel:{workers} diverged"
            );
        }
    }
}

#[test]
fn golden_fixtures_match_w1() {
    check_golden_fixtures(1);
}

#[test]
fn golden_fixtures_match_w2() {
    check_golden_fixtures(2);
}

#[test]
fn golden_fixtures_match_w4() {
    check_golden_fixtures(4);
}

#[test]
fn golden_fixtures_match_w8() {
    check_golden_fixtures(8);
}

#[test]
fn generated_traces_match_w1() {
    check_generated(1);
}

#[test]
fn generated_traces_match_w2() {
    check_generated(2);
}

#[test]
fn generated_traces_match_w4() {
    check_generated(4);
}

#[test]
fn generated_traces_match_w8() {
    check_generated(8);
}

/// Error paths are part of the contract: a deadlock (receive with no
/// sender) and an unknown request must produce the identical error from
/// both engines, including the human-readable stuck-rank diagnosis.
#[test]
fn error_paths_match_w2() {
    use overlap_sim::trace::{Bytes, Rank, Record, ReqId, Tag, TransferId};
    let platform = Platform::default();

    let mut deadlock = Trace::new(2);
    deadlock.rank_mut(Rank(0)).push(Record::Recv {
        src: Rank(1),
        tag: Tag::user(3),
        bytes: Bytes(4096),
        transfer: TransferId::new(Rank(0), 0),
    });
    let seq = simulate(&deadlock, &platform);
    assert!(seq.is_err(), "fixture must deadlock");
    assert_eq!(
        render_exact(&seq),
        render_exact(&simulate_with(&deadlock, &platform, parallel(2))),
    );

    let mut unknown = Trace::new(1);
    unknown
        .rank_mut(Rank(0))
        .push(Record::Wait { req: ReqId(77) });
    let seq = simulate(&unknown, &platform);
    assert!(seq.is_err(), "fixture must fail on the unknown request");
    assert_eq!(
        render_exact(&seq),
        render_exact(&simulate_with(&unknown, &platform, parallel(2))),
    );
}

/// Scheduling invariance: the same replay, run twice at the same
/// worker count and across different worker counts, renders to the
/// same bytes. (OS scheduling noise between the two runs is exactly
/// what this must be immune to.)
#[test]
fn repeat_runs_and_worker_counts_agree_w8() {
    for seed in [3u64, 17, 40] {
        let trace = synth::generate(seed);
        let plats = platforms(trace.nranks());
        let (label, platform) = &plats[(seed as usize) % plats.len()];
        let first = render_exact(&simulate_with(&trace, platform, parallel(8)));
        let again = render_exact(&simulate_with(&trace, platform, parallel(8)));
        assert_eq!(first, again, "seed {seed} on {label}: repeat run diverged");
        for workers in [1, 2, 4] {
            assert_eq!(
                first,
                render_exact(&simulate_with(&trace, platform, parallel(workers))),
                "seed {seed} on {label}: worker count changed the bytes"
            );
        }
    }
}
