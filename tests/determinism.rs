//! Whole-pipeline determinism: host thread scheduling must never leak
//! into traces, transformations or simulations.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, Platform};
use overlap_sim::trace::text;

#[test]
fn tracing_is_deterministic_across_runs() {
    let app = overlap_sim::apps::pop::PopApp::quick();
    let a = trace_app(&app, 6).unwrap();
    let b = trace_app(&app, 6).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.access, b.access);
}

#[test]
fn transform_and_simulation_are_deterministic() {
    let app = overlap_sim::apps::nas_cg::NasCgApp::quick();
    let platform = Platform::marenostrum(6);
    let policy = ChunkPolicy::paper_default();
    let mut emitted: Vec<(String, String, String)> = Vec::new();
    let mut runtimes: Vec<(u64, u64, u64)> = Vec::new();
    for _ in 0..3 {
        let run = trace_app(&app, 4).unwrap();
        let b = build_variants(&run, &policy);
        emitted.push((
            text::emit(&b.original),
            text::emit(&b.overlapped),
            text::emit(&b.ideal),
        ));
        runtimes.push((
            simulate(&b.original, &platform).unwrap().runtime().to_bits(),
            simulate(&b.overlapped, &platform).unwrap().runtime().to_bits(),
            simulate(&b.ideal, &platform).unwrap().runtime().to_bits(),
        ));
    }
    assert_eq!(emitted[0], emitted[1]);
    assert_eq!(emitted[1], emitted[2]);
    // bit-exact runtimes, not just approximately equal
    assert_eq!(runtimes[0], runtimes[1]);
    assert_eq!(runtimes[1], runtimes[2]);
}

#[test]
fn simulation_events_are_deterministic() {
    let app = overlap_sim::apps::sweep3d::Sweep3dApp::quick();
    let run = trace_app(&app, 4).unwrap();
    let p = Platform::marenostrum(2); // force contention
    let a = simulate(&run.trace, &p).unwrap();
    let b = simulate(&run.trace, &p).unwrap();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.timelines, b.timelines);
    assert_eq!(a.comms.len(), b.comms.len());
    for (x, y) in a.comms.iter().zip(b.comms.iter()) {
        assert_eq!(x, y);
    }
}
