//! Whole-pipeline determinism: host thread scheduling must never leak
//! into traces, transformations or simulations.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::core::sweep::{sweep, SweepApp, SweepCache, SweepConfig, SweepGrid};
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, Platform};
use overlap_sim::trace::text;

#[test]
fn tracing_is_deterministic_across_runs() {
    let app = overlap_sim::apps::pop::PopApp::quick();
    let a = trace_app(&app, 6).unwrap();
    let b = trace_app(&app, 6).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.access, b.access);
}

#[test]
fn transform_and_simulation_are_deterministic() {
    let app = overlap_sim::apps::nas_cg::NasCgApp::quick();
    let platform = Platform::marenostrum(6);
    let policy = ChunkPolicy::paper_default();
    let mut emitted: Vec<(String, String, String)> = Vec::new();
    let mut runtimes: Vec<(u64, u64, u64)> = Vec::new();
    for _ in 0..3 {
        let run = trace_app(&app, 4).unwrap();
        let b = build_variants(&run, &policy);
        emitted.push((
            text::emit(&b.original),
            text::emit(&b.overlapped),
            text::emit(&b.ideal),
        ));
        runtimes.push((
            simulate(&b.original, &platform)
                .unwrap()
                .runtime()
                .to_bits(),
            simulate(&b.overlapped, &platform)
                .unwrap()
                .runtime()
                .to_bits(),
            simulate(&b.ideal, &platform).unwrap().runtime().to_bits(),
        ));
    }
    assert_eq!(emitted[0], emitted[1]);
    assert_eq!(emitted[1], emitted[2]);
    // bit-exact runtimes, not just approximately equal
    assert_eq!(runtimes[0], runtimes[1]);
    assert_eq!(runtimes[1], runtimes[2]);
}

/// A 64-point sweep grid: 1 app x (4 bandwidths x 4 bus counts) x 4
/// chunk policies. Big enough that parallel scheduling genuinely
/// interleaves, small enough to run in a test.
fn grid_64() -> SweepGrid {
    let app = overlap_sim::apps::synthetic::PatternApp {
        elems: 600,
        iters: 4,
        phase_instr: 200_000,
        ..overlap_sim::apps::synthetic::PatternApp::quick()
    };
    let run = trace_app(&app, 4).unwrap();
    let mut platforms = Vec::new();
    for bw in [25.0, 100.0, 250.0, 1000.0] {
        for buses in [0u32, 1, 4, 16] {
            platforms.push(Platform::marenostrum(buses).with_bandwidth(bw));
        }
    }
    SweepGrid {
        apps: vec![SweepApp::new("pattern", run)],
        platforms,
        policies: [1u32, 2, 4, 8]
            .into_iter()
            .map(ChunkPolicy::with_chunks)
            .collect(),
    }
}

#[test]
fn sweep_is_bit_identical_for_any_worker_count() {
    let grid = grid_64();
    assert_eq!(grid.len(), 64);

    let run_with = |jobs: usize| {
        let cache = SweepCache::new(); // fresh cache: every point simulated
        let t0 = std::time::Instant::now();
        let report = sweep(&grid, &SweepConfig::with_jobs(jobs), &cache);
        let wall = t0.elapsed();
        assert_eq!(report.ok_count(), 64, "jobs={jobs}");
        assert_eq!(report.err_count(), 0, "jobs={jobs}");
        (report, wall)
    };
    let (serial, t_serial) = run_with(1);
    let (parallel, t_parallel) = run_with(4);

    // bit-identical per-point results and identical report output,
    // regardless of how the points were scheduled across workers
    assert_eq!(serial.result_hashes(), parallel.result_hashes());
    assert_eq!(serial.grid_hash(), parallel.grid_hash());
    assert_eq!(serial.render(&grid), parallel.render(&grid));

    // wall-clock: with >= 4 cores, 4 workers must be at least 2x faster.
    // On smaller machines the determinism assertions above still ran;
    // only the timing claim is meaningless, so it is skipped.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 {
        let speedup = t_serial.as_secs_f64() / t_parallel.as_secs_f64();
        assert!(
            speedup >= 2.0,
            "jobs=4 must be >= 2x faster than jobs=1 on {cores} cores: \
             {t_serial:?} serial vs {t_parallel:?} parallel ({speedup:.2}x)"
        );
    } else {
        eprintln!("note: {cores} core(s) available, skipping the >=2x wall-clock assertion");
    }
}

#[test]
fn sweep_cache_replay_matches_fresh_run() {
    let grid = grid_64();
    let cache = SweepCache::new();
    let fresh = sweep(&grid, &SweepConfig::with_jobs(2), &cache);
    let (h0, m0) = cache.stats();
    assert_eq!((h0, m0), (0, 64), "first run simulates everything");

    // second run over the same grid: everything replayed from cache,
    // with the exact same report
    let replay = sweep(&grid, &SweepConfig::with_jobs(4), &cache);
    let (h1, m1) = cache.stats();
    assert_eq!((h1 - h0, m1 - m0), (64, 0), "second run is all cache hits");
    assert_eq!(fresh.result_hashes(), replay.result_hashes());
    assert_eq!(fresh.render(&grid), replay.render(&grid));
}

#[test]
fn simulation_events_are_deterministic() {
    let app = overlap_sim::apps::sweep3d::Sweep3dApp::quick();
    let run = trace_app(&app, 4).unwrap();
    let p = Platform::marenostrum(2); // force contention
    let a = simulate(&run.trace, &p).unwrap();
    let b = simulate(&run.trace, &p).unwrap();
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.timelines, b.timelines);
    assert_eq!(a.comms.len(), b.comms.len());
    for (x, y) in a.comms.iter().zip(b.comms.iter()) {
        assert_eq!(x, y);
    }
}
