//! Trace text-format round trips across the full pipeline: anything the
//! framework produces must survive serialization and replay
//! identically — the property that makes traces real artifacts (files
//! on disk, as in the Dimemas toolchain) rather than in-memory objects.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, Platform};
use overlap_sim::trace::text;

#[test]
fn all_variants_roundtrip_and_replay_identically() {
    let app = overlap_sim::apps::specfem3d::Specfem3dApp::quick();
    let run = trace_app(&app, 4).unwrap();
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    let platform = Platform::marenostrum(8);
    for (name, t) in [
        ("original", &bundle.original),
        ("overlapped", &bundle.overlapped),
        ("ideal", &bundle.ideal),
    ] {
        let emitted = text::emit(t);
        let parsed = text::parse(&emitted).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(*t, parsed, "{name}: structural roundtrip");
        let direct = simulate(t, &platform).unwrap();
        let reparsed = simulate(&parsed, &platform).unwrap();
        assert_eq!(
            direct.runtime().to_bits(),
            reparsed.runtime().to_bits(),
            "{name}: replay differs after roundtrip"
        );
        // emitting twice is stable
        assert_eq!(emitted, text::emit(&parsed));
    }
}

#[test]
fn roundtrip_through_the_filesystem() {
    let app = overlap_sim::apps::nas_bt::NasBtApp::quick();
    let run = trace_app(&app, 4).unwrap();
    let dir = std::env::temp_dir().join("ovlp-roundtrip-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bt.trf");
    std::fs::write(&path, text::emit(&run.trace)).unwrap();
    let content = std::fs::read_to_string(&path).unwrap();
    let parsed = text::parse(&content).unwrap();
    assert_eq!(run.trace, parsed);
    std::fs::remove_file(&path).ok();
}
