//! The offline toolchain: artifacts written to disk (trace + access
//! log) must drive the transformation to the identical result as the
//! in-memory pipeline — the property that makes the framework usable
//! the way the Dimemas toolchain is (files between stages).

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::transform;
use overlap_sim::instr::trace_app;
use overlap_sim::trace::{access_text, text};

#[test]
fn offline_transform_matches_in_memory() {
    let app = overlap_sim::apps::nas_cg::NasCgApp::quick();
    let run = trace_app(&app, 4).unwrap();

    // in-memory
    let policy = ChunkPolicy::paper_default();
    let direct = transform(&run.trace, &run.access, &policy);

    // through serialized artifacts
    let trace_file = text::emit(&run.trace);
    let acc_file = access_text::emit(&run.access);
    let trace_back = text::parse(&trace_file).unwrap();
    let acc_back = access_text::parse(&acc_file).unwrap();
    let offline = transform(&trace_back, &acc_back, &policy);

    assert_eq!(direct, offline);
}

#[test]
fn access_log_roundtrips_for_every_pool_app() {
    use overlap_sim::instr::MpiApp;
    let apps: Vec<Box<dyn MpiApp>> = vec![
        Box::new(overlap_sim::apps::sweep3d::Sweep3dApp::quick()),
        Box::new(overlap_sim::apps::pop::PopApp::quick()),
        Box::new(overlap_sim::apps::alya::AlyaApp::quick()),
        Box::new(overlap_sim::apps::specfem3d::Specfem3dApp::quick()),
        Box::new(overlap_sim::apps::nas_bt::NasBtApp::quick()),
        Box::new(overlap_sim::apps::nas_cg::NasCgApp::quick()),
    ];
    for app in apps {
        let run = trace_app(app.as_ref(), 4).unwrap();
        let back = access_text::parse(&access_text::emit(&run.access))
            .unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        assert_eq!(run.access, back, "{}", app.name());
    }
}
