//! The probe layer must observe without perturbing: a replay with a
//! `WindowedRecorder` attached produces bit-identical simulation
//! results to one with the `NoopSink`, the recorded metrics themselves
//! are deterministic, and probed sweep points hash identically to
//! unprobed ones for any worker count.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::sweep::{sweep, SweepApp, SweepCache, SweepConfig, SweepGrid};
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{
    simulate, simulate_probed, Metrics, NoopSink, Platform, SimResult, Time, Topology,
    WindowedRecorder,
};
use overlap_sim::trace::{text, Trace};
use std::path::PathBuf;

fn load_fixture(name: &str) -> Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    text::parse(&std::fs::read_to_string(path).unwrap()).unwrap()
}

/// Every f64 the simulation reports, as bits: approximate equality is
/// not good enough here.
fn result_bits(sim: &SimResult) -> Vec<u64> {
    let mut bits = vec![sim.runtime().to_bits()];
    for c in &sim.comms {
        for t in [c.t_send, c.t_start, c.t_arrive, c.t_consume] {
            bits.push(t.as_secs().to_bits());
        }
    }
    bits
}

fn probed(trace: &Trace, platform: &Platform, window: Time) -> (SimResult, Metrics) {
    let mut rec = WindowedRecorder::new(window);
    let sim = simulate_probed(trace, platform, &mut rec).unwrap();
    (sim, rec.into_metrics())
}

#[test]
fn windowed_recorder_does_not_perturb_the_replay() {
    let cases: [(&str, Platform); 4] = [
        ("sweep3d_4r.trf", Platform::marenostrum(4)),
        (
            "sweep3d_4r.trf",
            Platform::marenostrum(4).with_topology(Topology::Torus { dims: vec![2, 2] }),
        ),
        ("nas_cg_8r.trf", Platform::marenostrum(8)),
        (
            "nas_cg_8r.trf",
            Platform::marenostrum(8).with_topology(Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            }),
        ),
    ];
    for (name, platform) in &cases {
        let trace = load_fixture(name);
        let mut noop = NoopSink;
        let plain = simulate_probed(&trace, platform, &mut noop).unwrap();
        let (recorded, _) = probed(&trace, platform, Time::micros(7.0));
        assert_eq!(
            result_bits(&plain),
            result_bits(&recorded),
            "{name}: recording probes changed the simulation"
        );
        // ...and the NoopSink path is the plain `simulate` path
        assert_eq!(
            result_bits(&plain),
            result_bits(&simulate(&trace, platform).unwrap()),
            "{name}: NoopSink diverged from simulate()"
        );
    }
}

#[test]
fn recorded_metrics_are_deterministic() {
    let trace = load_fixture("nas_cg_8r.trf");
    let platform = Platform::marenostrum(8).with_topology(Topology::FatTree {
        radix: 4,
        oversubscription: 1,
    });
    let (_, a) = probed(&trace, &platform, Time::micros(20.0));
    let (_, b) = probed(&trace, &platform, Time::micros(20.0));
    assert_eq!(a, b, "same replay, same windows, different metrics");
    assert!(a.windows > 1, "degenerate window count");
    assert!(!a.links.is_empty(), "flow topology should expose links");
}

fn small_grid() -> SweepGrid {
    let app = overlap_sim::apps::synthetic::PatternApp::quick();
    let run = trace_app(&app, 4).unwrap();
    SweepGrid {
        apps: vec![SweepApp::new("pattern", run)],
        platforms: vec![
            Platform::marenostrum(4),
            Platform::marenostrum(4).with_bandwidth(50.0),
        ],
        policies: [1u32, 4]
            .into_iter()
            .map(ChunkPolicy::with_chunks)
            .collect(),
    }
}

#[test]
fn probed_sweep_points_hash_identically_to_unprobed_ones() {
    let grid = small_grid();
    let unprobed = sweep(&grid, &SweepConfig::with_jobs(2), &SweepCache::new());
    let mut config = SweepConfig::with_jobs(2);
    config.probe_window_us = Some(50.0);
    let probed = sweep(&grid, &config, &SweepCache::new());
    // metrics are excluded from the replay fingerprint by construction
    assert_eq!(unprobed.result_hashes(), probed.result_hashes());
    for outcome in &unprobed.outcomes {
        assert!(outcome.as_ref().unwrap().metrics.is_none());
    }
    for outcome in &probed.outcomes {
        let m = outcome.as_ref().unwrap().metrics.as_ref().unwrap();
        assert!(m.original.windows >= 1);
    }
}

#[test]
fn sweep_metrics_are_identical_for_any_worker_count() {
    let grid = small_grid();
    let run_with = |jobs: usize| {
        let mut config = SweepConfig::with_jobs(jobs);
        config.probe_window_us = Some(50.0);
        sweep(&grid, &config, &SweepCache::new())
    };
    let base = run_with(1);
    for jobs in [2, 4] {
        let r = run_with(jobs);
        assert_eq!(r.result_hashes(), base.result_hashes(), "jobs={jobs}");
        for (a, b) in base.outcomes.iter().zip(&r.outcomes) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.metrics, b.metrics, "jobs={jobs}: metrics diverged");
        }
    }
}
