//! The full overlap analysis on extended platforms: multi-core nodes,
//! the machine/WAN hierarchy, eager thresholds and heterogeneous CPUs
//! must compose with tracing, transformation and the experiments.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, Platform};

fn cg_bundle() -> (overlap_sim::core::pipeline::VariantBundle, usize) {
    let app = overlap_sim::apps::nas_cg::NasCgApp::default();
    let ranks = 8;
    let run = trace_app(&app, ranks).unwrap();
    (build_variants(&run, &ChunkPolicy::paper_default()), ranks)
}

#[test]
fn overlap_still_wins_on_multicore_nodes() {
    let (bundle, _) = cg_bundle();
    // 4 ranks per node: the XOR partner of every rank is on-node, so
    // the exchanges ride the fast intra path; the scalar reductions
    // still cross nodes
    let p = Platform::marenostrum(6).with_nodes(4, 2000.0, 0.5);
    let orig = simulate(&bundle.original, &p).unwrap();
    let ovl = simulate(&bundle.overlapped, &p).unwrap();
    assert!(ovl.runtime() <= orig.runtime() * 1.0001);
    // and the multicore original beats the single-core original
    let single = simulate(&bundle.original, &Platform::marenostrum(6)).unwrap();
    assert!(orig.runtime() < single.runtime());
    assert!(orig.network.intra_node > 0);
}

#[test]
fn overlap_matters_more_across_the_wan() {
    let (bundle, _) = cg_bundle();
    // two machines of 4 ranks; partner exchanges stay local but the
    // reductions cross the slow WAN
    let lan = Platform::marenostrum(6);
    let wan = lan
        .with_nodes(1, 2000.0, 0.5)
        .with_machines(4, 25.0, 100.0, 0);
    let orig_lan = simulate(&bundle.original, &lan).unwrap();
    let orig_wan = simulate(&bundle.original, &wan).unwrap();
    // the WAN hurts
    assert!(orig_wan.runtime() > orig_lan.runtime());
    assert!(orig_wan.network.inter_machine > 0);
    // and the overlapped execution still never loses
    let ovl_wan = simulate(&bundle.overlapped, &wan).unwrap();
    assert!(ovl_wan.runtime() <= orig_wan.runtime() * 1.0001);
}

#[test]
fn eager_threshold_exposes_buffering_dependence() {
    // CG's prologue sends before it receives — legal only because MPI
    // buffers eagerly. Forcing large messages to rendezvous makes the
    // ORIGINAL trace deadlock (which the engine detects rather than
    // hangs on), while the OVERLAPPED trace survives: the
    // transformation replaced every blocking send with non-blocking
    // chunk sends, removing the dependence on eager buffering.
    let (bundle, _) = cg_bundle();
    let p = Platform {
        eager_threshold_bytes: Some(4096),
        ..Platform::marenostrum(6)
    };
    let orig = simulate(&bundle.original, &p);
    assert!(
        matches!(orig, Err(overlap_sim::machine::SimError::Deadlock { .. })),
        "the legacy code depends on eager buffering: {orig:?}"
    );
    let ovl = simulate(&bundle.overlapped, &p).unwrap();
    assert!(ovl.runtime() > 0.0);
}

#[test]
fn heterogeneous_cpus_shift_the_critical_path() {
    let (bundle, ranks) = cg_bundle();
    let mut ratios = vec![1.0; ranks];
    ratios[3] = 0.5; // one straggler at half speed
    let p = Platform {
        cpu_ratios: ratios,
        ..Platform::marenostrum(6)
    };
    let uniform = simulate(&bundle.original, &Platform::marenostrum(6)).unwrap();
    let skewed = simulate(&bundle.original, &p).unwrap();
    assert!(
        skewed.runtime() > uniform.runtime() * 1.5,
        "straggler dominates"
    );
    // overlap cannot fix a compute straggler
    let ovl = simulate(&bundle.overlapped, &p).unwrap();
    let floor = p.compute_time_for(3, bundle.original.ranks[3].total_compute());
    assert!(ovl.runtime() >= floor.as_secs());
}
