//! Robustness tests for the persistent content-addressed result store:
//! corruption (truncation, bit flips) is detected and healed, racing
//! writers converge on one valid entry, and the store is shared
//! bit-exactly between the `ovlp` CLI process and in-process callers.

use overlap_sim::core::sweep::store::{DiskStore, StoredPoint};
use overlap_sim::core::sweep::{sweep, PointKey, SweepCache, SweepConfig, SweepGrid};
use overlap_sim::serve::SweepSpec;
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ovlp-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The same 4-point grid `ovlp sweep nas-cg 4 --chunks 1,4 --bw
/// 100,250` evaluates, built through the shared spec so the point
/// keys are guaranteed to match the CLI's.
fn small_grid() -> SweepGrid {
    let mut spec = SweepSpec::new("nas-cg", 4);
    spec.chunks = vec![1, 4];
    spec.bandwidths = vec![100.0, 250.0];
    spec.build().unwrap().0
}

#[test]
fn truncated_entries_are_detected_recomputed_and_replaced() {
    let dir = temp_dir("truncate");
    let grid = small_grid();
    let cold = SweepCache::persistent(&dir).unwrap();
    let first = sweep(&grid, &SweepConfig::with_jobs(2), &cold);
    assert_eq!(first.err_count(), 0);

    // Truncate every stored entry at a different length.
    let disk = cold.disk().unwrap();
    for (i, outcome) in first.outcomes.iter().enumerate() {
        let path = disk.entry_path(outcome.as_ref().unwrap().key);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..i * bytes.len() / 8]).unwrap();
    }

    let reopened = SweepCache::persistent(&dir).unwrap();
    let second = sweep(&grid, &SweepConfig::with_jobs(2), &reopened);
    assert_eq!(second.result_hashes(), first.result_hashes());
    assert_eq!(second.render(&grid), first.render(&grid));
    let stats = reopened.disk().unwrap().stats();
    assert_eq!(
        stats.corrupt,
        grid.len() as u64,
        "every truncation detected"
    );
    assert_eq!(second.cache_misses, grid.len() as u64, "all points re-ran");

    // The recomputed entries replaced the truncated files: a third
    // open serves everything from disk again.
    let healed = SweepCache::persistent(&dir).unwrap();
    let third = sweep(&grid, &SweepConfig::with_jobs(2), &healed);
    assert_eq!(third.cache_hits, grid.len() as u64);
    assert_eq!(third.result_hashes(), first.result_hashes());
    assert_eq!(healed.disk().unwrap().stats().corrupt, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flips_anywhere_in_an_entry_are_detected() {
    let dir = temp_dir("bitflip");
    let grid = small_grid();
    let cache = SweepCache::persistent(&dir).unwrap();
    let first = sweep(&grid, &SweepConfig::with_jobs(1), &cache);
    let key = first.outcomes[1].as_ref().unwrap().key;
    let path = cache.disk().unwrap().entry_path(key);
    let pristine = std::fs::read(&path).unwrap();

    // Flip a single bit at every offset in turn; the store must never
    // serve the damaged entry (it recomputes and heals instead).
    for offset in (0..pristine.len()).step_by(7) {
        let mut bytes = pristine.clone();
        bytes[offset] ^= 0x04;
        std::fs::write(&path, &bytes).unwrap();
        let reopened = SweepCache::persistent(&dir).unwrap();
        let again = sweep(&grid, &SweepConfig::with_jobs(1), &reopened);
        assert_eq!(
            again.result_hashes(),
            first.result_hashes(),
            "flip at byte {offset} must not leak into results"
        );
        let stats = reopened.disk().unwrap().stats();
        assert_eq!(stats.corrupt, 1, "flip at byte {offset} undetected");
        assert_eq!(again.cache_misses, 1);
        // healed: the rewritten entry matches the pristine bytes
        assert_eq!(std::fs::read(&path).unwrap(), pristine);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn racing_writers_on_one_key_leave_exactly_one_valid_entry() {
    let dir = temp_dir("race");
    let key = PointKey(0xfeed_beef_dead_cafe);
    let value = StoredPoint {
        t_original: 3.5,
        t_overlapped: 2.25,
        t_ideal: 2.0,
    };
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let dir = dir.clone();
            std::thread::spawn(move || {
                // Each thread opens its own store handle, as separate
                // processes would.
                let store = DiskStore::open(&dir).unwrap();
                for _ in 0..32 {
                    store.put(key, &value).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let store = DiskStore::open(&dir).unwrap();
    assert_eq!(store.get(key), Some(value), "the entry decodes cleanly");
    assert_eq!(store.entries(), 1, "exactly one entry on disk");
    // No temp files were leaked by the 256 racing atomic writes.
    let leftovers: Vec<_> = walk(&dir)
        .into_iter()
        .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
        .collect();
    assert!(leftovers.is_empty(), "leaked temp files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

fn walk(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}

#[test]
fn store_is_shared_between_cli_and_in_process_callers() {
    let dir = temp_dir("shared");

    // Warm the store from the CLI binary (a separate process).
    let out = Command::new(env!("CARGO_BIN_EXE_ovlp"))
        .args(["sweep", "nas-cg", "4", "--chunks", "1,4", "--bw", "100,250"])
        .arg("--store")
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("4 misses"), "cold store summary: {stderr}");

    // Resweep from the CLI: everything is served from the store.
    let again = Command::new(env!("CARGO_BIN_EXE_ovlp"))
        .args(["sweep", "nas-cg", "4", "--chunks", "1,4", "--bw", "100,250"])
        .arg("--store")
        .arg(&dir)
        .output()
        .unwrap();
    assert!(again.status.success());
    let stderr = String::from_utf8(again.stderr).unwrap();
    assert!(
        stderr.contains("0 simulated, 4 from cache") && stderr.contains("4 hits, 0 misses"),
        "warm store summary: {stderr}"
    );
    assert_eq!(out.stdout, again.stdout, "sweep output changed across runs");

    // And the same grid, swept in-process against the same directory,
    // is served from disk bit-identically.
    let grid = small_grid();
    let cache = SweepCache::persistent(&dir).unwrap();
    let report = sweep(&grid, &SweepConfig::with_jobs(1), &cache);
    assert_eq!(report.cache_hits, grid.len() as u64);
    assert_eq!(report.cache_misses, 0);
    let rendered = report.render(&grid);
    let cli_stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        cli_stdout.starts_with(&rendered),
        "CLI table and in-process render disagree"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
