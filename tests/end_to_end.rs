//! End-to-end pipeline tests over the whole application pool: trace →
//! validate → transform → validate → simulate → invariants.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::core::presets::marenostrum_for;
use overlap_sim::instr::{trace_app, MpiApp};
use overlap_sim::machine::simulate;
use overlap_sim::trace::validate;

fn quick_pool() -> Vec<(&'static str, Box<dyn MpiApp>)> {
    vec![
        (
            "sweep3d",
            Box::new(overlap_sim::apps::sweep3d::Sweep3dApp::quick()),
        ),
        ("pop", Box::new(overlap_sim::apps::pop::PopApp::quick())),
        ("alya", Box::new(overlap_sim::apps::alya::AlyaApp::quick())),
        (
            "specfem3d",
            Box::new(overlap_sim::apps::specfem3d::Specfem3dApp::quick()),
        ),
        (
            "nas-bt",
            Box::new(overlap_sim::apps::nas_bt::NasBtApp::quick()),
        ),
        (
            "nas-cg",
            Box::new(overlap_sim::apps::nas_cg::NasCgApp::quick()),
        ),
    ]
}

#[test]
fn full_pipeline_for_every_app() {
    for (name, app) in quick_pool() {
        let ranks = 4;
        let run = trace_app(app.as_ref(), ranks).unwrap_or_else(|e| panic!("{name}: {e}"));
        let errs = validate(&run.trace);
        assert!(errs.is_empty(), "{name}: original invalid: {errs:?}");

        let bundle = build_variants(&run, &ChunkPolicy::paper_default());
        for (variant, t) in [("overlapped", &bundle.overlapped), ("ideal", &bundle.ideal)] {
            let errs = validate(t);
            assert!(errs.is_empty(), "{name}/{variant} invalid: {errs:?}");
            // compute preserved rank by rank
            for r in 0..ranks {
                assert_eq!(
                    t.ranks[r].total_compute(),
                    run.trace.ranks[r].total_compute(),
                    "{name}/{variant}: rank {r} compute changed"
                );
            }
        }

        let platform = marenostrum_for(name);
        let orig = simulate(&bundle.original, &platform)
            .unwrap_or_else(|e| panic!("{name}/original: {e}"));
        let ovl = simulate(&bundle.overlapped, &platform)
            .unwrap_or_else(|e| panic!("{name}/overlapped: {e}"));
        let ideal =
            simulate(&bundle.ideal, &platform).unwrap_or_else(|e| panic!("{name}/ideal: {e}"));

        // On miniature configs per-chunk latency can legitimately beat
        // the tiny overlap windows, so only sanity-bound the ratio here
        // (the paper-scale speedup claim is covered by
        // `paper_speedup_invariant_at_experiment_scale`).
        assert!(
            ovl.runtime() <= orig.runtime() * 2.0,
            "{name}: overlapped unreasonably slower ({} vs {})",
            ovl.runtime(),
            orig.runtime()
        );
        // nothing can beat the critical compute path
        let floor = platform.compute_time(run.trace.critical_compute());
        for (v, sim) in [("orig", &orig), ("ovl", &ovl), ("ideal", &ideal)] {
            assert!(
                sim.runtime() >= floor.as_secs() - 1e-12,
                "{name}/{v}: runtime below compute floor"
            );
        }
    }
}

/// §V: "overlapping at the level of MPI always achieves speedup in
/// legacy scientific applications" — verified on the experiment-scale
/// configurations (Fig. 6a).
#[test]
fn paper_speedup_invariant_at_experiment_scale() {
    for entry in overlap_sim::apps::paper_pool() {
        let run = entry.trace_run(entry.ranks).unwrap();
        let bundle = build_variants(&run, &ChunkPolicy::paper_default());
        let platform = marenostrum_for(entry.name);
        let orig = simulate(&bundle.original, &platform).unwrap();
        let ovl = simulate(&bundle.overlapped, &platform).unwrap();
        let ideal = simulate(&bundle.ideal, &platform).unwrap();
        assert!(
            ovl.runtime() <= orig.runtime() * 1.0001,
            "{}: overlapped slower at experiment scale ({} vs {})",
            entry.name,
            ovl.runtime(),
            orig.runtime()
        );
        assert!(
            ideal.runtime() <= orig.runtime() * 1.0001,
            "{}: ideal slower at experiment scale",
            entry.name
        );
    }
}

#[test]
fn overlap_reduces_wait_time_for_cg() {
    let app = overlap_sim::apps::nas_cg::NasCgApp::default();
    let run = trace_app(&app, 4).unwrap();
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    let platform = marenostrum_for("nas-cg");
    let orig = simulate(&bundle.original, &platform).unwrap();
    let ovl = simulate(&bundle.overlapped, &platform).unwrap();
    assert!(
        ovl.total_wait() < orig.total_wait() * 0.7,
        "waits should shrink substantially: {} vs {}",
        ovl.total_wait(),
        orig.total_wait()
    );
}

#[test]
fn alya_is_untransformable() {
    // 1-element collectives cannot be chunked: the overlapped trace is
    // record-identical to the original apart from metadata
    let app = overlap_sim::apps::alya::AlyaApp::quick();
    let run = trace_app(&app, 4).unwrap();
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    assert_eq!(bundle.original.ranks, bundle.overlapped.ranks);
    assert_eq!(bundle.original.ranks, bundle.ideal.ranks);
}

#[test]
fn double_buffer_demand_is_measurable() {
    // under eager chunks, early arrivals happen for late-produced
    // messages consumed late (POP-like); the analysis must run clean
    let app = overlap_sim::apps::pop::PopApp::quick();
    let run = trace_app(&app, 4).unwrap();
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    let sim = simulate(&bundle.overlapped, &marenostrum_for("pop")).unwrap();
    let d = overlap_sim::core::double_buffer_demand(&sim);
    assert_eq!(d.total_messages, sim.comms.len());
    assert!(d.fraction() >= 0.0 && d.fraction() <= 1.0);
}

#[test]
fn collectives_timeline_is_labeled() {
    let app = overlap_sim::apps::alya::AlyaApp::quick();
    let run = trace_app(&app, 4).unwrap();
    let sim = simulate(&run.trace, &marenostrum_for("alya")).unwrap();
    let coll_time: f64 = sim.totals.iter().map(|t| t.collective.as_secs()).sum();
    assert!(coll_time > 0.0, "collective waits must be labeled as such");
}

#[test]
fn all_collective_ops_replay_end_to_end() {
    use overlap_sim::instr::{FnApp, RankCtx, ReduceOp};
    use overlap_sim::trace::Rank;
    let app = FnApp::new("all-colls", |ctx: &mut RankCtx| {
        let n = ctx.nranks();
        let me = ctx.rank().get() as f64;
        let mut a = ctx.buffer(8);
        a.store(0, me);
        ctx.allreduce(ReduceOp::Sum, &mut a);
        ctx.bcast(Rank(0), &mut a);
        ctx.reduce(ReduceOp::Max, Rank(2), &mut a);
        let mut part = ctx.buffer(2);
        part.store(0, me);
        let mut whole = ctx.buffer(2 * n);
        ctx.gather(Rank(1), &mut part, &mut whole);
        ctx.allgather(&mut part, &mut whole);
        let mut back = ctx.buffer(2);
        ctx.scatter(Rank(1), &mut whole, &mut back);
        let mut s = ctx.buffer(n);
        for i in 0..n {
            s.store(i, me + i as f64);
        }
        let mut r = ctx.buffer(n);
        ctx.alltoall(&mut s, &mut r);
        ctx.barrier();
        ctx.compute(back.load(0).abs() as u64 % 100 + 10);
    });
    let run = trace_app(&app, 6).unwrap();
    assert!(validate(&run.trace).is_empty());
    // replay through both decomposition algorithms
    for algo in [
        overlap_sim::machine::CollectiveAlgo::Binomial,
        overlap_sim::machine::CollectiveAlgo::Linear,
    ] {
        let p = overlap_sim::machine::Platform {
            collective: algo,
            ..overlap_sim::machine::Platform::marenostrum(4)
        };
        let sim = simulate(&run.trace, &p).unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        assert!(sim.runtime() > 0.0);
        assert!(sim.totals.iter().any(|t| t.collective.as_secs() > 0.0));
    }
}
