//! Property-based tests across the pipeline, driven by the synthetic
//! pattern workload: for arbitrary production/consumption shapes,
//! message sizes and chunk counts, the invariants of the framework must
//! hold.
//!
//! Off by default; run with `cargo test --features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use overlap_sim::apps::synthetic::{Consumption, PatternApp, Production};
use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, Platform};
use overlap_sim::trace::validate;
use proptest::prelude::*;

fn production_strategy() -> impl Strategy<Value = Production> {
    prop_oneof![
        Just(Production::Linear),
        (0.0f64..0.95, 0.0f64..1.0).prop_map(|(a, b)| {
            let from = a;
            let to = (a + 0.01 + b * (1.0 - a - 0.01)).min(1.0);
            Production::Window { from, to }
        }),
        (0.0f64..0.9, 0.05f64..2.0).prop_map(|(start, exp)| Production::Profile { start, exp }),
    ]
}

fn consumption_strategy() -> impl Strategy<Value = Consumption> {
    prop_oneof![
        Just(Consumption::Linear),
        (0.0f64..0.9).prop_map(|indep| Consumption::CopyAfter { indep }),
        (0.0f64..0.9, 0.0f64..1.0).prop_map(|(a, b)| {
            let from = a;
            let to = (a + 0.01 + b * (1.0 - a - 0.01)).min(1.0);
            Consumption::Window { from, to }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case traces + transforms + simulates
        ..ProptestConfig::default()
    })]

    #[test]
    fn pipeline_invariants_hold_for_arbitrary_patterns(
        prod in production_strategy(),
        cons in consumption_strategy(),
        elems in 1usize..400,
        iters in 1u32..4,
        phase in 10_000u64..300_000,
        chunks in 1u32..9,
        buses in 0u32..5,
    ) {
        let app = PatternApp {
            elems,
            iters,
            phase_instr: phase,
            production: prod,
            consumption: cons,
        };
        let run = trace_app(&app, 4).unwrap();
        prop_assert!(validate(&run.trace).is_empty());

        let policy = ChunkPolicy::with_chunks(chunks);
        let bundle = build_variants(&run, &policy);
        for t in [&bundle.overlapped, &bundle.ideal] {
            // structurally valid
            prop_assert!(validate(t).is_empty());
            // per-rank compute preserved
            for r in 0..4 {
                prop_assert_eq!(
                    t.ranks[r].total_compute(),
                    run.trace.ranks[r].total_compute()
                );
            }
        }

        // every variant simulates without deadlock, and nothing beats
        // the compute critical path
        let platform = Platform::marenostrum(buses);
        let floor = platform.compute_time(run.trace.critical_compute()).as_secs();
        for t in [&bundle.original, &bundle.overlapped, &bundle.ideal] {
            let sim = simulate(t, &platform).unwrap();
            prop_assert!(sim.runtime() >= floor - 1e-12);
        }
    }

    #[test]
    fn runtime_monotone_in_bandwidth_and_buses(
        elems in 8usize..300,
        phase in 20_000u64..200_000,
    ) {
        let app = PatternApp {
            elems,
            iters: 3,
            phase_instr: phase,
            production: Production::Linear,
            consumption: Consumption::Linear,
        };
        let run = trace_app(&app, 4).unwrap();
        // bandwidth monotonicity
        let mut last = f64::INFINITY;
        for bw in [5.0, 25.0, 250.0, 2500.0] {
            let r = simulate(&run.trace, &Platform::marenostrum(0).with_bandwidth(bw))
                .unwrap()
                .runtime();
            prop_assert!(r <= last + 1e-12, "bw={bw}: {r} > {last}");
            last = r;
        }
        // bus monotonicity (more buses never hurt)
        let mut last = f64::INFINITY;
        for buses in [1u32, 2, 4, 0] {
            let r = simulate(&run.trace, &Platform::marenostrum(buses))
                .unwrap()
                .runtime();
            prop_assert!(r <= last + 1e-12, "buses={buses}: {r} > {last}");
            last = r;
        }
    }

    #[test]
    fn text_roundtrip_for_arbitrary_transformed_traces(
        elems in 1usize..200,
        chunks in 1u32..9,
    ) {
        let app = PatternApp {
            elems,
            iters: 2,
            phase_instr: 50_000,
            production: Production::Linear,
            consumption: Consumption::Linear,
        };
        let run = trace_app(&app, 2).unwrap();
        let bundle = build_variants(&run, &ChunkPolicy::with_chunks(chunks));
        for t in [&bundle.original, &bundle.overlapped, &bundle.ideal] {
            let parsed = overlap_sim::trace::text::parse(
                &overlap_sim::trace::text::emit(t),
            ).unwrap();
            prop_assert_eq!(t, &parsed);
        }
    }
}
