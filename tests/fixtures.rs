//! Golden trace fixtures: small, committed `.trf` files that pin the
//! tracer output and the text format bit-for-bit. If either changes,
//! these tests fail loudly instead of silently shifting every
//! downstream number.
//!
//! Regenerate deliberately with `OVLP_REGEN=1 cargo test --test fixtures`.

use overlap_sim::instr::trace_app;
use overlap_sim::instr::MpiApp;
use overlap_sim::machine::{simulate, Platform};
use overlap_sim::trace::{text, validate};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Trace `app` at `nranks`, emit it, and compare against the committed
/// fixture (or rewrite the fixture under `OVLP_REGEN=1`).
fn check_fixture(name: &str, app: &dyn MpiApp, nranks: usize) -> String {
    let run = trace_app(app, nranks).unwrap();
    let emitted = text::emit(&run.trace);
    let path = fixture_path(name);
    if std::env::var_os("OVLP_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &emitted).unwrap();
        eprintln!("regenerated {}", path.display());
        return emitted;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}; run OVLP_REGEN=1 to create", path.display()));
    assert_eq!(
        golden, emitted,
        "{name}: tracer output drifted from the committed fixture; \
         if intentional, regenerate with OVLP_REGEN=1"
    );
    emitted
}

/// Parse → re-emit must be byte-identical, and the parsed trace must be
/// structurally equal, valid, and replayable.
fn check_roundtrip(name: &str) {
    let golden = std::fs::read_to_string(fixture_path(name)).unwrap();
    let parsed = text::parse(&golden).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
    assert!(validate(&parsed).is_empty(), "{name}: invalid");
    assert_eq!(
        golden,
        text::emit(&parsed),
        "{name}: emit(parse(fixture)) is not byte-identical"
    );
    let sim = simulate(&parsed, &Platform::marenostrum(8)).unwrap();
    assert!(sim.runtime() > 0.0, "{name}: degenerate replay");
}

#[test]
fn sweep3d_4rank_fixture_is_stable() {
    let app = overlap_sim::apps::sweep3d::Sweep3dApp::quick();
    check_fixture("sweep3d_4r.trf", &app, 4);
}

#[test]
fn nas_cg_8rank_fixture_is_stable() {
    let app = overlap_sim::apps::nas_cg::NasCgApp::quick();
    check_fixture("nas_cg_8r.trf", &app, 8);
}

#[test]
fn sweep3d_fixture_roundtrips_byte_identically() {
    check_roundtrip("sweep3d_4r.trf");
}

#[test]
fn nas_cg_fixture_roundtrips_byte_identically() {
    check_roundtrip("nas_cg_8r.trf");
}
