//! Golden equivalence and determinism for the topology-aware network
//! subsystem, pinned on the committed trace fixtures.
//!
//! The flow-level model must be a strict generalization of the legacy
//! bus model: on a non-blocking crossbar with one rank per node and one
//! port per direction, every flow is alone on its links and the max-min
//! rate equals the full link bandwidth, so replays must agree with the
//! linear bus estimate bit-for-bit — not within a tolerance.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::sweep::{sweep, SweepApp, SweepCache, SweepConfig, SweepGrid};
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, Platform, SimResult, Topology};
use overlap_sim::trace::text;
use std::path::PathBuf;

fn fixture(name: &str) -> overlap_sim::trace::Trace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let content = std::fs::read_to_string(&path).unwrap();
    text::parse(&content).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// Everything observable about a replay's timing, rendered exactly
/// (float Debug output is round-trip precise).
fn timing(sim: &SimResult) -> String {
    format!(
        "{:?} {:?} {:?} {:?}",
        sim.runtime, sim.totals, sim.timelines, sim.markers
    )
}

/// Transfers as an order-insensitive multiset: when unrelated
/// completions coincide, the two models may initiate queued transfers
/// in a different order, but the transfers and all their timestamps
/// must agree exactly.
fn transfers(sim: &SimResult) -> Vec<String> {
    let mut c: Vec<String> = sim.comms.iter().map(|r| format!("{r:?}")).collect();
    c.sort();
    c
}

#[test]
fn fixtures_replay_identically_on_bus_and_crossbar() {
    for name in ["sweep3d_4r.trf", "nas_cg_8r.trf"] {
        let trace = fixture(name);
        let bus = simulate(&trace, &Platform::default()).unwrap();
        let flow = simulate(
            &trace,
            &Platform::default().with_topology(Topology::Crossbar),
        )
        .unwrap();
        assert_eq!(timing(&bus), timing(&flow), "{name}: timing diverged");
        assert_eq!(
            transfers(&bus),
            transfers(&flow),
            "{name}: transfer set diverged"
        );
        assert!(bus.links.is_empty(), "{name}: bus model has no links");
        assert!(
            flow.links.iter().any(|l| l.bytes > 0.0),
            "{name}: crossbar replay must report link traffic"
        );
    }
}

#[test]
fn explicit_fabrics_replay_fixtures_deterministically() {
    let cases = [
        ("sweep3d_4r.trf", vec!["fat-tree:4", "torus:2x2"]),
        ("nas_cg_8r.trf", vec!["fat-tree:4", "torus:2x2x2"]),
    ];
    for (name, topologies) in cases {
        let trace = fixture(name);
        for spec in topologies {
            let platform = Platform::default().with_contention(spec.parse().unwrap());
            let a = simulate(&trace, &platform).unwrap_or_else(|e| panic!("{name} on {spec}: {e}"));
            let b = simulate(&trace, &platform).unwrap();
            assert_eq!(timing(&a), timing(&b), "{name} on {spec}: nondeterministic");
            assert_eq!(format!("{:?}", a.links), format!("{:?}", b.links));
            assert!(a.runtime() > 0.0, "{name} on {spec}: degenerate replay");
            assert!(
                a.links.iter().any(|l| l.bytes > 0.0),
                "{name} on {spec}: no link carried traffic"
            );
        }
    }
}

/// The sweep grid gains a topology axis; results must stay bit-identical
/// for any worker count, exactly like the original bus-only sweeps.
#[test]
fn sweep_over_topologies_is_bit_identical_across_jobs() {
    let app = overlap_sim::apps::nas_cg::NasCgApp::quick();
    let run = trace_app(&app, 8).unwrap();
    let base = Platform::marenostrum(6);
    let grid = SweepGrid {
        apps: vec![SweepApp::new("nas-cg", run)],
        platforms: ["bus", "crossbar", "fat-tree:4", "torus:2x2x2"]
            .into_iter()
            .map(|spec| base.with_contention(spec.parse().unwrap()))
            .collect(),
        policies: [2u32, 4]
            .into_iter()
            .map(ChunkPolicy::with_chunks)
            .collect(),
    };
    let renders: Vec<String> = [1usize, 2, 4]
        .into_iter()
        .map(|jobs| {
            let report = sweep(&grid, &SweepConfig::with_jobs(jobs), &SweepCache::new());
            assert_eq!(report.err_count(), 0, "jobs={jobs}");
            report.render(&grid)
        })
        .collect();
    assert_eq!(renders[0], renders[1]);
    assert_eq!(renders[1], renders[2]);
    for (spec, hashed) in [("bus", true), ("crossbar", true), ("fat-tree:4", true)] {
        assert!(
            renders[0].contains(&format!("net={spec}")) == hashed,
            "render lists {spec}:\n{}",
            renders[0]
        );
    }
}
