//! The file-based toolchain, exactly like the paper's: the tracer
//! writes artifacts, the transformation and the simulator consume them
//! off-line (docs/trace-format.md specifies both formats).
//!
//! ```sh
//! cargo run --example offline_toolchain
//! ```

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::transform;
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, Platform};
use overlap_sim::trace::{access_text, text};
use std::fs;

fn main() {
    let dir = std::env::temp_dir().join("ovlp-offline-demo");
    fs::create_dir_all(&dir).expect("create temp dir");

    // stage 1: instrument (the Valgrind step) — write the artifacts
    let app = overlap_sim::apps::pop::PopApp::quick();
    let run = trace_app(&app, 4).expect("tracing failed");
    let trf = dir.join("original.trf");
    let acc = dir.join("access.acc");
    fs::write(&trf, text::emit(&run.trace)).unwrap();
    fs::write(&acc, access_text::emit(&run.access)).unwrap();
    println!(
        "wrote {} ({} bytes)",
        trf.display(),
        fs::metadata(&trf).unwrap().len()
    );
    println!(
        "wrote {} ({} bytes)",
        acc.display(),
        fs::metadata(&acc).unwrap().len()
    );

    // stage 2: transform (a different process, in principle) — read
    // the artifacts back and rewrite
    let trace = text::parse(&fs::read_to_string(&trf).unwrap()).expect("parse trace");
    let access = access_text::parse(&fs::read_to_string(&acc).unwrap()).expect("parse access");
    let overlapped = transform(&trace, &access, &ChunkPolicy::paper_default());
    let out = dir.join("overlapped.trf");
    fs::write(&out, text::emit(&overlapped)).unwrap();
    println!("wrote {}", out.display());

    // stage 3: replay (the Dimemas step) — from the file again
    let replayed = text::parse(&fs::read_to_string(&out).unwrap()).unwrap();
    let platform = Platform::marenostrum(12);
    let orig = simulate(&trace, &platform).unwrap();
    let ovl = simulate(&replayed, &platform).unwrap();
    println!(
        "replayed: original {:.3} ms, overlapped {:.3} ms (x{:.3})",
        orig.runtime() * 1e3,
        ovl.runtime() * 1e3,
        orig.runtime() / ovl.runtime()
    );

    // the file round trip is lossless: rewriting in memory gives the
    // byte-identical trace
    let direct = transform(&run.trace, &run.access, &ChunkPolicy::paper_default());
    assert_eq!(text::emit(&direct), text::emit(&replayed));
    println!("offline == in-memory: verified");
}
