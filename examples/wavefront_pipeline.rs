//! The Sweep3D headline: chunking turns a coarse wavefront pipeline
//! into a fine-grained one, and *no bandwidth increase can match that*
//! (the paper's Fig. 6c "tends to infinity" result).
//!
//! This example shows the mechanism directly: the per-rank start skew
//! of the wavefront shrinks under ideal-pattern overlap, and the
//! original execution on an infinitely fast network is still slower
//! than the overlapped one on 250 MB/s.
//!
//! ```sh
//! cargo run --release --example wavefront_pipeline
//! ```

use overlap_sim::core::experiments::{equivalent_bandwidth, EquivalentBandwidth};
use overlap_sim::prelude::*;

fn main() {
    let app = overlap_sim::apps::sweep3d::Sweep3dApp::default();
    let ranks = 16;
    let platform = overlap_sim::core::presets::marenostrum_for("sweep3d");
    let run = trace_app(&app, ranks).expect("tracing failed");
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());

    let orig = simulate(&bundle.original, &platform).unwrap();
    let ideal = simulate(&bundle.ideal, &platform).unwrap();
    let orig_inf = simulate(&bundle.original, &platform.with_bandwidth(f64::INFINITY)).unwrap();

    // pipeline fill: when does each rank first start computing?
    println!("wavefront start skew (first compute interval per rank):");
    println!("{:>6} {:>16} {:>16}", "rank", "original", "ideal overlap");
    for r in [0usize, 4, 8, 12, 15] {
        let first = |sim: &SimResult| {
            sim.timelines[r]
                .intervals
                .iter()
                .find(|iv| iv.state == overlap_sim::machine::State::Compute)
                .map(|iv| iv.start.as_secs() * 1e3)
                .unwrap_or(0.0)
        };
        println!("{r:>6} {:>14.3}ms {:>14.3}ms", first(&orig), first(&ideal));
    }
    println!();
    println!(
        "runtime @250 MB/s: original {:.2} ms, ideal overlap {:.2} ms (x{:.2})",
        orig.runtime() * 1e3,
        ideal.runtime() * 1e3,
        orig.runtime() / ideal.runtime()
    );
    println!(
        "runtime of the ORIGINAL on an infinitely fast network: {:.2} ms",
        orig_inf.runtime() * 1e3
    );
    assert!(
        orig_inf.runtime() > ideal.runtime(),
        "the wavefront result: even infinite bandwidth cannot match chunked pipelining"
    );
    match equivalent_bandwidth(&bundle.original, &platform, ideal.runtime()).unwrap() {
        EquivalentBandwidth::Divergent => println!(
            "equivalent bandwidth: -> infinity — chunking created finer-grain\n\
             dependencies between ranks; a faster network cannot emulate them"
        ),
        EquivalentBandwidth::Finite(bw) => println!("equivalent bandwidth: {bw:.1} MB/s"),
    }
}
