//! Sweep the network bandwidth and watch the three execution variants
//! diverge — the data behind the paper's bandwidth-relaxation argument
//! (Fig. 6b): the overlapped execution degrades much later than the
//! original as the network gets slower.
//!
//! ```sh
//! cargo run --release --example bandwidth_sweep [app]
//! ```

use overlap_sim::core::experiments::bandwidth_relaxation;
use overlap_sim::prelude::*;

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "sweep3d".into());
    let entry = overlap_sim::apps::registry::by_name(&app_name)
        .unwrap_or_else(|| panic!("unknown app {app_name}"));
    let platform = overlap_sim::core::presets::marenostrum_for(entry.name);

    let run = entry.trace_run(entry.ranks).expect("tracing failed");
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());

    println!(
        "bandwidth sweep for `{}` ({} ranks, {} buses)",
        entry.name, entry.ranks, platform.buses
    );
    println!();
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "MB/s", "original", "overlapped", "ideal"
    );
    for bw in [2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0] {
        let p = platform.with_bandwidth(bw);
        let o = simulate(&bundle.original, &p).unwrap().runtime();
        let v = simulate(&bundle.overlapped, &p).unwrap().runtime();
        let i = simulate(&bundle.ideal, &p).unwrap().runtime();
        println!(
            "{bw:>10.0} {:>12.2}ms {:>12.2}ms {:>12.2}ms",
            o * 1e3,
            v * 1e3,
            i * 1e3
        );
    }

    let relax = bandwidth_relaxation(&bundle, &platform).expect("search failed");
    println!();
    println!(
        "to match the original at {:.0} MB/s ({:.2} ms):",
        platform.bandwidth_mbs,
        relax.baseline_runtime * 1e3
    );
    let fmt = |v: Option<f64>| match v {
        Some(bw) => format!("{bw:.2} MB/s ({:.1}x less)", platform.bandwidth_mbs / bw),
        None => "not reachable".to_string(),
    };
    println!(
        "  overlapped (measured patterns) needs {}",
        fmt(relax.real_mbs)
    );
    println!(
        "  overlapped (ideal patterns)    needs {}",
        fmt(relax.ideal_mbs)
    );
}
