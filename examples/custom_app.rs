//! Analyze the overlap potential of *your own* application.
//!
//! The point of the paper's framework is that no knowledge of the
//! source is needed — but the framework is equally useful as a design
//! tool. Here we write a small stencil-style kernel against the
//! instrumented API, then ask: how much would chunked overlap buy, and
//! how do its production/consumption patterns look?
//!
//! ```sh
//! cargo run --example custom_app
//! ```

use overlap_sim::core::patterns::{consumption_stats, production_stats};
use overlap_sim::core::report::{table2a, table2b};
use overlap_sim::instr::{FnApp, RankCtx};
use overlap_sim::prelude::*;
use overlap_sim::trace::Rank;

fn main() {
    // A 1-D Jacobi-like kernel: compute interior, write boundary late,
    // exchange with the ring neighbors, consume early next iteration.
    let cells = 4_000usize;
    let iters = 6u32;
    let app = FnApp::new("jacobi-ring", move |ctx: &mut RankCtx| {
        let p = ctx.nranks() as u32;
        let me = ctx.rank().get();
        let right = Rank((me + 1) % p);
        let left = Rank((me + p - 1) % p);
        let mut out = ctx.buffer(cells);
        let mut inp = ctx.buffer(cells);
        for it in 0..iters {
            ctx.iter_begin(it);
            // interior update: ~2.3 Minstr, boundary written in the
            // last tenth
            let start = ctx.now();
            for i in 0..cells {
                let frac = 0.9 + 0.1 * (i as f64 + 1.0) / cells as f64;
                overlap_sim::apps::util::advance_to(ctx, start, frac, 2_300_000);
                out.store(i, (me * 1000 + i as u32) as f64);
            }
            // ring exchange
            ctx.sendrecv(right, 1, &mut out, left, 1, &mut inp);
            // next phase needs the halo after a short independent part
            let start = ctx.now();
            overlap_sim::apps::util::advance_to(ctx, start, 0.05, 460_000);
            let mut acc = 0.0;
            for i in 0..cells {
                acc += inp.load(i);
            }
            overlap_sim::apps::util::advance_to(ctx, start, 1.0, 460_000);
            ctx.compute((acc as u64) % 3); // data-dependent tail
            ctx.iter_end(it);
        }
    });

    let run = trace_app(&app, 8).expect("tracing failed");
    println!(
        "{}",
        table2a(&[("jacobi-ring".into(), production_stats(&run.access))])
    );
    println!(
        "{}",
        table2b(&[("jacobi-ring".into(), consumption_stats(&run.access))])
    );

    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    let platform = Platform::marenostrum(0);
    let orig = simulate(&bundle.original, &platform).unwrap();
    let ovl = simulate(&bundle.overlapped, &platform).unwrap();
    let ideal = simulate(&bundle.ideal, &platform).unwrap();
    println!(
        "speedup from overlap: measured patterns x{:.3}, ideal patterns x{:.3}",
        orig.runtime() / ovl.runtime(),
        orig.runtime() / ideal.runtime()
    );
    println!(
        "verdict: this kernel produces its boundary in the last 10% of the step —\n\
         advancing sends has little room; restructure the loop to update the\n\
         boundary first and the ideal column shows what becomes reachable."
    );
}
