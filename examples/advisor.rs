//! The implementer's workflow the paper closes §I with: decide whether
//! restructuring for overlap is worth the effort *before* writing any
//! code — and pick the chunk count while at it.
//!
//! ```sh
//! cargo run --release --example advisor [app] [ranks]
//! ```

use overlap_sim::core::advisor::advise;
use overlap_sim::core::experiments::{chunk_search, default_candidates};
use overlap_sim::prelude::*;

fn main() {
    let app_name = std::env::args().nth(1).unwrap_or_else(|| "sweep3d".into());
    let ranks: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let entry = overlap_sim::apps::registry::by_name(&app_name)
        .unwrap_or_else(|| panic!("unknown app {app_name}"));
    let platform = overlap_sim::core::presets::marenostrum_for(entry.name);
    let run = entry.trace_run(ranks).expect("tracing failed");

    // 1. is restructuring worth it? (per-transfer diagnosis)
    println!("== {} on {} ranks ==\n", entry.name, ranks);
    let advice = advise(
        &run.trace,
        &run.access,
        &platform,
        &ChunkPolicy::paper_default(),
    );
    print!("{}", advice.render());

    // 2. whatever the patterns allow, which chunk count extracts it?
    let search = chunk_search(&run, &platform, &default_candidates()).expect("search failed");
    println!("\nchunk-count sweep (simulated overlapped runtime):");
    for p in &search.points {
        println!(
            "  {:>3} chunks: {:.3} ms (x{:.3}){}",
            p.chunks,
            p.runtime * 1e3,
            p.speedup_vs_original,
            if p.chunks == search.best.chunks {
                "  <= best"
            } else {
                ""
            }
        );
    }

    // 3. the 2-D (KBA) wavefront variant shows the same analysis on a
    //    richer communication skeleton
    if entry.name == "sweep3d" && ranks == 8 {
        println!("\n== sweep3d-kba (4x2 processor grid) ==\n");
        let kba = overlap_sim::apps::sweep3d_kba::Sweep3dKbaApp {
            px: 4,
            py: 2,
            face: 1_000,
            mk: 3,
            iters: 1,
            ..overlap_sim::apps::sweep3d_kba::Sweep3dKbaApp::default()
        };
        let run = trace_app(&kba, 8).expect("tracing failed");
        let bundle = build_variants(&run, &ChunkPolicy::paper_default());
        let orig = simulate(&bundle.original, &platform).unwrap();
        let ideal = simulate(&bundle.ideal, &platform).unwrap();
        println!(
            "octant-sweep pipeline: original {:.2} ms, ideal overlap {:.2} ms (x{:.2})",
            orig.runtime() * 1e3,
            ideal.runtime() * 1e3,
            orig.runtime() / ideal.runtime()
        );
        let advice = advise(
            &run.trace,
            &run.access,
            &platform,
            &ChunkPolicy::paper_default(),
        );
        print!("{}", advice.render());
    }
}
