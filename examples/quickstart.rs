//! Quickstart: trace an application, derive the overlapped traces, and
//! quantify the benefit — the whole §III pipeline in ~30 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use overlap_sim::prelude::*;

fn main() {
    // 1. Run the application under instrumentation (the Valgrind step):
    //    one thread per rank, every MPI call wrapped, every tracked
    //    load/store recorded.
    let app = overlap_sim::apps::nas_cg::NasCgApp::default();
    let run = trace_app(&app, 4).expect("tracing failed");
    println!(
        "traced `{}` on {} ranks: {} records, {} production logs",
        app.name(),
        run.nranks(),
        run.trace.total_records(),
        run.access.all_productions().count(),
    );

    // 2. Rewrite the original trace into the overlapped variants
    //    (message chunking + advancing sends + double buffering +
    //    post-postponing receptions).
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());

    // 3. Replay all three on a Marenostrum-like platform (the Dimemas
    //    step): 250 MB/s, 8 us latency, 6 buses (Table I for CG).
    let platform = Platform::marenostrum(6);
    let original = simulate(&bundle.original, &platform).expect("simulation failed");
    let overlapped = simulate(&bundle.overlapped, &platform).expect("simulation failed");
    let ideal = simulate(&bundle.ideal, &platform).expect("simulation failed");

    println!("original runtime:   {:.3} ms", original.runtime() * 1e3);
    println!(
        "overlapped runtime: {:.3} ms  (speedup x{:.3})",
        overlapped.runtime() * 1e3,
        original.runtime() / overlapped.runtime()
    );
    println!(
        "ideal runtime:      {:.3} ms  (speedup x{:.3})",
        ideal.runtime() * 1e3,
        original.runtime() / ideal.runtime()
    );

    // 4. Look at the timelines (the Paraver step).
    println!();
    println!(
        "{}",
        overlap_sim::viz::gantt_comparison(
            "non-overlapped",
            &original,
            "overlapped",
            &overlapped,
            96
        )
    );
}
