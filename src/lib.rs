//! # overlap-sim
//!
//! A simulation framework to automatically analyze the
//! communication-computation overlap in scientific applications — a
//! from-scratch Rust reproduction of Subotic, Sancho, Labarta & Valero
//! (IEEE CLUSTER 2010).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`trace`] — trace model and text format (`ovlp-trace`);
//! * [`machine`] — the Dimemas-like trace-driven machine simulator
//!   (`ovlp-machine`);
//! * [`instr`] — the Valgrind-like instrumented runtime that executes
//!   message-passing mini-apps and extracts traces plus element-level
//!   access logs (`ovlp-instr`);
//! * [`core`] — the paper's contribution: the automatic overlap
//!   transformation (message chunking, advancing sends, double
//!   buffering, post-postponing receptions), pattern analysis and the
//!   benefit experiments (`ovlp-core`);
//! * [`viz`] — Paraver export plus ASCII/SVG timeline rendering
//!   (`ovlp-viz`);
//! * [`apps`] — the application pool: Sweep3D, POP, Alya, SPECFEM3D,
//!   NAS BT and NAS CG mini-kernels plus synthetic workloads
//!   (`ovlp-apps`);
//! * [`serve`] — sweep-as-a-service: the `ovlp serve` HTTP daemon and
//!   the shared sweep-job specification, backed by the persistent
//!   content-addressed result store (`ovlp-serve`).
//!
//! ## Quickstart
//!
//! ```
//! use overlap_sim::prelude::*;
//!
//! // 1. Pick an application and trace it under instrumentation.
//! let app = overlap_sim::apps::nas_cg::NasCgApp::default();
//! let run = overlap_sim::instr::trace_app(&app, 4).unwrap();
//!
//! // 2. Rewrite the original trace into the overlapped variants.
//! let bundle = overlap_sim::core::pipeline::build_variants(
//!     &run,
//!     &ChunkPolicy::paper_default(),
//! );
//!
//! // 3. Replay all variants on a Marenostrum-like platform.
//! let platform = Platform::marenostrum(6);
//! let original = simulate(&bundle.original, &platform).unwrap();
//! let overlapped = simulate(&bundle.overlapped, &platform).unwrap();
//! assert!(overlapped.runtime() < original.runtime());
//! ```

pub use ovlp_apps as apps;
pub use ovlp_core as core;
pub use ovlp_instr as instr;
pub use ovlp_machine as machine;
pub use ovlp_serve as serve;
pub use ovlp_trace as trace;
pub use ovlp_viz as viz;

/// Commonly used items, importable with one `use`.
pub mod prelude {
    pub use ovlp_core::chunk::ChunkPolicy;
    pub use ovlp_core::pipeline::{build_variants, VariantBundle};
    pub use ovlp_instr::{trace_app, MpiApp, RankCtx};
    pub use ovlp_machine::{simulate, Platform, SimResult};
    pub use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace};
}
