//! `ovlp` — command-line front end for the overlap-analysis framework.
//!
//! ```text
//! ovlp analyze <app> <ranks>             full pipeline report (patterns + benefits)
//! ovlp trace <app> <ranks> <outdir>      write .trf traces + the .acc access log
//! ovlp transform <trace.trf> <log.acc>   rewrite a trace offline (stdout)
//! ovlp simulate <trace.trf> [bw] [buses] [--topology T]
//!                                        replay a trace file on a platform
//! ovlp stats <trace.trf>                 structural statistics of a trace file
//! ovlp gantt <app> <ranks>               original vs overlapped ASCII timelines
//! ovlp waits <app> <ranks>               wait-duration histograms (both variants)
//! ovlp chunks <app> <ranks>              find the best chunk count
//! ovlp advise <app> <ranks>              per-transfer restructuring advice
//! ovlp report <app> <ranks> <out.html>   self-contained HTML analysis report
//! ovlp paraver <app> <ranks> <outdir>    export Paraver .prv/.pcf/.row for both variants
//! ovlp sweep <app> <ranks> [--jobs N] [--chunks a,b,..] [--bw a,b,..] [--buses a,b,..]
//!            [--topology t1,t2,..]       parallel parameter sweep over platforms x policies
//!
//! Topology specs: `bus` (legacy buses+ports), `crossbar`,
//! `fat-tree:<radix>[:<oversub>]`, `torus:<A>x<B>[x<C>]`.
//! ovlp list                              list the application pool
//! ```

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::experiments::run_variants;
use overlap_sim::core::patterns::{consumption_stats, production_stats};
use overlap_sim::core::pipeline::build_variants;
use overlap_sim::core::presets::marenostrum_for;
use overlap_sim::core::report::{pct, table2a, table2b};
use overlap_sim::instr::trace_app;
use overlap_sim::machine::{simulate, ContentionModel, Platform};
use overlap_sim::trace::text;
use overlap_sim::viz::{gantt_comparison, paraver, timeline_svg};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["list"] => {
            for e in overlap_sim::apps::paper_pool() {
                println!("{:<12} (default {} ranks)", e.name, e.ranks);
            }
            ExitCode::SUCCESS
        }
        ["analyze", app, ranks] => analyze(app, ranks),
        ["trace", app, ranks, outdir] => trace_cmd(app, ranks, outdir),
        ["transform", trf, acc] => transform_cmd(trf, acc),
        ["simulate", path, rest @ ..] => simulate_cmd(path, rest),
        ["stats", path] => stats_cmd(path),
        ["gantt", app, ranks] => gantt_cmd(app, ranks),
        ["waits", app, ranks] => waits_cmd(app, ranks),
        ["chunks", app, ranks] => chunks_cmd(app, ranks),
        ["advise", app, ranks] => advise_cmd(app, ranks),
        ["report", app, ranks, out] => report_cmd(app, ranks, out),
        ["paraver", app, ranks, outdir] => paraver_cmd(app, ranks, outdir),
        ["sweep", app, ranks, rest @ ..] => sweep_cmd(app, ranks, rest),
        _ => {
            eprintln!(
                "usage: ovlp <list | analyze <app> <ranks> | trace <app> <ranks> <outdir> |\n\
                 \x20      transform <trace.trf> <log.acc> |\n\
                 \x20      simulate <trace.trf> [bw] [buses] [--topology T] |\n\
                 \x20      stats <trace.trf> | gantt <app> <ranks> | waits <app> <ranks> |\n\
                 \x20      chunks <app> <ranks> | advise <app> <ranks> |\n\
                 \x20      report <app> <ranks> <out.html> | paraver <app> <ranks> <outdir> |\n\
                 \x20      sweep <app> <ranks> [--jobs N] [--chunks a,b,..] [--bw a,b,..]\n\
                 \x20            [--buses a,b,..] [--topology t1,t2,..]>\n\
                 topologies: bus | crossbar | fat-tree:<radix>[:<oversub>] | torus:<A>x<B>[x<C>]"
            );
            ExitCode::FAILURE
        }
    }
}

fn prepare(
    app_name: &str,
    ranks: &str,
) -> Result<
    (
        overlap_sim::core::pipeline::VariantBundle,
        overlap_sim::instr::TraceRun,
        Platform,
    ),
    String,
> {
    let ranks: usize = ranks.parse().map_err(|e| format!("bad rank count: {e}"))?;
    let entry = overlap_sim::apps::registry::by_name(app_name)
        .ok_or_else(|| format!("unknown app `{app_name}` (try `ovlp list`)"))?;
    let run = trace_app(entry.app.as_ref(), ranks).map_err(|e| e.to_string())?;
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    Ok((bundle, run, marenostrum_for(entry.name)))
}

fn fail(msg: String) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn analyze(app: &str, ranks: &str) -> ExitCode {
    let (bundle, run, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let p = production_stats(&run.access);
    let c = consumption_stats(&run.access);
    println!("{}", table2a(&[(app.to_string(), p)]));
    println!("{}", table2b(&[(app.to_string(), c)]));
    match run_variants(&bundle, &platform) {
        Ok(r) => {
            println!(
                "runtime: original {:.4}s  overlapped {:.4}s (x{:.3})  ideal {:.4}s (x{:.3})",
                r.original.runtime(),
                r.overlapped.runtime(),
                r.speedup_real(),
                r.ideal.runtime(),
                r.speedup_ideal()
            );
            println!(
                "wait/rank: original {:.1}us  overlapped {:.1}us",
                r.original.total_wait() * 1e6 / r.original.totals.len() as f64,
                r.overlapped.total_wait() * 1e6 / r.overlapped.totals.len() as f64,
            );
            let demand = overlap_sim::core::double_buffer_demand(&r.overlapped);
            println!(
                "double-buffering demand: {} of {} candidate transfers ({})",
                demand.early_arrivals,
                demand.candidates,
                pct(Some(100.0 * demand.fraction()))
            );
            // the paper's §VII future work, quantified: how much more
            // postponement would phase-level reordering expose?
            match overlap_sim::core::patterns::mean_independent_tail(&run.access) {
                Some(tail) => println!(
                    "phase-reorder potential (mean independent tail): {}",
                    pct(Some(100.0 * tail))
                ),
                None => println!("phase-reorder potential: n/a (scatter capture off)"),
            }
            println!("\nheaviest channels (original execution):");
            print!(
                "{}",
                overlap_sim::machine::chanstat::render_top(&r.original, 8)
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn trace_cmd(app: &str, ranks: &str, outdir: &str) -> ExitCode {
    let (bundle, run, _) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let dir = Path::new(outdir);
    if let Err(e) = fs::create_dir_all(dir) {
        return fail(e.to_string());
    }
    for (name, body) in [
        ("original.trf", text::emit(&bundle.original)),
        ("overlapped.trf", text::emit(&bundle.overlapped)),
        ("ideal.trf", text::emit(&bundle.ideal)),
        (
            "access.acc",
            overlap_sim::trace::access_text::emit(&run.access),
        ),
    ] {
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, body) {
            return fail(e.to_string());
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Offline transformation: the paper's §III-C generation step applied
/// to artifacts on disk.
fn transform_cmd(trf: &str, acc: &str) -> ExitCode {
    let trace = match fs::read_to_string(trf)
        .map_err(|e| e.to_string())
        .and_then(|c| text::parse(&c).map_err(|e| e.to_string()))
    {
        Ok(t) => t,
        Err(e) => return fail(format!("{trf}: {e}")),
    };
    let access = match fs::read_to_string(acc)
        .map_err(|e| e.to_string())
        .and_then(|c| overlap_sim::trace::access_text::parse(&c).map_err(|e| e.to_string()))
    {
        Ok(a) => a,
        Err(e) => return fail(format!("{acc}: {e}")),
    };
    let out = overlap_sim::core::transform(&trace, &access, &ChunkPolicy::paper_default());
    print!("{}", text::emit(&out));
    ExitCode::SUCCESS
}

fn stats_cmd(path: &str) -> ExitCode {
    let trace = match fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|c| text::parse(&c).map_err(|e| e.to_string()))
    {
        Ok(t) => t,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    println!("{}", overlap_sim::trace::TraceStats::of(&trace));
    let errs = overlap_sim::trace::validate(&trace);
    if errs.is_empty() {
        println!("validation:       ok");
        ExitCode::SUCCESS
    } else {
        println!("validation:       {} problems", errs.len());
        for e in errs.iter().take(10) {
            println!("  - {e}");
        }
        ExitCode::FAILURE
    }
}

fn waits_cmd(app: &str, ranks: &str) -> ExitCode {
    let (bundle, _, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match run_variants(&bundle, &platform) {
        Ok(r) => {
            println!("== non-overlapped ==");
            println!("{}", overlap_sim::viz::wait_report(&r.original, 48));
            println!("== overlapped ==");
            println!("{}", overlap_sim::viz::wait_report(&r.overlapped, 48));
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn chunks_cmd(app: &str, ranks: &str) -> ExitCode {
    use overlap_sim::core::experiments::{chunk_search, default_candidates};
    let ranks_n: usize = match ranks.parse() {
        Ok(n) => n,
        Err(e) => return fail(format!("bad rank count: {e}")),
    };
    let entry = match overlap_sim::apps::registry::by_name(app) {
        Some(e) => e,
        None => return fail(format!("unknown app `{app}`")),
    };
    let run = match trace_app(entry.app.as_ref(), ranks_n) {
        Ok(r) => r,
        Err(e) => return fail(e.to_string()),
    };
    let platform = marenostrum_for(entry.name);
    match chunk_search(&run, &platform, &default_candidates()) {
        Ok(s) => {
            println!("original runtime: {:.4}s", s.original_runtime);
            for p in &s.points {
                let marker = if p.chunks == s.best.chunks {
                    "  <= best"
                } else {
                    ""
                };
                println!(
                    "{:>3} chunks: {:.4}s (x{:.3}){}",
                    p.chunks, p.runtime, p.speedup_vs_original, marker
                );
            }
            println!(
                "recommendation: {} chunks (the paper fixes 4)",
                s.best.chunks
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn simulate_cmd(path: &str, rest: &[&str]) -> ExitCode {
    let content = match fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    let trace = match text::parse(&content) {
        Ok(t) => t,
        Err(e) => return fail(e.to_string()),
    };
    let topology = match parse_flag(rest, "--topology", ContentionModel::Bus) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    // Positional args are what remains once the flag pair is stripped.
    let mut pos: Vec<&str> = Vec::new();
    let mut skip = false;
    for a in rest {
        if skip {
            skip = false;
        } else if *a == "--topology" {
            skip = true;
        } else {
            pos.push(a);
        }
    }
    let mut platform = Platform::default().with_contention(topology);
    if let Some(bw) = pos.first() {
        match bw.parse() {
            Ok(v) => platform.bandwidth_mbs = v,
            Err(e) => return fail(format!("bad bandwidth: {e}")),
        }
    }
    if let Some(buses) = pos.get(1) {
        match buses.parse() {
            Ok(v) => platform.buses = v,
            Err(e) => return fail(format!("bad bus count: {e}")),
        }
    }
    match simulate(&trace, &platform) {
        Ok(r) => {
            println!(
                "runtime {:.6}s  ({} ranks, {} events, efficiency {:.1}%)",
                r.runtime(),
                r.timelines.len(),
                r.events_processed,
                100.0 * r.efficiency()
            );
            for (i, t) in r.totals.iter().enumerate() {
                println!(
                    "  r{i}: compute {:.3}ms  wait-recv {:.3}ms  wait-send {:.3}ms  collective {:.3}ms",
                    t.compute.as_secs() * 1e3,
                    t.wait_recv.as_secs() * 1e3,
                    t.wait_send.as_secs() * 1e3,
                    t.collective.as_secs() * 1e3
                );
            }
            let links = overlap_sim::viz::link_report(&r, 12);
            if !links.is_empty() {
                println!("network: {} fair-share recomputations", r.network.reshares);
                print!("{links}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn gantt_cmd(app: &str, ranks: &str) -> ExitCode {
    let (bundle, _, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    match run_variants(&bundle, &platform) {
        Ok(r) => {
            println!(
                "{}",
                gantt_comparison(
                    "non-overlapped",
                    &r.original,
                    "overlapped",
                    &r.overlapped,
                    100
                )
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn advise_cmd(app: &str, ranks: &str) -> ExitCode {
    let (_, run, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let advice = overlap_sim::core::advisor::advise(
        &run.trace,
        &run.access,
        &platform,
        &ChunkPolicy::paper_default(),
    );
    print!("{}", advice.render());
    ExitCode::SUCCESS
}

fn report_cmd(app: &str, ranks: &str, out: &str) -> ExitCode {
    let (bundle, run, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let r = match run_variants(&bundle, &platform) {
        Ok(r) => r,
        Err(e) => return fail(e.to_string()),
    };
    let mut tables = table2a(&[(app.to_string(), production_stats(&run.access))]);
    tables.push('\n');
    tables.push_str(&table2b(&[(
        app.to_string(),
        consumption_stats(&run.access),
    )]));
    let advice = overlap_sim::core::advisor::advise(
        &run.trace,
        &run.access,
        &platform,
        &ChunkPolicy::paper_default(),
    )
    .render();
    let mut notes = vec![format!(
        "double-buffering demand: {:.1}% of candidate transfers",
        100.0 * overlap_sim::core::double_buffer_demand(&r.overlapped).fraction()
    )];
    if let Some(tail) = overlap_sim::core::patterns::mean_independent_tail(&run.access) {
        notes.push(format!(
            "phase-reorder potential (mean independent tail): {:.1}%",
            100.0 * tail
        ));
    }
    let inputs = overlap_sim::viz::ReportInputs {
        app: app.to_string(),
        ranks: r.original.totals.len(),
        platform: format!(
            "{} MB/s, {} us latency, {} buses, 4 chunks",
            platform.bandwidth_mbs, platform.latency_us, platform.buses
        ),
        pattern_tables: tables,
        advice,
        notes,
    };
    let html = overlap_sim::viz::html_report(
        &inputs,
        &[
            ("non-overlapped (original)", &r.original),
            ("overlapped (measured patterns)", &r.overlapped),
            ("overlapped (ideal patterns)", &r.ideal),
        ],
    );
    if let Err(e) = fs::write(out, html) {
        return fail(e.to_string());
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// `ovlp sweep`: evaluate the app on a grid of platforms x chunk
/// policies using the parallel sweep engine. Results are bit-identical
/// for any `--jobs` value.
fn sweep_cmd(app: &str, ranks: &str, rest: &[&str]) -> ExitCode {
    use overlap_sim::core::sweep::{sweep, SweepApp, SweepCache, SweepConfig, SweepGrid};

    let ranks_n: usize = match ranks.parse() {
        Ok(n) => n,
        Err(e) => return fail(format!("bad rank count: {e}")),
    };
    let jobs = match parse_flag(rest, "--jobs", 1usize) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let chunk_counts = match parse_list_flag(rest, "--chunks", vec![1u32, 2, 4, 8]) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let max_chunks = overlap_sim::trace::Tag::MAX_CHUNKS;
    if let Some(c) = chunk_counts.iter().find(|&&c| c == 0 || c >= max_chunks) {
        return fail(format!(
            "bad --chunks entry `{c}`: must be in 1..{max_chunks}"
        ));
    }
    let bandwidths = match parse_list_flag(rest, "--bw", vec![250.0f64]) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let entry = match overlap_sim::apps::registry::by_name(app) {
        Some(e) => e,
        None => return fail(format!("unknown app `{app}` (try `ovlp list`)")),
    };
    let base = marenostrum_for(entry.name);
    let bus_counts = match parse_list_flag(rest, "--buses", vec![base.buses]) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let topologies = match parse_list_flag(rest, "--topology", vec![ContentionModel::Bus]) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    // Reject fixed-size fabrics that are too small before any point
    // runs, mirroring the --chunks range check above.
    for model in &topologies {
        if let ContentionModel::Flow(topo) = model {
            if let Some(cap) = topo.endpoints() {
                let nodes = if ranks_n == 0 {
                    0
                } else {
                    base.node_of(ranks_n - 1) + 1
                };
                if nodes > cap {
                    return fail(format!(
                        "bad --topology entry `{model}`: {cap} endpoints but {ranks_n} ranks need {nodes} nodes"
                    ));
                }
            }
        }
    }

    let run = match trace_app(entry.app.as_ref(), ranks_n) {
        Ok(r) => r,
        Err(e) => return fail(e.to_string()),
    };
    let grid = SweepGrid {
        apps: vec![SweepApp::new(entry.name, run)],
        platforms: bandwidths
            .iter()
            .flat_map(|&bw| {
                let base = &base;
                let topologies = &topologies;
                bus_counts.iter().flat_map(move |&buses| {
                    topologies.iter().map(move |model| {
                        base.with_bandwidth(bw)
                            .with_buses(buses)
                            .with_contention(model.clone())
                    })
                })
            })
            .collect(),
        policies: chunk_counts
            .iter()
            .map(|&c| ChunkPolicy::with_chunks(c))
            .collect(),
    };
    let report = sweep(&grid, &SweepConfig::with_jobs(jobs), &SweepCache::new());
    print!("{}", report.render(&grid));
    eprintln!(
        "({} points in {:.2}s with {} jobs; {} simulated, {} from cache)",
        report.outcomes.len(),
        report.elapsed.as_secs_f64(),
        jobs,
        report.cache_misses,
        report.cache_hits,
    );
    if report.err_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--flag value` lookup with a default.
fn parse_flag<T: std::str::FromStr>(args: &[&str], flag: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| *a == flag) {
        None => Ok(default),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{flag} needs a value")),
            Some(v) => v
                .parse()
                .map_err(|e| format!("bad {flag} value `{v}`: {e}")),
        },
    }
}

/// `--flag a,b,c` lookup with a default list.
fn parse_list_flag<T: std::str::FromStr>(
    args: &[&str],
    flag: &str,
    default: Vec<T>,
) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| *a == flag) {
        None => Ok(default),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{flag} needs a comma-separated list")),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|e| format!("bad {flag} entry `{s}`: {e}"))
                })
                .collect(),
        },
    }
}

fn paraver_cmd(app: &str, ranks: &str, outdir: &str) -> ExitCode {
    let (bundle, _, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let r = match run_variants(&bundle, &platform) {
        Ok(r) => r,
        Err(e) => return fail(e.to_string()),
    };
    let dir = Path::new(outdir);
    if let Err(e) = fs::create_dir_all(dir) {
        return fail(e.to_string());
    }
    let span = r.original.runtime.max(r.overlapped.runtime);
    for (label, sim) in [("original", &r.original), ("overlapped", &r.overlapped)] {
        let e = paraver::export(&format!("{app}-{label}"), sim);
        for (ext, body) in [("prv", e.prv), ("pcf", e.pcf), ("row", e.row)] {
            let path = dir.join(format!("{app}-{label}.{ext}"));
            if let Err(err) = fs::write(&path, body) {
                return fail(err.to_string());
            }
        }
        let svg = timeline_svg(&format!("{app} {label}"), sim, 1200, span);
        if let Err(err) = fs::write(dir.join(format!("{app}-{label}.svg")), svg) {
            return fail(err.to_string());
        }
    }
    println!("wrote Paraver + SVG artifacts to {}", dir.display());
    ExitCode::SUCCESS
}
