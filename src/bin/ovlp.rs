//! `ovlp` — command-line front end for the overlap-analysis framework.
//!
//! Run `ovlp help` for the subcommand list; it is generated from the
//! [`COMMANDS`] table, which is also the dispatch source of truth, so
//! the help text cannot drift from what the binary accepts.

use overlap_sim::core::chunk::ChunkPolicy;
use overlap_sim::core::experiments::{run_variants, run_variants_full_with, run_variants_probed};
use overlap_sim::core::patterns::{consumption_stats, production_stats};
use overlap_sim::core::pipeline::{build_variants, VariantBundle};
use overlap_sim::core::presets::marenostrum_for;
use overlap_sim::core::report::{pct, table2a, table2b};
use overlap_sim::machine::{
    replay_scale, simulate, simulate_probed_with, simulate_source_probed_with,
    simulate_source_with, simulate_with, ContentionModel, CritPathRecorder, FaultSchedule,
    Platform, ProbeSink, ReplayEngine, SimError, SimResult, TeeSink, Time, WindowedRecorder,
};
use overlap_sim::trace::text;
use overlap_sim::viz::{gantt_comparison, link_heatmap_ascii, paraver, timeline_svg};
use std::fs;
use std::path::Path;
use std::process::ExitCode;

/// One `ovlp` subcommand. The usage text shown by `ovlp help` (and on
/// bad invocations) is rendered from this table.
struct Cmd {
    name: &'static str,
    args: &'static str,
    about: &'static str,
}

const COMMANDS: &[Cmd] = &[
    Cmd {
        name: "list",
        args: "",
        about: "list the application pool",
    },
    Cmd {
        name: "analyze",
        args: "<app> <ranks>",
        about: "full pipeline report (patterns + benefits)",
    },
    Cmd {
        name: "trace",
        args: "<app> <ranks> <outdir>",
        about: "write .trf traces + the .acc access log",
    },
    Cmd {
        name: "transform",
        args: "<trace.trf> <log.acc>",
        about: "rewrite a trace offline (stdout)",
    },
    Cmd {
        name: "simulate",
        args: "<trace.trf|app> [bw] [buses] [--ranks N] [--stream] [--topology T] \
               [--faults SPEC] [--metrics out.json] [--probe-window us] [--critpath] \
               [--engine seq|par[:N]]",
        about: "replay a trace file or pool app on a platform",
    },
    Cmd {
        name: "scale",
        args: "<app> <ranks> [bw] [buses]",
        about: "streamed O(active-state) weak-scaling replay summary",
    },
    Cmd {
        name: "stats",
        args: "<trace.trf>",
        about: "structural statistics of a trace file",
    },
    Cmd {
        name: "gantt",
        args: "<app> <ranks>",
        about: "original vs overlapped ASCII timelines",
    },
    Cmd {
        name: "waits",
        args: "<app> <ranks>",
        about: "wait-duration histograms (both variants)",
    },
    Cmd {
        name: "chunks",
        args: "<app> <ranks>",
        about: "find the best chunk count",
    },
    Cmd {
        name: "advise",
        args: "<app> <ranks>",
        about: "per-transfer restructuring advice",
    },
    Cmd {
        name: "report",
        args: "<app> <ranks> <out.html> [--topology T] [--probe-window us] [--critpath]",
        about: "self-contained HTML analysis report",
    },
    Cmd {
        name: "paraver",
        args: "<app> <ranks> <outdir> [--topology T] [--probe-window us]",
        about: "Paraver .prv/.pcf/.row (with counters) + SVG for both variants",
    },
    Cmd {
        name: "sweep",
        args: "<app> <ranks> [--jobs N] [--chunks a,b,..] [--bw a,b,..] [--buses a,b,..] \
               [--topology t1,t2,..] [--faults f1,f2,..] [--store dir] [--metrics dir] \
               [--probe-window us] [--critpath] [--engine seq|par[:N]]",
        about: "parallel parameter sweep over platforms x policies",
    },
    Cmd {
        name: "serve",
        args: "[--addr host:port] [--store dir] [--max-running N] [--max-conn N] \
               [--point-deadline s] [--retries N] [--backoff-ms ms] [--drain-grace s]",
        about: "sweep-as-a-service HTTP daemon over the persistent result store",
    },
    Cmd {
        name: "help",
        args: "",
        about: "show this help",
    },
];

fn usage() -> String {
    let mut s = String::from("usage: ovlp <command> [args]\n\ncommands:\n");
    for c in COMMANDS {
        let head = if c.args.is_empty() {
            c.name.to_string()
        } else {
            format!("{} {}", c.name, c.args)
        };
        if head.len() <= 38 {
            s.push_str(&format!("  {head:<38} {}\n", c.about));
        } else {
            s.push_str(&format!("  {head}\n  {:<38} {}\n", "", c.about));
        }
    }
    s.push_str(
        "\ntopologies: bus | crossbar | fat-tree:<radix>[:<oversub>] | torus:<A>x<B>[x<C>]\n\
         fault specs: `;`-joined events, each kill|restore|degrade=<f>@<time>:<selector>\n\
         (selector = link label, link:<id>, uplink:*, or dim:<d>; sweep takes a\n\
         comma-separated scenario list and keeps a fault-free baseline per platform)\n\
         probe windows are microseconds; omitted, they default to runtime/256\n\
         --store points sweep and serve at a shared persistent result store\n\
         \nexit codes: 0 success, 1 simulation/runtime failure, 2 usage or parse error\n",
    );
    s
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.as_slice() {
        ["list"] => {
            for e in overlap_sim::apps::paper_pool() {
                let kind = if e.is_generated() {
                    "generated; weak-scales via --ranks / ovlp scale"
                } else {
                    "traced"
                };
                println!("{:<12} (default {} ranks, {kind})", e.name, e.ranks);
            }
            ExitCode::SUCCESS
        }
        ["analyze", app, ranks] => analyze(app, ranks),
        ["trace", app, ranks, outdir] => trace_cmd(app, ranks, outdir),
        ["transform", trf, acc] => transform_cmd(trf, acc),
        ["simulate", path, rest @ ..] => simulate_cmd(path, rest),
        ["scale", app, ranks, rest @ ..] => scale_cmd(app, ranks, rest),
        ["stats", path] => stats_cmd(path),
        ["gantt", app, ranks] => gantt_cmd(app, ranks),
        ["waits", app, ranks] => waits_cmd(app, ranks),
        ["chunks", app, ranks] => chunks_cmd(app, ranks),
        ["advise", app, ranks] => advise_cmd(app, ranks),
        ["report", app, ranks, out, rest @ ..] => report_cmd(app, ranks, out, rest),
        ["paraver", app, ranks, outdir, rest @ ..] => paraver_cmd(app, ranks, outdir, rest),
        ["sweep", app, ranks, rest @ ..] => sweep_cmd(app, ranks, rest),
        ["serve", rest @ ..] => serve_cmd(rest),
        ["help"] | ["--help"] | ["-h"] => {
            print!("{}", usage());
            ExitCode::SUCCESS
        }
        _ => {
            eprint!("{}", usage());
            usage_error()
        }
    }
}

/// Exit code for usage and parse errors (bad flags, malformed specs):
/// distinct from 1, which means the inputs were well-formed but the
/// run itself failed (I/O, simulation error, failed sweep points).
fn usage_error() -> ExitCode {
    ExitCode::from(2)
}

/// CLI failure, classified for the exit code: `Usage` exits 2,
/// `Run` exits 1.
enum CliError {
    Usage(String),
    Run(String),
}

fn bail(e: CliError) -> ExitCode {
    match e {
        CliError::Usage(m) => fail_usage(m),
        CliError::Run(m) => fail(m),
    }
}

fn prepare(
    app_name: &str,
    ranks: &str,
) -> Result<
    (
        overlap_sim::core::pipeline::VariantBundle,
        overlap_sim::instr::TraceRun,
        Platform,
    ),
    CliError,
> {
    let ranks: usize = ranks
        .parse()
        .map_err(|e| CliError::Usage(format!("bad rank count: {e}")))?;
    let entry = overlap_sim::apps::registry::by_name(app_name)
        .ok_or_else(|| CliError::Usage(format!("unknown app `{app_name}` (try `ovlp list`)")))?;
    // Rank-count violations (odd counts on XOR apps, counts past the
    // thread-per-rank cap) are the caller's mistake: exit 2, not 1.
    entry.validate_ranks(ranks).map_err(CliError::Usage)?;
    let run = entry.trace_run(ranks).map_err(CliError::Run)?;
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    Ok((bundle, run, marenostrum_for(entry.name)))
}

/// Runtime failure (exit 1): I/O, tracing, or simulation errors.
fn fail(msg: String) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

/// Usage or parse failure (exit 2): malformed flags, specs, or values.
fn fail_usage(msg: String) -> ExitCode {
    eprintln!("error: {msg}");
    usage_error()
}

/// What `simulate` replays: a materialized trace (the classic path) or
/// a lazily-streamed record supply (`--stream`, pool apps). Both feed
/// the same engine and produce bit-identical results.
enum SimInput<'a> {
    Trace(&'a overlap_sim::trace::Trace),
    Stream(&'a dyn overlap_sim::trace::TraceSource),
}

impl SimInput<'_> {
    fn run(&self, platform: &Platform, engine: ReplayEngine) -> Result<SimResult, SimError> {
        match self {
            SimInput::Trace(t) => simulate_with(t, platform, engine),
            SimInput::Stream(s) => simulate_source_with(*s, platform, engine),
        }
    }

    fn run_probed<P: ProbeSink>(
        &self,
        platform: &Platform,
        probe: &mut P,
        engine: ReplayEngine,
    ) -> Result<SimResult, SimError> {
        match self {
            SimInput::Trace(t) => simulate_probed_with(t, platform, probe, engine),
            SimInput::Stream(s) => simulate_source_probed_with(*s, platform, probe, engine),
        }
    }
}

fn analyze(app: &str, ranks: &str) -> ExitCode {
    let (bundle, run, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return bail(e),
    };
    let p = production_stats(&run.access);
    let c = consumption_stats(&run.access);
    println!("{}", table2a(&[(app.to_string(), p)]));
    println!("{}", table2b(&[(app.to_string(), c)]));
    match run_variants(&bundle, &platform) {
        Ok(r) => {
            println!(
                "runtime: original {:.4}s  overlapped {:.4}s (x{:.3})  ideal {:.4}s (x{:.3})",
                r.original.runtime(),
                r.overlapped.runtime(),
                r.speedup_real(),
                r.ideal.runtime(),
                r.speedup_ideal()
            );
            println!(
                "wait/rank: original {:.1}us  overlapped {:.1}us",
                r.original.total_wait() * 1e6 / r.original.totals.len() as f64,
                r.overlapped.total_wait() * 1e6 / r.overlapped.totals.len() as f64,
            );
            let demand = overlap_sim::core::double_buffer_demand(&r.overlapped);
            println!(
                "double-buffering demand: {} of {} candidate transfers ({})",
                demand.early_arrivals,
                demand.candidates,
                pct(Some(100.0 * demand.fraction()))
            );
            // the paper's §VII future work, quantified: how much more
            // postponement would phase-level reordering expose?
            match overlap_sim::core::patterns::mean_independent_tail(&run.access) {
                Some(tail) => println!(
                    "phase-reorder potential (mean independent tail): {}",
                    pct(Some(100.0 * tail))
                ),
                None => println!("phase-reorder potential: n/a (scatter capture off)"),
            }
            println!("\nheaviest channels (original execution):");
            print!(
                "{}",
                overlap_sim::machine::chanstat::render_top(&r.original, 8)
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn trace_cmd(app: &str, ranks: &str, outdir: &str) -> ExitCode {
    let (bundle, run, _) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return bail(e),
    };
    let dir = Path::new(outdir);
    if let Err(e) = fs::create_dir_all(dir) {
        return fail(e.to_string());
    }
    for (name, body) in [
        ("original.trf", text::emit(&bundle.original)),
        ("overlapped.trf", text::emit(&bundle.overlapped)),
        ("ideal.trf", text::emit(&bundle.ideal)),
        (
            "access.acc",
            overlap_sim::trace::access_text::emit(&run.access),
        ),
    ] {
        let path = dir.join(name);
        if let Err(e) = fs::write(&path, body) {
            return fail(e.to_string());
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// Offline transformation: the paper's §III-C generation step applied
/// to artifacts on disk.
fn transform_cmd(trf: &str, acc: &str) -> ExitCode {
    let trace = match fs::read_to_string(trf)
        .map_err(|e| e.to_string())
        .and_then(|c| text::parse(&c).map_err(|e| e.to_string()))
    {
        Ok(t) => t,
        Err(e) => return fail(format!("{trf}: {e}")),
    };
    let access = match fs::read_to_string(acc)
        .map_err(|e| e.to_string())
        .and_then(|c| overlap_sim::trace::access_text::parse(&c).map_err(|e| e.to_string()))
    {
        Ok(a) => a,
        Err(e) => return fail(format!("{acc}: {e}")),
    };
    let out = overlap_sim::core::transform(&trace, &access, &ChunkPolicy::paper_default());
    print!("{}", text::emit(&out));
    ExitCode::SUCCESS
}

fn stats_cmd(path: &str) -> ExitCode {
    let trace = match fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|c| text::parse(&c).map_err(|e| e.to_string()))
    {
        Ok(t) => t,
        Err(e) => return fail(format!("{path}: {e}")),
    };
    println!("{}", overlap_sim::trace::TraceStats::of(&trace));
    let errs = overlap_sim::trace::validate(&trace);
    if errs.is_empty() {
        println!("validation:       ok");
        ExitCode::SUCCESS
    } else {
        println!("validation:       {} problems", errs.len());
        for e in errs.iter().take(10) {
            println!("  - {e}");
        }
        ExitCode::FAILURE
    }
}

fn waits_cmd(app: &str, ranks: &str) -> ExitCode {
    let (bundle, _, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return bail(e),
    };
    match run_variants(&bundle, &platform) {
        Ok(r) => {
            println!("== non-overlapped ==");
            println!("{}", overlap_sim::viz::wait_report(&r.original, 48));
            println!("== overlapped ==");
            println!("{}", overlap_sim::viz::wait_report(&r.overlapped, 48));
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn chunks_cmd(app: &str, ranks: &str) -> ExitCode {
    use overlap_sim::core::experiments::{chunk_search, default_candidates};
    let ranks_n: usize = match ranks.parse() {
        Ok(n) => n,
        Err(e) => return fail_usage(format!("bad rank count: {e}")),
    };
    let entry = match overlap_sim::apps::registry::by_name(app) {
        Some(e) => e,
        None => return fail_usage(format!("unknown app `{app}`")),
    };
    if let Err(e) = entry.validate_ranks(ranks_n) {
        return fail_usage(e);
    }
    let run = match entry.trace_run(ranks_n) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    let platform = marenostrum_for(entry.name);
    match chunk_search(&run, &platform, &default_candidates()) {
        Ok(s) => {
            println!("original runtime: {:.4}s", s.original_runtime);
            for p in &s.points {
                let marker = if p.chunks == s.best.chunks {
                    "  <= best"
                } else {
                    ""
                };
                println!(
                    "{:>3} chunks: {:.4}s (x{:.3}){}",
                    p.chunks, p.runtime, p.speedup_vs_original, marker
                );
            }
            println!(
                "recommendation: {} chunks (the paper fixes 4)",
                s.best.chunks
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn simulate_cmd(path: &str, rest: &[&str]) -> ExitCode {
    // Flags are parsed before the trace is read, so malformed flags
    // are reported as usage errors (exit 2) even when the file is also
    // missing or unreadable (exit 1).
    let topology = match parse_flag(rest, "--topology", ContentionModel::Bus) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let metrics_out = match parse_opt_flag::<String>(rest, "--metrics") {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let window_us = match parse_opt_flag::<f64>(rest, "--probe-window") {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let faults = match parse_opt_flag::<FaultSchedule>(rest, "--faults") {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let engine = match parse_flag(rest, "--engine", ReplayEngine::Sequential) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let ranks_flag = match parse_opt_flag::<usize>(rest, "--ranks") {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let want_critpath = rest.contains(&"--critpath");
    let stream = rest.contains(&"--stream");
    if stream && matches!(engine, ReplayEngine::Parallel { .. }) {
        return fail_usage(
            "--stream drives the sequential engine (the parallel compile pass \
             materializes the whole trace); drop --engine par"
                .to_string(),
        );
    }
    // The positional either names a trace file on disk or a pool app
    // (`ovlp list`); files win when both exist.
    let entry = overlap_sim::apps::registry::by_name(path);
    let is_file = Path::new(path).exists();
    let mut owned_trace = None;
    let mut owned_source: Option<Box<dyn overlap_sim::trace::TraceSource>> = None;
    if let (false, Some(entry)) = (is_file, &entry) {
        let ranks = ranks_flag.unwrap_or(entry.ranks);
        if let Err(e) = entry.validate_ranks(ranks) {
            return fail_usage(e);
        }
        if stream {
            match entry.source(ranks) {
                Ok(s) => owned_source = Some(s),
                Err(e) => return fail(e),
            }
        } else {
            match entry.trace_run(ranks) {
                Ok(run) => owned_trace = Some(run.trace),
                Err(e) => return fail(e),
            }
        }
    } else {
        if ranks_flag.is_some() {
            return fail_usage(format!(
                "--ranks applies to pool apps, but `{path}` is a trace file \
                 (rank count comes from the trace)"
            ));
        }
        let content = match fs::read_to_string(path) {
            Ok(c) => c,
            Err(e) => return fail(format!("{path}: {e}")),
        };
        match text::parse(&content) {
            Ok(t) => owned_trace = Some(t),
            Err(e) => return fail(e.to_string()),
        }
    }
    let input = match (&owned_trace, &owned_source) {
        // a trace file under --stream exercises the lazy supply too
        // (collectives expand on demand); results are bit-identical
        (Some(t), _) if stream => SimInput::Stream(t),
        (Some(t), _) => SimInput::Trace(t),
        (_, Some(s)) => SimInput::Stream(s.as_ref()),
        (None, None) => unreachable!("one input arm always fills"),
    };
    // Positional args are what remains once the flag pairs are stripped.
    let mut pos: Vec<&str> = Vec::new();
    let mut skip = false;
    for a in rest {
        if skip {
            skip = false;
        } else if matches!(*a, "--critpath" | "--stream") {
            // boolean flags, no value to strip
        } else if matches!(
            *a,
            "--topology" | "--faults" | "--metrics" | "--probe-window" | "--engine" | "--ranks"
        ) {
            skip = true;
        } else {
            pos.push(a);
        }
    }
    // Pool apps start from their calibrated Table I platform; trace
    // files keep the historical default platform.
    let base = match (&entry, is_file) {
        (Some(e), false) => marenostrum_for(e.name),
        _ => Platform::default(),
    };
    let mut platform = base.with_contention(topology);
    if let Some(f) = faults {
        platform = platform.with_faults(f);
    }
    if let Some(bw) = pos.first() {
        match bw.parse() {
            Ok(v) => platform.bandwidth_mbs = v,
            Err(e) => return fail_usage(format!("bad bandwidth: {e}")),
        }
    }
    if let Some(buses) = pos.get(1) {
        match buses.parse() {
            Ok(v) => platform.buses = v,
            Err(e) => return fail_usage(format!("bad bus count: {e}")),
        }
    }
    // Probing is on when either metrics flag is given; the replay
    // results are bit-identical with and without it (and with or
    // without --critpath — probes observe, never influence).
    let probing = metrics_out.is_some() || window_us.is_some();
    let window = if probing {
        match window_us {
            Some(us) if us > 0.0 => Some(Time::micros(us)),
            Some(us) => {
                return fail_usage(format!("bad --probe-window value `{us}`: must be positive"))
            }
            None => {
                // auto window: 1/256 of this trace's runtime, measured
                // by an extra (cheap, deterministic) unprobed replay
                let base = match input.run(&platform, engine) {
                    Ok(r) => r,
                    Err(e) => return fail(e.to_string()),
                };
                Some(auto_window(base.runtime()))
            }
        }
    } else {
        None
    };
    let (r, metrics, critpath) = match (window, want_critpath) {
        (None, false) => match input.run(&platform, engine) {
            Ok(r) => (r, None, None),
            Err(e) => return fail(e.to_string()),
        },
        (Some(w), false) => {
            let mut rec = WindowedRecorder::new(w);
            match input.run_probed(&platform, &mut rec, engine) {
                Ok(r) => (r, Some(rec.into_metrics()), None),
                Err(e) => return fail(e.to_string()),
            }
        }
        (None, true) => {
            let mut rec = CritPathRecorder::new();
            match input.run_probed(&platform, &mut rec, engine) {
                Ok(r) => (r, None, Some(rec.into_critpath())),
                Err(e) => return fail(e.to_string()),
            }
        }
        (Some(w), true) => {
            let mut tee = TeeSink(WindowedRecorder::new(w), CritPathRecorder::new());
            match input.run_probed(&platform, &mut tee, engine) {
                Ok(r) => {
                    let TeeSink(windowed, crit) = tee;
                    (r, Some(windowed.into_metrics()), Some(crit.into_critpath()))
                }
                Err(e) => return fail(e.to_string()),
            }
        }
    };
    println!(
        "runtime {:.6}s  ({} ranks, {} events, efficiency {:.1}%)",
        r.runtime(),
        r.timelines.len(),
        r.events_processed,
        100.0 * r.efficiency()
    );
    for (i, t) in r.totals.iter().enumerate() {
        println!(
            "  r{i}: compute {:.3}ms  wait-recv {:.3}ms  wait-send {:.3}ms  collective {:.3}ms",
            t.compute.as_secs() * 1e3,
            t.wait_recv.as_secs() * 1e3,
            t.wait_send.as_secs() * 1e3,
            t.collective.as_secs() * 1e3
        );
    }
    let links = overlap_sim::viz::link_report(&r, 12);
    if !links.is_empty() {
        println!("network: {} fair-share recomputations", r.network.reshares);
        print!("{links}");
    }
    if !r.fault_log.is_empty() {
        println!(
            "faults: {} applied, {} flows rerouted, {} reroute reshares",
            r.network.faults_applied, r.network.flows_rerouted, r.network.reroute_reshares
        );
        for f in &r.fault_log {
            println!("  {:.6}s  {}", f.at.as_secs(), f.desc);
        }
    }
    if let Some(cp) = &critpath {
        print!("{}", overlap_sim::viz::critpath_report(cp));
    }
    if let Some(m) = &metrics {
        let e = &m.engine;
        println!(
            "probe: {} windows of {:.1}us; events resume {} / transfer {} / flow {} / fault {}; \
             reshares {}; queue peak {}; records peak {}; in-flight peak {}",
            m.windows,
            m.window_s * 1e6,
            e.events_by_kind[0],
            e.events_by_kind[1],
            e.events_by_kind[2],
            e.events_by_kind[3],
            e.reshares,
            e.queue_peak,
            e.records_peak,
            e.max_in_flight
        );
        let heat = link_heatmap_ascii(m, 100, r.runtime, 12);
        if !heat.is_empty() {
            println!("link utilization over time:");
            print!("{heat}");
        }
        if let Some(out) = &metrics_out {
            // with --critpath the document upgrades to ovlp.metrics.v2:
            // the full v1 payload plus the critpath section
            let doc = match &critpath {
                Some(cp) => m.to_json_v2(cp),
                None => m.to_json(),
            };
            if let Err(e) = fs::write(out, doc) {
                return fail(e.to_string());
            }
            println!("wrote {out}");
        }
    }
    ExitCode::SUCCESS
}

/// `ovlp scale`: streamed summary-mode replay for weak-scaling studies.
/// Memory stays O(active ranks + in-flight traffic), so generated apps
/// run at 100k–1M ranks where `simulate` would exhaust the machine.
fn scale_cmd(app: &str, ranks: &str, rest: &[&str]) -> ExitCode {
    let ranks_n: usize = match ranks.parse() {
        Ok(n) => n,
        Err(e) => return fail_usage(format!("bad rank count: {e}")),
    };
    let entry = match overlap_sim::apps::registry::by_name(app) {
        Some(e) => e,
        None => return fail_usage(format!("unknown app `{app}` (try `ovlp list`)")),
    };
    if let Err(e) = entry.validate_ranks(ranks_n) {
        return fail_usage(e);
    }
    let mut platform = marenostrum_for(entry.name);
    if let Some(bw) = rest.first() {
        match bw.parse() {
            Ok(v) => platform.bandwidth_mbs = v,
            Err(e) => return fail_usage(format!("bad bandwidth: {e}")),
        }
    }
    if let Some(buses) = rest.get(1) {
        match buses.parse() {
            Ok(v) => platform.buses = v,
            Err(e) => return fail_usage(format!("bad bus count: {e}")),
        }
    }
    let source = match entry.source(ranks_n) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    match replay_scale(source.as_ref(), &platform) {
        Ok(rep) => {
            println!(
                "runtime {:.6}s  ({} ranks, {} events, efficiency {:.1}%)",
                rep.runtime.as_secs(),
                rep.nranks,
                rep.events_processed,
                100.0 * rep.efficiency()
            );
            println!(
                "transfers {}  records streamed {}",
                rep.transfers, rep.records_streamed
            );
            println!(
                "high-water marks: records resident {}  queue {}  msg slots {}  \
                 req slots {}  chan slots {}",
                rep.records_peak, rep.queue_peak, rep.msg_slots, rep.req_slots, rep.chan_slots
            );
            println!(
                "state totals: compute {:.3}s  wait-recv {:.3}s  wait-send {:.3}s  \
                 collective {:.3}s",
                rep.totals.compute.as_secs(),
                rep.totals.wait_recv.as_secs(),
                rep.totals.wait_send.as_secs(),
                rep.totals.collective.as_secs()
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

/// Probe window for commands without an explicit `--probe-window`:
/// 1/256 of the run's span, so every trace gets a usefully dense
/// timeline regardless of scale (floor of 1ns for degenerate runs).
fn auto_window(runtime_s: f64) -> Time {
    let w = runtime_s / 256.0;
    if w > 0.0 {
        Time::secs(w)
    } else {
        Time::secs(1e-9)
    }
}

fn gantt_cmd(app: &str, ranks: &str) -> ExitCode {
    let (bundle, _, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return bail(e),
    };
    match run_variants(&bundle, &platform) {
        Ok(r) => {
            println!(
                "{}",
                gantt_comparison(
                    "non-overlapped",
                    &r.original,
                    "overlapped",
                    &r.overlapped,
                    100
                )
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e.to_string()),
    }
}

fn advise_cmd(app: &str, ranks: &str) -> ExitCode {
    let (_, run, platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return bail(e),
    };
    let advice = overlap_sim::core::advisor::advise(
        &run.trace,
        &run.access,
        &platform,
        &ChunkPolicy::paper_default(),
    );
    print!("{}", advice.render());
    ExitCode::SUCCESS
}

fn report_cmd(app: &str, ranks: &str, out: &str, rest: &[&str]) -> ExitCode {
    let (bundle, run, mut platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return bail(e),
    };
    match parse_opt_flag::<ContentionModel>(rest, "--topology") {
        Ok(Some(model)) => platform = platform.with_contention(model),
        Ok(None) => {}
        Err(e) => return fail_usage(e),
    }
    let window = match probe_window_arg(rest, &bundle, &platform) {
        Ok(w) => w,
        Err(e) => return bail(e),
    };
    let want_critpath = rest.contains(&"--critpath");
    let (r, metrics, critpaths) = if want_critpath {
        match run_variants_full_with(&bundle, &platform, window, ReplayEngine::Sequential) {
            Ok((r, m, c)) => (r, m, Some(c)),
            Err(e) => return fail(e.to_string()),
        }
    } else {
        match run_variants_probed(&bundle, &platform, window) {
            Ok((r, m)) => (r, m, None),
            Err(e) => return fail(e.to_string()),
        }
    };
    let mut tables = table2a(&[(app.to_string(), production_stats(&run.access))]);
    tables.push('\n');
    tables.push_str(&table2b(&[(
        app.to_string(),
        consumption_stats(&run.access),
    )]));
    let advice = overlap_sim::core::advisor::advise(
        &run.trace,
        &run.access,
        &platform,
        &ChunkPolicy::paper_default(),
    )
    .render();
    let mut notes = vec![format!(
        "double-buffering demand: {:.1}% of candidate transfers",
        100.0 * overlap_sim::core::double_buffer_demand(&r.overlapped).fraction()
    )];
    if let Some(tail) = overlap_sim::core::patterns::mean_independent_tail(&run.access) {
        notes.push(format!(
            "phase-reorder potential (mean independent tail): {:.1}%",
            100.0 * tail
        ));
    }
    let inputs = overlap_sim::viz::ReportInputs {
        app: app.to_string(),
        ranks: r.original.totals.len(),
        platform: format!(
            "{} MB/s, {} us latency, {} buses, 4 chunks",
            platform.bandwidth_mbs, platform.latency_us, platform.buses
        ),
        pattern_tables: tables,
        advice,
        notes,
    };
    let cps = critpaths.as_ref();
    let html = overlap_sim::viz::report_full(
        &inputs,
        &[
            (
                "non-overlapped (original)",
                &r.original,
                Some(&metrics.original),
                cps.map(|c| &c.original),
            ),
            (
                "overlapped (measured patterns)",
                &r.overlapped,
                Some(&metrics.overlapped),
                cps.map(|c| &c.overlapped),
            ),
            (
                "overlapped (ideal patterns)",
                &r.ideal,
                Some(&metrics.ideal),
                cps.map(|c| &c.ideal),
            ),
        ],
    );
    if let Err(e) = fs::write(out, html) {
        return fail(e.to_string());
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

/// `ovlp sweep`: evaluate the app on a grid of platforms x chunk
/// policies using the parallel sweep engine. Results are bit-identical
/// for any `--jobs` value, and — via the shared [`SweepSpec`] grid
/// builder — byte-identical to what the `ovlp serve` daemon computes
/// for the same axes.
fn sweep_cmd(app: &str, ranks: &str, rest: &[&str]) -> ExitCode {
    use overlap_sim::core::sweep::{sweep, SweepCache};
    use overlap_sim::serve::{SpecError, SweepSpec};

    let ranks_n: usize = match ranks.parse() {
        Ok(n) => n,
        Err(e) => return fail_usage(format!("bad rank count: {e}")),
    };
    // Empty axis lists mean "use the spec's defaults", which are the
    // historical CLI defaults (chunks 1,2,4,8; 250 MB/s; preset buses;
    // bus topology; no fault scenarios).
    let mut spec = SweepSpec::new(app, ranks_n);
    spec.jobs = match parse_flag(rest, "--jobs", 1usize) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    spec.chunks = match parse_list_flag(rest, "--chunks", Vec::new()) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    spec.bandwidths = match parse_list_flag(rest, "--bw", Vec::new()) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    spec.buses = match parse_list_flag(rest, "--buses", Vec::new()) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    spec.topologies = match parse_list_flag(rest, "--topology", Vec::new()) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    spec.faults = match parse_list_flag::<FaultSchedule>(rest, "--faults", Vec::new()) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    spec.engine = match parse_flag(rest, "--engine", ReplayEngine::Sequential) {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let (grid, mut config) = match spec.build() {
        Ok(v) => v,
        Err(SpecError::Usage(m)) => return fail_usage(m),
        Err(SpecError::Trace(m)) => return fail(m),
    };
    let metrics_dir = match parse_opt_flag::<String>(rest, "--metrics") {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let window_us = match parse_opt_flag::<f64>(rest, "--probe-window") {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    if let Some(us) = window_us {
        if us <= 0.0 {
            return fail_usage(format!("bad --probe-window value `{us}`: must be positive"));
        }
    }
    // --metrics alone probes at the 100us default window; probed points
    // bypass the cache, so runtimes still replay deterministically.
    config.probe_window_us = match (&metrics_dir, window_us) {
        (_, Some(us)) => Some(us),
        (Some(_), None) => Some(100.0),
        (None, None) => None,
    };
    config.critpath = rest.contains(&"--critpath");
    let store_dir = match parse_opt_flag::<String>(rest, "--store") {
        Ok(v) => v,
        Err(e) => return fail_usage(e),
    };
    let cache = match &store_dir {
        Some(dir) => match SweepCache::persistent(dir) {
            Ok(c) => c,
            Err(e) => return fail(format!("--store {dir}: {e}")),
        },
        None => SweepCache::new(),
    };

    let report = sweep(&grid, &config, &cache);
    print!("{}", report.render_full(&grid));
    let jobs = config.jobs;
    if config.probe_window_us.is_some() || config.critpath {
        eprintln!(
            "({} points in {:.2}s with {} jobs; probed, cache bypassed)",
            report.outcomes.len(),
            report.elapsed.as_secs_f64(),
            jobs,
        );
    } else if let Some(dir) = &store_dir {
        let disk = cache.disk().map(|d| d.stats()).unwrap_or_default();
        eprintln!(
            "({} points in {:.2}s with {} jobs; {} simulated, {} from cache; \
             store {dir}: {} hits, {} misses)",
            report.outcomes.len(),
            report.elapsed.as_secs_f64(),
            jobs,
            report.cache_misses,
            report.cache_hits,
            disk.hits,
            disk.misses,
        );
    } else {
        eprintln!(
            "({} points in {:.2}s with {} jobs; {} simulated, {} from cache)",
            report.outcomes.len(),
            report.elapsed.as_secs_f64(),
            jobs,
            report.cache_misses,
            report.cache_hits,
        );
    }
    if let Some(dirname) = &metrics_dir {
        let dir = Path::new(dirname);
        if let Err(e) = fs::create_dir_all(dir) {
            return fail(e.to_string());
        }
        let mut written = 0usize;
        for p in report.outcomes.iter().flatten() {
            if let Some(m) = &p.metrics {
                for (label, doc) in m.labelled() {
                    let name = format!(
                        "{}-p{}c{}-{label}.json",
                        p.app, p.point.platform, p.point.policy
                    );
                    if let Err(e) = fs::write(dir.join(&name), doc.to_json()) {
                        return fail(e.to_string());
                    }
                    written += 1;
                }
            }
        }
        eprintln!("wrote {written} metric documents to {}", dir.display());
    }
    if report.err_count() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `ovlp serve`: run the sweep-as-a-service HTTP daemon (see
/// `docs/serving.md` for the protocol). With `--store`, results are
/// shared with `ovlp sweep --store` and survive restarts.
fn serve_cmd(rest: &[&str]) -> ExitCode {
    use overlap_sim::serve::server::install_termination_handler;
    use overlap_sim::serve::{ServeConfig, Server};
    use std::io::Write;
    use std::time::Duration;

    // The serve arg list is flag pairs only; a stray token is a typo,
    // not a positional, so reject it up front.
    let mut i = 0;
    while i < rest.len() {
        match rest[i] {
            "--addr" | "--store" | "--max-running" | "--max-conn" | "--point-deadline"
            | "--retries" | "--backoff-ms" | "--drain-grace" => i += 2,
            other => return fail_usage(format!("unknown `serve` argument `{other}`")),
        }
    }
    let defaults = ServeConfig::default();
    let default_deadline_s = defaults.point_deadline.map(|d| d.as_secs()).unwrap_or(0);
    let default_grace_s = defaults.drain_grace.as_secs();
    let config = ServeConfig {
        addr: match parse_flag(rest, "--addr", defaults.addr) {
            Ok(v) => v,
            Err(e) => return fail_usage(e),
        },
        store_dir: match parse_opt_flag::<String>(rest, "--store") {
            Ok(v) => v.map(std::path::PathBuf::from),
            Err(e) => return fail_usage(e),
        },
        max_running: match parse_flag(rest, "--max-running", defaults.max_running) {
            Ok(v) => v,
            Err(e) => return fail_usage(e),
        },
        max_connections: match parse_flag(rest, "--max-conn", defaults.max_connections) {
            Ok(v) => v,
            Err(e) => return fail_usage(e),
        },
        // Seconds; 0 disables the per-attempt watchdog.
        point_deadline: match parse_flag(rest, "--point-deadline", default_deadline_s) {
            Ok(0) => None,
            Ok(s) => Some(Duration::from_secs(s)),
            Err(e) => return fail_usage(e),
        },
        max_attempts: match parse_flag(rest, "--retries", defaults.max_attempts) {
            Ok(v) => v,
            Err(e) => return fail_usage(e),
        },
        backoff_ms: match parse_flag(rest, "--backoff-ms", defaults.backoff_ms) {
            Ok(v) => v,
            Err(e) => return fail_usage(e),
        },
        drain_grace: match parse_flag(rest, "--drain-grace", default_grace_s) {
            Ok(s) => Duration::from_secs(s),
            Err(e) => return fail_usage(e),
        },
        chaos: std::env::var("OVLP_CHAOS").ok().filter(|s| !s.is_empty()),
    };
    if config.max_running == 0 {
        return fail_usage("--max-running must be at least 1".to_string());
    }
    if config.max_connections == 0 {
        return fail_usage("--max-conn must be at least 1".to_string());
    }
    if config.max_attempts == 0 {
        return fail_usage("--retries must be at least 1 (it counts total attempts)".to_string());
    }
    let addr = config.addr.clone();
    let server = match Server::bind(config.clone()) {
        Ok(s) => s,
        Err(e) => return fail(format!("bind {addr}: {e}")),
    };
    match server.local_addr() {
        Ok(bound) => println!("ovlp serve listening on http://{bound}"),
        Err(e) => return fail(e.to_string()),
    }
    match &config.store_dir {
        Some(dir) => println!("store: {}", dir.display()),
        None => println!("store: in-memory (gone on exit; pass --store dir to persist)"),
    }
    if config.chaos.is_some() {
        println!("chaos: fault injection armed via OVLP_CHAOS");
    }
    // Scripts (and the CI smoke job) wait for the banner to know the
    // listener is ready; make sure it is not stuck in the pipe buffer.
    let _ = std::io::stdout().flush();

    // SIGTERM/SIGINT → drain: the handler only sets a flag; this
    // watcher thread notices it and runs the bounded drain, so the
    // daemon always exits 0 with a flushed journal.
    let term = install_termination_handler();
    let handle = match server.handle() {
        Ok(h) => h,
        Err(e) => return fail(e.to_string()),
    };
    let grace = config.drain_grace;
    std::thread::spawn(move || {
        while !term.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("ovlp serve: termination signal, draining (grace {grace:?})");
        handle.drain(grace);
    });
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e.to_string()),
    }
}

/// `--flag value` lookup with a default.
fn parse_flag<T: std::str::FromStr>(args: &[&str], flag: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| *a == flag) {
        None => Ok(default),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{flag} needs a value")),
            Some(v) => v
                .parse()
                .map_err(|e| format!("bad {flag} value `{v}`: {e}")),
        },
    }
}

/// `--flag value` lookup returning `None` when the flag is absent.
fn parse_opt_flag<T: std::str::FromStr>(args: &[&str], flag: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| *a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{flag} needs a value")),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| format!("bad {flag} value `{v}`: {e}")),
        },
    }
}

/// `--flag a,b,c` lookup with a default list.
fn parse_list_flag<T: std::str::FromStr>(
    args: &[&str],
    flag: &str,
    default: Vec<T>,
) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| *a == flag) {
        None => Ok(default),
        Some(i) => match args.get(i + 1) {
            None => Err(format!("{flag} needs a comma-separated list")),
            Some(v) => v
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse()
                        .map_err(|e| format!("bad {flag} entry `{s}`: {e}"))
                })
                .collect(),
        },
    }
}

fn paraver_cmd(app: &str, ranks: &str, outdir: &str, rest: &[&str]) -> ExitCode {
    let (bundle, _, mut platform) = match prepare(app, ranks) {
        Ok(v) => v,
        Err(e) => return bail(e),
    };
    match parse_opt_flag::<ContentionModel>(rest, "--topology") {
        Ok(Some(model)) => platform = platform.with_contention(model),
        Ok(None) => {}
        Err(e) => return fail_usage(e),
    }
    let window = match probe_window_arg(rest, &bundle, &platform) {
        Ok(w) => w,
        Err(e) => return bail(e),
    };
    let (r, metrics) = match run_variants_probed(&bundle, &platform, window) {
        Ok(v) => v,
        Err(e) => return fail(e.to_string()),
    };
    let dir = Path::new(outdir);
    if let Err(e) = fs::create_dir_all(dir) {
        return fail(e.to_string());
    }
    let span = r.original.runtime.max(r.overlapped.runtime);
    for (label, sim, m) in [
        ("original", &r.original, &metrics.original),
        ("overlapped", &r.overlapped, &metrics.overlapped),
    ] {
        let e = paraver::export_with_metrics(&format!("{app}-{label}"), sim, Some(m));
        for (ext, body) in [("prv", e.prv), ("pcf", e.pcf), ("row", e.row)] {
            let path = dir.join(format!("{app}-{label}.{ext}"));
            if let Err(err) = fs::write(&path, body) {
                return fail(err.to_string());
            }
        }
        let svg = timeline_svg(&format!("{app} {label}"), sim, 1200, span);
        if let Err(err) = fs::write(dir.join(format!("{app}-{label}.svg")), svg) {
            return fail(err.to_string());
        }
    }
    println!("wrote Paraver + SVG artifacts to {}", dir.display());
    ExitCode::SUCCESS
}

/// Resolve `--probe-window` for the app-level commands: explicit value
/// in microseconds, else 1/256 of the original variant's runtime
/// (one extra unprobed replay to measure it).
fn probe_window_arg(
    rest: &[&str],
    bundle: &VariantBundle,
    platform: &Platform,
) -> Result<Time, CliError> {
    match parse_opt_flag::<f64>(rest, "--probe-window").map_err(CliError::Usage)? {
        Some(us) if us > 0.0 => Ok(Time::micros(us)),
        Some(us) => Err(CliError::Usage(format!(
            "bad --probe-window value `{us}`: must be positive"
        ))),
        None => {
            let base =
                simulate(&bundle.original, platform).map_err(|e| CliError::Run(e.to_string()))?;
            Ok(auto_window(base.runtime()))
        }
    }
}
