#!/usr/bin/env python3
"""Validate an `ovlp.bench_scale.v1` document (stdlib only, no deps).

Checks the weak-scaling trajectory contract emitted by `scale_bench`:
key presence and types, strictly increasing rank counts, and — the
point of the streaming work — that the records resident high-water
mark stays a small fraction of the records streamed at every point
(sublinear memory: a materialized replay would have the two equal).

Usage: check_scale_bench.py <BENCH_scale.json> [--min-ranks N]

`--min-ranks N` additionally requires the largest point to reach at
least N ranks (CI's scale-smoke job pins 10000; the committed document
carries 100000).
"""

import json
import sys

POINT_KEYS = {
    "ranks": int,
    "records_total": int,
    "records_peak": int,
    "events": int,
    "transfers": int,
    "queue_peak": int,
    "msg_slots": int,
    "req_slots": int,
    "chan_slots": int,
    "wall_s": float,
    "events_per_sec": float,
    "sim_runtime_s": float,
    "efficiency": float,
}

# A streamed replay keeps O(active) records resident. Allow a generous
# margin over "strictly less" so tiny ladders don't flap, while still
# rejecting anything close to full materialization.
RESIDENT_FRACTION_CAP = 0.5


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, path, msg):
    if not cond:
        fail(path, msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check(path, min_ranks):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    expect(doc.get("schema") == "ovlp.bench_scale.v1", path, f"bad schema id {doc.get('schema')!r}")
    expect(isinstance(doc.get("quick"), bool), path, "quick not a bool")
    expect(isinstance(doc.get("app"), str) and doc["app"], path, "app missing")
    points = doc.get("points")
    expect(isinstance(points, list) and points, path, "points missing or empty")

    prev_ranks = 0
    for i, p in enumerate(points):
        expect(isinstance(p, dict), path, f"point {i} is not an object")
        for key, kind in POINT_KEYS.items():
            v = p.get(key)
            if kind is int:
                expect(isinstance(v, int) and v >= 0, path, f"point {i}: bad {key} {v!r}")
            else:
                expect(is_num(v) and v >= 0, path, f"point {i}: bad {key} {v!r}")
        rss = p.get("rss_peak_bytes")
        expect(rss is None or (isinstance(rss, int) and rss > 0), path, f"point {i}: bad rss_peak_bytes {rss!r}")
        expect(p["ranks"] > prev_ranks, path, f"point {i}: ranks not strictly increasing")
        prev_ranks = p["ranks"]
        expect(
            p["records_peak"] <= RESIDENT_FRACTION_CAP * p["records_total"],
            path,
            f"point {i} ({p['ranks']} ranks): {p['records_peak']} records resident "
            f"of {p['records_total']} streamed — memory is not sublinear",
        )

    top = points[-1]["ranks"]
    if min_ranks is not None:
        expect(
            top >= min_ranks,
            path,
            f"largest point is {top} ranks, want >= {min_ranks}",
        )
    frac = points[-1]["records_peak"] / max(points[-1]["records_total"], 1)
    print(
        f"{path}: ok ({len(points)} points, top {top} ranks, "
        f"resident peak {100.0 * frac:.2f}% of streamed records)"
    )


if __name__ == "__main__":
    args = sys.argv[1:]
    min_ranks = None
    if "--min-ranks" in args:
        i = args.index("--min-ranks")
        try:
            min_ranks = int(args[i + 1])
        except (IndexError, ValueError):
            print("--min-ranks needs an integer", file=sys.stderr)
            sys.exit(2)
        del args[i : i + 2]
    if not args:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in args:
        check(p, min_ranks)
