#!/usr/bin/env python3
"""Validate the `ovlp serve` wire documents (stdlib only, no deps).

Dispatches on the `schema` field and checks the structural contracts
documented in docs/serving.md:

* `ovlp.sweep-job.v1`      — submission request (axes, types, ranges)
* `ovlp.sweep-accepted.v1` — submission response
* `ovlp.sweep-point.v1`    — one NDJSON stream line per grid point
* `ovlp.sweep-done.v1`     — stream terminator (counts must add up)
* `ovlp.sweep-summary.v1`  — job summary with store counters
* `ovlp.store-stats.v1`    — daemon-wide store counters
* `ovlp.health.v1`         — live / ready / draining probe document
* `ovlp.journal.v1`        — crash-recovery job journal (header line
                             followed by `{"point":N}` / `{"end":...}`)

A file may hold one JSON document or NDJSON (one document per line);
streams are additionally checked for canonical order: indexes 0..n-1
followed by exactly one `done` line whose counts match. Journal files
are validated whole: one header, point indexes in range and unique,
at most one end marker (and nothing after it).

Usage: check_sweep_job_schema.py <doc.json|stream.ndjson> [more ...]
"""

import json
import sys


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, path, msg):
    if not cond:
        fail(path, msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def is_count(x):
    return isinstance(x, int) and not isinstance(x, bool) and x >= 0


def no_unknown_keys(path, doc, known):
    for key in doc:
        expect(key in known, path, f"unknown field {key!r}")


def check_job(path, doc):
    no_unknown_keys(
        path,
        doc,
        {
            "schema", "app", "ranks", "jobs", "chunks", "bw", "buses", "topology", "faults",
            "engine", "critpath",
        },
    )
    expect(isinstance(doc.get("app"), str) and doc["app"], path, "app missing or empty")
    expect(is_count(doc.get("ranks")) and doc["ranks"] >= 1, path, "ranks must be >= 1")
    if "jobs" in doc:
        expect(is_count(doc["jobs"]) and doc["jobs"] >= 1, path, "jobs must be >= 1")
    for axis, pred, what in (
        ("chunks", lambda v: is_count(v) and 1 <= v < 256, "a chunk count in 1..256"),
        ("bw", lambda v: is_num(v) and v > 0, "a positive bandwidth"),
        ("buses", is_count, "a non-negative bus count"),
        ("topology", lambda v: isinstance(v, str) and v, "a topology spec string"),
        ("faults", lambda v: isinstance(v, str) and v, "a fault schedule string"),
    ):
        if axis in doc:
            expect(isinstance(doc[axis], list), path, f"{axis} is not an array")
            for v in doc[axis]:
                expect(pred(v), path, f"{axis} entry {v!r} is not {what}")
    if "engine" in doc:
        e = doc["engine"]
        ok = e in ("seq", "par") or (e.startswith("par:") and e[4:].isdigit() and int(e[4:]) >= 1)
        expect(isinstance(e, str) and ok, path, f"engine {e!r} is not seq|par[:N]")
    if "critpath" in doc:
        expect(isinstance(doc["critpath"], bool), path, "critpath must be a boolean")


def check_accepted(path, doc):
    no_unknown_keys(path, doc, {"schema", "job", "points", "stream", "report"})
    expect(isinstance(doc.get("job"), str) and doc["job"], path, "job id missing")
    expect(is_count(doc.get("points")), path, "points must be a count")
    for key in ("stream", "report"):
        expect(
            isinstance(doc.get(key), str) and doc[key].startswith("/v1/sweeps/"),
            path,
            f"{key} is not a /v1/sweeps/ path",
        )


FAIL_KINDS = {"platform", "transform", "sim", "panic", "timeout", "quarantined", "cancelled"}


def check_point(path, doc):
    if "error" in doc:
        no_unknown_keys(path, doc, {"schema", "index", "app", "platform", "policy", "kind", "error"})
        expect(isinstance(doc["error"], str) and doc["error"], path, "error must be a message")
        expect(doc.get("kind") in FAIL_KINDS, path, f"kind {doc.get('kind')!r} is not a failure kind")
    else:
        no_unknown_keys(
            path,
            doc,
            {
                "schema", "index", "app", "platform", "policy", "key",
                "t_original", "t_overlapped", "t_ideal", "bits", "hash", "critpath",
            },
        )
        for key in ("t_original", "t_overlapped", "t_ideal"):
            expect(is_num(doc.get(key)) and doc[key] >= 0, path, f"bad {key}")
        for key, width in (("key", 16), ("hash", 16)):
            v = doc.get(key)
            expect(
                isinstance(v, str) and len(v) == width and all(c in "0123456789abcdef" for c in v),
                path,
                f"{key} is not {width} hex digits",
            )
        bits = doc.get("bits")
        expect(
            isinstance(bits, str)
            and len(bits.split(":")) == 3
            and all(len(p) == 16 for p in bits.split(":")),
            path,
            "bits is not three 16-digit hex words",
        )
    expect(is_count(doc.get("index")), path, "index must be a count")
    expect(isinstance(doc.get("app"), str) or "error" in doc, path, "app missing")
    for key in ("platform", "policy"):
        expect(is_count(doc.get(key)), path, f"{key} must be a count")


def check_done(path, doc):
    no_unknown_keys(path, doc, {"schema", "points", "ok", "failed"})
    for key in ("points", "ok", "failed"):
        expect(is_count(doc.get(key)), path, f"{key} must be a count")
    expect(doc["ok"] + doc["failed"] == doc["points"], path, "ok + failed != points")


def check_summary(path, doc):
    no_unknown_keys(
        path,
        doc,
        {
            "schema", "job", "points", "completed", "ok", "failed", "done", "cancelled",
            "store_hits", "store_misses", "coalesced", "elapsed_ms",
        },
    )
    expect(isinstance(doc.get("job"), str) and doc["job"], path, "job id missing")
    for key in ("points", "completed", "ok", "failed", "store_hits", "store_misses", "coalesced"):
        expect(is_count(doc.get(key)), path, f"{key} must be a count")
    expect(isinstance(doc.get("done"), bool), path, "done must be a bool")
    expect(isinstance(doc.get("cancelled"), bool), path, "cancelled must be a bool")
    expect(doc["completed"] <= doc["points"], path, "completed > points")
    expect(doc["ok"] + doc["failed"] == doc["completed"], path, "ok + failed != completed")
    if doc["done"]:
        expect(doc["completed"] == doc["points"], path, "done but not all points completed")
        expect(is_num(doc.get("elapsed_ms")) and doc["elapsed_ms"] >= 0, path, "bad elapsed_ms")


def check_store_stats(path, doc):
    no_unknown_keys(
        path, doc, {"schema", "memory_entries", "hits", "misses", "coalesced", "disk"}
    )
    for key in ("memory_entries", "hits", "misses", "coalesced"):
        expect(is_count(doc.get(key)), path, f"{key} must be a count")
    disk = doc.get("disk")
    if disk is not None:
        expect(isinstance(disk, dict), path, "disk must be an object or null")
        no_unknown_keys(
            path,
            disk,
            {"entries", "hits", "misses", "corrupt", "orphans_removed", "bytes_read", "bytes_written"},
        )
        for key in ("entries", "hits", "misses", "corrupt", "orphans_removed",
                    "bytes_read", "bytes_written"):
            expect(is_count(disk.get(key)), path, f"disk.{key} must be a count")


def check_health(path, doc):
    no_unknown_keys(path, doc, {"schema", "live", "ready", "draining", "jobs", "unfinished"})
    for key in ("live", "ready", "draining"):
        expect(isinstance(doc.get(key), bool), path, f"{key} must be a bool")
    for key in ("jobs", "unfinished"):
        expect(is_count(doc.get(key)), path, f"{key} must be a count")
    expect(doc["live"], path, "a served health document is always live")
    expect(doc["ready"] != doc["draining"], path, "ready must be the negation of draining")


def check_journal_header(path, doc):
    no_unknown_keys(path, doc, {"schema", "job", "points", "spec"})
    expect(isinstance(doc.get("job"), str) and doc["job"], path, "job id missing")
    expect(is_count(doc.get("points")), path, "points must be a count")
    spec = doc.get("spec")
    expect(isinstance(spec, dict), path, "spec must be the submitted job object")
    expect(spec.get("schema") == "ovlp.sweep-job.v1", path, "spec is not an ovlp.sweep-job.v1")
    check_job(path, spec)


def check_journal(path, docs):
    """A whole journal file: header, then point / end body lines."""
    check_journal_header(path, docs[0])
    points = docs[0]["points"]
    seen = set()
    ended = False
    for i, line in enumerate(docs[1:], start=2):
        expect(not ended, path, f"line {i}: record after the end marker")
        if "point" in line:
            no_unknown_keys(path, line, {"point"})
            p = line["point"]
            expect(is_count(p) and p < points, path, f"line {i}: point {p!r} out of range")
            expect(p not in seen, path, f"line {i}: duplicate point {p}")
            seen.add(p)
        elif "end" in line:
            no_unknown_keys(path, line, {"end"})
            expect(line["end"] in ("complete", "cancelled"), path, f"line {i}: bad end marker")
            ended = True
        else:
            fail(path, f"line {i}: neither a point nor an end marker")
    kind = "complete" if ended else "incomplete"
    print(f"{path}: ok (journal, {len(seen)}/{points} points, {kind})")


CHECKS = {
    "ovlp.sweep-job.v1": check_job,
    "ovlp.sweep-accepted.v1": check_accepted,
    "ovlp.sweep-point.v1": check_point,
    "ovlp.sweep-done.v1": check_done,
    "ovlp.sweep-summary.v1": check_summary,
    "ovlp.store-stats.v1": check_store_stats,
    "ovlp.health.v1": check_health,
}


def check_doc(path, doc):
    expect(isinstance(doc, dict), path, "document is not a JSON object")
    schema = doc.get("schema")
    expect(schema in CHECKS, path, f"unknown schema id {schema!r}")
    CHECKS[schema](path, doc)
    return schema


def check(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    expect(text.strip(), path, "empty file")
    # A file is either one JSON document (possibly pretty-printed) or
    # NDJSON with one document per line.
    try:
        docs = [json.loads(text)]
    except json.JSONDecodeError:
        docs = []
        for i, line in enumerate(text.splitlines()):
            if not line.strip():
                continue
            try:
                docs.append(json.loads(line))
            except json.JSONDecodeError as e:
                fail(path, f"line {i + 1}: bad JSON: {e}")

    # Journal body lines carry no schema field; the header routes the
    # whole file.
    if docs and isinstance(docs[0], dict) and docs[0].get("schema") == "ovlp.journal.v1":
        check_journal(path, docs)
        return

    schemas = [check_doc(path, d) for d in docs]

    # NDJSON streams must be in canonical order and internally
    # consistent: points 0..n-1, then one matching `done` line.
    if "ovlp.sweep-point.v1" in schemas or schemas.count("ovlp.sweep-done.v1") > 0:
        expect(
            schemas[-1] == "ovlp.sweep-done.v1"
            and all(s == "ovlp.sweep-point.v1" for s in schemas[:-1]),
            path,
            "stream is not points followed by one done line",
        )
        points, done = docs[:-1], docs[-1]
        for i, p in enumerate(points):
            expect(p["index"] == i, path, f"stream out of order at line {i + 1}")
        expect(done["points"] == len(points), path, "done.points != streamed points")
        failed = sum(1 for p in points if "error" in p)
        expect(done["failed"] == failed, path, "done.failed != streamed errors")

    kinds = ", ".join(sorted(set(schemas)))
    print(f"{path}: ok ({len(docs)} document(s): {kinds})")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in sys.argv[1:]:
        check(p)
