#!/usr/bin/env python3
"""Validate an `ovlp.metrics.v1` document (stdlib only, no deps).

Checks the structural contract documented in docs/observability.md:
key presence, types, series lengths (every per-window series has
exactly `windows` entries), and value ranges where the schema promises
them (occupancy fractions and utilization in [0, 1 + eps]).

Usage: check_metrics_schema.py <metrics.json> [more.json ...]
"""

import json
import sys

EPS = 1e-9


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, path, msg):
    if not cond:
        fail(path, msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_series(path, name, series, n, kind):
    expect(isinstance(series, list), path, f"{name} is not an array")
    expect(len(series) == n, path, f"{name} has {len(series)} entries, want {n}")
    for v in series:
        if kind == "count":
            expect(isinstance(v, int) and v >= 0, path, f"{name} entry {v!r} not a count")
        elif kind == "fraction":
            expect(
                v is None or (is_num(v) and -EPS <= v <= 1.0 + EPS),
                path,
                f"{name} entry {v!r} outside [0, 1]",
            )
        else:  # non-negative number (seconds, bytes)
            expect(v is None or (is_num(v) and v >= -EPS), path, f"{name} entry {v!r} negative")


def check(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    expect(doc.get("schema") == "ovlp.metrics.v1", path, f"bad schema id {doc.get('schema')!r}")
    for key in ("window_s", "runtime_s"):
        expect(is_num(doc.get(key)) and doc[key] >= 0, path, f"bad {key}")
    n = doc.get("windows")
    expect(isinstance(n, int) and n >= 1, path, "windows must be a positive integer")

    expect(isinstance(doc.get("ranks"), list) and doc["ranks"], path, "ranks missing or empty")
    for i, rank in enumerate(doc["ranks"]):
        occ = rank.get("occupancy")
        expect(isinstance(occ, dict), path, f"rank {i}: occupancy missing")
        for state in ("compute", "wait_recv", "wait_send", "collective"):
            check_series(path, f"rank {i} occupancy.{state}", occ.get(state), n, "fraction")
        check_series(path, f"rank {i} injected_bytes", rank.get("injected_bytes"), n, "count")

    expect(isinstance(doc.get("links"), list), path, "links missing")
    for i, link in enumerate(doc["links"]):
        expect(isinstance(link.get("label"), str), path, f"link {i}: label missing")
        expect(is_num(link.get("capacity_bps")), path, f"link {i}: capacity_bps missing")
        check_series(path, f"link {i} utilization", link.get("utilization"), n, "fraction")
        check_series(path, f"link {i} bytes", link.get("bytes"), n, "number")
        expect(isinstance(link.get("faulted"), bool), path, f"link {i}: faulted not a bool")

    net = doc.get("net")
    expect(isinstance(net, dict), path, "net missing")
    for key in ("in_flight", "queue_depth", "buses_busy", "ports_busy"):
        check_series(path, f"net.{key}", net.get(key), n, "count")

    eng = doc.get("engine")
    expect(isinstance(eng, dict), path, "engine missing")
    events = eng.get("events")
    expect(isinstance(events, dict), path, "engine.events missing")
    for key in ("resume", "transfer_done", "flow_done", "fault"):
        expect(isinstance(events.get(key), int), path, f"engine.events.{key} missing")
    epw = eng.get("events_per_window")
    expect(isinstance(epw, list) and len(epw) == n, path, "engine.events_per_window length")
    for quad in epw:
        expect(
            isinstance(quad, list) and len(quad) == 4 and all(isinstance(v, int) for v in quad),
            path,
            f"events_per_window entry {quad!r} is not an integer quadruple",
        )
    check_series(path, "engine.reshares_per_window", eng.get("reshares_per_window"), n, "count")
    for key in (
        "reshares",
        "stale_popped",
        "queue_peak",
        "max_in_flight",
        "faults_applied",
        "flows_rerouted",
        "reroute_reshares",
    ):
        expect(isinstance(eng.get(key), int) and eng[key] >= 0, path, f"bad engine.{key}")

    print(f"{path}: ok ({n} windows, {len(doc['ranks'])} ranks, {len(doc['links'])} links)")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in sys.argv[1:]:
        check(p)
