#!/usr/bin/env python3
"""Validate an `ovlp.metrics.v1` or `ovlp.metrics.v2` document
(stdlib only, no deps).

Checks the structural contract documented in docs/observability.md:
key presence, types, series lengths (every per-window series has
exactly `windows` entries), and value ranges where the schema promises
them (occupancy fractions and utilization in [0, 1 + eps]).

A v2 document is a v1 document plus a `critpath` section (emitted by
`--critpath`); the checker additionally verifies the causal-path
contract — segments partition `[0, runtime]` without gaps, blame names
come from the published taxonomy, and the blame totals sum to the
runtime.

Usage: check_metrics_schema.py <metrics.json> [more.json ...]
"""

import json
import math
import sys

EPS = 1e-9

BLAME_CLASSES = (
    "compute",
    "transfer-latency",
    "transfer-bandwidth",
    "contention-stall",
    "endpoint-wait",
    "fault-reroute",
)


def fail(path, msg):
    print(f"{path}: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, path, msg):
    if not cond:
        fail(path, msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_series(path, name, series, n, kind):
    expect(isinstance(series, list), path, f"{name} is not an array")
    expect(len(series) == n, path, f"{name} has {len(series)} entries, want {n}")
    for v in series:
        if kind == "count":
            expect(isinstance(v, int) and v >= 0, path, f"{name} entry {v!r} not a count")
        elif kind == "fraction":
            expect(
                v is None or (is_num(v) and -EPS <= v <= 1.0 + EPS),
                path,
                f"{name} entry {v!r} outside [0, 1]",
            )
        else:  # non-negative number (seconds, bytes)
            expect(v is None or (is_num(v) and v >= -EPS), path, f"{name} entry {v!r} negative")


def check_critpath(path, doc):
    cp = doc.get("critpath")
    expect(isinstance(cp, dict), path, "v2 document without a critpath section")
    runtime = cp.get("runtime_s")
    expect(is_num(runtime) and runtime >= 0, path, "critpath.runtime_s missing")
    expect(isinstance(cp.get("exact"), bool), path, "critpath.exact not a bool")

    totals = cp.get("blame_totals_s")
    expect(isinstance(totals, dict), path, "critpath.blame_totals_s missing")
    expect(
        tuple(totals.keys()) == BLAME_CLASSES,
        path,
        f"blame_totals_s keys {list(totals.keys())} != published taxonomy",
    )
    for name, v in totals.items():
        expect(is_num(v) and v >= -EPS, path, f"blame_totals_s.{name} {v!r} negative")
    expect(
        math.isclose(math.fsum(totals.values()), runtime, rel_tol=1e-12, abs_tol=1e-15),
        path,
        f"blame totals sum {math.fsum(totals.values())!r} != runtime {runtime!r}",
    )

    ranks = cp.get("rank_totals_s")
    expect(isinstance(ranks, list) and ranks, path, "critpath.rank_totals_s missing or empty")
    for i, v in enumerate(ranks):
        expect(is_num(v) and v >= -EPS, path, f"rank_totals_s[{i}] {v!r} negative")

    channels = cp.get("channel_totals_s")
    expect(isinstance(channels, list), path, "critpath.channel_totals_s missing")
    for i, ch in enumerate(channels):
        for key in ("src", "dst"):
            expect(
                isinstance(ch.get(key), int) and ch[key] >= 0,
                path,
                f"channel_totals_s[{i}].{key} missing",
            )
        expect(is_num(ch.get("seconds")), path, f"channel_totals_s[{i}].seconds missing")

    segments = cp.get("segments")
    expect(isinstance(segments, list) and segments, path, "critpath.segments missing or empty")
    cursor = 0.0
    for i, seg in enumerate(segments):
        expect(
            isinstance(seg.get("rank"), int) and 0 <= seg["rank"] < len(ranks),
            path,
            f"segment {i}: bad rank",
        )
        expect(seg.get("blame") in BLAME_CLASSES, path, f"segment {i}: blame {seg.get('blame')!r}")
        start, end = seg.get("start_s"), seg.get("end_s")
        expect(is_num(start) and is_num(end) and start < end, path, f"segment {i}: bad interval")
        expect(start == cursor, path, f"segment {i}: starts at {start!r}, expected {cursor!r}")
        cursor = end
    expect(cursor == runtime, path, f"path ends at {cursor!r}, runtime is {runtime!r}")


def check(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    schema = doc.get("schema")
    expect(schema in ("ovlp.metrics.v1", "ovlp.metrics.v2"), path, f"bad schema id {schema!r}")
    if schema == "ovlp.metrics.v2":
        check_critpath(path, doc)
    else:
        expect("critpath" not in doc, path, "v1 document carrying a critpath section")
    for key in ("window_s", "runtime_s"):
        expect(is_num(doc.get(key)) and doc[key] >= 0, path, f"bad {key}")
    n = doc.get("windows")
    expect(isinstance(n, int) and n >= 1, path, "windows must be a positive integer")

    expect(isinstance(doc.get("ranks"), list) and doc["ranks"], path, "ranks missing or empty")
    for i, rank in enumerate(doc["ranks"]):
        occ = rank.get("occupancy")
        expect(isinstance(occ, dict), path, f"rank {i}: occupancy missing")
        for state in ("compute", "wait_recv", "wait_send", "collective"):
            check_series(path, f"rank {i} occupancy.{state}", occ.get(state), n, "fraction")
        check_series(path, f"rank {i} injected_bytes", rank.get("injected_bytes"), n, "count")

    expect(isinstance(doc.get("links"), list), path, "links missing")
    for i, link in enumerate(doc["links"]):
        expect(isinstance(link.get("label"), str), path, f"link {i}: label missing")
        expect(is_num(link.get("capacity_bps")), path, f"link {i}: capacity_bps missing")
        check_series(path, f"link {i} utilization", link.get("utilization"), n, "fraction")
        check_series(path, f"link {i} bytes", link.get("bytes"), n, "number")
        expect(isinstance(link.get("faulted"), bool), path, f"link {i}: faulted not a bool")

    net = doc.get("net")
    expect(isinstance(net, dict), path, "net missing")
    for key in ("in_flight", "queue_depth", "buses_busy", "ports_busy"):
        check_series(path, f"net.{key}", net.get(key), n, "count")

    eng = doc.get("engine")
    expect(isinstance(eng, dict), path, "engine missing")
    events = eng.get("events")
    expect(isinstance(events, dict), path, "engine.events missing")
    for key in ("resume", "transfer_done", "flow_done", "fault"):
        expect(isinstance(events.get(key), int), path, f"engine.events.{key} missing")
    epw = eng.get("events_per_window")
    expect(isinstance(epw, list) and len(epw) == n, path, "engine.events_per_window length")
    for quad in epw:
        expect(
            isinstance(quad, list) and len(quad) == 4 and all(isinstance(v, int) for v in quad),
            path,
            f"events_per_window entry {quad!r} is not an integer quadruple",
        )
    check_series(path, "engine.reshares_per_window", eng.get("reshares_per_window"), n, "count")
    for key in (
        "reshares",
        "stale_popped",
        "queue_peak",
        "records_peak",
        "max_in_flight",
        "faults_applied",
        "flows_rerouted",
        "reroute_reshares",
    ):
        expect(isinstance(eng.get(key), int) and eng[key] >= 0, path, f"bad engine.{key}")

    tail = ""
    if schema == "ovlp.metrics.v2":
        tail = f", {len(doc['critpath']['segments'])} critpath segments"
    print(f"{path}: ok ({n} windows, {len(doc['ranks'])} ranks, {len(doc['links'])} links{tail})")


if __name__ == "__main__":
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for p in sys.argv[1:]:
        check(p)
