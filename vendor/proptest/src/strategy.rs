//! Value-generation strategies: the shim's counterpart of
//! `proptest::strategy`.
//!
//! A [`Strategy`] deterministically draws a value from a [`TestRng`].
//! There is no shrink tree — generation is single-shot.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type. `Debug` so failing cases can be reported.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate with one strategy, then build a second strategy from
    /// the drawn value and generate from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy (needed by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 candidates in a row",
            self.whence
        );
    }
}

/// Uniform (or weighted) choice between type-erased strategies.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
        assert!(total > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty => $as64:ident),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty integer range strategy {:?}",
                    self
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(
            self.start < self.end,
            "empty float range strategy {:?}",
            self
        );
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // unit_f64 < 1.0, but fp rounding could still land on `end`
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .generate(rng) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// `&str` as a strategy: a small regex subset generating `String`s.
///
/// Grammar: a sequence of atoms, each optionally repeated.
///
/// * `.` — any printable ASCII character (plus occasional `\n`/`\t`);
/// * `[a-z_]` / `[ -~]` — a character class of literals and ranges
///   (leading `^` negates over printable ASCII);
/// * any other character — itself (use `\\` to escape `.`, `[`, `{`);
/// * `{n}` / `{lo,hi}` — repeat the preceding atom `n` or `lo..=hi`
///   times; `*` ≈ `{0,8}`, `+` ≈ `{1,8}`, `?` ≈ `{0,1}`.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Any,
        Literal(char),
        Class {
            negated: bool,
            options: Vec<(char, char)>,
        },
    }

    const PRINTABLE: (char, char) = (' ', '~');

    fn parse(pattern: &str) -> Vec<(Atom, u32, u32)> {
        let mut chars = pattern.chars().peekable();
        let mut out: Vec<(Atom, u32, u32)> = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                '[' => {
                    let mut negated = false;
                    if chars.peek() == Some(&'^') {
                        chars.next();
                        negated = true;
                    }
                    let mut inner: Vec<char> = Vec::new();
                    for d in chars.by_ref() {
                        if d == ']' {
                            break;
                        }
                        inner.push(d);
                    }
                    let mut options = Vec::new();
                    let mut i = 0;
                    while i < inner.len() {
                        if i + 2 < inner.len() && inner[i + 1] == '-' {
                            options.push((inner[i], inner[i + 2]));
                            i += 3;
                        } else {
                            options.push((inner[i], inner[i]));
                            i += 1;
                        }
                    }
                    assert!(
                        !options.is_empty(),
                        "empty character class in pattern {pattern:?}"
                    );
                    Atom::Class { negated, options }
                }
                '{' | '}' | '*' | '+' | '?' => {
                    panic!("quantifier with no preceding atom in pattern {pattern:?}")
                }
                other => Atom::Literal(other),
            };
            // optional quantifier
            let (lo, hi) = match chars.peek().copied() {
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut body = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        body.push(d);
                    }
                    let parts: Vec<&str> = body.split(',').collect();
                    let lo: u32 = parts[0].trim().parse().unwrap_or_else(|_| {
                        panic!("bad repetition {body:?} in pattern {pattern:?}")
                    });
                    let hi: u32 = if parts.len() > 1 {
                        parts[1].trim().parse().unwrap_or_else(|_| {
                            panic!("bad repetition {body:?} in pattern {pattern:?}")
                        })
                    } else {
                        lo
                    };
                    assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
                    (lo, hi)
                }
                _ => (1, 1),
            };
            out.push((atom, lo, hi));
        }
        out
    }

    fn draw_char(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Any => {
                // mostly printable ASCII, sometimes whitespace controls
                match rng.below(16) {
                    0 => '\n',
                    1 => '\t',
                    _ => draw_in_ranges(&[PRINTABLE], rng),
                }
            }
            Atom::Class {
                negated: false,
                options,
            } => draw_in_ranges(options, rng),
            Atom::Class {
                negated: true,
                options,
            } => {
                for _ in 0..64 {
                    let c = draw_in_ranges(&[PRINTABLE], rng);
                    if !options.iter().any(|&(lo, hi)| lo <= c && c <= hi) {
                        return c;
                    }
                }
                panic!("negated class excludes all of printable ASCII")
            }
        }
    }

    fn draw_in_ranges(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges
            .iter()
            .map(|&(lo, hi)| (hi as u64).saturating_sub(lo as u64) + 1)
            .sum();
        let mut pick = rng.below(total.max(1));
        for &(lo, hi) in ranges {
            let span = (hi as u64).saturating_sub(lo as u64) + 1;
            if pick < span {
                return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
            }
            pick -= span;
        }
        ranges[0].0
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let n = lo as u64 + rng.below(hi as u64 - lo as u64 + 1);
            for _ in 0..n {
                out.push(draw_char(&atom, rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn string_patterns_match_their_own_grammar() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = ".{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
            let t = "[ -~]{0,10}".generate(&mut rng);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
            assert!(t.chars().count() <= 10);
            let u = "[a-c]{2,2}x".generate(&mut rng);
            assert_eq!(u.len(), 3);
            assert!(u.ends_with('x'));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::from_name("union");
        let u = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1_000_000, "[a-z]{0,12}");
        let draw = || {
            let mut rng = TestRng::from_name("determinism");
            (0..50)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }
}
