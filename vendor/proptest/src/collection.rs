//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec`]: a fixed size, `lo..hi`, or
/// `lo..=hi`.
pub trait SizeRange {
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec length range {self:?}");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(
            self.start() <= self.end(),
            "empty vec length range {self:?}"
        );
        (*self.start(), *self.end())
    }
}

/// Strategy for `Vec<T>` with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (lo, hi) = size.bounds();
    VecStrategy { element, lo, hi }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    lo: usize,
    hi: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::from_name("vec");
        let strat = vec(0u32..100, 3..8);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..8).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
        let fixed = vec(0u32..10, 5usize);
        assert_eq!(fixed.generate(&mut rng).len(), 5);
    }
}
