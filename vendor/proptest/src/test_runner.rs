//! The deterministic case runner and its tiny RNG.

use crate::strategy::Strategy;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration; the struct-update-from-default idiom of the
/// real crate (`ProptestConfig { cases: 24, ..Default::default() }`)
/// works unchanged.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate and check per property.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; persistence is not
    /// implemented.
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

impl ProptestConfig {
    /// Convenience constructor mirroring the real crate.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Source-compatibility alias used by some call sites.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a), optionally
    /// perturbed by `PROPTEST_SEED` to explore a different stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = extra.trim().parse::<u64>() {
                h ^= s.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        // multiply-shift; bias is negligible for test generation
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Execute one property: generate `config.cases` inputs from `strategy`
/// and run `body` on each. Failures and panics report the generated
/// input (there is no shrinking).
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: S, body: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        let description = format!("{value:#?}");
        match catch_unwind(AssertUnwindSafe(|| body(value))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "property `{name}` failed at case {case}/{}:\n{e}\ninput: {description}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "property `{name}` panicked at case {case}/{}\ninput: {description}",
                    config.cases
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_passes_trivial_property() {
        run_property(
            "trivial",
            &ProptestConfig::with_cases(64),
            (0u32..10,),
            |(x,)| {
                crate::prop_assert!(x < 10);
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_reports_failing_input() {
        run_property(
            "failing",
            &ProptestConfig::with_cases(64),
            (0u32..10,),
            |(x,)| {
                crate::prop_assert!(x < 5, "x was {x}");
                Ok(())
            },
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_propagates_panics() {
        run_property(
            "panicking",
            &ProptestConfig::with_cases(8),
            (0u32..10,),
            |(_x,)| -> Result<(), TestCaseError> { panic!("boom") },
        );
    }

    #[test]
    fn rng_streams_differ_by_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("a");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("b");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }
}
