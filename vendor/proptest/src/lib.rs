//! Deterministic offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched from crates.io. This vendored shim implements the
//! subset of its API the workspace's property tests use, with the same
//! syntax, so the tests compile and run unchanged:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`],
//! * strategies: integer/float ranges, [`Just`](strategy::Just),
//!   tuples, `prop_map`, [`collection::vec`], and `&str` patterns for a
//!   small regex subset (`.`, `[a-z]` classes, `{lo,hi}` repetition),
//! * [`ProptestConfig`](test_runner::ProptestConfig) with a `cases`
//!   knob.
//!
//! Differences from the real crate, by design:
//!
//! * **Deterministic**: the RNG is seeded from the test's name, so
//!   every run explores the same cases (reproducible CI, bit-identical
//!   reruns). Set `PROPTEST_SEED=<u64>` to explore a different stream.
//! * **No shrinking**: a failing case reports the exact generated
//!   inputs instead of a minimized counterexample.
//! * **No persistence**: `.proptest-regressions` files are ignored.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declare deterministic property tests.
///
/// Supported grammar (a strict subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in proptest::collection::vec(0u8..5, 1..4)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run_property(
                stringify!($name),
                &__config,
                __strategy,
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Property-scoped assertion: fails the current case (reporting the
/// generated inputs) without aborting the whole test process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Uniform choice between several strategies producing the same value
/// type. Weights (`w => strat`) are accepted and honoured.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
