//! Paraver trace export.
//!
//! Paraver traces are line-oriented text: a `.prv` file with a header,
//! state records (`1:...`) and communication records (`3:...`), plus a
//! `.pcf` semantic file (labels and colors) and a `.row` file (object
//! names). This module emits all three from a simulated execution, so
//! the framework's timelines can be opened in real wxParaver, mirroring
//! the role Paraver plays in the paper's toolchain.
//!
//! Record syntax (Paraver trace format reference):
//!
//! ```text
//! 1:cpu:appl:task:thread:begin:end:state
//! 2:cpu:appl:task:thread:time:type:value[:type:value...]
//! 3:cpu_s:ptask_s:task_s:thread_s:logical_send:physical_send:
//!   cpu_r:ptask_r:task_r:thread_r:logical_recv:physical_recv:size:tag
//! ```
//!
//! Times are emitted in nanoseconds. When windowed
//! [`Metrics`](ovlp_machine::Metrics) are supplied
//! ([`export_with_metrics`]), counter series are appended as event
//! records sampled at each window start, so wxParaver plots link
//! utilization, in-flight transfers, queue depth, reshares, and
//! injected bytes under the state timeline.

use ovlp_machine::{Metrics, SimResult, State, Time};
use std::fmt::Write as _;

/// Counter event types used by the metrics export (see the `.pcf`).
pub const EV_MAX_LINK_UTIL: u32 = 70000001;
pub const EV_IN_FLIGHT: u32 = 70000002;
pub const EV_QUEUE_DEPTH: u32 = 70000003;
pub const EV_RESHARES: u32 = 70000004;
pub const EV_INJECTED_BYTES: u32 = 70000005;

/// The three Paraver files for one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParaverExport {
    pub prv: String,
    pub pcf: String,
    pub row: String,
}

fn ns(t: Time) -> u64 {
    (t.as_secs() * 1e9).round() as u64
}

/// Map internal states onto Paraver-like state codes (see the `.pcf`).
fn state_code(s: State) -> u32 {
    match s {
        State::Done => 0,
        State::Compute => 1,
        State::WaitRecv => 3,
        State::WaitSend => 4,
        State::Collective => 9,
    }
}

/// Export a simulated execution.
///
/// `name` is used in the header comment only.
pub fn export(name: &str, sim: &SimResult) -> ParaverExport {
    export_with_metrics(name, sim, None)
}

/// Export a simulated execution, appending counter event records for
/// each windowed metric series when `metrics` is given. Without
/// metrics the output is byte-identical to [`export`].
pub fn export_with_metrics(
    name: &str,
    sim: &SimResult,
    metrics: Option<&Metrics>,
) -> ParaverExport {
    let nranks = sim.timelines.len();
    let ftime = ns(sim.runtime);
    let mut prv = String::new();
    // header: date is fixed (traces are deterministic artifacts)
    let _ = write!(
        prv,
        "#Paraver (01/01/2026 at 00:00):{ftime}_ns:1({nranks}):1:{nranks}("
    );
    for i in 0..nranks {
        if i > 0 {
            prv.push(',');
        }
        let _ = write!(prv, "1:{}", i + 1);
    }
    prv.push_str(")\n");
    let _ = writeln!(prv, "c:{name}");

    // state records
    for (r, tl) in sim.timelines.iter().enumerate() {
        let (cpu, task) = (r + 1, r + 1);
        for iv in &tl.intervals {
            let _ = writeln!(
                prv,
                "1:{cpu}:1:{task}:1:{}:{}:{}",
                ns(iv.start),
                ns(iv.end),
                state_code(iv.state)
            );
        }
        // trailing idle until the global end
        let end = tl.end();
        if end < sim.runtime {
            let _ = writeln!(prv, "1:{cpu}:1:{task}:1:{}:{}:0", ns(end), ns(sim.runtime));
        }
    }

    // counter event records: every metric series sampled at each
    // window start (a Paraver counter holds its value until the next
    // event record)
    if let Some(m) = metrics {
        let max_util = m.max_link_utilization();
        for w in 0..m.windows {
            let t = ns(Time::secs(w as f64 * m.window_s));
            let mut line = format!("2:1:1:1:1:{t}");
            if !max_util.is_empty() {
                let _ = write!(
                    line,
                    ":{EV_MAX_LINK_UTIL}:{}",
                    (max_util[w] * 1000.0).round() as u64
                );
            }
            let _ = write!(line, ":{EV_IN_FLIGHT}:{}", m.net.in_flight[w]);
            let _ = write!(line, ":{EV_QUEUE_DEPTH}:{}", m.net.queue_depth[w]);
            let _ = write!(line, ":{EV_RESHARES}:{}", m.engine.reshares_per_window[w]);
            let _ = writeln!(prv, "{line}");
            for (r, series) in m.ranks.iter().enumerate() {
                let (cpu, task) = (r + 1, r + 1);
                let _ = writeln!(
                    prv,
                    "2:{cpu}:1:{task}:1:{t}:{EV_INJECTED_BYTES}:{}",
                    series.injected_bytes[w]
                );
            }
        }
    }

    // communication records
    for c in &sim.comms {
        let (cs, ts) = (c.src.idx() + 1, c.src.idx() + 1);
        let (cr, tr) = (c.dst.idx() + 1, c.dst.idx() + 1);
        let _ = writeln!(
            prv,
            "3:{cs}:1:{ts}:1:{}:{}:{cr}:1:{tr}:1:{}:{}:{}:{}",
            ns(c.t_send),
            ns(c.t_start),
            ns(c.t_consume),
            ns(c.t_arrive),
            c.bytes.get(),
            c.tag.0
        );
    }

    let mut pcf = "\
DEFAULT_OPTIONS

LEVEL               THREAD
UNITS               NANOSEC

STATES
0    Idle
1    Running
3    Waiting a message
4    Blocked sending
9    Group Communication

STATES_COLOR
0    {117,195,255}
1    {0,0,255}
3    {255,0,0}
4    {255,160,0}
9    {255,130,171}
"
    .to_string();
    if metrics.is_some() {
        pcf.push_str(&format!(
            "\nEVENT_TYPE\n\
             7  {EV_MAX_LINK_UTIL}  Max link utilization (per-mille of capacity)\n\
             7  {EV_IN_FLIGHT}  In-flight transfers (window peak)\n\
             7  {EV_QUEUE_DEPTH}  Event queue depth (window peak)\n\
             7  {EV_RESHARES}  Max-min reshares per window\n\
             7  {EV_INJECTED_BYTES}  Injected bytes per window\n"
        ));
    }

    let mut row = String::new();
    let _ = writeln!(row, "LEVEL CPU SIZE {nranks}");
    for r in 0..nranks {
        let _ = writeln!(row, "{}.{}", r + 1, 1);
    }
    let _ = writeln!(row, "\nLEVEL THREAD SIZE {nranks}");
    for r in 0..nranks {
        let _ = writeln!(row, "THREAD 1.{}.1 (rank {})", r + 1, r);
    }

    ParaverExport { prv, pcf, row }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, simulate_probed, Platform, Topology, WindowedRecorder};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

    fn trace() -> Trace {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(7),
            bytes: Bytes(1024),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(7),
            bytes: Bytes(1024),
            transfer: TransferId::new(Rank(1), 0),
        });
        t
    }

    fn sim() -> SimResult {
        simulate(&trace(), &Platform::default()).unwrap()
    }

    #[test]
    fn header_and_records_present() {
        let e = export("demo", &sim());
        let first = e.prv.lines().next().unwrap();
        assert!(first.starts_with("#Paraver"), "{first}");
        assert!(first.contains("_ns:1(2):1:2("));
        assert!(e.prv.lines().any(|l| l.starts_with("1:")), "state records");
        assert!(e.prv.lines().any(|l| l.starts_with("3:")), "comm records");
    }

    #[test]
    fn comm_record_carries_size_and_tag() {
        let e = export("demo", &sim());
        let comm = e.prv.lines().find(|l| l.starts_with("3:")).unwrap();
        let fields: Vec<&str> = comm.split(':').collect();
        assert_eq!(fields.len(), 15);
        assert_eq!(fields[13], "1024");
        assert_eq!(fields[14], "7");
    }

    #[test]
    fn state_records_are_well_formed() {
        let e = export("demo", &sim());
        for l in e.prv.lines().filter(|l| l.starts_with("1:")) {
            let f: Vec<&str> = l.split(':').collect();
            assert_eq!(f.len(), 8, "{l}");
            let begin: u64 = f[5].parse().unwrap();
            let end: u64 = f[6].parse().unwrap();
            assert!(end >= begin);
        }
    }

    #[test]
    fn pcf_and_row_emitted() {
        let e = export("demo", &sim());
        assert!(e.pcf.contains("STATES_COLOR"));
        assert!(!e.pcf.contains("EVENT_TYPE"), "no counters without metrics");
        assert!(e.row.contains("LEVEL THREAD SIZE 2"));
        assert!(e.row.contains("rank 1"));
    }

    #[test]
    fn metrics_add_counter_records_and_event_types() {
        let t = trace();
        let p = Platform::default().with_topology(Topology::Crossbar);
        let mut rec = WindowedRecorder::new(Time::micros(200.0));
        let sim = simulate_probed(&t, &p, &mut rec).unwrap();
        let m = rec.into_metrics();
        let e = export_with_metrics("demo", &sim, Some(&m));
        let counters: Vec<&str> = e.prv.lines().filter(|l| l.starts_with("2:")).collect();
        assert_eq!(counters.len(), m.windows * (1 + m.ranks.len()));
        // global line carries link-utilization + in-flight + queue +
        // reshare counters
        let global = counters
            .iter()
            .find(|l| l.starts_with("2:1:1:1:1:"))
            .unwrap();
        for ty in [EV_MAX_LINK_UTIL, EV_IN_FLIGHT, EV_QUEUE_DEPTH, EV_RESHARES] {
            assert!(global.contains(&format!(":{ty}:")), "{global}");
        }
        assert!(
            counters
                .iter()
                .any(|l| l.contains(&format!(":{EV_INJECTED_BYTES}:"))),
            "per-rank injected-bytes series"
        );
        for ty in [
            EV_MAX_LINK_UTIL,
            EV_IN_FLIGHT,
            EV_QUEUE_DEPTH,
            EV_RESHARES,
            EV_INJECTED_BYTES,
        ] {
            assert!(e.pcf.contains(&ty.to_string()), "pcf names type {ty}");
        }
    }

    #[test]
    fn export_without_metrics_is_unchanged_by_the_probe_run() {
        let t = trace();
        let p = Platform::default();
        let plain = simulate(&t, &p).unwrap();
        let mut rec = WindowedRecorder::new(Time::micros(200.0));
        let probed = simulate_probed(&t, &p, &mut rec).unwrap();
        assert_eq!(
            export("demo", &plain),
            export_with_metrics("demo", &probed, None)
        );
    }
}
