//! Terminal Gantt rendering.

use ovlp_machine::{SimResult, State, Time};

/// Glyph for a state.
fn glyph(state: Option<State>) -> char {
    match state {
        Some(State::Compute) => '#',
        Some(State::WaitRecv) => 'r',
        Some(State::WaitSend) => 's',
        Some(State::Collective) => 'c',
        Some(State::Done) | None => '.',
    }
}

/// Render one simulated execution as an ASCII Gantt chart: one lane per
/// rank, `width` columns spanning `[0, span]` seconds.
///
/// Each column shows the state occupying the majority of its time
/// slice. The legend: `#` compute, `r` wait-recv, `s` wait-send,
/// `c` collective, `.` idle/done.
///
/// Runs with injected link faults get an extra `flt` ruler lane marking
/// each fault instant with `!`, plus one legend line per fault event;
/// fault-free runs render exactly as before.
pub fn gantt(sim: &SimResult, width: usize, span: Time) -> String {
    let width = width.max(10);
    let mut out = String::new();
    let dt = span.as_secs() / width as f64;
    for (r, tl) in sim.timelines.iter().enumerate() {
        out.push_str(&format!("r{r:<3}|"));
        for col in 0..width {
            // sample mid-column
            let t = Time::secs((col as f64 + 0.5) * dt);
            out.push(glyph(tl.state_at(t)));
        }
        out.push_str("|\n");
    }
    if !sim.fault_log.is_empty() {
        let mut ruler = vec![' '; width];
        for f in &sim.fault_log {
            let col = if dt > 0.0 {
                (f.at.as_secs() / dt) as usize
            } else {
                0
            };
            ruler[col.min(width - 1)] = '!';
        }
        out.push_str("flt |");
        out.extend(ruler);
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "     runtime {}   [#=compute r=wait-recv s=wait-send c=collective .=idle]\n",
        sim.runtime
    ));
    for f in &sim.fault_log {
        out.push_str(&format!("     ! {}\n", f.desc));
    }
    out
}

/// Render two executions (typically original vs overlapped) one above
/// the other on a shared time axis — the Fig. 4 comparison.
pub fn gantt_comparison(
    label_a: &str,
    a: &SimResult,
    label_b: &str,
    b: &SimResult,
    width: usize,
) -> String {
    let span = a.runtime.max(b.runtime);
    let mut out = String::new();
    out.push_str(&format!("== {label_a} ==\n"));
    out.push_str(&gantt(a, width, span));
    out.push_str(&format!("== {label_b} ==\n"));
    out.push_str(&gantt(b, width, span));
    out.push_str(&format!(
        "speedup: x{:.3}\n",
        a.runtime.as_secs() / b.runtime.as_secs()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, Platform};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

    fn sim() -> SimResult {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(10_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(10_000_000),
        });
        simulate(&t, &Platform::default()).unwrap()
    }

    #[test]
    fn gantt_shows_all_ranks_and_states() {
        let s = sim();
        let g = gantt(&s, 60, s.runtime);
        assert_eq!(g.lines().count(), 3); // 2 lanes + legend
        assert!(g.contains('#'), "compute visible: {g}");
        assert!(g.contains('r'), "wait visible: {g}");
        assert!(g.contains("runtime"));
    }

    #[test]
    fn faulted_run_gains_a_fault_ruler() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(10_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        let p = Platform::default()
            .with_topology(ovlp_machine::Topology::Crossbar)
            .with_faults("degrade=0.5@1ms:n0->sw".parse().unwrap());
        let s = simulate(&t, &p).unwrap();
        let g = gantt(&s, 60, s.runtime);
        // 2 lanes + fault ruler + legend + 1 fault line
        assert_eq!(g.lines().count(), 5, "{g}");
        let ruler = g.lines().nth(2).unwrap();
        assert!(ruler.starts_with("flt |"), "{g}");
        assert!(ruler.contains('!'), "{g}");
        assert!(g.contains("! degrade=0.5@0.001s:n0->sw"), "{g}");
    }

    #[test]
    fn comparison_reports_speedup() {
        let s = sim();
        let c = gantt_comparison("original", &s, "overlapped", &s, 40);
        assert!(c.contains("== original =="));
        assert!(c.contains("== overlapped =="));
        assert!(c.contains("speedup: x1.000"));
    }

    #[test]
    fn width_is_clamped() {
        let s = sim();
        let g = gantt(&s, 0, s.runtime);
        assert!(g.lines().next().unwrap().len() >= 10);
    }
}
