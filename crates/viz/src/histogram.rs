//! State-duration histograms — the textual counterpart of Paraver's
//! 2-D analyzer view: how long do the waits of each kind last, and how
//! are they distributed across ranks?

use ovlp_machine::{SimResult, State};
use std::fmt::Write as _;

/// A log-scaled histogram of interval durations for one state.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationHistogram {
    pub state: State,
    /// Bucket upper bounds in seconds (last bucket is open-ended).
    pub bounds: Vec<f64>,
    pub counts: Vec<usize>,
    pub total: usize,
}

/// Default log-scale bucket bounds: 1 µs … 1 s.
pub fn default_bounds() -> Vec<f64> {
    (0..7).map(|i| 1e-6 * 10f64.powi(i)).collect()
}

/// Histogram the durations of all `state` intervals across ranks.
pub fn duration_histogram(sim: &SimResult, state: State, bounds: &[f64]) -> DurationHistogram {
    let mut counts = vec![0usize; bounds.len() + 1];
    let mut total = 0usize;
    for tl in &sim.timelines {
        for iv in &tl.intervals {
            if iv.state != state {
                continue;
            }
            total += 1;
            let d = iv.duration().as_secs();
            let idx = bounds.partition_point(|&b| b < d);
            counts[idx] += 1;
        }
    }
    DurationHistogram {
        state,
        bounds: bounds.to_vec(),
        counts,
        total,
    }
}

fn human(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.0}s")
    } else if secs >= 1e-3 {
        format!("{:.0}ms", secs * 1e3)
    } else {
        format!("{:.0}us", secs * 1e6)
    }
}

/// Render a histogram with proportional bars.
pub fn render(h: &DurationHistogram, width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} intervals: {} total", h.state.name(), h.total);
    let max = h.counts.iter().copied().max().unwrap_or(0).max(1);
    for (i, &c) in h.counts.iter().enumerate() {
        let label = if i == 0 {
            format!("      <{}", human(h.bounds[0]))
        } else if i == h.bounds.len() {
            format!("     >={}", human(h.bounds[i - 1]))
        } else {
            format!("{:>7}-{}", human(h.bounds[i - 1]), human(h.bounds[i]))
        };
        let bar = "#".repeat(c * width / max);
        let _ = writeln!(out, "{label:>16} | {c:>6} {bar}");
    }
    out
}

/// Full wait-analysis report: histograms for every wait state.
pub fn wait_report(sim: &SimResult, width: usize) -> String {
    let bounds = default_bounds();
    let mut out = String::new();
    for state in [State::WaitRecv, State::WaitSend, State::Collective] {
        let h = duration_histogram(sim, state, &bounds);
        if h.total > 0 {
            out.push_str(&render(&h, width));
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("no wait intervals\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, Platform};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

    fn sim() -> SimResult {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(23_000_000), // 10 ms
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        simulate(&t, &Platform::default()).unwrap()
    }

    #[test]
    fn wait_recv_interval_lands_in_ms_bucket() {
        let s = sim();
        let h = duration_histogram(&s, State::WaitRecv, &default_bounds());
        assert_eq!(h.total, 1);
        // ~14 ms wait: bounds are 1us..1s; 14 ms falls in the
        // 10ms-100ms bucket (index 5: bounds[4]=10ms <= d < bounds[5]=100ms)
        assert_eq!(h.counts[5], 1, "{h:?}");
    }

    #[test]
    fn render_shows_bars_and_labels() {
        let s = sim();
        let h = duration_histogram(&s, State::WaitRecv, &default_bounds());
        let text = render(&h, 40);
        assert!(text.contains("wait-recv intervals: 1 total"));
        assert!(text.contains('#'));
    }

    #[test]
    fn wait_report_covers_states_present() {
        let s = sim();
        let text = wait_report(&s, 40);
        assert!(text.contains("wait-recv"));
        assert!(!text.contains("collective"), "no collectives here");
    }

    #[test]
    fn empty_sim_reports_no_waits() {
        let mut t = Trace::new(1);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(100),
        });
        let s = simulate(&t, &Platform::default()).unwrap();
        assert_eq!(wait_report(&s, 40), "no wait intervals\n");
    }
}
