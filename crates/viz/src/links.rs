//! Per-link utilization report for flow-level replays.
//!
//! Shows which links serialize a run: for each link, the bytes carried,
//! mean utilization over the runtime, the fraction of the runtime the
//! link was busy, and the peak number of concurrent flows. Comparing
//! the report between the non-overlapped and overlapped traces makes
//! the fabric-level effect of overlap transformations visible — a
//! saturated up-link in the original that idles in the overlapped run
//! is bandwidth the transformation reclaimed.

use ovlp_machine::{LinkUsage, SimResult};

/// Render the busiest `top` links of `sim` (all of them if `top` is 0),
/// sorted by bytes carried, ties broken by link order (deterministic).
/// Empty string when the replay did not use flow-level contention.
pub fn link_report(sim: &SimResult, top: usize) -> String {
    if sim.links.is_empty() {
        return String::new();
    }
    let runtime = sim.runtime();
    let mut order: Vec<(usize, &LinkUsage)> = sim.links.iter().enumerate().collect();
    order.sort_by(|(ia, a), (ib, b)| {
        b.bytes
            .partial_cmp(&a.bytes)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(ia.cmp(ib))
    });
    let shown = if top == 0 {
        order.len()
    } else {
        top.min(order.len())
    };
    let carried = sim.links.iter().map(|l| l.bytes).sum::<f64>();
    let busy = sim.links.iter().filter(|l| l.bytes > 0.0).count();
    let mut out = format!(
        "links: {} total, {} carried traffic ({:.3} MB moved across the fabric)\n",
        sim.links.len(),
        busy,
        carried / 1e6
    );
    // the faults column only appears when the run injected faults, so
    // fault-free reports render byte-identically to earlier versions
    let any_faults = sim.links.iter().any(|l| l.faults > 0);
    if any_faults {
        out.push_str("link              bytes[MB]   util  busy  peak-flows  faults\n");
    } else {
        out.push_str("link              bytes[MB]   util  busy  peak-flows\n");
    }
    for (_, l) in order.iter().take(shown) {
        let busy_frac = if runtime > 0.0 {
            l.busy_secs / runtime
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<16} {:>10.3} {:>5.1}% {:>4.0}% {:>7}",
            l.label,
            l.bytes / 1e6,
            100.0 * l.utilization(runtime),
            100.0 * busy_frac,
            l.peak_flows
        ));
        if any_faults {
            if l.faults > 0 {
                out.push_str(&format!(" {:>7}", l.faults));
            } else {
                out.push_str(&format!(" {:>7}", "-"));
            }
        }
        out.push('\n');
    }
    if shown < order.len() {
        out.push_str(&format!("... ({} more links)\n", order.len() - shown));
    }
    // engine self-counters, previously JSON-metrics-only ("reroute
    // reshares" deliberately avoids the word the fault-column test pins)
    out.push_str(&format!(
        "engine: {} reshares, {} stale completions, {} reroute reshares\n",
        sim.network.reshares, sim.stale_events, sim.network.reroute_reshares
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, Platform, Topology};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Rank, Tag, Trace, TransferId};

    fn two_rank_trace() -> Trace {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        t
    }

    fn crossbar_sim() -> SimResult {
        let t = two_rank_trace();
        simulate(&t, &Platform::default().with_topology(Topology::Crossbar)).unwrap()
    }

    #[test]
    fn report_lists_busy_links_first() {
        let sim = crossbar_sim();
        let text = link_report(&sim, 2);
        assert!(text.contains("n0->sw"), "{text}");
        assert!(text.contains("sw->n1"), "{text}");
        assert!(text.contains("1.000"), "1 MB carried: {text}");
        assert!(text.contains("more links"), "idle links elided: {text}");
    }

    #[test]
    fn fault_free_report_has_no_faults_column() {
        let text = link_report(&crossbar_sim(), 2);
        assert!(!text.contains("faults"), "{text}");
    }

    #[test]
    fn report_surfaces_engine_self_counters() {
        let text = link_report(&crossbar_sim(), 2);
        let line = text
            .lines()
            .find(|l| l.starts_with("engine:"))
            .expect("engine counter line");
        assert!(line.contains("reshares"), "{line}");
        assert!(line.contains("stale completions"), "{line}");
        assert!(line.contains("reroute reshares"), "{line}");
    }

    #[test]
    fn faulted_links_render_a_fault_count_column() {
        let t = two_rank_trace();
        let platform = Platform::default()
            .with_topology(Topology::Crossbar)
            .with_faults("degrade=0.5@1ms:n0->sw".parse().unwrap());
        let sim = simulate(&t, &platform).unwrap();
        let text = link_report(&sim, 0);
        assert!(text.contains("peak-flows  faults"), "{text}");
        let row = text.lines().find(|l| l.starts_with("n0->sw")).unwrap();
        assert!(row.trim_end().ends_with('1'), "fault count: {row}");
        let idle = text.lines().find(|l| l.starts_with("sw->n0")).unwrap();
        assert!(idle.trim_end().ends_with('-'), "idle links dashed: {idle}");
    }

    #[test]
    fn bus_model_produces_empty_report() {
        let mut t = Trace::new(1);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: ovlp_trace::Instructions(1000),
        });
        let sim = simulate(&t, &Platform::default()).unwrap();
        assert_eq!(link_report(&sim, 8), "");
    }
}
