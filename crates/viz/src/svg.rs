//! SVG timeline rendering: state rectangles per rank plus
//! communication lines from send to consume (the "synchronization
//! lines" visible in the paper's Fig. 4).

use ovlp_machine::{SimResult, State, Time};
use std::fmt::Write as _;

fn color(state: State) -> &'static str {
    match state {
        State::Compute => "#2c7fb8",
        State::WaitRecv => "#d7301f",
        State::WaitSend => "#fdae61",
        State::Collective => "#c51b8a",
        State::Done => "#dddddd",
    }
}

/// Render a simulated execution as a standalone SVG document.
///
/// `width` is the drawing width in pixels; each rank lane is 22 px
/// tall. The time axis spans `[0, span]` (pass `sim.runtime` for a
/// single plot, or a shared maximum when comparing).
pub fn timeline_svg(title: &str, sim: &SimResult, width: u32, span: Time) -> String {
    let lane_h = 18.0;
    let lane_gap = 4.0;
    let left = 48.0;
    let top = 24.0;
    let nranks = sim.timelines.len();
    let height = top + nranks as f64 * (lane_h + lane_gap) + 16.0;
    let scale = (width as f64 - left - 8.0) / span.as_secs().max(1e-12);
    let x = |t: Time| left + t.as_secs() * scale;
    let lane_y = |r: usize| top + r as f64 * (lane_h + lane_gap);

    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height:.0}" font-family="monospace" font-size="11">"#
    );
    let _ = write!(s, r#"<text x="4" y="14">{}</text>"#, xml_escape(title));
    for (r, tl) in sim.timelines.iter().enumerate() {
        let y = lane_y(r);
        let _ = write!(
            s,
            r#"<text x="4" y="{:.1}">r{}</text>"#,
            y + lane_h - 5.0,
            r
        );
        for iv in &tl.intervals {
            let x0 = x(iv.start);
            let w = (x(iv.end) - x0).max(0.3);
            let _ = write!(
                s,
                r#"<rect x="{x0:.2}" y="{y:.2}" width="{w:.2}" height="{lane_h}" fill="{}"><title>{} {}..{}</title></rect>"#,
                color(iv.state),
                iv.state.name(),
                iv.start,
                iv.end
            );
        }
    }
    // communication lines: sender lane at send time -> receiver lane at
    // consume time
    for c in &sim.comms {
        let x0 = x(c.t_send);
        let y0 = lane_y(c.src.idx()) + lane_h / 2.0;
        let x1 = x(c.t_consume);
        let y1 = lane_y(c.dst.idx()) + lane_h / 2.0;
        let _ = write!(
            s,
            r##"<line x1="{x0:.2}" y1="{y0:.2}" x2="{x1:.2}" y2="{y1:.2}" stroke="#444" stroke-width="0.6" opacity="0.7"/>"##
        );
    }
    s.push_str("</svg>");
    s
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, Platform};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

    fn sim() -> SimResult {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(4096),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(4096),
            transfer: TransferId::new(Rank(1), 0),
        });
        simulate(&t, &Platform::default()).unwrap()
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let s = sim();
        let svg = timeline_svg("test <run>", &s, 800, s.runtime);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("&lt;run&gt;"), "title escaped");
        assert!(svg.contains("<rect"), "state rectangles");
        assert!(svg.contains("<line"), "communication lines");
        // balanced rect tags trivially (self-closing not used for rects
        // because of titles): count opens vs closes
        assert_eq!(svg.matches("<rect").count(), svg.matches("</rect>").count());
    }

    #[test]
    fn lanes_scale_with_ranks() {
        let s = sim();
        let svg = timeline_svg("t", &s, 400, s.runtime);
        assert!(svg.contains(r#"<text x="4" y="37.0">r0</text>"#) || svg.contains("r0"));
        assert!(svg.contains("r1"));
    }
}
