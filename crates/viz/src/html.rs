//! Self-contained HTML analysis report: the whole framework output for
//! one application — runtimes, pattern statistics, embedded SVG
//! timelines and the restructuring verdicts — in a single file a
//! colleague can open without any tooling.

use ovlp_machine::{SimResult, Time};
use std::fmt::Write as _;

/// Inputs for one report (everything is pre-rendered text/markup so
/// this module depends only on the machine layer).
#[derive(Debug, Clone, Default)]
pub struct ReportInputs {
    /// Application name.
    pub app: String,
    /// Rank count.
    pub ranks: usize,
    /// Platform description line.
    pub platform: String,
    /// Pre-rendered pattern tables (plain text, shown in `<pre>`).
    pub pattern_tables: String,
    /// Pre-rendered advisor output (plain text).
    pub advice: String,
    /// Extra note lines.
    pub notes: Vec<String>,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Build the report. `variants` pairs a label with its simulation; the
/// first entry is the baseline for speedup computation.
pub fn report(inputs: &ReportInputs, variants: &[(&str, &SimResult)]) -> String {
    let mut html = String::new();
    html.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    let _ = write!(html, "<title>overlap-sim — {}</title>", esc(&inputs.app));
    html.push_str(
        "<style>body{font-family:sans-serif;max-width:1280px;margin:2em auto;\
         padding:0 1em;color:#222}pre{background:#f6f6f6;padding:.8em;\
         overflow-x:auto}table{border-collapse:collapse}td,th{border:1px solid \
         #ccc;padding:.3em .8em;text-align:right}th{background:#eee}\
         h2{border-bottom:1px solid #ddd;padding-bottom:.2em}</style></head><body>",
    );
    let _ = write!(
        html,
        "<h1>Communication-computation overlap analysis: {}</h1>\
         <p>{} ranks — {}</p>",
        esc(&inputs.app),
        inputs.ranks,
        esc(&inputs.platform)
    );

    // runtimes
    html.push_str(
        "<h2>Simulated runtimes</h2><table><tr><th>variant</th>\
                   <th>runtime</th><th>speedup</th><th>wait/rank</th></tr>",
    );
    let base = variants.first().map(|(_, s)| s.runtime()).unwrap_or(1.0);
    for (label, sim) in variants {
        let nranks = sim.totals.len().max(1) as f64;
        let _ = write!(
            html,
            "<tr><td style=\"text-align:left\">{}</td><td>{:.3} ms</td>\
             <td>x{:.3}</td><td>{:.1} us</td></tr>",
            esc(label),
            sim.runtime() * 1e3,
            base / sim.runtime(),
            sim.total_wait() * 1e6 / nranks
        );
    }
    html.push_str("</table>");

    // timelines
    html.push_str("<h2>Timelines</h2>");
    let span = variants
        .iter()
        .map(|(_, s)| s.runtime)
        .max()
        .unwrap_or(Time::ZERO);
    for (label, sim) in variants {
        let _ = write!(html, "<h3>{}</h3>", esc(label));
        html.push_str(&crate::svg::timeline_svg(label, sim, 1200, span));
    }

    // patterns + advice
    if !inputs.pattern_tables.is_empty() {
        let _ = write!(
            html,
            "<h2>Production/consumption patterns</h2><pre>{}</pre>",
            esc(&inputs.pattern_tables)
        );
    }
    if !inputs.advice.is_empty() {
        let _ = write!(
            html,
            "<h2>Restructuring advice</h2><pre>{}</pre>",
            esc(&inputs.advice)
        );
    }
    if !inputs.notes.is_empty() {
        html.push_str("<h2>Notes</h2><ul>");
        for n in &inputs.notes {
            let _ = write!(html, "<li>{}</li>", esc(n));
        }
        html.push_str("</ul>");
    }
    html.push_str("</body></html>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, Platform};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

    fn sim() -> SimResult {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(4096),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(4096),
            transfer: TransferId::new(Rank(1), 0),
        });
        simulate(&t, &Platform::default()).unwrap()
    }

    fn inputs() -> ReportInputs {
        ReportInputs {
            app: "demo <app>".to_string(),
            ranks: 2,
            platform: "250 MB/s, 6 buses".to_string(),
            pattern_tables: "table body".to_string(),
            advice: "already-hidden 3".to_string(),
            notes: vec!["a & b".to_string()],
        }
    }

    #[test]
    fn report_is_self_contained_html() {
        let s = sim();
        let html = report(&inputs(), &[("original", &s), ("overlapped", &s)]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>"));
        assert!(html.contains("<svg"), "embedded timelines");
        assert_eq!(html.matches("<svg").count(), 2);
        assert!(html.contains("x1.000"), "speedup vs baseline");
    }

    #[test]
    fn content_is_escaped() {
        let s = sim();
        let html = report(&inputs(), &[("orig<inal", &s)]);
        assert!(html.contains("demo &lt;app&gt;"));
        assert!(html.contains("orig&lt;inal"));
        assert!(html.contains("a &amp; b"));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let s = sim();
        let html = report(
            &ReportInputs {
                app: "x".into(),
                ranks: 2,
                platform: "p".into(),
                ..ReportInputs::default()
            },
            &[("only", &s)],
        );
        assert!(!html.contains("Restructuring advice"));
        assert!(!html.contains("<ul>"));
    }
}
