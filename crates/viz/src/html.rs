//! Self-contained HTML analysis report: the whole framework output for
//! one application — runtimes, pattern statistics, embedded SVG
//! timelines and the restructuring verdicts — in a single file a
//! colleague can open without any tooling.

use ovlp_machine::{CritPath, Metrics, SimResult, Time};
use std::fmt::Write as _;

/// Inputs for one report (everything is pre-rendered text/markup so
/// this module depends only on the machine layer).
#[derive(Debug, Clone, Default)]
pub struct ReportInputs {
    /// Application name.
    pub app: String,
    /// Rank count.
    pub ranks: usize,
    /// Platform description line.
    pub platform: String,
    /// Pre-rendered pattern tables (plain text, shown in `<pre>`).
    pub pattern_tables: String,
    /// Pre-rendered advisor output (plain text).
    pub advice: String,
    /// Extra note lines.
    pub notes: Vec<String>,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Build the report. `variants` pairs a label with its simulation; the
/// first entry is the baseline for speedup computation.
pub fn report(inputs: &ReportInputs, variants: &[(&str, &SimResult)]) -> String {
    let with_metrics: Vec<(&str, &SimResult, Option<&Metrics>)> =
        variants.iter().map(|&(l, s)| (l, s, None)).collect();
    report_with_metrics(inputs, &with_metrics)
}

/// [`report`] with optional windowed metrics per variant: each variant
/// carrying metrics gets a link-utilization heatmap panel directly
/// under its timeline (shared time axis), and a per-link report table
/// when the replay used flow-level contention.
pub fn report_with_metrics(
    inputs: &ReportInputs,
    variants: &[(&str, &SimResult, Option<&Metrics>)],
) -> String {
    let full: Vec<(&str, &SimResult, Option<&Metrics>, Option<&CritPath>)> =
        variants.iter().map(|&(l, s, m)| (l, s, m, None)).collect();
    report_full(inputs, &full)
}

/// [`report_with_metrics`] with optional critical paths per variant:
/// each variant carrying one gets its path segments outlined on the
/// timeline Gantt and a blame-attribution section at the end.
pub fn report_full(
    inputs: &ReportInputs,
    variants: &[(&str, &SimResult, Option<&Metrics>, Option<&CritPath>)],
) -> String {
    let mut html = String::new();
    html.push_str("<!DOCTYPE html><html><head><meta charset=\"utf-8\">");
    let _ = write!(html, "<title>overlap-sim — {}</title>", esc(&inputs.app));
    html.push_str(
        "<style>body{font-family:sans-serif;max-width:1280px;margin:2em auto;\
         padding:0 1em;color:#222}pre{background:#f6f6f6;padding:.8em;\
         overflow-x:auto}table{border-collapse:collapse}td,th{border:1px solid \
         #ccc;padding:.3em .8em;text-align:right}th{background:#eee}\
         h2{border-bottom:1px solid #ddd;padding-bottom:.2em}</style></head><body>",
    );
    let _ = write!(
        html,
        "<h1>Communication-computation overlap analysis: {}</h1>\
         <p>{} ranks — {}</p>",
        esc(&inputs.app),
        inputs.ranks,
        esc(&inputs.platform)
    );

    // runtimes
    html.push_str(
        "<h2>Simulated runtimes</h2><table><tr><th>variant</th>\
                   <th>runtime</th><th>speedup</th><th>wait/rank</th></tr>",
    );
    let base = variants
        .first()
        .map(|(_, s, _, _)| s.runtime())
        .unwrap_or(1.0);
    for (label, sim, _, _) in variants {
        let nranks = sim.totals.len().max(1) as f64;
        let _ = write!(
            html,
            "<tr><td style=\"text-align:left\">{}</td><td>{:.3} ms</td>\
             <td>x{:.3}</td><td>{:.1} us</td></tr>",
            esc(label),
            sim.runtime() * 1e3,
            base / sim.runtime(),
            sim.total_wait() * 1e6 / nranks
        );
    }
    html.push_str("</table>");

    // timelines, each with its link-utilization heatmap when windowed
    // metrics were recorded (same width and span: the panels align)
    html.push_str("<h2>Timelines</h2>");
    let span = variants
        .iter()
        .map(|(_, s, _, _)| s.runtime)
        .max()
        .unwrap_or(Time::ZERO);
    for (label, sim, metrics, critpath) in variants {
        let _ = write!(html, "<h3>{}</h3>", esc(label));
        match critpath {
            Some(cp) => {
                html.push_str(&crate::critpath::timeline_svg_critpath(
                    label, sim, 1200, span, cp,
                ));
            }
            None => html.push_str(&crate::svg::timeline_svg(label, sim, 1200, span)),
        }
        if let Some(m) = metrics {
            let heat = crate::heatmap::link_heatmap_svg("link utilization", m, 1200, span, 16);
            if !heat.is_empty() {
                html.push_str("<br>");
                html.push_str(&heat);
            }
        }
    }

    // per-link usage tables (flow-level replays only)
    let link_reports: Vec<(&str, String)> = variants
        .iter()
        .filter(|(_, s, _, _)| !s.links.is_empty())
        .map(|(label, sim, _, _)| (*label, crate::links::link_report(sim, 12)))
        .collect();
    if !link_reports.is_empty() {
        html.push_str("<h2>Link usage</h2>");
        for (label, text) in link_reports {
            let _ = write!(html, "<h3>{}</h3><pre>{}</pre>", esc(label), esc(&text));
        }
    }

    // blame attribution (variants carrying critical paths only)
    let blames: Vec<(&str, String)> = variants
        .iter()
        .filter_map(|(label, _, _, cp)| cp.map(|cp| (*label, crate::critpath::critpath_report(cp))))
        .collect();
    if !blames.is_empty() {
        html.push_str("<h2>Critical path</h2>");
        for (label, text) in blames {
            let _ = write!(html, "<h3>{}</h3><pre>{}</pre>", esc(label), esc(&text));
        }
    }

    // patterns + advice
    if !inputs.pattern_tables.is_empty() {
        let _ = write!(
            html,
            "<h2>Production/consumption patterns</h2><pre>{}</pre>",
            esc(&inputs.pattern_tables)
        );
    }
    if !inputs.advice.is_empty() {
        let _ = write!(
            html,
            "<h2>Restructuring advice</h2><pre>{}</pre>",
            esc(&inputs.advice)
        );
    }
    if !inputs.notes.is_empty() {
        html.push_str("<h2>Notes</h2><ul>");
        for n in &inputs.notes {
            let _ = write!(html, "<li>{}</li>", esc(n));
        }
        html.push_str("</ul>");
    }
    html.push_str("</body></html>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, Platform};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

    fn sim() -> SimResult {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(4096),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(4096),
            transfer: TransferId::new(Rank(1), 0),
        });
        simulate(&t, &Platform::default()).unwrap()
    }

    fn inputs() -> ReportInputs {
        ReportInputs {
            app: "demo <app>".to_string(),
            ranks: 2,
            platform: "250 MB/s, 6 buses".to_string(),
            pattern_tables: "table body".to_string(),
            advice: "already-hidden 3".to_string(),
            notes: vec!["a & b".to_string()],
        }
    }

    #[test]
    fn report_is_self_contained_html() {
        let s = sim();
        let html = report(&inputs(), &[("original", &s), ("overlapped", &s)]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.ends_with("</body></html>"));
        assert!(html.contains("<svg"), "embedded timelines");
        assert_eq!(html.matches("<svg").count(), 2);
        assert!(html.contains("x1.000"), "speedup vs baseline");
    }

    #[test]
    fn content_is_escaped() {
        let s = sim();
        let html = report(&inputs(), &[("orig<inal", &s)]);
        assert!(html.contains("demo &lt;app&gt;"));
        assert!(html.contains("orig&lt;inal"));
        assert!(html.contains("a &amp; b"));
    }

    #[test]
    fn metrics_variant_gets_heatmap_and_link_table() {
        use ovlp_machine::{simulate_probed, Topology, WindowedRecorder};
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        let p = Platform::default().with_topology(Topology::Crossbar);
        let mut rec = WindowedRecorder::new(Time::micros(500.0));
        let s = simulate_probed(&t, &p, &mut rec).unwrap();
        let m = rec.into_metrics();
        let html = report_with_metrics(&inputs(), &[("original", &s, Some(&m))]);
        assert!(html.contains("link utilization"), "heatmap panel");
        assert_eq!(html.matches("<svg").count(), 2, "timeline + heatmap");
        assert!(html.contains("Link usage"), "link report section");
        assert!(html.contains("n0-&gt;sw"), "link labels escaped");
    }

    #[test]
    fn empty_sections_are_omitted() {
        let s = sim();
        let html = report(
            &ReportInputs {
                app: "x".into(),
                ranks: 2,
                platform: "p".into(),
                ..ReportInputs::default()
            },
            &[("only", &s)],
        );
        assert!(!html.contains("Restructuring advice"));
        assert!(!html.contains("<ul>"));
    }
}
