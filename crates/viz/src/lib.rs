//! Visualization of simulated time behaviours — the framework's
//! Paraver.
//!
//! The paper uses Paraver to "visualize the obtained time-behaviors,
//! allowing to study the effects of the communication-computation
//! overlap" (Fig. 4 compares the non-overlapped and overlapped NAS-CG
//! timelines). This crate renders a
//! [`SimResult`](ovlp_machine::SimResult) three ways:
//!
//! * [`paraver`] — export to the Paraver text trace format
//!   (`.prv` + `.pcf` + `.row`), so timelines can be opened in the real
//!   wxParaver;
//! * [`ascii`] — terminal Gantt charts, including the side-by-side
//!   comparison used by the Fig. 4 reproduction;
//! * [`svg`] — standalone SVG timelines with communication lines;
//! * [`scatter`] — ASCII scatter plots of production/consumption
//!   patterns (the Fig. 5 panels).

pub mod ascii;
pub mod critpath;
pub mod heatmap;
pub mod histogram;
pub mod html;
pub mod links;
pub mod paraver;
pub mod scatter;
pub mod svg;

pub use ascii::{gantt, gantt_comparison};
pub use critpath::{critpath_report, timeline_svg_critpath};
pub use heatmap::{link_heatmap_ascii, link_heatmap_svg};
pub use histogram::{duration_histogram, wait_report, DurationHistogram};
pub use html::{report as html_report, report_full, report_with_metrics, ReportInputs};
pub use links::link_report;
pub use paraver::ParaverExport;
pub use scatter::scatter_ascii;
pub use svg::timeline_svg;
