//! Human-readable rendering of a causal critical path: the blame
//! breakdown table (`ovlp report --critpath`, `ovlp simulate
//! --critpath`) and the SVG Gantt overlay that highlights the
//! critical-path segments on the existing timeline.

use ovlp_machine::critpath::{Blame, CritPath};
use ovlp_machine::{SimResult, Time};
use std::fmt::Write as _;

/// Render the blame table and per-rank/per-channel totals.
pub fn critpath_report(cp: &CritPath) -> String {
    let runtime = cp.runtime.as_secs();
    let pct = |v: f64| {
        if runtime > 0.0 {
            100.0 * v / runtime
        } else {
            0.0
        }
    };
    let mut out = format!(
        "critical path: {} segments over {:.6} s runtime ({})\n",
        cp.segments.len(),
        runtime,
        if cp.exact {
            "blame sum exactly equals runtime"
        } else {
            "blame sum approximate"
        }
    );
    out.push_str("blame                 seconds  share\n");
    for b in Blame::ALL {
        let v = cp.total(b);
        if v == 0.0 {
            continue;
        }
        let _ = writeln!(out, "{:<18} {:>10.6} {:>5.1}%", b.name(), v, pct(v));
    }
    let on_path: Vec<(usize, f64)> = cp
        .rank_totals
        .iter()
        .enumerate()
        .filter(|(_, v)| **v > 0.0)
        .map(|(r, v)| (r, *v))
        .collect();
    out.push_str("per-rank: ");
    for (i, (r, v)) in on_path.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "r{r} {:.6}s ({:.1}%)", v, pct(*v));
    }
    out.push('\n');
    if !cp.channel_totals.is_empty() {
        // busiest channels first, ties broken by (src, dst) order
        let mut chans = cp.channel_totals.clone();
        chans.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out.push_str("channels: ");
        for (i, ((src, dst), v)) in chans.iter().take(6).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{src}->{dst} {:.6}s", v);
        }
        if chans.len() > 6 {
            let _ = write!(out, " (+{} more)", chans.len() - 6);
        }
        out.push('\n');
    }
    out
}

/// [`timeline_svg`](crate::svg::timeline_svg) plus a critical-path
/// overlay: each segment is outlined on its owning rank's lane, with the
/// blame class in the hover title. Geometry matches the base Gantt.
pub fn timeline_svg_critpath(
    title: &str,
    sim: &SimResult,
    width: u32,
    span: Time,
    cp: &CritPath,
) -> String {
    let base = crate::svg::timeline_svg(title, sim, width, span);
    let overlay = critpath_overlay(width, span, cp);
    match base.strip_suffix("</svg>") {
        Some(head) => format!("{head}{overlay}</svg>"),
        None => base,
    }
}

/// The overlay fragment alone (stroked rectangles, no fill, drawn above
/// the state rectangles and communication lines).
fn critpath_overlay(width: u32, span: Time, cp: &CritPath) -> String {
    // must mirror the constants in `svg::timeline_svg`
    let lane_h = 18.0;
    let lane_gap = 4.0;
    let left = 48.0;
    let top = 24.0;
    let scale = (width as f64 - left - 8.0) / span.as_secs().max(1e-12);
    let x = |t: Time| left + t.as_secs() * scale;
    let mut s = String::new();
    for seg in &cp.segments {
        let x0 = x(seg.start);
        let w = (x(seg.end) - x0).max(0.6);
        let y = top + seg.rank as f64 * (lane_h + lane_gap);
        let _ = write!(
            s,
            r##"<rect x="{x0:.2}" y="{:.2}" width="{w:.2}" height="{:.1}" fill="none" stroke="#ffd700" stroke-width="1.6" class="critpath"><title>critical: {} {}..{}</title></rect>"##,
            y - 1.0,
            lane_h + 2.0,
            seg.blame.name(),
            seg.start,
            seg.end
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, simulate_probed, CritPathRecorder, Platform};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

    fn traced() -> (SimResult, CritPath) {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        let platform = Platform::default();
        let mut rec = CritPathRecorder::new();
        let sim = simulate_probed(&t, &platform, &mut rec).unwrap();
        assert_eq!(
            sim.runtime(),
            simulate(&t, &platform).unwrap().runtime(),
            "probe must not perturb"
        );
        (sim, rec.into_critpath())
    }

    #[test]
    fn report_names_blame_classes_and_ranks() {
        let (_, cp) = traced();
        assert!(cp.exact);
        let text = critpath_report(&cp);
        assert!(text.contains("critical path:"), "{text}");
        assert!(text.contains("exactly equals runtime"), "{text}");
        assert!(text.contains("compute"), "{text}");
        assert!(text.contains("per-rank:"), "{text}");
    }

    #[test]
    fn overlay_adds_stroked_rects_inside_the_svg() {
        let (sim, cp) = traced();
        let svg = timeline_svg_critpath("t", &sim, 800, sim.runtime, &cp);
        assert!(svg.ends_with("</svg>"));
        assert_eq!(
            svg.matches(r#"class="critpath""#).count(),
            cp.segments.len()
        );
        assert!(svg.contains("critical: "), "{svg}");
    }
}
