//! Link-utilization-over-time heatmaps (ASCII and SVG).
//!
//! Renders the windowed per-link utilization series of a
//! [`Metrics`](ovlp_machine::Metrics) document as a heatmap whose time
//! axis matches the Gantt charts: the ASCII variant uses the same
//! 5-column gutter and column count as [`ascii::gantt`](crate::gantt),
//! and the SVG variant uses the same left offset and pixel scale as
//! [`timeline_svg`](crate::timeline_svg), so stacking them puts a
//! saturated link directly under the waits it causes.

use ovlp_machine::{Metrics, Time};
use std::fmt::Write as _;

/// Busiest-first link ordering (total bytes desc, then link order),
/// truncated to `top` rows (0 = all).
fn link_order(m: &Metrics, top: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..m.links.len()).collect();
    order.sort_by(|&a, &b| {
        let (ba, bb) = (
            m.links[a].bytes.iter().sum::<f64>(),
            m.links[b].bytes.iter().sum::<f64>(),
        );
        bb.partial_cmp(&ba)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    if top > 0 {
        order.truncate(top);
    }
    order
}

/// Utilization of `link` at time `t`, or 0 past the recorded windows.
fn util_at(m: &Metrics, link: usize, t: f64) -> f64 {
    let w = (t / m.window_s).floor();
    if w < 0.0 {
        return 0.0;
    }
    let w = w as usize;
    if w < m.windows {
        m.links[link].utilization[w]
    } else {
        0.0
    }
}

const RAMP: &[char] = &['.', ':', '-', '=', '+', '*', '#', '%', '@'];

fn ramp_glyph(u: f64) -> char {
    if u <= 0.0 {
        return ' ';
    }
    let i = (u * RAMP.len() as f64).floor() as usize;
    RAMP[i.min(RAMP.len() - 1)]
}

/// ASCII heatmap: one lane per link (`L0`, `L1`, ... busiest first),
/// `width` columns spanning `[0, span]` seconds — the same axis as
/// [`gantt`](crate::gantt) rendered with the same `width` and `span`.
/// Each cell shows the utilization of the window at the column's
/// midpoint on the ramp ` .:-=+*#%@` (blank = idle, `@` ≈ saturated).
/// A legend maps lanes back to link labels. Empty string when the
/// metrics carry no links (bus contention model).
pub fn link_heatmap_ascii(m: &Metrics, width: usize, span: Time, top: usize) -> String {
    if m.links.is_empty() {
        return String::new();
    }
    let width = width.max(10);
    let order = link_order(m, top);
    let dt = span.as_secs() / width as f64;
    let mut out = String::new();
    for (lane, &l) in order.iter().enumerate() {
        let _ = write!(out, "L{lane:<3}|");
        for col in 0..width {
            let t = (col as f64 + 0.5) * dt;
            out.push(ramp_glyph(util_at(m, l, t)));
        }
        out.push_str("|\n");
    }
    let _ = writeln!(
        out,
        "     link utilization/{} window   [ =idle .:-=+*#%@ =saturated]",
        Time::secs(m.window_s)
    );
    for (lane, &l) in order.iter().enumerate() {
        let link = &m.links[l];
        let peak = link.utilization.iter().copied().fold(0.0, f64::max);
        let _ = writeln!(
            out,
            "     L{lane} = {:<16} {:>10.3} MB  peak {:>5.1}%{}",
            link.label,
            link.bytes.iter().sum::<f64>() / 1e6,
            100.0 * peak,
            if link.faulted { "  [faulted]" } else { "" }
        );
    }
    if order.len() < m.links.len() {
        let _ = writeln!(out, "     ... ({} more links)", m.links.len() - order.len());
    }
    out
}

/// Heat color: white (idle) through orange to deep red (saturated).
fn heat_color(u: f64) -> String {
    let u = u.clamp(0.0, 1.0);
    // white (255,255,255) -> orange (253,141,60) -> red (165,0,38)
    let (r, g, b) = if u < 0.5 {
        let f = u / 0.5;
        (
            255.0 + (253.0 - 255.0) * f,
            255.0 + (141.0 - 255.0) * f,
            255.0 + (60.0 - 255.0) * f,
        )
    } else {
        let f = (u - 0.5) / 0.5;
        (
            253.0 + (165.0 - 253.0) * f,
            141.0 * (1.0 - f),
            60.0 + (38.0 - 60.0) * f,
        )
    };
    format!("#{:02x}{:02x}{:02x}", r as u8, g as u8, b as u8)
}

/// SVG heatmap: one 12 px row per link (busiest first), one cell per
/// metric window, colored white→red by utilization. Uses the same left
/// gutter (48 px) and time scale as [`timeline_svg`](crate::timeline_svg)
/// rendered with the same `width` and `span`, so the two stack into an
/// aligned panel. Empty string when the metrics carry no links.
pub fn link_heatmap_svg(title: &str, m: &Metrics, width: u32, span: Time, top: usize) -> String {
    if m.links.is_empty() {
        return String::new();
    }
    let row_h = 12.0;
    let row_gap = 2.0;
    let left = 48.0;
    let top_pad = 24.0;
    let order = link_order(m, top);
    let height = top_pad + order.len() as f64 * (row_h + row_gap) + 16.0;
    let scale = (width as f64 - left - 8.0) / span.as_secs().max(1e-12);
    let mut s = String::new();
    let _ = write!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height:.0}" font-family="monospace" font-size="9">"#
    );
    let _ = write!(
        s,
        r#"<text x="4" y="14" font-size="11">{}</text>"#,
        xml_escape(title)
    );
    for (lane, &l) in order.iter().enumerate() {
        let link = &m.links[l];
        let y = top_pad + lane as f64 * (row_h + row_gap);
        // faulted links get a red label so degraded/killed fabric is
        // visible even where their utilization rows go blank
        if link.faulted {
            let _ = write!(
                s,
                r##"<text x="4" y="{:.1}" fill="#a50026">{} [faulted]</text>"##,
                y + row_h - 3.0,
                xml_escape(&link.label)
            );
        } else {
            let _ = write!(
                s,
                r#"<text x="4" y="{:.1}">{}</text>"#,
                y + row_h - 3.0,
                xml_escape(&link.label)
            );
        }
        for (w, &u) in link.utilization.iter().enumerate() {
            if u <= 0.0 {
                continue;
            }
            let x0 = left + w as f64 * m.window_s * scale;
            let cell_w = (m.window_s * scale).max(0.3);
            let _ = write!(
                s,
                r#"<rect x="{x0:.2}" y="{y:.2}" width="{cell_w:.2}" height="{row_h}" fill="{}"><title>{} w{} {:.1}%</title></rect>"#,
                heat_color(u),
                xml_escape(&link.label),
                w,
                100.0 * u
            );
        }
    }
    s.push_str("</svg>");
    s
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate_probed, Platform, Topology, WindowedRecorder};
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Bytes, Rank, Tag, Trace, TransferId};

    fn metrics() -> Metrics {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        let p = Platform::default().with_topology(Topology::Crossbar);
        let mut rec = WindowedRecorder::new(ovlp_machine::Time::micros(500.0));
        simulate_probed(&t, &p, &mut rec).unwrap();
        rec.into_metrics()
    }

    #[test]
    fn ascii_heatmap_shows_busy_links() {
        let m = metrics();
        let span = ovlp_machine::Time::secs(m.runtime_s);
        let text = link_heatmap_ascii(&m, 40, span, 2);
        assert!(text.contains("L0  |"), "{text}");
        assert!(text.contains("n0->sw"), "legend: {text}");
        assert!(text.contains("more links"), "idle links elided: {text}");
        // the busy link must render non-blank cells
        let lane0 = text.lines().next().unwrap();
        assert!(lane0.chars().any(|c| RAMP.contains(&c)), "{lane0}");
    }

    #[test]
    fn ascii_heatmap_empty_without_links() {
        let mut t = Trace::new(1);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: ovlp_trace::Instructions(1000),
        });
        let mut rec = WindowedRecorder::new(ovlp_machine::Time::micros(100.0));
        let sim = simulate_probed(&t, &Platform::default(), &mut rec).unwrap();
        let m = rec.into_metrics();
        assert_eq!(link_heatmap_ascii(&m, 40, sim.runtime, 0), "");
        assert_eq!(link_heatmap_svg("t", &m, 800, sim.runtime, 0), "");
    }

    #[test]
    fn faulted_links_are_marked_in_both_renderers() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            transfer: TransferId::new(Rank(1), 0),
        });
        let p = Platform::default()
            .with_topology(Topology::Crossbar)
            .with_faults("degrade=0.5@1ms:n0->sw".parse().unwrap());
        let mut rec = WindowedRecorder::new(ovlp_machine::Time::micros(500.0));
        let sim = simulate_probed(&t, &p, &mut rec).unwrap();
        let m = rec.into_metrics();
        let text = link_heatmap_ascii(&m, 40, sim.runtime, 0);
        let marked = text.lines().find(|l| l.contains("[faulted]")).unwrap();
        assert!(marked.contains("n0->sw"), "{text}");
        let svg = link_heatmap_svg("links", &m, 800, sim.runtime, 0);
        assert!(svg.contains("n0-&gt;sw [faulted]"), "{svg}");
        assert!(!svg.contains("sw-&gt;n1 [faulted]"), "{svg}");
    }

    #[test]
    fn svg_heatmap_aligns_with_timeline_gutter() {
        let m = metrics();
        let span = ovlp_machine::Time::secs(m.runtime_s);
        let svg = link_heatmap_svg("links", &m, 800, span, 0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("n0-&gt;sw"), "labels escaped: missing");
        assert!(svg.contains("<rect"), "cells rendered");
        // cells start at the shared 48 px gutter
        assert!(svg.contains(r#"x="48.00""#), "{svg}");
    }

    #[test]
    fn heat_colors_are_deterministic_endpoints() {
        assert_eq!(heat_color(0.0), "#ffffff");
        assert_eq!(heat_color(1.0), "#a50026");
        assert_eq!(ramp_glyph(0.0), ' ');
        assert_eq!(ramp_glyph(1.5), '@');
    }
}
