//! ASCII scatter plots of production/consumption patterns — the
//! terminal rendition of the paper's Figure 5 panels ("the x axis
//! represents the normalized time within the corresponding computation
//! interval, the y axis represents an element's offset within the
//! transferred buffer").

use ovlp_core::patterns::ScatterPoint;

/// Render scatter points into a `width`×`height` character grid.
/// X: normalized interval time (0..1); Y: element offset (0 at the
/// bottom, like the paper's plots).
pub fn scatter_ascii(points: &[ScatterPoint], width: usize, height: usize) -> String {
    let width = width.max(10);
    let height = height.max(4);
    let max_off = points.iter().map(|p| p.offset).max().unwrap_or(0).max(1);
    let mut grid = vec![vec![' '; width]; height];
    for p in points {
        let xi = ((p.time * (width - 1) as f64).round() as usize).min(width - 1);
        let yi = ((p.offset as f64 / max_off as f64) * (height - 1) as f64).round() as usize;
        let row = height - 1 - yi.min(height - 1);
        grid[row][xi] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max_off:>6} |")
        } else if i == height - 1 {
            format!("{:>6} |", 0)
        } else {
            "       |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("       +");
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "        0%{}100%  (normalized interval time)\n",
        " ".repeat(width.saturating_sub(10))
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_pattern_renders_diagonally() {
        let points: Vec<ScatterPoint> = (0..10)
            .map(|i| ScatterPoint {
                time: i as f64 / 9.0,
                offset: i,
            })
            .collect();
        let s = scatter_ascii(&points, 20, 10);
        let lines: Vec<&str> = s.lines().collect();
        // bottom-left and top-right stars
        assert!(lines[9].contains('*'));
        assert!(lines[0].contains('*'));
        // bottom row star near the left, top row star near the right
        let bottom = lines[9].find('*').unwrap();
        let top = lines[0].find('*').unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn empty_points_render_empty_grid() {
        let s = scatter_ascii(&[], 12, 5);
        assert!(!s.contains('*'));
        assert!(s.contains('+'));
    }

    #[test]
    fn axis_labels_present() {
        let points = vec![ScatterPoint {
            time: 0.5,
            offset: 100,
        }];
        let s = scatter_ascii(&points, 30, 8);
        assert!(s.contains("100 |"), "{s}");
        assert!(s.contains("0%"));
        assert!(s.contains("100%"));
    }
}
