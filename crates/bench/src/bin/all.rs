//! Regenerate every table and figure in sequence (the full §V
//! evaluation). Equivalent to running `table1`, `table2`, `fig4`,
//! `fig5`, `fig6a`, `fig6b`, `fig6c` one after another, reusing one
//! traced pool.

use ovlp_bench::prepare_pool;
use ovlp_core::experiments::{bandwidth_relaxation, equivalent_bandwidth, run_variants};
use ovlp_core::patterns::{consumption_stats, production_stats};
use ovlp_core::report::{csv, fig6a_row, fig6b_row, fig6c_row, table2a, table2b};
use ovlp_machine::simulate;
use std::fs;
use std::path::Path;

fn main() {
    let pool = prepare_pool();
    let out_dir = Path::new("target/eval");
    fs::create_dir_all(out_dir).expect("create target/eval");

    println!("=== Table I — buses per application ===\n");
    for p in &pool {
        println!("  {:<12} {}", p.name, p.platform.buses);
    }

    println!("\n=== Table II — production/consumption patterns ===\n");
    let mut prod = Vec::new();
    let mut cons = Vec::new();
    for p in &pool {
        let mut db = p.run.access.clone();
        if p.name != "alya" {
            for rank in &mut db.ranks {
                rank.productions.retain(|_, l| l.elems > 1);
                rank.consumptions.retain(|_, l| l.elems > 1);
            }
        }
        prod.push((p.name.clone(), production_stats(&db)));
        cons.push((p.name.clone(), consumption_stats(&db)));
    }
    println!("{}", table2a(&prod));
    println!("{}", table2b(&cons));
    fs::write(out_dir.join("table2.csv"), csv::table2(&prod, &cons)).expect("write csv");

    println!("=== Figure 6(a) — speedup ===\n");
    let mut fig6a_rows = Vec::new();
    for p in &pool {
        let r = run_variants(&p.bundle, &p.platform).expect("simulation failed");
        println!("{}", fig6a_row(&r));
        fig6a_rows.push(r);
    }
    fs::write(out_dir.join("fig6a.csv"), csv::fig6a(&fig6a_rows)).expect("write csv");

    println!("\n=== Figure 6(b) — bandwidth relaxation ===\n");
    let mut fig6b_rows = Vec::new();
    for p in &pool {
        let r = bandwidth_relaxation(&p.bundle, &p.platform).expect("simulation failed");
        println!("{}", fig6b_row(&p.name, p.platform.bandwidth_mbs, &r));
        fig6b_rows.push((p.name.clone(), r));
    }
    fs::write(out_dir.join("fig6b.csv"), csv::fig6b(&fig6b_rows)).expect("write csv");

    println!("\n=== Figure 6(c) — equivalent bandwidth ===\n");
    let mut fig6c_rows = Vec::new();
    for p in &pool {
        let real = simulate(&p.bundle.overlapped, &p.platform)
            .unwrap()
            .runtime();
        let ideal = simulate(&p.bundle.ideal, &p.platform).unwrap().runtime();
        let er = equivalent_bandwidth(&p.bundle.original, &p.platform, real).unwrap();
        let ei = equivalent_bandwidth(&p.bundle.original, &p.platform, ideal).unwrap();
        println!(
            "{}",
            fig6c_row(&p.name, p.platform.bandwidth_mbs, "real", &er)
        );
        println!(
            "{}",
            fig6c_row(&p.name, p.platform.bandwidth_mbs, "ideal", &ei)
        );
        fig6c_rows.push((p.name.clone(), "real".to_string(), er));
        fig6c_rows.push((p.name.clone(), "ideal".to_string(), ei));
    }
    fs::write(out_dir.join("fig6c.csv"), csv::fig6c(&fig6c_rows)).expect("write csv");

    println!("\nwrote CSV series to {}", out_dir.display());
    println!("(run the fig4/fig5 binaries for the timeline and scatter panels)");
}
