//! Figure 5: production and consumption patterns as scatter plots —
//! normalized interval time (x) versus element offset within the
//! transferred buffer (y).
//!
//! * (a) Sweep3D production: every element revisited many times, final
//!   versions concentrated at the end;
//! * (b) NAS-BT consumption: four wholesale copy passes ("extremely
//!   short intervals");
//! * (c) POP consumption: visible independent work before the copy-in.

use ovlp_bench::{parse_jobs, prepare_named};
use ovlp_core::patterns::{consumption_scatter, production_scatter};
use ovlp_trace::access::{ConsumptionLog, ProductionLog};
use ovlp_viz::scatter_ascii;

/// Pick a representative steady-state production log: a multi-element
/// transfer from a middle rank, skipping the warm-up interval.
fn pick_production(db: &ovlp_trace::AccessDb) -> &ProductionLog {
    let mut logs: Vec<&ProductionLog> = db
        .all_productions()
        .filter(|p| p.elems > 1 && !p.events.is_empty())
        .collect();
    logs.sort_by_key(|p| (p.transfer.rank, p.transfer.seq));
    // skip the first instance (warm-up); prefer a rank in the middle
    let mid_rank = logs[logs.len() / 2].transfer.rank;
    logs.iter()
        .filter(|p| p.transfer.rank == mid_rank)
        .nth(1)
        .copied()
        .unwrap_or(logs[0])
}

fn pick_consumption(db: &ovlp_trace::AccessDb) -> &ConsumptionLog {
    let mut logs: Vec<&ConsumptionLog> = db
        .all_consumptions()
        .filter(|c| c.elems > 1 && !c.events.is_empty())
        .collect();
    logs.sort_by_key(|c| (c.transfer.rank, c.transfer.seq));
    let mid_rank = logs[logs.len() / 2].transfer.rank;
    logs.iter()
        .filter(|c| c.transfer.rank == mid_rank)
        .nth(1)
        .copied()
        .unwrap_or(logs[0])
}

fn main() {
    println!("Figure 5 — production and consumption patterns");
    println!("(x: normalized time within the computation interval; y: element offset)");

    let apps = prepare_named(&["sweep3d", "nas-bt", "pop"], parse_jobs());
    let [sweep, bt, pop] = &apps[..] else {
        panic!("expected three prepared apps");
    };

    let p = pick_production(&sweep.run.access);
    println!(
        "\n(a) Sweep3D production pattern ({} elements, {} stores):",
        p.elems,
        p.events.len()
    );
    println!("{}", scatter_ascii(&production_scatter(p), 100, 24));

    let c = pick_consumption(&bt.run.access);
    println!(
        "(b) NAS-BT consumption pattern ({} elements, {} loads):",
        c.elems,
        c.events.len()
    );
    println!("{}", scatter_ascii(&consumption_scatter(c), 100, 24));

    let c = pick_consumption(&pop.run.access);
    println!(
        "(c) POP consumption pattern ({} elements, {} loads):",
        c.elems,
        c.events.len()
    );
    println!("{}", scatter_ascii(&consumption_scatter(c), 100, 24));
}
