//! Table I: the number of Dimemas buses used for each application, plus
//! a sensitivity sweep showing what the calibration knob does — the bus
//! count bounds how many messages travel concurrently, and was tuned in
//! the paper so simulated runs match real Marenostrum runs.

use ovlp_bench::prepare_pool;
use ovlp_core::presets::table1;
use ovlp_machine::simulate;

fn main() {
    println!("Table I — number of network buses used in the simulator per application");
    println!();
    print!("{:<14}", "");
    for (name, _) in table1() {
        print!("{name:>11}");
    }
    println!();
    print!("{:<14}", "buses");
    for (_, buses) in table1() {
        print!("{buses:>11}");
    }
    println!();
    println!();
    println!("Sensitivity of the simulated original runtime to the bus count:");
    println!();
    let pool = prepare_pool();
    print!("{:<14}", "buses");
    for p in &pool {
        print!("{:>11}", p.name);
    }
    println!();
    for buses in [1u32, 2, 4, 8, 12, 22, 0] {
        if buses == 0 {
            print!("{:<14}", "unlimited");
        } else {
            print!("{buses:<14}");
        }
        for p in &pool {
            let r = simulate(&p.bundle.original, &p.platform.with_buses(buses))
                .expect("simulation failed");
            print!("{:>10.2}ms", r.runtime() * 1e3);
        }
        println!();
    }
}
