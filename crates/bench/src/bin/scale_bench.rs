//! Weak-scaling trajectory of the streamed summary-mode replay.
//!
//! Replays the registry's generated `ml-allreduce` workload through
//! [`ovlp_machine::replay_scale`] at a ladder of rank counts and
//! records, per point: ranks, streamed record count, the records
//! resident high-water mark (the number the whole streaming tentpole
//! exists to keep flat), events/sec, and the process RSS high-water
//! mark from `/proc/self/status` (ground truth that the engine-level
//! counter is honest). The measurements are written to
//! `BENCH_scale.json` (schema `ovlp.bench_scale.v1`) so the memory
//! trajectory is tracked in-repo; `scripts/check_scale_bench.py`
//! validates the document and CI's `scale-smoke` job re-runs the quick
//! ladder under a hard `ulimit -v`.
//!
//! ```text
//! scale_bench [--quick] [--out PATH] [--points R1,R2,..]
//! ```
//!
//! Points run in increasing rank order; `VmHWM` is process-monotone,
//! so each point's figure is "peak RSS up to and including this point"
//! — still a valid sublinearity witness, since the largest point
//! dominates.

use ovlp_core::presets::marenostrum_for;
use ovlp_machine::replay_scale;
use std::path::PathBuf;
use std::time::Instant;

const APP: &str = "ml-allreduce";

/// Full ladder: two orders of magnitude past the thread-per-rank cap.
const POINTS: &[usize] = &[1_000, 10_000, 100_000];
/// CI smoke ladder (the 10k point is the one `scale-smoke` runs under
/// `ulimit -v`).
const QUICK_POINTS: &[usize] = &[1_000, 10_000];

struct Point {
    ranks: usize,
    records_total: u64,
    records_peak: u64,
    events: u64,
    transfers: u64,
    queue_peak: usize,
    msg_slots: usize,
    req_slots: usize,
    chan_slots: usize,
    wall_s: f64,
    events_per_sec: f64,
    sim_runtime_s: f64,
    efficiency: f64,
    rss_peak_bytes: Option<u64>,
}

/// Process RSS high-water mark (`VmHWM`), in bytes. Linux-only; other
/// platforms report `null` in the document.
fn rss_peak_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_scale.json");
    let mut points: Option<Vec<usize>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out needs a path"));
            }
            "--points" => {
                i += 1;
                let list = args.get(i).expect("--points needs a comma-separated list");
                points = Some(
                    list.split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .unwrap_or_else(|e| panic!("bad --points entry `{s}`: {e}"))
                        })
                        .collect(),
                );
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: scale_bench [--quick] [--out PATH] [--points R1,R2,..]");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let mut ladder = points.unwrap_or_else(|| {
        if quick {
            QUICK_POINTS.to_vec()
        } else {
            POINTS.to_vec()
        }
    });
    ladder.sort_unstable();

    let entry = ovlp_apps::registry::by_name(APP).expect("registry app missing");
    let platform = marenostrum_for(APP);
    let mut results = Vec::new();
    for &ranks in &ladder {
        let source = entry
            .source(ranks)
            .unwrap_or_else(|e| panic!("{APP} at {ranks} ranks: {e}"));
        let t0 = Instant::now();
        let rep = replay_scale(source.as_ref(), &platform)
            .unwrap_or_else(|e| panic!("{APP} at {ranks} ranks: {e}"));
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(rep.nranks, ranks);
        assert!(
            rep.records_peak < rep.records_streamed || rep.records_streamed == 0,
            "streaming kept every record resident — the lazy supply regressed"
        );
        let p = Point {
            ranks,
            records_total: rep.records_streamed,
            records_peak: rep.records_peak,
            events: rep.events_processed,
            transfers: rep.transfers,
            queue_peak: rep.queue_peak,
            msg_slots: rep.msg_slots,
            req_slots: rep.req_slots,
            chan_slots: rep.chan_slots,
            wall_s: wall,
            events_per_sec: rep.events_processed as f64 / wall,
            sim_runtime_s: rep.runtime.as_secs(),
            efficiency: rep.efficiency(),
            rss_peak_bytes: rss_peak_bytes(),
        };
        println!(
            "{APP} {:>8} ranks  {:>11} records ({:>9} resident peak)  {:>11} events  \
             {:>12.0} events/s  wall {:>8.3} s  rss peak {}",
            p.ranks,
            p.records_total,
            p.records_peak,
            p.events,
            p.events_per_sec,
            p.wall_s,
            p.rss_peak_bytes
                .map(|b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)))
                .unwrap_or_else(|| "n/a".to_string()),
        );
        results.push(p);
    }

    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"ovlp.bench_scale.v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"app\": \"{APP}\",\n"));
    s.push_str("  \"points\": [\n");
    for (i, p) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"ranks\": {}, \"records_total\": {}, \"records_peak\": {}, \
             \"events\": {}, \"transfers\": {}, \"queue_peak\": {}, \"msg_slots\": {}, \
             \"req_slots\": {}, \"chan_slots\": {}, \"wall_s\": {}, \"events_per_sec\": {}, \
             \"sim_runtime_s\": {}, \"efficiency\": {}, \"rss_peak_bytes\": {}}}{}",
            p.ranks,
            p.records_total,
            p.records_peak,
            p.events,
            p.transfers,
            p.queue_peak,
            p.msg_slots,
            p.req_slots,
            p.chan_slots,
            json_f64(p.wall_s),
            json_f64(p.events_per_sec),
            json_f64(p.sim_runtime_s),
            json_f64(p.efficiency),
            json_opt_u64(p.rss_peak_bytes),
            if i + 1 < results.len() { ",\n" } else { "\n" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out, &s).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
