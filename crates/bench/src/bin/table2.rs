//! Table II: production and consumption average patterns for the
//! application pool.
//!
//! (a) Potential for advancing sends — percent of the production phase
//!     needed to produce the 1st element / a quarter / half / the whole
//!     message.
//! (b) Potential for post-postponing receptions — percent of the
//!     consumption phase that can be passed upon reception of nothing /
//!     a quarter / half of the message.
//!
//! As in the paper, Alya's single-element reductions leave the partial
//! columns blank; for the other applications the statistics cover the
//! point-to-point transfers (multi-element messages).

use ovlp_bench::prepare_pool;
use ovlp_core::patterns::{consumption_stats, production_stats};
use ovlp_core::report::{table2a, table2b};
use ovlp_trace::AccessDb;

/// Restrict an access database to multi-element transfers (drop the
/// scalar reductions, which are a separate population).
fn p2p_only(db: &AccessDb) -> AccessDb {
    let mut db = db.clone();
    for rank in &mut db.ranks {
        rank.productions.retain(|_, p| p.elems > 1);
        rank.consumptions.retain(|_, c| c.elems > 1);
    }
    db
}

fn main() {
    let mut prod_rows = Vec::new();
    let mut cons_rows = Vec::new();
    for p in prepare_pool() {
        let db = if p.name == "alya" {
            p.run.access.clone()
        } else {
            p2p_only(&p.run.access)
        };
        prod_rows.push((p.name.clone(), production_stats(&db)));
        cons_rows.push((p.name.clone(), consumption_stats(&db)));
    }
    println!("{}", table2a(&prod_rows));
    println!("{}", table2b(&cons_rows));
    println!("paper reference (Table II):");
    println!("  production  — BT 99.1/99.37/99.56/99.98  CG 3.98/27.98/51.99/99.97");
    println!("                Sweep3D 66.3/94.8/98.2/99.8  POP 95.5/96.62/97.75/99.99");
    println!("                SPECFEM3D 95.3/96.48/97.65/98.87  Alya 98.8/—/—/—");
    println!("  consumption — BT 13.68/13.71/13.74  CG 2.175/18.35/34.53");
    println!("                Sweep3D ~0/~0/~0  POP 3.525/3.53/3.534");
    println!("                SPECFEM3D 0.032/0.034/0.036  Alya 0.4/—/—");
}
