//! Figure 6(a): speedup of the overlapped executions (real and ideal
//! patterns) over the original, for the whole application pool on the
//! Marenostrum platform (250 MB/s, Table I buses, 4 chunks).
//!
//! Paper shape: real patterns give a speedup only for NAS-CG (~8%);
//! ideal patterns give a decent speedup for several applications, the
//! largest for Sweep3D (wavefront pipelining).

use ovlp_bench::{parse_jobs, prepare_pool_jobs};
use ovlp_core::experiments::run_variants;
use ovlp_core::report::fig6a_row;

fn main() {
    println!("Figure 6(a) — speedup of overlapped execution (4 chunks, Marenostrum)");
    println!();
    for p in prepare_pool_jobs(parse_jobs()) {
        let r = run_variants(&p.bundle, &p.platform).expect("simulation failed");
        println!(
            "{}  ({} ranks, {} buses)",
            fig6a_row(&r),
            p.ranks,
            p.platform.buses
        );
    }
}
