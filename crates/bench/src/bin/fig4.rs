//! Figure 4: Paraver visualization of the non-overlapped and overlapped
//! executions of NAS-CG on four processes (first five iterations).
//!
//! The paper's observation: "the overlapped execution achieves 8%
//! performance improvement with respect to the non-overlapped
//! execution … mostly attributed to advancing the MPI transfer by
//! sending the associated chunks earlier, as we can see by the longer
//! synchronization lines".
//!
//! This binary renders the comparison as an ASCII Gantt, writes SVG
//! timelines, and exports real Paraver traces
//! (`fig4-{original,overlapped}.{prv,pcf,row}`) into `target/fig4/`.

use ovlp_apps::nas_cg::NasCgApp;
use ovlp_bench::parse_jobs;
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::pipeline::build_variants;
use ovlp_core::presets::marenostrum_for;
use ovlp_core::sweep::scheduler;
use ovlp_instr::trace_app;
use ovlp_machine::simulate;
use ovlp_viz::{gantt_comparison, paraver, timeline_svg};
use std::fs;
use std::path::Path;

fn main() {
    // the paper's Fig. 4 setup: NAS-CG, 4 processes, 5 iterations.
    // With 4 uncontended ranks the communication/computation ratio
    // comes from the segment size; 12k elements lands at the ~8%
    // improvement the paper reports.
    let app = NasCgApp {
        iters: 5,
        seg: 12_000,
        ..NasCgApp::default()
    };
    let ranks = 4;
    let platform = marenostrum_for("nas-cg");
    let run = trace_app(&app, ranks).expect("tracing failed");
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    // both variants replay on the sweep engine's worker pool (--jobs N;
    // results are identical for any N)
    let jobs = parse_jobs();
    let mut sims = scheduler::run_indexed(
        vec![&bundle.original, &bundle.overlapped],
        jobs,
        2 * jobs,
        |_i, trace| simulate(trace, &platform).expect("simulation failed"),
    )
    .into_iter()
    .map(|slot| slot.expect("replay worker failed"));
    let original = sims.next().expect("original result");
    let overlapped = sims.next().expect("overlapped result");

    println!("Figure 4 — NAS-CG on {ranks} processes, 5 iterations, Marenostrum (6 buses)");
    println!();
    println!(
        "{}",
        gantt_comparison("non-overlapped", &original, "overlapped", &overlapped, 100)
    );
    println!("per-iteration comparison (the paper's first-five-iterations reading):");
    println!(
        "{}",
        ovlp_core::iterations::iteration_comparison(
            "non-overlapped",
            &original,
            "overlapped",
            &overlapped
        )
    );
    let longer_sync: f64 = overlapped
        .comms
        .iter()
        .map(|c| c.span().as_secs())
        .sum::<f64>()
        / overlapped.comms.len().max(1) as f64;
    let orig_sync: f64 = original
        .comms
        .iter()
        .map(|c| c.span().as_secs())
        .sum::<f64>()
        / original.comms.len().max(1) as f64;
    println!(
        "mean synchronization-line span: original {:.1} us, overlapped {:.1} us \
         (longer lines = transfers advanced ahead of their use)",
        orig_sync * 1e6,
        longer_sync * 1e6
    );
    println!(
        "wait time per rank: original {:.1} us, overlapped {:.1} us",
        original.total_wait() * 1e6 / ranks as f64,
        overlapped.total_wait() * 1e6 / ranks as f64
    );

    // artifacts
    let dir = Path::new("target/fig4");
    fs::create_dir_all(dir).expect("create output dir");
    let span = original.runtime.max(overlapped.runtime);
    for (label, sim) in [("original", &original), ("overlapped", &overlapped)] {
        let svg = timeline_svg(&format!("NAS-CG {label}"), sim, 1200, span);
        fs::write(dir.join(format!("fig4-{label}.svg")), svg).expect("write svg");
        let e = paraver::export(&format!("nas-cg-{label}"), sim);
        fs::write(dir.join(format!("fig4-{label}.prv")), e.prv).expect("write prv");
        fs::write(dir.join(format!("fig4-{label}.pcf")), e.pcf).expect("write pcf");
        fs::write(dir.join(format!("fig4-{label}.row")), e.row).expect("write row");
    }
    println!("\nwrote SVG + Paraver traces to {}", dir.display());
}
