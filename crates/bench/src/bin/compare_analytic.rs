//! Baseline comparison: the analytical overlap model of Sancho et al.
//! (SC'06, the paper's reference \[23\]) versus this framework's
//! simulation — the quantitative version of the paper's §VI claim that
//! the simulation "accounts for more delicate application properties"
//! (chunk-level windows, contention, cross-rank pipelining) than the
//! single-loop analytical model can.

use ovlp_bench::prepare_pool;
use ovlp_core::analytic::estimate;
use ovlp_core::experiments::run_variants;
use ovlp_core::patterns::{consumption_stats, production_stats};

fn main() {
    println!("Analytical baseline (Sancho et al.) vs simulated overlap speedup");
    println!();
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "app", "f", "Tc (ms)", "Tm (ms)", "analytic", "analytic-ub", "simulated"
    );
    for p in prepare_pool() {
        let r = run_variants(&p.bundle, &p.platform).expect("simulation failed");
        let mut db = p.run.access.clone();
        if p.name != "alya" {
            for rank in &mut db.ranks {
                rank.productions.retain(|_, l| l.elems > 1);
                rank.consumptions.retain(|_, l| l.elems > 1);
            }
        }
        let e = estimate(&r.original, &production_stats(&db), &consumption_stats(&db));
        println!(
            "{:<12} {:>8.3} {:>10.2} {:>10.3} {:>11.3}x {:>11.3}x {:>11.3}x",
            p.name,
            e.f,
            e.tc * 1e3,
            e.tm * 1e3,
            e.speedup,
            e.upper_bound,
            r.speedup_real()
        );
    }
    println!();
    println!(
        "Where the analytical column overshoots the simulated one, contention and\n\
         per-chunk serialization (which the loop model cannot see) are the cause;\n\
         where it undershoots (Sweep3D), cross-rank pipeline effects are — the\n\
         motivation for simulating instead of estimating (paper §VI)."
    );
}
