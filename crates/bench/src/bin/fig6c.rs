//! Figure 6(c): equivalent bandwidth — the bandwidth the
//! *non-overlapped* execution would need to match the overlapped
//! execution at 250 MB/s ("the overlap's equivalent in increased
//! network bandwidth").
//!
//! Paper shape: SPECFEM3D's modest speedup is worth almost a 4×
//! bandwidth increase; for Sweep3D no finite bandwidth suffices — the
//! result "tends to infinity" (chunking creates finer-grain pipeline
//! dependencies a faster network cannot emulate).

use ovlp_bench::{parse_jobs, prepare_pool_jobs};
use ovlp_core::experiments::equivalent_bandwidth;
use ovlp_core::report::fig6c_row;
use ovlp_machine::simulate;

fn main() {
    println!(
        "Figure 6(c) — bandwidth required by the non-overlapped execution to match\n\
         the overlapped execution at 250 MB/s"
    );
    println!();
    for p in prepare_pool_jobs(parse_jobs()) {
        let real = simulate(&p.bundle.overlapped, &p.platform)
            .expect("simulation failed")
            .runtime();
        let ideal = simulate(&p.bundle.ideal, &p.platform)
            .expect("simulation failed")
            .runtime();
        let er =
            equivalent_bandwidth(&p.bundle.original, &p.platform, real).expect("simulation failed");
        let ei = equivalent_bandwidth(&p.bundle.original, &p.platform, ideal)
            .expect("simulation failed");
        println!(
            "{}",
            fig6c_row(&p.name, p.platform.bandwidth_mbs, "real", &er)
        );
        println!(
            "{}",
            fig6c_row(&p.name, p.platform.bandwidth_mbs, "ideal", &ei)
        );
    }
}
