//! Figure 6(b): bandwidth relaxation — the minimum network bandwidth at
//! which the overlapped execution still matches the performance of the
//! non-overlapped execution at 250 MB/s.
//!
//! Paper shape: every application tolerates a substantial reduction;
//! Sweep3D benefits the most (down to 11.75 MB/s).

use ovlp_bench::{parse_jobs, prepare_pool_jobs};
use ovlp_core::experiments::bandwidth_relaxation;
use ovlp_core::report::fig6b_row;

fn main() {
    println!(
        "Figure 6(b) — minimum bandwidth for the overlapped execution to match\n\
         the original execution at 250 MB/s"
    );
    println!();
    for p in prepare_pool_jobs(parse_jobs()) {
        let r = bandwidth_relaxation(&p.bundle, &p.platform).expect("simulation failed");
        println!("{}", fig6b_row(&p.name, p.platform.bandwidth_mbs, &r));
    }
}
