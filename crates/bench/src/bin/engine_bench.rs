//! Replay-engine throughput benchmark over the committed golden
//! fixtures.
//!
//! Replays `tests/fixtures/{sweep3d_4r,nas_cg_8r}.trf` across the four
//! contention models (bus, crossbar, fat-tree, torus) and reports
//! events/sec and reshares/sec (quoted against the fastest iteration;
//! the replay is deterministic, so iteration-to-iteration variance is
//! machine noise), per-replay wall time, and the event-queue
//! high-water mark. The measurements are written to `BENCH_engine.json`
//! (schema `ovlp.bench_engine.v1`) so the engine's perf trajectory is
//! tracked in-repo from PR 4 onward; see `docs/perf.md`.
//!
//! ```text
//! engine_bench [--quick] [--out PATH] [--baseline EVENTS_PER_SEC] [--fixtures DIR]
//! ```
//!
//! `--quick` shrinks the sample count for CI smoke jobs. `--baseline`
//! embeds a reference events/sec figure (by convention: the
//! `nas_cg_8r` fat-tree replay measured at the parent commit) so the
//! emitted document records both sides of a before/after comparison.
//!
//! Since schema v2 the document also carries a `parallel` section: the
//! nas_cg_8r fat-tree workload tiled ×256 replayed under
//! `ReplayEngine::Sequential` and `Parallel` at 1/2/4/8 workers, with
//! the engines interleaved round-robin so machine drift cannot bias
//! the comparison, plus the `hardware_threads` the run had available —
//! parallel speedups are meaningless without it.

use ovlp_machine::{simulate, simulate_with, Platform, ReplayEngine, SimResult};
use ovlp_trace::{synth, text, Trace};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Config {
    fixture: &'static str,
    topology: &'static str,
}

const CONFIGS: &[Config] = &[
    Config {
        fixture: "sweep3d_4r",
        topology: "bus",
    },
    Config {
        fixture: "sweep3d_4r",
        topology: "crossbar",
    },
    Config {
        fixture: "sweep3d_4r",
        topology: "fat-tree:4",
    },
    Config {
        fixture: "sweep3d_4r",
        topology: "torus:2x2",
    },
    Config {
        fixture: "nas_cg_8r",
        topology: "bus",
    },
    Config {
        fixture: "nas_cg_8r",
        topology: "crossbar",
    },
    Config {
        fixture: "nas_cg_8r",
        topology: "fat-tree:4",
    },
    Config {
        fixture: "nas_cg_8r",
        topology: "torus:2x2x2",
    },
];

struct Measurement {
    fixture: String,
    topology: String,
    ranks: usize,
    iterations: usize,
    wall_median_s: f64,
    wall_min_s: f64,
    events: u64,
    events_per_sec: f64,
    reshares: u64,
    reshares_per_sec: f64,
    stale_events: u64,
    queue_peak: usize,
    sim_runtime_s: f64,
}

fn fixture_dir(cli: Option<&str>) -> PathBuf {
    if let Some(d) = cli {
        return PathBuf::from(d);
    }
    // crates/bench -> workspace root; fall back to the cwd for a binary
    // invoked from a target/ directory copied elsewhere.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures");
    if manifest.is_dir() {
        manifest
    } else {
        PathBuf::from("tests/fixtures")
    }
}

fn load(dir: &Path, stem: &str) -> Trace {
    let path = dir.join(format!("{stem}.trf"));
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    text::parse(&body).unwrap_or_else(|e| panic!("{stem}: {e}"))
}

fn replay(trace: &Trace, platform: &Platform) -> SimResult {
    simulate(trace, platform).expect("fixture replay failed")
}

/// Repeat the replay until `budget` wall time is spent (at least
/// `min_iters` times) and report the median/min per-iteration wall.
fn measure(
    trace: &Trace,
    platform: &Platform,
    budget: Duration,
    min_iters: usize,
) -> (Vec<Duration>, SimResult) {
    let sim = replay(trace, platform); // warmup + canonical result
    let mut times = Vec::new();
    let start = Instant::now();
    while times.len() < min_iters || start.elapsed() < budget {
        let t0 = Instant::now();
        let s = replay(trace, platform);
        times.push(t0.elapsed());
        assert_eq!(
            s.events_processed, sim.events_processed,
            "nondeterministic replay"
        );
    }
    times.sort();
    (times, sim)
}

/// One engine's row in the parallel-vs-sequential series.
struct EngineMeasurement {
    engine: String,
    rounds: usize,
    wall_median_s: f64,
    wall_min_s: f64,
    events: u64,
    events_per_sec: f64,
}

/// Measure the replay-engine series on one workload with the engines
/// interleaved round-robin: every round replays each engine once, so
/// slow drift of a shared machine (frequency scaling, noisy
/// neighbours) biases all engines equally instead of whichever ran
/// last. Throughput is quoted from each engine's fastest round.
fn measure_engines(
    trace: &Trace,
    platform: &Platform,
    engines: &[(String, ReplayEngine)],
    rounds: usize,
) -> Vec<EngineMeasurement> {
    let reference =
        simulate_with(trace, platform, ReplayEngine::Sequential).expect("workload replay failed");
    let mut times: Vec<Vec<Duration>> = vec![Vec::with_capacity(rounds); engines.len()];
    for _ in 0..rounds {
        for (i, (_, eng)) in engines.iter().enumerate() {
            let t0 = Instant::now();
            let s = simulate_with(trace, platform, *eng).expect("workload replay failed");
            times[i].push(t0.elapsed());
            assert_eq!(
                s.events_processed, reference.events_processed,
                "engine diverged from the sequential reference"
            );
        }
    }
    engines
        .iter()
        .zip(times.iter_mut())
        .map(|((name, _), ts)| {
            ts.sort();
            let min = ts[0].as_secs_f64();
            EngineMeasurement {
                engine: name.clone(),
                rounds: ts.len(),
                wall_median_s: ts[ts.len() / 2].as_secs_f64(),
                wall_min_s: min,
                events: reference.events_processed,
                events_per_sec: reference.events_processed as f64 / min,
            }
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = PathBuf::from("BENCH_engine.json");
    let mut baseline: Option<f64> = None;
    let mut fixtures: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out needs a path"));
            }
            "--baseline" => {
                i += 1;
                baseline = Some(
                    args.get(i)
                        .and_then(|v| v.parse().ok())
                        .expect("--baseline needs an events/sec number"),
                );
            }
            "--fixtures" => {
                i += 1;
                fixtures = Some(args.get(i).expect("--fixtures needs a dir").clone());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: engine_bench [--quick] [--out PATH] \
                     [--baseline EVENTS_PER_SEC] [--fixtures DIR]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let (budget, min_iters) = if quick {
        (Duration::from_millis(60), 3)
    } else {
        (Duration::from_millis(500), 9)
    };
    let dir = fixture_dir(fixtures.as_deref());

    let mut results = Vec::new();
    for cfg in CONFIGS {
        let trace = load(&dir, cfg.fixture);
        let platform =
            Platform::default().with_contention(cfg.topology.parse().unwrap_or_else(|e| {
                panic!("bad topology {}: {e}", cfg.topology);
            }));
        let (times, sim) = measure(&trace, &platform, budget, min_iters);
        let median = times[times.len() / 2].as_secs_f64();
        let min = times[0].as_secs_f64();
        // throughput is quoted from the fastest iteration: each replay
        // is deterministic and identical, so wall-time variance is pure
        // scheduler/frequency noise and the minimum is the least-biased
        // estimate on a shared machine (the median is kept alongside)
        let m = Measurement {
            fixture: cfg.fixture.to_string(),
            topology: cfg.topology.to_string(),
            ranks: trace.nranks(),
            iterations: times.len(),
            wall_median_s: median,
            wall_min_s: min,
            events: sim.events_processed,
            events_per_sec: sim.events_processed as f64 / min,
            reshares: sim.network.reshares,
            reshares_per_sec: sim.network.reshares as f64 / min,
            stale_events: sim.stale_events,
            queue_peak: sim.queue_peak,
            sim_runtime_s: sim.runtime(),
        };
        println!(
            "{:<11} {:<13} {:>9} events  {:>12.0} events/s  {:>9} reshares  {:>12.0} reshares/s  min {:.3} ms  median {:.3} ms",
            m.fixture,
            m.topology,
            m.events,
            m.events_per_sec,
            m.reshares,
            m.reshares_per_sec,
            m.wall_min_s * 1e3,
            m.wall_median_s * 1e3,
        );
        results.push(m);
    }

    // Parallel-vs-sequential series: the nas_cg_8r fat-tree workload,
    // tiled so per-event engine costs dominate per-replay setup (the
    // raw fixture replays in ~30 µs). Engines are interleaved per
    // round; see `measure_engines`.
    const PAR_TILING: u32 = 256;
    let par_trace = synth::tile(&load(&dir, "nas_cg_8r"), PAR_TILING);
    let par_platform = Platform::default().with_contention("fat-tree:4".parse().unwrap());
    let engines: Vec<(String, ReplayEngine)> =
        std::iter::once(("sequential".to_string(), ReplayEngine::Sequential))
            .chain([1usize, 2, 4, 8].into_iter().map(|w| {
                (
                    format!("parallel:{w}"),
                    ReplayEngine::Parallel { workers: w },
                )
            }))
            .collect();
    let par_rounds = if quick { 5 } else { 25 };
    let par_series = measure_engines(&par_trace, &par_platform, &engines, par_rounds);
    let seq_eps = par_series[0].events_per_sec;
    for m in &par_series {
        println!(
            "nas_cg_8r x{PAR_TILING} fat-tree:4  {:<12} {:>9} events  {:>12.0} events/s  {:>6.3}x vs sequential  min {:.3} ms",
            m.engine,
            m.events,
            m.events_per_sec,
            m.events_per_sec / seq_eps,
            m.wall_min_s * 1e3,
        );
    }
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    // The headline number the perf floor and the baseline comparison
    // refer to: the nas_cg_8r fat-tree replay (the reshare-dominated
    // configuration).
    let headline = results
        .iter()
        .find(|m| m.fixture == "nas_cg_8r" && m.topology.starts_with("fat-tree"))
        .expect("headline config missing");
    let headline_events_per_sec = headline.events_per_sec;

    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"ovlp.bench_engine.v2\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!(
        "  \"parallel\": {{\n    \"fixture\": \"nas_cg_8r\", \"topology\": \"fat-tree:4\", \
         \"tiling\": {PAR_TILING}, \"hardware_threads\": {hw_threads},\n    \
         \"speedup_at_8_workers\": {},\n    \"series\": [\n",
        json_f64(par_series.last().map(|m| m.events_per_sec).unwrap_or(0.0) / seq_eps)
    ));
    for (i, m) in par_series.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"engine\": \"{}\", \"rounds\": {}, \"wall_median_s\": {}, \
             \"wall_min_s\": {}, \"events\": {}, \"events_per_sec\": {}, \
             \"speedup_vs_sequential\": {}}}{}",
            m.engine,
            m.rounds,
            json_f64(m.wall_median_s),
            json_f64(m.wall_min_s),
            m.events,
            json_f64(m.events_per_sec),
            json_f64(m.events_per_sec / seq_eps),
            if i + 1 < par_series.len() {
                ",\n"
            } else {
                "\n"
            }
        ));
    }
    s.push_str("    ]\n  },\n");
    s.push_str(&format!(
        "  \"headline\": {{\"fixture\": \"nas_cg_8r\", \"topology\": \"fat-tree:4\", \"events_per_sec\": {}}},\n",
        json_f64(headline_events_per_sec)
    ));
    match baseline {
        Some(b) => {
            s.push_str(&format!(
                "  \"baseline\": {{\"events_per_sec\": {}, \"note\": \"nas_cg_8r fat-tree:4 at the parent commit\"}},\n",
                json_f64(b)
            ));
            s.push_str(&format!(
                "  \"speedup_vs_baseline\": {},\n",
                json_f64(headline_events_per_sec / b)
            ));
        }
        None => {
            s.push_str("  \"baseline\": null,\n  \"speedup_vs_baseline\": null,\n");
        }
    }
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"fixture\": \"{}\", \"topology\": \"{}\", \"ranks\": {}, \"iterations\": {}, \
             \"wall_median_s\": {}, \"wall_min_s\": {}, \"events\": {}, \"events_per_sec\": {}, \
             \"reshares\": {}, \"reshares_per_sec\": {}, \"stale_events\": {}, \"queue_peak\": {}, \
             \"sim_runtime_s\": {}}}{}",
            m.fixture,
            m.topology,
            m.ranks,
            m.iterations,
            json_f64(m.wall_median_s),
            json_f64(m.wall_min_s),
            m.events,
            json_f64(m.events_per_sec),
            m.reshares,
            json_f64(m.reshares_per_sec),
            m.stale_events,
            m.queue_peak,
            json_f64(m.sim_runtime_s),
            if i + 1 < results.len() { ",\n" } else { "\n" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&out, &s).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!("wrote {}", out.display());
}
