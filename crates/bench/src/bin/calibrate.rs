//! Internal calibration sweep (not a paper artifact): explores app
//! parameters and prints the Fig. 6 metrics for each, so defaults can
//! be pinned to the paper's reported shapes.

use ovlp_apps::specfem3d::Specfem3dApp;
use ovlp_apps::sweep3d::Sweep3dApp;
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::experiments::{bandwidth_relaxation, equivalent_bandwidth, EquivalentBandwidth};
use ovlp_core::pipeline::build_variants;
use ovlp_core::presets::marenostrum_for;
use ovlp_instr::{trace_app, MpiApp};
use ovlp_machine::simulate;

fn eval(name: &str, app: &dyn MpiApp, ranks: usize, label: &str) {
    let platform = marenostrum_for(name);
    let run = trace_app(app, ranks).unwrap();
    let bundle = build_variants(&run, &ChunkPolicy::paper_default());
    let orig = simulate(&bundle.original, &platform).unwrap().runtime();
    let real = simulate(&bundle.overlapped, &platform).unwrap().runtime();
    let ideal = simulate(&bundle.ideal, &platform).unwrap().runtime();
    let relax = bandwidth_relaxation(&bundle, &platform).unwrap();
    let eq_r = equivalent_bandwidth(&bundle.original, &platform, real).unwrap();
    let eq_i = equivalent_bandwidth(&bundle.original, &platform, ideal).unwrap();
    let show = |e: EquivalentBandwidth| match e {
        EquivalentBandwidth::Finite(bw) => format!("{:.2}x", bw / 250.0),
        EquivalentBandwidth::Divergent => "INF".to_string(),
    };
    println!(
        "{label:<40} 6a real x{:.3} ideal x{:.3} | 6b real {:>7} ideal {:>7} | 6c real {:>6} ideal {:>6}",
        orig / real,
        orig / ideal,
        relax.real_mbs.map(|b| format!("{b:.1}")).unwrap_or("-".into()),
        relax.ideal_mbs.map(|b| format!("{b:.1}")).unwrap_or("-".into()),
        show(eq_r),
        show(eq_i),
    );
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    if which == "sweep3d" || which == "all" {
        for face in [2000usize, 3000, 4000] {
            let app = Sweep3dApp {
                face,
                ..Sweep3dApp::default()
            };
            eval("sweep3d", &app, 16, &format!("sweep3d face={face}"));
        }
    }
    if which == "specfem3d" || which == "all" {
        for boundary in [2400usize, 2500, 2600, 2700, 2800] {
            for step in [9_200_000u64, 9_660_000, 10_120_000] {
                let app = Specfem3dApp {
                    boundary,
                    step_instr: step,
                    ..Specfem3dApp::default()
                };
                eval(
                    "specfem3d",
                    &app,
                    16,
                    &format!("specfem3d bnd={boundary} step={step}"),
                );
            }
        }
    }
}
