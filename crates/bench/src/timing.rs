//! Minimal wall-clock benchmark harness for the `benches/` targets.
//!
//! The container image has no access to crates.io, so Criterion cannot
//! be used; this keeps the `cargo bench` targets runnable offline. Each
//! measurement takes `samples` timed runs after a warmup and reports
//! min / median / mean, plus element throughput when requested. There
//! is no statistical regression machinery — the point is a quick,
//! dependency-free reading of engine cost.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A named group of measurements, mirroring Criterion's
/// `benchmark_group` layout in the printed output.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    pub fn new(name: &str, samples: usize) -> Group {
        println!("\n== {name} ==");
        Group {
            name: name.to_string(),
            samples: samples.max(1),
        }
    }

    /// Time `f` and print one result line. The closure's return value is
    /// routed through `black_box` so the work cannot be optimized away.
    pub fn bench<R>(&self, id: impl std::fmt::Display, mut f: impl FnMut() -> R) {
        self.bench_inner(id, None, &mut f);
    }

    /// Like [`bench`](Group::bench), also reporting `elements / second`
    /// throughput for the given per-iteration element count.
    pub fn bench_elems<R>(&self, id: impl std::fmt::Display, elems: u64, mut f: impl FnMut() -> R) {
        self.bench_inner(id, Some(elems), &mut f);
    }

    fn bench_inner<R>(
        &self,
        id: impl std::fmt::Display,
        elems: Option<u64>,
        f: &mut dyn FnMut() -> R,
    ) {
        // warmup: at least one run, until ~50ms spent or `samples` runs
        let warm_start = Instant::now();
        let mut warmups = 0usize;
        while warmups == 0
            || (warm_start.elapsed() < Duration::from_millis(50) && warmups < self.samples)
        {
            black_box(f());
            warmups += 1;
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        let mut line = format!(
            "{}/{id:<12} min {:>10}  median {:>10}  mean {:>10}",
            self.name,
            fmt_dur(min),
            fmt_dur(median),
            fmt_dur(mean),
        );
        if let Some(n) = elems {
            let per_sec = n as f64 / median.as_secs_f64();
            line.push_str(&format!("  ({:.2} Melem/s)", per_sec / 1e6));
        }
        println!("{line}");
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_cover_magnitudes() {
        assert_eq!(fmt_dur(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_dur(Duration::from_micros(120)), "120.00 µs");
        assert_eq!(fmt_dur(Duration::from_millis(35)), "35.00 ms");
        assert_eq!(fmt_dur(Duration::from_secs(12)), "12.00 s");
    }

    #[test]
    fn bench_runs_closure() {
        let mut calls = 0u32;
        let g = Group::new("test", 3);
        g.bench("noop", || calls += 1);
        assert!(calls >= 4, "warmup + samples should call the closure");
    }
}
