//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§V). This library provides the common steps:
//! trace the application pool under instrumentation, build the three
//! trace variants, and pair each application with its Table I platform.

use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::pipeline::{build_variants, VariantBundle};
use ovlp_core::presets::marenostrum_for;
use ovlp_instr::{trace_app, TraceRun};
use ovlp_machine::Platform;

/// One prepared application: traced, transformed, and configured.
pub struct PreparedApp {
    pub name: String,
    pub ranks: usize,
    pub run: TraceRun,
    pub bundle: VariantBundle,
    pub platform: Platform,
}

/// Trace and transform the whole pool with the paper's chunk policy
/// (4 chunks) and Table I bus counts.
///
/// Set `OVLP_QUICK=1` to use the miniature app configurations (CI and
/// smoke runs).
pub fn prepare_pool() -> Vec<PreparedApp> {
    let quick = std::env::var("OVLP_QUICK").is_ok_and(|v| v != "0");
    let policy = ChunkPolicy::paper_default();
    ovlp_apps::paper_pool()
        .into_iter()
        .map(|entry| {
            let (app, ranks): (Box<dyn ovlp_instr::MpiApp>, usize) = if quick {
                (quick_variant(entry.name), 4)
            } else {
                (entry.app, entry.ranks)
            };
            let run = trace_app(app.as_ref(), ranks).expect("tracing failed");
            let bundle = build_variants(&run, &policy);
            PreparedApp {
                name: entry.name.to_string(),
                ranks,
                run,
                bundle,
                platform: marenostrum_for(entry.name),
            }
        })
        .collect()
}

fn quick_variant(name: &str) -> Box<dyn ovlp_instr::MpiApp> {
    match name {
        "sweep3d" => Box::new(ovlp_apps::sweep3d::Sweep3dApp::quick()),
        "pop" => Box::new(ovlp_apps::pop::PopApp::quick()),
        "alya" => Box::new(ovlp_apps::alya::AlyaApp::quick()),
        "specfem3d" => Box::new(ovlp_apps::specfem3d::Specfem3dApp::quick()),
        "nas-bt" => Box::new(ovlp_apps::nas_bt::NasBtApp::quick()),
        "nas-cg" => Box::new(ovlp_apps::nas_cg::NasCgApp::quick()),
        other => panic!("unknown app {other}"),
    }
}

/// Prepare a single application by name.
pub fn prepare_one(name: &str) -> PreparedApp {
    prepare_pool()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown app {name}"))
}
