//! Shared harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (§V). This library provides the common steps:
//! trace the application pool under instrumentation, build the three
//! trace variants, and pair each application with its Table I platform.
//!
//! All binaries accept `--jobs N`: preparation (tracing + variant
//! construction, the expensive part) fans out over the sweep engine's
//! worker pool. Results are identical for every `N` — apps are
//! constructed by name inside each worker and results are slotted by
//! pool index.

use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::pipeline::{build_variants, VariantBundle};
use ovlp_core::presets::marenostrum_for;
use ovlp_core::sweep::scheduler;
use ovlp_instr::{trace_app, TraceRun};
use ovlp_machine::Platform;

pub mod timing;

/// One prepared application: traced, transformed, and configured.
pub struct PreparedApp {
    pub name: String,
    pub ranks: usize,
    pub run: TraceRun,
    pub bundle: VariantBundle,
    pub platform: Platform,
}

/// Read `--jobs N` from the process arguments (default 1).
pub fn parse_jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        None => 1,
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("warning: bad --jobs value, using 1");
                1
            }),
    }
}

/// Trace and transform the whole pool with the paper's chunk policy
/// (4 chunks) and Table I bus counts, sequentially.
///
/// Set `OVLP_QUICK=1` to use the miniature app configurations (CI and
/// smoke runs).
pub fn prepare_pool() -> Vec<PreparedApp> {
    prepare_pool_jobs(1)
}

/// [`prepare_pool`] with the preparation of different apps fanned over
/// `jobs` worker threads.
pub fn prepare_pool_jobs(jobs: usize) -> Vec<PreparedApp> {
    // The table/figure binaries reproduce the paper's six *traced*
    // apps; generated workload families have their own bench
    // (`scale_bench`).
    let names: Vec<&'static str> = ovlp_apps::paper_pool()
        .iter()
        .filter(|e| !e.is_generated())
        .map(|e| e.name)
        .collect();
    prepare_named(&names, jobs)
}

/// Prepare the named subset of the pool, fanning app preparation over
/// `jobs` worker threads. Output order follows `names`.
pub fn prepare_named(names: &[&str], jobs: usize) -> Vec<PreparedApp> {
    let quick = std::env::var("OVLP_QUICK").is_ok_and(|v| v != "0");
    scheduler::run_indexed(names.to_vec(), jobs, 2 * jobs, |_i, name| {
        prepare_app(name, quick)
    })
    .into_iter()
    .map(|slot| slot.unwrap_or_else(|e| panic!("preparation failed: {e}")))
    .collect()
}

/// Prepare one application. The `dyn MpiApp` is built *inside* this
/// call so workers never need to move trait objects across threads.
fn prepare_app(name: &str, quick: bool) -> PreparedApp {
    let policy = ChunkPolicy::paper_default();
    let (run, ranks) = if quick {
        let app = quick_variant(name);
        let run = trace_app(app.as_ref(), 4).expect("tracing failed");
        (run, 4)
    } else {
        let entry =
            ovlp_apps::registry::by_name(name).unwrap_or_else(|| panic!("unknown app {name}"));
        let ranks = entry.ranks;
        let run = entry
            .trace_run(ranks)
            .unwrap_or_else(|e| panic!("tracing {name} failed: {e}"));
        (run, ranks)
    };
    let bundle = build_variants(&run, &policy);
    PreparedApp {
        name: name.to_string(),
        ranks,
        run,
        bundle,
        platform: marenostrum_for(name),
    }
}

fn quick_variant(name: &str) -> Box<dyn ovlp_instr::MpiApp> {
    match name {
        "sweep3d" => Box::new(ovlp_apps::sweep3d::Sweep3dApp::quick()),
        "pop" => Box::new(ovlp_apps::pop::PopApp::quick()),
        "alya" => Box::new(ovlp_apps::alya::AlyaApp::quick()),
        "specfem3d" => Box::new(ovlp_apps::specfem3d::Specfem3dApp::quick()),
        "nas-bt" => Box::new(ovlp_apps::nas_bt::NasBtApp::quick()),
        "nas-cg" => Box::new(ovlp_apps::nas_cg::NasCgApp::quick()),
        other => panic!("unknown app {other}"),
    }
}

/// Prepare a single application by name (no longer traces the whole
/// pool to produce one entry).
pub fn prepare_one(name: &str) -> PreparedApp {
    prepare_named(&[name], 1)
        .into_iter()
        .next()
        .expect("one name in, one app out")
}
