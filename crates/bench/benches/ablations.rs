//! Design-choice ablations (DESIGN.md §5) as measured sweeps. Each
//! bench reports the engine cost across a parameter sweep; the
//! *simulated* runtimes per setting — the scientific output — are
//! printed once per run so `cargo bench` output records them.

use ovlp_apps::synthetic::{Consumption, PatternApp, Production};
use ovlp_bench::timing::Group;
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::transform::transform;
use ovlp_instr::{trace_app, TraceRun};
use ovlp_machine::{simulate, CollectiveAlgo, Platform};
use ovlp_trace::record::SendMode;

fn linear_run() -> TraceRun {
    let app = PatternApp {
        elems: 4_000,
        iters: 4,
        phase_instr: 2_000_000,
        production: Production::Linear,
        consumption: Consumption::Linear,
    };
    trace_app(&app, 8).unwrap()
}

/// Ablation 1 + 2: chunk count and bus count.
fn bench_chunks_and_buses() {
    let run = linear_run();
    let platform = Platform::marenostrum(0);
    println!("\n[ablation] chunk count -> simulated runtime (linear patterns):");
    let orig = simulate(&run.trace, &platform).unwrap().runtime();
    println!("  original: {:.3} ms", orig * 1e3);
    let g = Group::new("ablation/chunks", 10);
    for chunks in [1u32, 2, 4, 8, 16, 32] {
        let t = transform(&run.trace, &run.access, &ChunkPolicy::with_chunks(chunks));
        let rt = simulate(&t, &platform).unwrap().runtime();
        println!(
            "  {chunks:>2} chunks: {:.3} ms (x{:.3})",
            rt * 1e3,
            orig / rt
        );
        g.bench(chunks, || simulate(&t, &platform).unwrap().runtime());
    }

    println!("\n[ablation] bus count -> simulated runtime (original trace):");
    let g = Group::new("ablation/buses", 10);
    for buses in [1u32, 2, 4, 8, 12, 0] {
        let p = platform.with_buses(buses);
        let rt = simulate(&run.trace, &p).unwrap().runtime();
        println!(
            "  {:>9} buses: {:.3} ms",
            if buses == 0 {
                "unlimited".to_string()
            } else {
                buses.to_string()
            },
            rt * 1e3
        );
        g.bench(buses, || simulate(&run.trace, &p).unwrap().runtime());
    }
}

/// Ablation 3: collective decomposition algorithm.
fn bench_collectives() {
    use ovlp_instr::{FnApp, RankCtx, ReduceOp};
    let app = FnApp::new("allreduce-chain", |ctx: &mut RankCtx| {
        let mut buf = ctx.buffer(1024);
        for i in 0..8u32 {
            buf.store(0, i as f64);
            ctx.allreduce(ReduceOp::Sum, &mut buf);
            ctx.compute(100_000);
        }
    });
    let run = trace_app(&app, 32).unwrap();
    println!("\n[ablation] collective algorithm -> simulated runtime (32 ranks):");
    let g = Group::new("ablation/collectives", 10);
    for algo in [CollectiveAlgo::Binomial, CollectiveAlgo::Linear] {
        let p = Platform {
            collective: algo,
            ..Platform::marenostrum(0)
        };
        let rt = simulate(&run.trace, &p).unwrap().runtime();
        println!("  {:<9}: {:.3} ms", algo.name(), rt * 1e3);
        g.bench(algo.name(), || simulate(&run.trace, &p).unwrap().runtime());
    }
}

/// Ablation 4 + 5: eager (double-buffered) vs rendezvous chunk
/// transfers.
fn bench_protocol() {
    let app = PatternApp {
        elems: 4_000,
        iters: 4,
        phase_instr: 2_000_000,
        production: Production::Window { from: 0.5, to: 1.0 },
        consumption: Consumption::Linear,
    };
    let run = trace_app(&app, 8).unwrap();
    let platform = Platform::marenostrum(0);
    println!("\n[ablation] chunk transfer protocol -> simulated runtime:");
    let g = Group::new("ablation/protocol", 10);
    for (label, mode) in [
        ("eager", SendMode::Eager),
        ("rendezvous", SendMode::Rendezvous),
    ] {
        let policy = ChunkPolicy {
            mode,
            ..ChunkPolicy::paper_default()
        };
        let t = transform(&run.trace, &run.access, &policy);
        let rt = simulate(&t, &platform).unwrap().runtime();
        println!("  {label:<10}: {:.3} ms", rt * 1e3);
        g.bench(label, || simulate(&t, &platform).unwrap().runtime());
    }
}

fn main() {
    bench_chunks_and_buses();
    bench_collectives();
    bench_protocol();
}
