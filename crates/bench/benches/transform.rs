//! Cost of the overlap transformation itself: rewriting grows linearly
//! with trace size and chunk count.

use ovlp_apps::synthetic::{Consumption, PatternApp, Production};
use ovlp_bench::timing::Group;
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::{ideal_transform, transform};
use ovlp_instr::{trace_app, TraceRun};

fn traced(elems: usize, iters: u32) -> TraceRun {
    let app = PatternApp {
        elems,
        iters,
        phase_instr: 100_000,
        production: Production::Linear,
        consumption: Consumption::Linear,
    };
    trace_app(&app, 8).unwrap()
}

fn bench_real_transform() {
    let g = Group::new("transform/real", 20);
    for iters in [4u32, 16, 64] {
        let run = traced(500, iters);
        let records = run.trace.total_records() as u64;
        let policy = ChunkPolicy::paper_default();
        g.bench_elems(iters, records, || {
            transform(&run.trace, &run.access, &policy)
        });
    }
}

fn bench_ideal_transform() {
    let g = Group::new("transform/ideal", 20);
    for iters in [4u32, 16, 64] {
        let run = traced(500, iters);
        let policy = ChunkPolicy::paper_default();
        g.bench(iters, || ideal_transform(&run.trace, &policy));
    }
}

fn bench_chunk_count_cost() {
    let run = traced(2000, 16);
    let g = Group::new("transform/chunk-count", 20);
    for chunks in [1u32, 4, 16, 64] {
        let policy = ChunkPolicy::with_chunks(chunks);
        g.bench(chunks, || transform(&run.trace, &run.access, &policy));
    }
}

fn main() {
    bench_real_transform();
    bench_ideal_transform();
    bench_chunk_count_cost();
}
