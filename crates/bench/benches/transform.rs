//! Cost of the overlap transformation itself: rewriting grows linearly
//! with trace size and chunk count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ovlp_apps::synthetic::{Consumption, PatternApp, Production};
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::{ideal_transform, transform};
use ovlp_instr::{trace_app, TraceRun};

fn traced(elems: usize, iters: u32) -> TraceRun {
    let app = PatternApp {
        elems,
        iters,
        phase_instr: 100_000,
        production: Production::Linear,
        consumption: Consumption::Linear,
    };
    trace_app(&app, 8).unwrap()
}

fn bench_real_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform/real");
    for iters in [4u32, 16, 64] {
        let run = traced(500, iters);
        let records = run.trace.total_records() as u64;
        g.throughput(Throughput::Elements(records));
        g.bench_with_input(BenchmarkId::from_parameter(iters), &run, |b, run| {
            let policy = ChunkPolicy::paper_default();
            b.iter(|| transform(&run.trace, &run.access, &policy))
        });
    }
    g.finish();
}

fn bench_ideal_transform(c: &mut Criterion) {
    let mut g = c.benchmark_group("transform/ideal");
    for iters in [4u32, 16, 64] {
        let run = traced(500, iters);
        g.bench_with_input(BenchmarkId::from_parameter(iters), &run, |b, run| {
            let policy = ChunkPolicy::paper_default();
            b.iter(|| ideal_transform(&run.trace, &policy))
        });
    }
    g.finish();
}

fn bench_chunk_count_cost(c: &mut Criterion) {
    let run = traced(2000, 16);
    let mut g = c.benchmark_group("transform/chunk-count");
    for chunks in [1u32, 4, 16, 64] {
        let policy = ChunkPolicy::with_chunks(chunks);
        g.bench_with_input(BenchmarkId::from_parameter(chunks), &policy, |b, p| {
            b.iter(|| transform(&run.trace, &run.access, p))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_real_transform, bench_ideal_transform, bench_chunk_count_cost
}
criterion_main!(benches);
