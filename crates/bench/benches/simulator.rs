//! Engine throughput: how fast the discrete-event replay core processes
//! traces, as a function of rank count and communication density.

use ovlp_bench::timing::Group;
use ovlp_machine::{simulate, Platform};
use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

/// Ring exchange with `iters` rounds over `nranks` ranks.
fn ring_trace(nranks: u32, iters: u32, bytes: u64) -> Trace {
    let mut t = Trace::new(nranks as usize);
    for r in 0..nranks {
        let next = (r + 1) % nranks;
        let prev = (r + nranks - 1) % nranks;
        let rt = t.rank_mut(Rank(r));
        for i in 0..iters {
            rt.push(Record::Compute {
                instr: Instructions(100_000),
            });
            rt.push(Record::Send {
                dst: Rank(next),
                tag: Tag::user(0),
                bytes: Bytes(bytes),
                mode: SendMode::Eager,
                transfer: TransferId::new(Rank(r), 2 * i),
            });
            rt.push(Record::Recv {
                src: Rank(prev),
                tag: Tag::user(0),
                bytes: Bytes(bytes),
                transfer: TransferId::new(Rank(r), 2 * i + 1),
            });
        }
    }
    t
}

fn bench_rank_scaling() {
    let platform = Platform::marenostrum(12);
    let g = Group::new("simulator/rank-scaling", 15);
    for nranks in [4u32, 16, 64, 256] {
        let trace = ring_trace(nranks, 50, 8192);
        let events = simulate(&trace, &platform).unwrap().events_processed;
        g.bench_elems(nranks, events, || {
            simulate(&trace, &platform).unwrap().runtime()
        });
    }
}

fn bench_message_density() {
    let platform = Platform::marenostrum(12);
    let g = Group::new("simulator/message-density", 15);
    for iters in [10u32, 100, 1000] {
        let trace = ring_trace(16, iters, 1024);
        let events = simulate(&trace, &platform).unwrap().events_processed;
        g.bench_elems(iters, events, || {
            simulate(&trace, &platform).unwrap().runtime()
        });
    }
}

fn bench_contention() {
    // heavy bus contention stresses the pending-queue scan
    let trace = ring_trace(64, 100, 65536);
    let g = Group::new("simulator/contention", 15);
    for buses in [1u32, 4, 0] {
        let platform = Platform::marenostrum(buses);
        g.bench(buses, || simulate(&trace, &platform).unwrap().runtime());
    }
}

fn main() {
    bench_rank_scaling();
    bench_message_density();
    bench_contention();
}
