//! End-to-end pipeline cost per application: instrumented tracing,
//! variant construction, and replay — the full §III toolchain pass the
//! paper calls "fast and precise".

use ovlp_bench::timing::Group;
use ovlp_core::chunk::ChunkPolicy;
use ovlp_core::pipeline::build_variants;
use ovlp_core::presets::marenostrum_for;
use ovlp_instr::{trace_app, MpiApp};
use ovlp_machine::simulate;

fn quick_pool() -> Vec<(&'static str, Box<dyn MpiApp>)> {
    vec![
        (
            "sweep3d",
            Box::new(ovlp_apps::sweep3d::Sweep3dApp::quick()) as Box<dyn MpiApp>,
        ),
        ("pop", Box::new(ovlp_apps::pop::PopApp::quick())),
        ("alya", Box::new(ovlp_apps::alya::AlyaApp::quick())),
        (
            "specfem3d",
            Box::new(ovlp_apps::specfem3d::Specfem3dApp::quick()),
        ),
        ("nas-bt", Box::new(ovlp_apps::nas_bt::NasBtApp::quick())),
        ("nas-cg", Box::new(ovlp_apps::nas_cg::NasCgApp::quick())),
    ]
}

fn bench_tracing() {
    let g = Group::new("pipeline/tracing", 10);
    for (name, app) in quick_pool() {
        g.bench(name, || trace_app(app.as_ref(), 4).unwrap());
    }
}

fn bench_full_analysis() {
    let g = Group::new("pipeline/full-analysis", 10);
    for (name, app) in quick_pool() {
        let run = trace_app(app.as_ref(), 4).unwrap();
        let platform = marenostrum_for(name);
        g.bench(name, || {
            let bundle = build_variants(&run, &ChunkPolicy::paper_default());
            let o = simulate(&bundle.original, &platform).unwrap().runtime();
            let v = simulate(&bundle.overlapped, &platform).unwrap().runtime();
            let i = simulate(&bundle.ideal, &platform).unwrap().runtime();
            (o, v, i)
        });
    }
}

fn main() {
    bench_tracing();
    bench_full_analysis();
}
