//! Closed-form validations: workloads whose simulated runtime has an
//! exact analytical expression under the Dimemas linear model. Any
//! engine regression in timing, matching or resource accounting breaks
//! these equalities.

use ovlp_machine::{simulate, Platform};
use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

const EPS: f64 = 1e-9;

fn plat() -> Platform {
    Platform {
        mips: 1000.0,         // 1 instr = 1 ns
        bandwidth_mbs: 100.0, // 1 MB = 10 ms
        latency_us: 10.0,
        buses: 0,
        ..Platform::default()
    }
}

/// 1-D wavefront: rank r receives from r-1, computes T, sends to r+1,
/// for `sweeps` rounds.
fn wavefront(nranks: u32, sweeps: u32, burst: u64, bytes: u64) -> Trace {
    let mut t = Trace::new(nranks as usize);
    for r in 0..nranks {
        let rt = t.rank_mut(Rank(r));
        for s in 0..sweeps {
            if r > 0 {
                rt.push(Record::Recv {
                    src: Rank(r - 1),
                    tag: Tag::user(0),
                    bytes: Bytes(bytes),
                    transfer: TransferId::new(Rank(r), 2 * s),
                });
            }
            rt.push(Record::Compute {
                instr: Instructions(burst),
            });
            if r < nranks - 1 {
                rt.push(Record::Send {
                    dst: Rank(r + 1),
                    tag: Tag::user(0),
                    bytes: Bytes(bytes),
                    mode: SendMode::Eager,
                    transfer: TransferId::new(Rank(r), 2 * s + 1),
                });
            }
        }
    }
    t
}

/// Pipeline fill plus steady state:
/// `runtime = (P-1)·(T + τ) + S·T + (S-1)·L` where
/// `τ = latency + bytes/BW` and the `(S-1)·L` term is the eager send's
/// injection block the sender pays between consecutive sweeps, for a
/// compute-bound pipeline (T ≥ τ).
#[test]
fn wavefront_closed_form() {
    let p = plat();
    for (nranks, sweeps, burst, bytes) in [
        (2u32, 1u32, 1_000_000u64, 10_000u64),
        (4, 3, 2_000_000, 50_000),
        (8, 5, 5_000_000, 100_000),
        (16, 2, 1_000_000, 1_000),
    ] {
        let t_burst = burst as f64 / 1e9; // seconds at 1000 MIPS
        let tau = 10e-6 + bytes as f64 / 100e6;
        assert!(t_burst >= tau, "test setup must be compute-bound");
        let expect = (nranks - 1) as f64 * (t_burst + tau)
            + sweeps as f64 * t_burst
            + (sweeps - 1) as f64 * 10e-6;
        let sim = simulate(&wavefront(nranks, sweeps, burst, bytes), &p).unwrap();
        assert!(
            (sim.runtime() - expect).abs() < EPS,
            "P={nranks} S={sweeps}: got {} want {expect}",
            sim.runtime()
        );
    }
}

/// Transfer-bound pipeline: when τ > T the stage period is τ (the wire,
/// not the CPU, is the bottleneck):
/// `runtime = (P-1)·(T + τ) + T + (S-1)·τ`.
#[test]
fn wavefront_closed_form_transfer_bound() {
    let p = plat();
    let (nranks, sweeps, burst, bytes) = (4u32, 6u32, 100_000u64, 1_000_000u64);
    let t_burst = burst as f64 / 1e9; // 0.1 ms
    let tau = 10e-6 + bytes as f64 / 100e6; // ~10 ms
    assert!(tau > t_burst);
    let expect = (nranks - 1) as f64 * (t_burst + tau) + t_burst + (sweeps - 1) as f64 * tau;
    let sim = simulate(&wavefront(nranks, sweeps, burst, bytes), &p).unwrap();
    assert!(
        (sim.runtime() - expect).abs() < EPS,
        "got {} want {expect}",
        sim.runtime()
    );
}

/// Binomial barrier on 2^k ranks with equal arrival and ample ports:
/// exactly `2·k` zero-byte message latencies on the critical path
/// (k up the reduce tree, k down the bcast tree). With single ports the
/// tree serializes further, so ports are widened here.
#[test]
fn barrier_critical_path_closed_form() {
    let p = Platform {
        input_ports: 16,
        output_ports: 16,
        ..plat()
    };
    for k in 1u32..=4 {
        let nranks = 1u32 << k;
        let mut t = Trace::new(nranks as usize);
        for r in 0..nranks {
            t.rank_mut(Rank(r)).push(Record::Collective {
                op: ovlp_trace::CollOp::Barrier,
                bytes_in: Bytes::ZERO,
                bytes_out: Bytes::ZERO,
                root: Rank(0),
                transfer: TransferId::new(Rank(r), 0),
            });
        }
        let sim = simulate(&t, &p).unwrap();
        let expect = 2.0 * k as f64 * 10e-6;
        assert!(
            (sim.runtime() - expect).abs() < EPS,
            "P={nranks}: got {} want {expect}",
            sim.runtime()
        );
    }
}

/// Pairwise exchange on one bus: 2k messages serialize exactly.
#[test]
fn single_bus_full_serialization() {
    let p = Platform { buses: 1, ..plat() };
    let pairs = 3u32;
    let bytes = 500_000u64;
    let mut t = Trace::new(2 * pairs as usize);
    for i in 0..pairs {
        let a = 2 * i;
        let b = 2 * i + 1;
        t.rank_mut(Rank(a)).push(Record::Send {
            dst: Rank(b),
            tag: Tag::user(0),
            bytes: Bytes(bytes),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(a), 0),
        });
        t.rank_mut(Rank(a)).push(Record::Recv {
            src: Rank(b),
            tag: Tag::user(1),
            bytes: Bytes(bytes),
            transfer: TransferId::new(Rank(a), 1),
        });
        t.rank_mut(Rank(b)).push(Record::Recv {
            src: Rank(a),
            tag: Tag::user(0),
            bytes: Bytes(bytes),
            transfer: TransferId::new(Rank(b), 0),
        });
        t.rank_mut(Rank(b)).push(Record::Send {
            dst: Rank(a),
            tag: Tag::user(1),
            bytes: Bytes(bytes),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(b), 1),
        });
    }
    let sim = simulate(&t, &p).unwrap();
    let tau = 10e-6 + bytes as f64 / 100e6;
    // the `pairs` forward messages serialize; then the `pairs` replies
    // serialize behind them: 2·pairs transfers end-to-end on one bus
    let expect = 2.0 * pairs as f64 * tau;
    assert!(
        (sim.runtime() - expect).abs() < EPS,
        "got {} want {expect}",
        sim.runtime()
    );
}
