//! Tests of the extended platform model: multi-core nodes, the eager
//! threshold, and heterogeneous CPU ratios.

use ovlp_machine::{simulate, Platform};
use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};

const EPS: f64 = 1e-9;

fn base() -> Platform {
    Platform {
        mips: 1000.0,
        bandwidth_mbs: 100.0,
        latency_us: 10.0,
        buses: 0,
        ..Platform::default()
    }
}

fn send(dst: u32, bytes: u64, seq: u32) -> Record {
    Record::Send {
        dst: Rank(dst),
        tag: Tag::user(0),
        bytes: Bytes(bytes),
        mode: SendMode::Eager,
        transfer: TransferId::new(Rank(99), seq),
    }
}

fn recv(src: u32, bytes: u64, seq: u32) -> Record {
    Record::Recv {
        src: Rank(src),
        tag: Tag::user(0),
        bytes: Bytes(bytes),
        transfer: TransferId::new(Rank(98), seq),
    }
}

/// ranks 0,1 on node 0; 2,3 on node 1 (ranks_per_node = 2).
fn two_node_platform() -> Platform {
    base().with_nodes(2, 1000.0, 1.0) // 1 GB/s, 1 us intra
}

#[test]
fn intra_node_messages_use_intra_model() {
    let mut t = Trace::new(2);
    t.rank_mut(Rank(0)).push(send(1, 1_000_000, 0));
    t.rank_mut(Rank(1)).push(recv(0, 1_000_000, 0));
    let p = two_node_platform();
    let r = simulate(&t, &p).unwrap();
    // 1 MB at 1 GB/s = 1 ms + 1 us latency (not 10 ms + 10 us)
    let expect = 1e6 / 1e9 + 1e-6;
    assert!((r.runtime() - expect).abs() < EPS, "{}", r.runtime());
}

#[test]
fn inter_node_messages_still_use_network() {
    let mut t = Trace::new(4);
    t.rank_mut(Rank(0)).push(send(2, 1_000_000, 0)); // node 0 -> node 1
    t.rank_mut(Rank(2)).push(recv(0, 1_000_000, 0));
    let p = two_node_platform();
    let r = simulate(&t, &p).unwrap();
    let expect = 1e6 / 100e6 + 10e-6; // network model
    assert!((r.runtime() - expect).abs() < EPS, "{}", r.runtime());
}

#[test]
fn intra_node_messages_do_not_consume_buses() {
    // one bus; two simultaneous transfers: an inter-node pair and an
    // intra-node pair. The intra pair must not queue behind the bus.
    let mut t = Trace::new(4);
    t.rank_mut(Rank(0)).push(send(2, 1_000_000, 0)); // inter (node0->node1)
    t.rank_mut(Rank(2)).push(recv(0, 1_000_000, 0));
    t.rank_mut(Rank(1)).push(send(0, 1_000_000, 1)); // wait, 1->0 is intra
    t.rank_mut(Rank(0)).push(recv(1, 1_000_000, 1));
    let p = Platform {
        buses: 1,
        ..two_node_platform()
    };
    let r = simulate(&t, &p).unwrap();
    // rank 0: eager send (released after 10us), then intra recv at ~1ms;
    // rank 2 waits the network transfer ~10ms; overall = network time
    let expect = 1e6 / 100e6 + 10e-6;
    assert!((r.runtime() - expect).abs() < 1e-6, "{}", r.runtime());
    // the intra transfer arrived long before the network one
    let intra = r
        .comms
        .iter()
        .find(|c| c.src == Rank(1) && c.dst == Rank(0))
        .unwrap();
    assert!(intra.t_arrive.as_secs() < 0.002);
}

#[test]
fn eager_threshold_forces_rendezvous_for_large_messages() {
    // the receiver posts late; a small message is buffered eagerly, a
    // large one must wait for the posting
    for (bytes, expect_rendezvous) in [(1000u64, false), (1_000_000, true)] {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(send(1, bytes, 0));
        let r1 = t.rank_mut(Rank(1));
        r1.push(Record::Compute {
            instr: Instructions(50_000_000), // 50 ms before posting
        });
        r1.push(recv(0, bytes, 0));
        let p = Platform {
            eager_threshold_bytes: Some(32_768),
            ..base()
        };
        let r = simulate(&t, &p).unwrap();
        let transfer = bytes as f64 / 100e6 + 10e-6;
        if expect_rendezvous {
            // transfer starts only when the recv posts at 50 ms
            let expect = 0.05 + transfer;
            assert!(
                (r.runtime() - expect).abs() < EPS,
                "bytes={bytes}: {}",
                r.runtime()
            );
        } else {
            // eager: arrives during the compute; runtime = compute
            assert!(
                (r.runtime() - 0.05).abs() < EPS,
                "bytes={bytes}: {}",
                r.runtime()
            );
        }
    }
}

#[test]
fn cpu_ratios_scale_per_rank_compute() {
    let mut t = Trace::new(2);
    for r in 0..2u32 {
        t.rank_mut(Rank(r)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
    }
    let p = Platform {
        cpu_ratios: vec![1.0, 0.5], // rank 1 at half speed
        ..base()
    };
    let r = simulate(&t, &p).unwrap();
    // rank 0: 1 ms; rank 1: 2 ms
    assert!((r.totals[0].compute.as_secs() - 1e-3).abs() < EPS);
    assert!((r.totals[1].compute.as_secs() - 2e-3).abs() < EPS);
    assert!((r.runtime() - 2e-3).abs() < EPS);
}

#[test]
fn missing_ratios_default_to_one() {
    let mut t = Trace::new(3);
    for r in 0..3u32 {
        t.rank_mut(Rank(r)).push(Record::Compute {
            instr: Instructions(1_000_000),
        });
    }
    let p = Platform {
        cpu_ratios: vec![2.0], // only rank 0 specified (double speed)
        ..base()
    };
    let r = simulate(&t, &p).unwrap();
    assert!((r.totals[0].compute.as_secs() - 0.5e-3).abs() < EPS);
    assert!((r.totals[1].compute.as_secs() - 1e-3).abs() < EPS);
}

#[test]
fn node_mapping_helper() {
    let p = base().with_nodes(4, 1000.0, 1.0);
    assert_eq!(p.node_of(0), 0);
    assert_eq!(p.node_of(3), 0);
    assert_eq!(p.node_of(4), 1);
    assert_eq!(p.node_of(11), 2);
}

#[test]
fn multicore_speeds_up_neighbor_exchanges() {
    // a ring where neighbors land on the same node half the time:
    // packing 2 ranks per node must not be slower than 1 per node
    let nranks = 8u32;
    let mut t = Trace::new(nranks as usize);
    for r in 0..nranks {
        let rt = t.rank_mut(Rank(r));
        rt.push(send((r + 1) % nranks, 100_000, 0));
        rt.push(recv((r + nranks - 1) % nranks, 100_000, 1));
    }
    let single = simulate(&t, &base()).unwrap().runtime();
    let multi = simulate(&t, &two_node_platform()).unwrap().runtime();
    assert!(multi <= single + EPS, "multi {multi} vs single {single}");
}

#[test]
fn network_stats_account_transfers() {
    let mut t = Trace::new(4);
    t.rank_mut(Rank(0)).push(send(1, 1_000_000, 0)); // intra (node 0)
    t.rank_mut(Rank(1)).push(recv(0, 1_000_000, 0));
    t.rank_mut(Rank(2)).push(send(3, 1_000_000, 1)); // intra (node 1)
    t.rank_mut(Rank(3)).push(recv(2, 1_000_000, 1));
    t.rank_mut(Rank(0)).push(send(2, 2_000_000, 2)); // inter
    t.rank_mut(Rank(2)).push(recv(0, 2_000_000, 2));
    let p = two_node_platform();
    let r = simulate(&t, &p).unwrap();
    assert_eq!(r.network.transfers, 3);
    assert_eq!(r.network.intra_node, 2);
    // the inter-node transfer held a bus for latency + wire time
    let expect_bus = 10e-6 + 2e6 / 100e6;
    assert!(
        (r.network.bus_seconds - expect_bus).abs() < 1e-9,
        "{}",
        r.network.bus_seconds
    );
    assert!(r.network.mean_bus_concurrency(r.runtime) > 0.0);
}

#[test]
fn queue_seconds_measure_contention() {
    // two inter-node transfers through one bus: the second queues
    let mut t = Trace::new(4);
    t.rank_mut(Rank(0)).push(send(2, 1_000_000, 0));
    t.rank_mut(Rank(2)).push(recv(0, 1_000_000, 0));
    t.rank_mut(Rank(1)).push(send(3, 1_000_000, 1));
    t.rank_mut(Rank(3)).push(recv(1, 1_000_000, 1));
    let free = Platform {
        buses: 0,
        ..two_node_platform()
    };
    let tight = Platform {
        buses: 1,
        ..two_node_platform()
    };
    let r_free = simulate(&t, &free).unwrap();
    let r_tight = simulate(&t, &tight).unwrap();
    assert!(r_free.network.queue_seconds < 1e-12);
    // second transfer queued for the first's full duration
    let one = 10e-6 + 1e6 / 100e6;
    assert!(
        (r_tight.network.queue_seconds - one).abs() < 1e-9,
        "{}",
        r_tight.network.queue_seconds
    );
}

/// 2 machines × 2 nodes × 2 ranks: ranks 0..3 on machine 0, 4..7 on
/// machine 1 (nodes_per_machine = 2, ranks_per_node = 2).
fn two_machine_platform() -> Platform {
    let mut p = two_node_platform().with_machines(2, 1.0, 1000.0, 0);
    p.intra_latency_us = 1.0;
    p
}

#[test]
fn machine_mapping_helper() {
    let p = two_machine_platform();
    assert_eq!(p.machine_of(0), 0);
    assert_eq!(p.machine_of(3), 0);
    assert_eq!(p.machine_of(4), 1);
    assert_eq!(p.machine_of(7), 1);
    // disabled level: everything machine 0
    assert_eq!(base().machine_of(100), 0);
}

#[test]
fn inter_machine_transfers_use_wan_model() {
    let mut t = Trace::new(8);
    t.rank_mut(Rank(0)).push(send(4, 1_000_000, 0)); // machine 0 -> 1
    t.rank_mut(Rank(4)).push(recv(0, 1_000_000, 0));
    let p = two_machine_platform();
    let r = simulate(&t, &p).unwrap();
    // 1 MB at 1 MB/s = 1 s, plus 1 ms WAN latency
    let expect = 1.0 + 1e-3;
    assert!((r.runtime() - expect).abs() < 1e-9, "{}", r.runtime());
    assert_eq!(r.network.inter_machine, 1);
}

#[test]
fn intra_machine_transfers_unaffected_by_wan() {
    let mut t = Trace::new(8);
    t.rank_mut(Rank(0)).push(send(2, 1_000_000, 0)); // same machine, different node
    t.rank_mut(Rank(2)).push(recv(0, 1_000_000, 0));
    let p = two_machine_platform();
    let r = simulate(&t, &p).unwrap();
    let expect = 1e6 / 100e6 + 10e-6; // the ordinary network model
    assert!((r.runtime() - expect).abs() < 1e-9, "{}", r.runtime());
}

#[test]
fn wan_links_serialize_inter_machine_traffic() {
    // two concurrent machine-crossing transfers over one WAN link
    let mk = |wan_links: u32| {
        let mut t = Trace::new(8);
        t.rank_mut(Rank(0)).push(send(4, 1_000_000, 0));
        t.rank_mut(Rank(4)).push(recv(0, 1_000_000, 0));
        t.rank_mut(Rank(1)).push(send(5, 1_000_000, 1));
        t.rank_mut(Rank(5)).push(recv(1, 1_000_000, 1));
        let p = two_machine_platform().with_machines(2, 1.0, 1000.0, wan_links);
        simulate(&t, &p).unwrap().runtime()
    };
    let one = 1.0 + 1e-3;
    let serialized = mk(1);
    let parallel = mk(0);
    assert!((parallel - one).abs() < 1e-9, "{parallel}");
    assert!((serialized - 2.0 * one).abs() < 1e-9, "{serialized}");
}

#[test]
fn wan_does_not_consume_machine_buses() {
    // one bus; a WAN transfer and an intra-machine transfer overlap
    let mut t = Trace::new(8);
    t.rank_mut(Rank(0)).push(send(4, 100_000, 0)); // WAN: 0.1 s
    t.rank_mut(Rank(4)).push(recv(0, 100_000, 0));
    t.rank_mut(Rank(1)).push(send(3, 1_000_000, 1)); // net: ~10 ms
    t.rank_mut(Rank(3)).push(recv(1, 1_000_000, 1));
    let mut p = two_machine_platform();
    p.buses = 1;
    let r = simulate(&t, &p).unwrap();
    // the intra-machine transfer finishes long before the WAN one;
    // total = the WAN time, not the sum
    let expect = 100_000.0 / 1e6 + 1e-3;
    assert!((r.runtime() - expect).abs() < 1e-9, "{}", r.runtime());
}
