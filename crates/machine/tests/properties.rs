//! Property-based invariants of the replay engine over randomized ring
//! workloads: message conservation, timeline well-formedness, and
//! contention monotonicity.
//!
//! Off by default; run with `cargo test --features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use ovlp_machine::{simulate, Platform, State};
use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};
use proptest::prelude::*;

/// A ring trace with per-rank random burst lengths and message sizes
/// (derived deterministically from the proptest inputs).
fn ring_trace(nranks: u32, iters: u32, bursts: &[u64], sizes: &[u64]) -> Trace {
    let mut t = Trace::new(nranks as usize);
    for r in 0..nranks {
        let next = (r + 1) % nranks;
        let prev = (r + nranks - 1) % nranks;
        let rt = t.rank_mut(Rank(r));
        for i in 0..iters {
            // the message size on a channel is a function of the
            // (sender, iteration) pair so both endpoints agree
            let size_of = |sender: u32| sizes[((sender + i * nranks) as usize) % sizes.len()];
            rt.push(Record::Compute {
                instr: Instructions(bursts[((r + i * nranks) as usize) % bursts.len()]),
            });
            rt.push(Record::Send {
                dst: Rank(next),
                tag: Tag::user(0),
                bytes: Bytes(size_of(r)),
                mode: SendMode::Eager,
                transfer: TransferId::new(Rank(r), 2 * i),
            });
            rt.push(Record::Recv {
                src: Rank(prev),
                tag: Tag::user(0),
                bytes: Bytes(size_of(prev)),
                transfer: TransferId::new(Rank(r), 2 * i + 1),
            });
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn ring_simulations_conserve_and_order(
        nranks in 2u32..12,
        iters in 1u32..8,
        bursts in proptest::collection::vec(1000u64..1_000_000, 3..8),
        sizes in proptest::collection::vec(1u64..100_000, 3..8),
        buses in 0u32..4,
    ) {
        // the sizes must be consistent per channel; ring_trace derives
        // the recv size from the sender's index so the trace is valid
        let trace = ring_trace(nranks, iters, &bursts, &sizes);
        prop_assert!(ovlp_trace::validate(&trace).is_empty());

        let platform = Platform::marenostrum(buses);
        let sim = simulate(&trace, &platform).unwrap();

        // 1. conservation: every message simulated exactly once
        prop_assert_eq!(sim.comms.len(), (nranks * iters) as usize);
        // 2. every message consumed after (or when) it arrived, arrived
        //    after it started, started after it was sent
        for c in &sim.comms {
            prop_assert!(c.t_start >= c.t_send);
            prop_assert!(c.t_arrive >= c.t_start);
            prop_assert!(c.t_consume >= c.t_arrive);
        }
        // 3. timelines: intervals ordered, non-overlapping, within run
        for tl in &sim.timelines {
            let mut prev_end = ovlp_machine::Time::ZERO;
            for iv in &tl.intervals {
                prop_assert!(iv.start >= prev_end);
                prop_assert!(iv.end >= iv.start);
                prop_assert!(iv.end <= sim.runtime);
                prev_end = iv.end;
            }
        }
        // 4. compute time equals the trace's compute, exactly per rank
        for (r, tl) in sim.timelines.iter().enumerate() {
            let expect = platform.compute_time(trace.ranks[r].total_compute());
            let got = tl.total_in(State::Compute);
            prop_assert!((got.as_secs() - expect.as_secs()).abs() < 1e-12);
        }
        // 5. runtime bounded below by the slowest rank's compute
        let floor = platform.compute_time(trace.critical_compute());
        prop_assert!(sim.runtime >= floor);
    }

    #[test]
    fn fewer_buses_never_speed_things_up(
        nranks in 2u32..10,
        iters in 1u32..6,
        size in 1_000u64..200_000,
    ) {
        let trace = ring_trace(nranks, iters, &[100_000], &[size]);
        let mut last = 0.0f64;
        for buses in [0u32, 8, 2, 1] {
            // iterate from most to least capacity: runtimes must be
            // non-decreasing
            let rt = simulate(&trace, &Platform::marenostrum(buses))
                .unwrap()
                .runtime();
            prop_assert!(rt >= last - 1e-12, "buses={buses}: {rt} < {last}");
            last = rt;
        }
    }

    #[test]
    fn rendezvous_never_faster_than_eager(
        pairs in 1u32..5,
        size in 1u64..500_000,
    ) {
        // a deadlock-safe exchange (even ranks send first, odd ranks
        // receive first) — with synchronous sends an unsafe ordering
        // would legitimately deadlock, which the engine detects
        let nranks = pairs * 2;
        let mk = |mode: SendMode| {
            let mut t = Trace::new(nranks as usize);
            for r in 0..nranks {
                let partner = r ^ 1;
                let rt = t.rank_mut(Rank(r));
                rt.push(Record::Compute {
                    instr: Instructions(10_000 * (r as u64 + 1)), // skew
                });
                let send = Record::Send {
                    dst: Rank(partner),
                    tag: Tag::user(0),
                    bytes: Bytes(size),
                    mode,
                    transfer: TransferId::new(Rank(r), 0),
                };
                let recv = Record::Recv {
                    src: Rank(partner),
                    tag: Tag::user(0),
                    bytes: Bytes(size),
                    transfer: TransferId::new(Rank(r), 1),
                };
                if r % 2 == 0 {
                    rt.push(send);
                    rt.push(recv);
                } else {
                    rt.push(recv);
                    rt.push(send);
                }
            }
            t
        };
        let p = Platform::marenostrum(0);
        let eager = simulate(&mk(SendMode::Eager), &p).unwrap().runtime();
        let rdv = simulate(&mk(SendMode::Rendezvous), &p).unwrap().runtime();
        prop_assert!(eager <= rdv + 1e-12, "eager {eager} vs rendezvous {rdv}");
    }

    #[test]
    fn unsafe_rendezvous_rings_deadlock_and_are_detected(
        nranks in 2u32..8,
        size in 1u64..10_000,
    ) {
        // everyone sends synchronously before receiving: classic
        // deadlock; the engine must report it rather than hang
        let mut t = Trace::new(nranks as usize);
        for r in 0..nranks {
            let next = (r + 1) % nranks;
            let prev = (r + nranks - 1) % nranks;
            let rt = t.rank_mut(Rank(r));
            rt.push(Record::Send {
                dst: Rank(next),
                tag: Tag::user(0),
                bytes: Bytes(size),
                mode: SendMode::Rendezvous,
                transfer: TransferId::new(Rank(r), 0),
            });
            rt.push(Record::Recv {
                src: Rank(prev),
                tag: Tag::user(0),
                bytes: Bytes(size),
                transfer: TransferId::new(Rank(r), 1),
            });
        }
        let err = simulate(&t, &Platform::marenostrum(0)).unwrap_err();
        let is_deadlock = matches!(err, ovlp_machine::SimError::Deadlock { .. });
        prop_assert!(is_deadlock);
    }
}
