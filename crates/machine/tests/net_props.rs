//! Property-based invariants of the flow-level network model: the
//! max-min allocator never oversubscribes a link and is monotone under
//! flow removal, and crossbar replays stay bit-identical to the bus
//! model on randomized workloads.
//!
//! Off by default; run with `cargo test --features proptest-tests`.
#![cfg(feature = "proptest-tests")]

use ovlp_machine::net::{max_min_rates, FlowNet, LinkGraph, LinkId};
use ovlp_machine::{simulate, NoopSink, Platform, Time, Topology};
use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::{Bytes, Instructions, Rank, Tag, Trace, TransferId};
use proptest::prelude::*;

/// Build per-flow paths over `nlinks` links from raw proptest indices
/// (deduplicated so a path never lists the same link twice).
fn build_paths(raw: &[Vec<usize>], nlinks: usize) -> Vec<Vec<LinkId>> {
    raw.iter()
        .map(|p| {
            let mut seen = vec![false; nlinks];
            let mut path = Vec::new();
            for &l in p {
                let l = l % nlinks;
                if !seen[l] {
                    seen[l] = true;
                    path.push(LinkId(l as u32));
                }
            }
            path
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Feasibility: every rate is positive, and the rates crossing any
    /// link sum to at most its capacity (up to float slack).
    #[test]
    fn max_min_never_oversubscribes_a_link(
        cap_units in proptest::collection::vec(1u64..1_000_000, 1..8),
        raw_paths in proptest::collection::vec(
            proptest::collection::vec(0usize..64, 1..6), 1..12),
    ) {
        let caps: Vec<f64> = cap_units.iter().map(|&c| c as f64).collect();
        let paths = build_paths(&raw_paths, caps.len());
        let flows: Vec<&[LinkId]> = paths.iter().map(Vec::as_slice).collect();
        let rates = max_min_rates(&flows, &caps);
        prop_assert_eq!(rates.len(), flows.len());
        for (f, &r) in flows.iter().zip(&rates) {
            prop_assert!(r > 0.0, "flow {f:?} got rate {r}");
            prop_assert!(!f.is_empty() || r.is_infinite());
        }
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(f, _)| f.contains(&LinkId(l as u32)))
                .map(|(_, &r)| r)
                .sum();
            prop_assert!(
                used <= cap * (1.0 + 1e-9),
                "link {l}: {used} over capacity {cap}"
            );
        }
    }

    /// Monotonicity under flow removal. Individual rates can legally
    /// DROP when a flow leaves (parking lot: removing f3 from link B
    /// lets f2 grow on B and squeeze f1 on shared link A), so the
    /// faithful statement is lexicographic: the sorted rate vector of
    /// the survivors never gets worse — in particular the minimum rate
    /// never decreases.
    #[test]
    fn max_min_improves_lexicographically_under_flow_removal(
        cap_units in proptest::collection::vec(1u64..1_000_000, 1..8),
        raw_paths in proptest::collection::vec(
            proptest::collection::vec(0usize..64, 1..6), 2..10),
        drop in 0usize..16,
    ) {
        let caps: Vec<f64> = cap_units.iter().map(|&c| c as f64).collect();
        let paths = build_paths(&raw_paths, caps.len());
        let flows: Vec<&[LinkId]> = paths.iter().map(Vec::as_slice).collect();
        let before = max_min_rates(&flows, &caps);
        let drop = drop % flows.len();
        let kept: Vec<&[LinkId]> = flows
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, f)| *f)
            .collect();
        let after = max_min_rates(&kept, &caps);
        let mut old: Vec<f64> = before
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, &r)| r)
            .collect();
        let mut new = after.clone();
        old.sort_by(|a, b| a.partial_cmp(b).unwrap());
        new.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // first strictly differing slot must favour the new allocation
        for (i, (&o, &n)) in old.iter().zip(&new).enumerate() {
            if n < o * (1.0 - 1e-9) {
                prop_assert!(
                    false,
                    "sorted rates regressed at slot {i}: {o} -> {n} \
                     (old {old:?}, new {new:?})"
                );
            }
            if n > o * (1.0 + 1e-9) {
                break; // lexicographically better already
            }
        }
    }

    /// Uncontended crossbar flows must reproduce the linear bus model
    /// bit-for-bit on randomized ring workloads, not just on the
    /// hand-picked fixtures.
    #[test]
    fn crossbar_matches_bus_on_random_rings(
        nranks in 2u32..10,
        iters in 1u32..6,
        bursts in proptest::collection::vec(1000u64..500_000, 2..6),
        sizes in proptest::collection::vec(1u64..200_000, 2..6),
    ) {
        let mut t = Trace::new(nranks as usize);
        for r in 0..nranks {
            let next = (r + 1) % nranks;
            let prev = (r + nranks - 1) % nranks;
            let rt = t.rank_mut(Rank(r));
            for i in 0..iters {
                let size = |sender: u32| sizes[((sender + i * nranks) as usize) % sizes.len()];
                rt.push(Record::Compute {
                    instr: Instructions(bursts[((r + i * nranks) as usize) % bursts.len()]),
                });
                rt.push(Record::Send {
                    dst: Rank(next),
                    tag: Tag::user(0),
                    bytes: Bytes(size(r)),
                    mode: SendMode::Eager,
                    transfer: TransferId::new(Rank(r), 2 * i),
                });
                rt.push(Record::Recv {
                    src: Rank(prev),
                    tag: Tag::user(0),
                    bytes: Bytes(size(prev)),
                    transfer: TransferId::new(Rank(r), 2 * i + 1),
                });
            }
        }
        prop_assert!(ovlp_trace::validate(&t).is_empty());
        let bus = simulate(&t, &Platform::default()).unwrap();
        let flow = simulate(&t, &Platform::default().with_topology(Topology::Crossbar)).unwrap();
        prop_assert_eq!(bus.runtime().to_bits(), flow.runtime().to_bits());
        prop_assert_eq!(
            format!("{:?} {:?}", bus.totals, bus.timelines),
            format!("{:?} {:?}", flow.totals, flow.timelines)
        );
        // transfer initiation order may interleave differently when
        // unrelated completions coincide (bus mode learns a recv's
        // finish time at pairing, flow mode only at FlowDone), but the
        // set of transfers and every timestamp must agree exactly
        let sorted = |sim: &ovlp_machine::SimResult| {
            let mut c: Vec<String> = sim.comms.iter().map(|r| format!("{r:?}")).collect();
            c.sort();
            c
        };
        prop_assert_eq!(sorted(&bus), sorted(&flow));
    }
}

/// One of the supported topologies plus a node count that fits it.
fn arena(pick: usize) -> (Topology, usize) {
    match pick % 4 {
        0 => (Topology::Crossbar, 6),
        1 => (
            Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            },
            8,
        ),
        2 => (Topology::Torus { dims: vec![2, 2] }, 4),
        _ => (
            Topology::Torus {
                dims: vec![2, 2, 2],
            },
            8,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The incremental active-set allocator inside [`FlowNet`] must
    /// agree with the from-scratch oracle to the last bit after every
    /// step of a randomized flow arrival/departure sequence, on every
    /// topology. (Debug builds additionally assert this inside each
    /// reshare; this suite pins it in release builds too, across
    /// long churn sequences that empty and refill the link set.)
    #[test]
    fn incremental_allocator_matches_oracle_on_random_churn(
        pick in 0usize..4,
        ops in proptest::collection::vec(
            (0u8..4, 0usize..64, 0usize..64, 1u64..2_000), 1..48),
    ) {
        let (topo, nodes) = arena(pick);
        let graph = LinkGraph::build(&topo, nodes, 100.0).unwrap();
        let caps: Vec<f64> = graph.links().iter().map(|l| l.capacity).collect();
        let oracle_graph = LinkGraph::build(&topo, nodes, 100.0).unwrap();
        let mut net = FlowNet::new(graph);
        let mut active: Vec<(usize, usize, usize)> = Vec::new(); // (msg, src, dst)
        let mut next_msg = 0usize;
        let mut now = 0.0f64;
        let mut evs = Vec::new();
        for &(op, a, b, kb) in &ops {
            now += kb as f64 * 1e-6; // strictly increasing settle points
            evs.clear();
            if op == 0 && !active.is_empty() {
                // departure
                let (msg, _, _) = active.remove(a % active.len());
                net.finish(msg, Time::secs(now), &mut evs, &mut NoopSink);
            } else {
                // arrival on a random (src, dst) pair
                let src = a % nodes;
                let dst = (src + 1 + b % (nodes - 1)) % nodes;
                let msg = next_msg;
                next_msg += 1;
                net.start(
                    msg,
                    src,
                    dst,
                    kb as f64 * 1024.0,
                    1e-5,
                    Time::secs(now),
                    &mut evs,
                    &mut NoopSink,
                ).unwrap();
                active.push((msg, src, dst));
            }
            // `active` stays in ascending msg order (arrivals take
            // increasing ids, removals preserve order), matching the
            // order FlowNet reports rates in
            let paths: Vec<Vec<LinkId>> = active
                .iter()
                .map(|&(_, s, d)| oracle_graph.route(s, d))
                .collect();
            let flows: Vec<&[LinkId]> = paths.iter().map(Vec::as_slice).collect();
            let want = max_min_rates(&flows, &caps);
            let got = net.debug_rates();
            prop_assert_eq!(got.len(), want.len());
            for (k, (&(msg, r), &w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(msg, active[k].0);
                prop_assert_eq!(
                    r.to_bits(), w.to_bits(),
                    "flow {} after {} ops: incremental {} vs oracle {}",
                    msg, next_msg, r, w
                );
            }
        }
    }
}
