//! Integration tests for the flow-level network subsystem: bus/crossbar
//! bit-equivalence, link sharing under max-min fairness, fat-tree
//! oversubscription, torus routing, and clean rejection of fabrics that
//! are too small for the trace.

use ovlp_machine::{simulate, Platform, SimError, SimResult, Topology};
use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::{Bytes, Instructions, Rank, ReqId, Tag, Trace, TransferId};

/// A ring workload with computes and mixed eager/rendezvous transfers:
/// enough variety to exercise admission, parking and completion paths.
fn ring_trace(nranks: u32, iters: u32) -> Trace {
    let mut t = Trace::new(nranks as usize);
    for r in 0..nranks {
        let next = (r + 1) % nranks;
        let prev = (r + nranks - 1) % nranks;
        let rt = t.rank_mut(Rank(r));
        for i in 0..iters {
            let size = |sender: u32| 40_000 + 13_000 * ((sender + i) % 5) as u64;
            let mode = if i % 2 == 0 {
                SendMode::Eager
            } else {
                SendMode::Rendezvous
            };
            rt.push(Record::Compute {
                instr: Instructions(100_000 + 37_000 * ((r + i) % 3) as u64),
            });
            // IRecv-before-send keeps the rendezvous iterations
            // deadlock-free (a blocking-send ring would hang for real).
            rt.push(Record::IRecv {
                src: Rank(prev),
                tag: Tag::user(0),
                bytes: Bytes(size(prev)),
                req: ReqId(i as u64),
                transfer: TransferId::new(Rank(r), 2 * i + 1),
            });
            rt.push(Record::Send {
                dst: Rank(next),
                tag: Tag::user(0),
                bytes: Bytes(size(r)),
                mode,
                transfer: TransferId::new(Rank(r), 2 * i),
            });
            rt.push(Record::Wait {
                req: ReqId(i as u64),
            });
        }
    }
    t
}

/// The observable replay outcome, rendered so two runs can be compared
/// bit-for-bit (float Debug formatting is round-trip exact).
fn outcome(sim: &SimResult) -> String {
    format!(
        "{:?} {:?} {:?} {:?} {:?}",
        sim.runtime, sim.totals, sim.timelines, sim.comms, sim.markers
    )
}

/// One rank per node, one port per direction, unlimited buses: every
/// crossbar flow is alone on its two links, so the flow model must
/// reproduce the linear bus-model estimate exactly — not approximately.
#[test]
fn crossbar_replay_is_bit_identical_to_bus() {
    let trace = ring_trace(5, 6);
    let bus = simulate(&trace, &Platform::default()).unwrap();
    let flow = simulate(
        &trace,
        &Platform::default().with_topology(Topology::Crossbar),
    )
    .unwrap();
    assert_eq!(outcome(&bus), outcome(&flow));
    assert!(bus.links.is_empty(), "bus model reports no links");
    assert!(!flow.links.is_empty(), "flow model reports link usage");
}

/// Two ranks per node and two simultaneous transfers between the same
/// node pair: both flows share the up- and down-link, so max-min gives
/// each half the capacity and the transfers take twice the wire time.
#[test]
fn concurrent_flows_share_a_link_fairly() {
    let bytes = 1_000_000u64;
    let mut t = Trace::new(4);
    for (src, dst) in [(0u32, 2u32), (1, 3)] {
        t.rank_mut(Rank(src)).push(Record::Send {
            dst: Rank(dst),
            tag: Tag::user(0),
            bytes: Bytes(bytes),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(src), 0),
        });
        t.rank_mut(Rank(dst)).push(Record::Recv {
            src: Rank(src),
            tag: Tag::user(0),
            bytes: Bytes(bytes),
            transfer: TransferId::new(Rank(dst), 0),
        });
    }
    let base = Platform::default().with_nodes(2, 4000.0, 0.2);
    let bus = simulate(&t, &base).unwrap();
    let flow = simulate(&t, &base.with_topology(Topology::Crossbar)).unwrap();
    let cap = base.bandwidth_mbs * 1e6;
    let lat = base.latency().as_secs();
    let expect_bus = lat + bytes as f64 / cap;
    let expect_flow = lat + bytes as f64 / (cap / 2.0);
    assert!(
        (bus.runtime() - expect_bus).abs() < 1e-12,
        "bus ports admit both transfers at full speed: {} vs {expect_bus}",
        bus.runtime()
    );
    assert!(
        (flow.runtime() - expect_flow).abs() < 1e-12,
        "shared links halve the rate: {} vs {expect_flow}",
        flow.runtime()
    );
    let up = flow
        .links
        .iter()
        .find(|l| &*l.label == "n0->sw")
        .expect("up link of node 0");
    assert!(
        (up.bytes - 2.0 * bytes as f64).abs() < 1.0,
        "both flows crossed the shared up link: {}",
        up.bytes
    );
    assert_eq!(up.peak_flows, 2);
}

/// A cross-pod transfer in an oversubscribed fat-tree is bottlenecked
/// by the thinner fabric links; the same transfer at 1:1 runs at full
/// host bandwidth.
#[test]
fn fat_tree_oversubscription_throttles_cross_pod_traffic() {
    let bytes = 2_000_000u64;
    // radix 4 => pods of 4 hosts; rank 0 -> rank 4 crosses pods.
    let mut t = Trace::new(5);
    t.rank_mut(Rank(0)).push(Record::Send {
        dst: Rank(4),
        tag: Tag::user(0),
        bytes: Bytes(bytes),
        mode: SendMode::Eager,
        transfer: TransferId::new(Rank(0), 0),
    });
    t.rank_mut(Rank(4)).push(Record::Recv {
        src: Rank(0),
        tag: Tag::user(0),
        bytes: Bytes(bytes),
        transfer: TransferId::new(Rank(4), 0),
    });
    let platform = |oversub| {
        Platform::default().with_topology(Topology::FatTree {
            radix: 4,
            oversubscription: oversub,
        })
    };
    let flat = simulate(&t, &platform(1)).unwrap();
    let thin = simulate(&t, &platform(4)).unwrap();
    let cap = 250.0 * 1e6;
    let lat = Platform::default().latency().as_secs();
    let expect_flat = lat + bytes as f64 / cap;
    let expect_thin = lat + bytes as f64 / (cap / 4.0);
    assert!(
        (flat.runtime() - expect_flat).abs() < 1e-12,
        "1:1 fabric runs at host speed: {} vs {expect_flat}",
        flat.runtime()
    );
    assert!(
        (thin.runtime() - expect_thin).abs() < 1e-12,
        "4:1 fabric quarters the rate: {} vs {expect_thin}",
        thin.runtime()
    );
}

/// Dimension-order routing on a 2x2 torus: the diagonal transfer
/// resolves x before y, so exactly the +x then +y links carry traffic.
#[test]
fn torus_routes_dimension_order() {
    let bytes = 500_000u64;
    let mut t = Trace::new(4);
    t.rank_mut(Rank(0)).push(Record::Send {
        dst: Rank(3),
        tag: Tag::user(0),
        bytes: Bytes(bytes),
        mode: SendMode::Rendezvous,
        transfer: TransferId::new(Rank(0), 0),
    });
    t.rank_mut(Rank(3)).push(Record::Recv {
        src: Rank(0),
        tag: Tag::user(0),
        bytes: Bytes(bytes),
        transfer: TransferId::new(Rank(3), 0),
    });
    let sim = simulate(
        &t,
        &Platform::default().with_topology(Topology::Torus { dims: vec![2, 2] }),
    )
    .unwrap();
    let trafficked: Vec<&str> = sim
        .links
        .iter()
        .filter(|l| l.bytes > 0.0)
        .map(|l| &*l.label)
        .collect();
    assert_eq!(
        trafficked,
        ["n0->n1(+x)", "n1->n3(+y)"],
        "x resolved before y"
    );
    assert!(sim.runtime() > 0.0);
}

/// A trace with more nodes than the fabric has endpoints is a clean
/// configuration error, not a panic or an out-of-bounds route.
#[test]
fn undersized_fabric_is_a_clean_error() {
    let trace = ring_trace(8, 1);
    let err = simulate(
        &trace,
        &Platform::default().with_topology(Topology::Torus { dims: vec![2, 2] }),
    )
    .unwrap_err();
    match err {
        SimError::BadPlatform(msg) => {
            assert!(msg.contains("endpoints"), "{msg}");
        }
        other => panic!("expected BadPlatform, got {other:?}"),
    }
}

/// Flow-level replays are reproducible: same trace, same platform, same
/// bits — including the per-link accounting.
#[test]
fn flow_replay_is_deterministic() {
    let trace = ring_trace(6, 4);
    let platform = Platform::default().with_topology(Topology::FatTree {
        radix: 4,
        oversubscription: 2,
    });
    let a = simulate(&trace, &platform).unwrap();
    let b = simulate(&trace, &platform).unwrap();
    assert_eq!(outcome(&a), outcome(&b));
    assert_eq!(format!("{:?}", a.links), format!("{:?}", b.links));
    assert_eq!(a.network.reshares, b.network.reshares);
}
