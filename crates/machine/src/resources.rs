//! Network resource accounting: global buses and per-node ports.
//!
//! Dimemas bounds network concurrency two ways: a global bus count (how
//! many messages may be in flight anywhere in the network — the knob
//! Table I calibrates per application) and per-node input/output port
//! counts (each processor's injection/extraction concurrency). A
//! transfer must hold one unit of all three (sender output port,
//! receiver input port, one bus) for its whole duration.
//!
//! Releases are checked: releasing more than was acquired means the
//! engine's accounting is corrupt, and that is reported as a hard
//! error in every build profile (not just a `debug_assert!`), surfacing
//! through the replay error path as
//! [`SimError::Accounting`](crate::replay::SimError::Accounting).

/// Resource pool for one simulation.
#[derive(Debug, Clone)]
pub struct Resources {
    bus_cap: u32,
    bus_used: u32,
    out_cap: u32,
    in_cap: u32,
    out_used: Vec<u32>,
    in_used: Vec<u32>,
    wan_cap: u32,
    wan_used: u32,
    ports_busy: u32,
}

impl Resources {
    /// `buses == 0` means unlimited buses.
    pub fn new(nranks: usize, buses: u32, input_ports: u32, output_ports: u32) -> Resources {
        Resources::with_wan(nranks, buses, input_ports, output_ports, 0)
    }

    /// Pool with an inter-machine link limit (`wan_links == 0` means
    /// unlimited).
    pub fn with_wan(
        nranks: usize,
        buses: u32,
        input_ports: u32,
        output_ports: u32,
        wan_links: u32,
    ) -> Resources {
        assert!(input_ports > 0 && output_ports > 0, "ports must be >= 1");
        Resources {
            bus_cap: buses,
            bus_used: 0,
            out_cap: output_ports,
            in_cap: input_ports,
            out_used: vec![0; nranks],
            in_used: vec![0; nranks],
            wan_cap: wan_links,
            wan_used: 0,
            ports_busy: 0,
        }
    }

    /// Whether an inter-machine `src -> dst` transfer could start now
    /// (ports + a WAN link; machine-local buses are not involved).
    pub fn wan_available(&self, src: usize, dst: usize) -> bool {
        let wan_ok = self.wan_cap == 0 || self.wan_used < self.wan_cap;
        wan_ok && self.out_used[src] < self.out_cap && self.in_used[dst] < self.in_cap
    }

    /// Acquire (sender out port, receiver in port, one WAN link).
    pub fn try_acquire_wan(&mut self, src: usize, dst: usize) -> bool {
        // single read per counter: check and increment in one pass
        // (this sits inside the first-fit scan over pending transfers)
        let (out, inp) = (self.out_used[src], self.in_used[dst]);
        if (self.wan_cap != 0 && self.wan_used >= self.wan_cap)
            || out >= self.out_cap
            || inp >= self.in_cap
        {
            return false;
        }
        self.wan_used += 1;
        self.out_used[src] = out + 1;
        self.in_used[dst] = inp + 1;
        self.ports_busy += 2;
        true
    }

    /// Release the triple acquired by [`Resources::try_acquire_wan`].
    /// Errors on underflow (a release without a matching acquire).
    pub fn release_wan(&mut self, src: usize, dst: usize) -> Result<(), String> {
        if self.wan_used == 0 {
            return Err(format!("wan release underflow ({src} -> {dst})"));
        }
        self.release_ports(src, dst)?;
        self.wan_used -= 1;
        Ok(())
    }

    /// Whether a `src -> dst` transfer could start right now.
    pub fn available(&self, src: usize, dst: usize) -> bool {
        let bus_ok = self.bus_cap == 0 || self.bus_used < self.bus_cap;
        bus_ok && self.out_used[src] < self.out_cap && self.in_used[dst] < self.in_cap
    }

    /// Atomically acquire (sender out port, receiver in port, one bus).
    /// Returns `false` (and acquires nothing) if any is exhausted.
    pub fn try_acquire(&mut self, src: usize, dst: usize) -> bool {
        // single read per counter: check and increment in one pass
        // (this sits inside the first-fit scan over pending transfers)
        let (out, inp) = (self.out_used[src], self.in_used[dst]);
        if (self.bus_cap != 0 && self.bus_used >= self.bus_cap)
            || out >= self.out_cap
            || inp >= self.in_cap
        {
            return false;
        }
        self.bus_used += 1;
        self.out_used[src] = out + 1;
        self.in_used[dst] = inp + 1;
        self.ports_busy += 2;
        true
    }

    /// Release the triple acquired by [`Resources::try_acquire`].
    /// Errors on underflow (a release without a matching acquire).
    pub fn release(&mut self, src: usize, dst: usize) -> Result<(), String> {
        if self.bus_used == 0 {
            return Err(format!("bus release underflow ({src} -> {dst})"));
        }
        self.release_ports(src, dst)?;
        self.bus_used -= 1;
        Ok(())
    }

    /// Release just the port pair (shared by the bus and WAN paths).
    fn release_ports(&mut self, src: usize, dst: usize) -> Result<(), String> {
        if self.out_used[src] == 0 {
            return Err(format!("out port release underflow at endpoint {src}"));
        }
        if self.in_used[dst] == 0 {
            return Err(format!("in port release underflow at endpoint {dst}"));
        }
        self.out_used[src] -= 1;
        self.in_used[dst] -= 1;
        self.ports_busy -= 2;
        Ok(())
    }

    /// Buses currently in use (for occupancy statistics).
    pub fn buses_in_use(&self) -> u32 {
        self.bus_used
    }

    /// Port units currently held across all endpoints (each in-flight
    /// transfer holds one output and one input port).
    pub fn ports_in_use(&self) -> u32 {
        self.ports_busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_limit_enforced() {
        let mut r = Resources::new(4, 2, 4, 4);
        assert!(r.try_acquire(0, 1));
        assert!(r.try_acquire(2, 3));
        // third concurrent transfer exceeds the 2-bus limit
        assert!(!r.try_acquire(1, 0));
        r.release(0, 1).unwrap();
        assert!(r.try_acquire(1, 0));
    }

    #[test]
    fn zero_buses_means_unlimited() {
        let mut r = Resources::new(8, 0, 8, 8);
        for i in 0..4 {
            assert!(r.try_acquire(i, i + 4));
        }
        assert_eq!(r.buses_in_use(), 4);
    }

    #[test]
    fn port_limits_enforced() {
        let mut r = Resources::new(4, 0, 1, 1);
        assert!(r.try_acquire(0, 1));
        // node 0's single output port is busy
        assert!(!r.try_acquire(0, 2));
        // node 1's single input port is busy
        assert!(!r.try_acquire(2, 1));
        // unrelated pair is fine
        assert!(r.try_acquire(2, 3));
        r.release(0, 1).unwrap();
        assert!(r.try_acquire(0, 2));
    }

    #[test]
    fn failed_acquire_acquires_nothing() {
        let mut r = Resources::new(2, 1, 1, 1);
        assert!(r.try_acquire(0, 1));
        assert!(!r.try_acquire(1, 0)); // bus exhausted
        r.release(0, 1).unwrap();
        // if the failed acquire had leaked anything this would fail
        assert!(r.try_acquire(1, 0));
        r.release(1, 0).unwrap();
        assert_eq!(r.buses_in_use(), 0);
    }

    #[test]
    fn release_underflow_is_a_hard_error() {
        let mut r = Resources::new(2, 0, 1, 1);
        assert!(r.release(0, 1).is_err(), "nothing acquired yet");
        assert!(r.release_wan(0, 1).is_err());
        assert!(r.try_acquire(0, 1));
        // releasing the wrong endpoint pair underflows that endpoint
        let err = r.release(1, 0).unwrap_err();
        assert!(err.contains("underflow"), "{err}");
        // the correct release still succeeds afterwards
        r.release(0, 1).unwrap();
        assert!(r.release(0, 1).is_err(), "double release");
    }
}
