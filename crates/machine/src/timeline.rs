//! Per-rank state timelines and physical communication records — the
//! simulator's output, consumed by analysis and by the visualization
//! layer (the framework's Paraver).

use crate::time::Time;
use ovlp_trace::{Bytes, Rank, Tag};

/// What a rank is doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum State {
    /// Running application code.
    Compute,
    /// Blocked in a receive or a wait on a receive request.
    WaitRecv,
    /// Blocked in a send (resource backpressure / injection latency /
    /// rendezvous completion).
    WaitSend,
    /// Blocked inside a decomposed collective operation.
    Collective,
    /// Finished its trace while others still run.
    Done,
}

impl State {
    pub fn name(self) -> &'static str {
        match self {
            State::Compute => "compute",
            State::WaitRecv => "wait-recv",
            State::WaitSend => "wait-send",
            State::Collective => "collective",
            State::Done => "done",
        }
    }

    /// Numeric code used by the Paraver export.
    pub fn code(self) -> u32 {
        match self {
            State::Compute => 1,
            State::WaitRecv => 2,
            State::WaitSend => 3,
            State::Collective => 4,
            State::Done => 0,
        }
    }
}

/// One homogeneous interval in a rank's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub start: Time,
    pub end: Time,
    pub state: State,
}

impl Interval {
    pub fn duration(&self) -> Time {
        self.end - self.start
    }
}

/// A rank's full state timeline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    pub intervals: Vec<Interval>,
}

impl Timeline {
    /// Append an interval; zero-length intervals are dropped and
    /// adjacent same-state intervals merged.
    pub fn push(&mut self, start: Time, end: Time, state: State) {
        debug_assert!(end >= start, "timeline interval reversed");
        if end <= start {
            return;
        }
        if let Some(last) = self.intervals.last_mut() {
            debug_assert!(
                start >= last.end - Time::micros(1e-3),
                "timeline overlap: {:?} then {:?}..{:?}",
                last,
                start,
                end
            );
            if last.state == state && (start - last.end) <= Time::ZERO {
                last.end = end;
                return;
            }
        }
        self.intervals.push(Interval { start, end, state });
    }

    /// Total time spent in `state`.
    pub fn total_in(&self, state: State) -> Time {
        self.intervals
            .iter()
            .filter(|i| i.state == state)
            .map(|i| i.duration())
            .sum()
    }

    /// End time of the last interval.
    pub fn end(&self) -> Time {
        self.intervals.last().map(|i| i.end).unwrap_or(Time::ZERO)
    }

    /// The state active at time `t`, if any interval covers it.
    pub fn state_at(&self, t: Time) -> Option<State> {
        let idx = self.intervals.partition_point(|i| i.end <= t);
        self.intervals
            .get(idx)
            .filter(|i| i.start <= t)
            .map(|i| i.state)
    }
}

/// Aggregated per-state totals for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StateTotals {
    pub compute: Time,
    pub wait_recv: Time,
    pub wait_send: Time,
    pub collective: Time,
}

impl StateTotals {
    pub fn of(tl: &Timeline) -> StateTotals {
        StateTotals {
            compute: tl.total_in(State::Compute),
            wait_recv: tl.total_in(State::WaitRecv),
            wait_send: tl.total_in(State::WaitSend),
            collective: tl.total_in(State::Collective),
        }
    }

    /// All non-compute time.
    pub fn total_wait(&self) -> Time {
        self.wait_recv + self.wait_send + self.collective
    }
}

/// One physical message transfer as simulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommRecord {
    pub src: Rank,
    pub dst: Rank,
    pub tag: Tag,
    pub bytes: Bytes,
    /// When the sender executed the send record (logical injection).
    pub t_send: Time,
    /// When the transfer physically started (resources granted).
    pub t_start: Time,
    /// When the last byte arrived at the receiver.
    pub t_arrive: Time,
    /// When the receiver actually consumed it (matching recv/wait
    /// returned); `t_arrive` if it was consumed later than it arrived.
    pub t_consume: Time,
}

impl CommRecord {
    /// Time the message spent queued for network resources.
    pub fn queue_delay(&self) -> Time {
        self.t_start - self.t_send
    }

    /// The "synchronization line" length Paraver draws: send to consume.
    pub fn span(&self) -> Time {
        self.t_consume - self.t_send
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_merges_adjacent_same_state() {
        let mut tl = Timeline::default();
        tl.push(Time::secs(0.0), Time::secs(1.0), State::Compute);
        tl.push(Time::secs(1.0), Time::secs(2.0), State::Compute);
        tl.push(Time::secs(2.0), Time::secs(3.0), State::WaitRecv);
        assert_eq!(tl.intervals.len(), 2);
        assert!((tl.total_in(State::Compute).as_secs() - 2.0).abs() < 1e-12);
        assert_eq!(tl.end(), Time::secs(3.0));
    }

    #[test]
    fn push_drops_zero_length() {
        let mut tl = Timeline::default();
        tl.push(Time::secs(1.0), Time::secs(1.0), State::Compute);
        assert!(tl.intervals.is_empty());
    }

    #[test]
    fn state_at_lookup() {
        let mut tl = Timeline::default();
        tl.push(Time::secs(0.0), Time::secs(1.0), State::Compute);
        tl.push(Time::secs(1.0), Time::secs(2.0), State::WaitRecv);
        assert_eq!(tl.state_at(Time::secs(0.5)), Some(State::Compute));
        assert_eq!(tl.state_at(Time::secs(1.5)), Some(State::WaitRecv));
        assert_eq!(tl.state_at(Time::secs(5.0)), None);
    }

    #[test]
    fn totals() {
        let mut tl = Timeline::default();
        tl.push(Time::secs(0.0), Time::secs(2.0), State::Compute);
        tl.push(Time::secs(2.0), Time::secs(3.0), State::WaitRecv);
        tl.push(Time::secs(3.0), Time::secs(3.5), State::WaitSend);
        tl.push(Time::secs(3.5), Time::secs(4.0), State::Collective);
        let t = StateTotals::of(&tl);
        assert!((t.compute.as_secs() - 2.0).abs() < 1e-12);
        assert!((t.total_wait().as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_record_derived_times() {
        let c = CommRecord {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(100),
            t_send: Time::secs(1.0),
            t_start: Time::secs(1.5),
            t_arrive: Time::secs(2.0),
            t_consume: Time::secs(3.0),
        };
        assert!((c.queue_delay().as_secs() - 0.5).abs() < 1e-12);
        assert!((c.span().as_secs() - 2.0).abs() < 1e-12);
    }
}
