//! Causal critical-path analysis with per-rank blame attribution.
//!
//! [`CritPathRecorder`] is a [`ProbeSink`] that remembers, for every
//! rank, the chronological stream of state intervals and — for every
//! wait interval — the *causal parent edge*: which message delivery or
//! injection closed it ([`ProbeSink::on_wait_edge`]). At the end of the
//! replay, [`CritPathRecorder::into_critpath`] walks backward from the
//! finishing rank: a compute interval is consumed on the same rank, a
//! wait interval follows its edge to the sender that gated it. The walk
//! yields the **critical path** — a chain of [`CritSegment`]s that
//! partitions `[0, runtime]` exactly (adjacent segments share their
//! boundary *bit for bit*, so the telescoping sum of lengths is the
//! runtime with zero rounding error).
//!
//! Each wait segment is split at the gating message's recorded marks
//! (send posted → granted → injected → uncontended arrival → actual
//! arrival) into the blame taxonomy:
//!
//! | blame                | the time went to                                 |
//! |----------------------|--------------------------------------------------|
//! | `compute`            | computation on the critical rank                 |
//! | `endpoint-wait`      | the peer had not posted / matched yet            |
//! | `contention-stall`   | resources or max-min sharing stretched the flow  |
//! | `transfer-latency`   | the link class's startup latency                 |
//! | `transfer-bandwidth` | moving the bytes at uncontended capacity         |
//! | `fault-reroute`      | a killed link forced the flow onto a longer path |
//!
//! The marks reuse the engine's own float operations, so an uncontended
//! transfer produces an *exactly empty* contention segment, and blame
//! totals are folded with Shewchuk expansion arithmetic
//! ([`ExactSum`]) so `sum(blame) == runtime` is provable, not
//! approximate — [`CritPath::exact`] certifies both properties.
//!
//! Like every probe, the recorder observes without perturbing: replays
//! with it attached are bit-identical to unprobed ones, and the
//! recorded path is identical across replay engines and worker counts.

use crate::net::topology::Link;
use crate::probe::{json_f64, push_join, Metrics, ProbeSink, WaitEdge};
use crate::time::Time;
use crate::timeline::State;
use std::collections::BTreeMap;

/// Why a span of the critical path elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Blame {
    /// Computation on the critical rank.
    Compute,
    /// Startup latency of the gating transfer's link class.
    TransferLatency,
    /// Moving the gating transfer's bytes at uncontended capacity.
    TransferBandwidth,
    /// Max-min sharing (or bus/port queueing) stretched the gating
    /// transfer beyond its uncontended time.
    ContentionStall,
    /// Waiting on the peer endpoint (send not yet posted, or a
    /// rendezvous match not yet made).
    EndpointWait,
    /// A killed link forced the gating flow onto a reroute.
    FaultReroute,
}

impl Blame {
    /// Number of blame classes (dense array size).
    pub const COUNT: usize = 6;

    /// All classes in canonical (reporting) order.
    pub const ALL: [Blame; Blame::COUNT] = [
        Blame::Compute,
        Blame::TransferLatency,
        Blame::TransferBandwidth,
        Blame::ContentionStall,
        Blame::EndpointWait,
        Blame::FaultReroute,
    ];

    /// Dense index, consistent with [`Blame::ALL`].
    pub fn idx(self) -> usize {
        match self {
            Blame::Compute => 0,
            Blame::TransferLatency => 1,
            Blame::TransferBandwidth => 2,
            Blame::ContentionStall => 3,
            Blame::EndpointWait => 4,
            Blame::FaultReroute => 5,
        }
    }

    /// Stable wire/report name.
    pub fn name(self) -> &'static str {
        match self {
            Blame::Compute => "compute",
            Blame::TransferLatency => "transfer-latency",
            Blame::TransferBandwidth => "transfer-bandwidth",
            Blame::ContentionStall => "contention-stall",
            Blame::EndpointWait => "endpoint-wait",
            Blame::FaultReroute => "fault-reroute",
        }
    }
}

/// One span of the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CritSegment {
    /// Rank the span elapsed on.
    pub rank: usize,
    /// Span start (simulated seconds).
    pub start: Time,
    /// Span end; equals the next segment's start bit-for-bit.
    pub end: Time,
    /// Why the span elapsed.
    pub blame: Blame,
    /// The gating message, when the span is communication-caused.
    pub msg: Option<usize>,
    /// `(src, dst)` ranks of the gating message.
    pub channel: Option<(u32, u32)>,
}

impl CritSegment {
    /// Span length, seconds.
    pub fn seconds(&self) -> f64 {
        (self.end - self.start).as_secs()
    }
}

/// The critical path of one replay, plus blame aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPath {
    /// The replay's runtime (completion time of the slowest rank).
    pub runtime: Time,
    /// Chronological segments partitioning `[0, runtime]`.
    pub segments: Vec<CritSegment>,
    /// Seconds per blame class, indexed like [`Blame::idx`]. Folded
    /// with exact expansion sums.
    pub class_totals: [f64; Blame::COUNT],
    /// Seconds of critical path spent on each rank.
    pub rank_totals: Vec<f64>,
    /// Seconds attributed to each `(src, dst)` channel, ascending.
    pub channel_totals: Vec<((u32, u32), f64)>,
    /// Certifies the partition: segments chain bit-for-bit from `0` to
    /// `runtime` *and* the expansion sum of all segment lengths minus
    /// the runtime is exactly zero.
    pub exact: bool,
}

impl CritPath {
    /// Seconds attributed to `blame`.
    pub fn total(&self, blame: Blame) -> f64 {
        self.class_totals[blame.idx()]
    }

    /// Seconds of critical path that are communication-caused
    /// (everything but compute).
    pub fn comm_total(&self) -> f64 {
        Blame::ALL
            .iter()
            .filter(|b| **b != Blame::Compute)
            .map(|b| self.total(*b))
            .sum()
    }

    /// Stable JSON rendering of the path (embedded as the `critpath`
    /// member of `ovlp.metrics.v2`, and reusable standalone).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024 + self.segments.len() * 96);
        s.push('{');
        s.push_str(&format!(
            "\"runtime_s\": {}, \"exact\": {}, ",
            json_f64(self.runtime.as_secs()),
            self.exact
        ));
        s.push_str("\"blame_totals_s\": {");
        push_join(
            &mut s,
            Blame::ALL
                .iter()
                .map(|b| format!("\"{}\": {}", b.name(), json_f64(self.total(*b)))),
        );
        s.push_str("}, \"rank_totals_s\": [");
        push_join(&mut s, self.rank_totals.iter().map(|v| json_f64(*v)));
        s.push_str("], \"channel_totals_s\": [");
        push_join(
            &mut s,
            self.channel_totals.iter().map(|((src, dst), v)| {
                format!(
                    "{{\"src\": {src}, \"dst\": {dst}, \"seconds\": {}}}",
                    json_f64(*v)
                )
            }),
        );
        s.push_str("], \"segments\": [");
        push_join(
            &mut s,
            self.segments.iter().map(|seg| {
                let mut o = format!(
                    "{{\"rank\": {}, \"start_s\": {}, \"end_s\": {}, \"blame\": \"{}\"",
                    seg.rank,
                    json_f64(seg.start.as_secs()),
                    json_f64(seg.end.as_secs()),
                    seg.blame.name()
                );
                if let Some(m) = seg.msg {
                    o.push_str(&format!(", \"msg\": {m}"));
                }
                if let Some((src, dst)) = seg.channel {
                    o.push_str(&format!(", \"src\": {src}, \"dst\": {dst}"));
                }
                o.push('}');
                o
            }),
        );
        s.push_str("]}");
        s
    }
}

impl Metrics {
    /// Serialize as the `ovlp.metrics.v2` document: the entire v1
    /// payload (every key, same order, same formatting — a v1 reader
    /// that ignores unknown keys parses it unchanged) plus a trailing
    /// `critpath` section.
    pub fn to_json_v2(&self, critpath: &CritPath) -> String {
        let v1 = self.to_json();
        let body = v1.replacen(
            "\"schema\": \"ovlp.metrics.v1\"",
            "\"schema\": \"ovlp.metrics.v2\"",
            1,
        );
        let trimmed = body
            .trim_end()
            .strip_suffix('}')
            .expect("v1 document ends with a brace")
            .trim_end()
            .to_string();
        format!("{trimmed},\n  \"critpath\": {}\n}}\n", critpath.to_json())
    }
}

/// Exact running sum as a Shewchuk expansion: a list of nonoverlapping
/// components whose mathematical sum is the *exact* sum of everything
/// added. Nonoverlapping nonzero components cannot cancel, so "all
/// components are zero" is an airtight zero test — that is what lets
/// [`CritPath::exact`] *prove* blame totals sum to the runtime instead
/// of comparing within an epsilon.
#[derive(Debug, Clone, Default)]
pub struct ExactSum {
    parts: Vec<f64>,
}

impl ExactSum {
    /// Add `x` exactly (grow-expansion with two-sums).
    pub fn add(&mut self, mut x: f64) {
        let mut keep = 0;
        for j in 0..self.parts.len() {
            let y = self.parts[j];
            let hi = x + y;
            let y_virt = hi - x;
            let lo = (x - (hi - y_virt)) + (y - y_virt);
            if lo != 0.0 {
                self.parts[keep] = lo;
                keep += 1;
            }
            x = hi;
        }
        self.parts.truncate(keep);
        if x != 0.0 {
            self.parts.push(x);
        }
    }

    /// Whether the exact sum is zero.
    pub fn is_zero(&self) -> bool {
        self.parts.is_empty()
    }

    /// Best single-f64 approximation (fold from least significant,
    /// deterministic).
    pub fn value(&self) -> f64 {
        self.parts.iter().sum()
    }
}

/// Everything the recorder learned about one message.
#[derive(Debug, Clone, Copy)]
struct MsgInfo {
    src: u32,
    dst: u32,
    rendezvous: bool,
    t_send: Time,
    /// Grant time, once granted.
    t_start: Option<Time>,
    /// Sender-side injection latency of the link class.
    latency: Time,
    /// Arrival time had the transfer never contended (exact for
    /// closed-form link classes; the allocator's lone-flow estimate for
    /// flow-level transfers).
    unc_arrival: Option<Time>,
    /// Moved onto a new route by a link kill.
    rerouted: bool,
    known: bool,
}

impl Default for MsgInfo {
    fn default() -> MsgInfo {
        MsgInfo {
            src: 0,
            dst: 0,
            rendezvous: false,
            t_send: Time::ZERO,
            t_start: None,
            latency: Time::ZERO,
            unc_arrival: None,
            rerouted: false,
            known: false,
        }
    }
}

/// A wait interval's causal parent edge.
#[derive(Debug, Clone, Copy)]
struct EdgeRec {
    /// Interval end (bit-exact key into the interval stream).
    until: Time,
    msg: usize,
    kind: WaitEdge,
}

/// [`ProbeSink`] that records the causal structure of a replay and
/// folds it into a [`CritPath`]. Feed to
/// [`simulate_probed`](crate::replay::simulate_probed) (optionally
/// tee'd with a [`WindowedRecorder`](crate::probe::WindowedRecorder)),
/// then call [`CritPathRecorder::into_critpath`].
#[derive(Debug, Default)]
pub struct CritPathRecorder {
    /// rank -> chronological `(start, end, state)` intervals; contiguous
    /// over `[0, rank_finish]` by engine construction.
    intervals: Vec<Vec<(Time, Time, State)>>,
    /// rank -> wait edges, ascending `until` (at most one per interval).
    edges: Vec<Vec<EdgeRec>>,
    msgs: Vec<MsgInfo>,
    runtime: Time,
}

impl CritPathRecorder {
    pub fn new() -> CritPathRecorder {
        CritPathRecorder::default()
    }

    fn msg_mut(&mut self, msg: usize) -> &mut MsgInfo {
        if self.msgs.len() <= msg {
            self.msgs.resize_with(msg + 1, MsgInfo::default);
        }
        &mut self.msgs[msg]
    }

    /// Consume the recorder into the critical path.
    pub fn into_critpath(self) -> CritPath {
        Walk::new(&self).run()
    }
}

impl ProbeSink for CritPathRecorder {
    fn on_begin(&mut self, nranks: usize, _links: &[Link]) {
        self.intervals = vec![Vec::new(); nranks];
        self.edges = vec![Vec::new(); nranks];
    }

    fn on_state(&mut self, rank: usize, start: Time, end: Time, state: State) {
        if state == State::Done {
            return;
        }
        self.intervals[rank].push((start, end, state));
    }

    fn on_send_posted(
        &mut self,
        msg: usize,
        src: usize,
        dst: usize,
        _tag: u32,
        _bytes: u64,
        rendezvous: bool,
        at: Time,
    ) {
        let m = self.msg_mut(msg);
        m.src = src as u32;
        m.dst = dst as u32;
        m.rendezvous = rendezvous;
        m.t_send = at;
        m.known = true;
    }

    fn on_transfer_granted(
        &mut self,
        msg: usize,
        at: Time,
        latency: Time,
        uncontended_arrival: Option<Time>,
    ) {
        let m = self.msg_mut(msg);
        m.t_start = Some(at);
        m.latency = latency;
        if uncontended_arrival.is_some() {
            m.unc_arrival = uncontended_arrival;
        }
    }

    fn on_flow_path(&mut self, msg: usize, uncontended_eta: Time) {
        self.msg_mut(msg).unc_arrival = Some(uncontended_eta);
    }

    fn on_flow_rerouted(&mut self, msg: usize) {
        self.msg_mut(msg).rerouted = true;
    }

    fn on_wait_edge(&mut self, rank: usize, _since: Time, until: Time, msg: usize, edge: WaitEdge) {
        self.edges[rank].push(EdgeRec {
            until,
            msg,
            kind: edge,
        });
    }

    fn on_end(&mut self, runtime: Time, _queue_peak: usize) {
        self.runtime = runtime;
    }
}

/// The backward walk, producing segments in reverse chronological order
/// (reversed once at the end).
struct Walk<'a> {
    rec: &'a CritPathRecorder,
    segs: Vec<CritSegment>,
}

impl<'a> Walk<'a> {
    fn new(rec: &'a CritPathRecorder) -> Walk<'a> {
        Walk {
            rec,
            segs: Vec::new(),
        }
    }

    /// Push a segment covering `[start, end]` (zero-length pieces are
    /// dropped; the boundary chain survives because a dropped piece has
    /// identical start and end bits).
    fn push(
        &mut self,
        rank: usize,
        start: Time,
        end: Time,
        blame: Blame,
        msg: Option<usize>,
        channel: Option<(u32, u32)>,
    ) {
        if end > start {
            self.segs.push(CritSegment {
                rank,
                start,
                end,
                blame,
                msg,
                channel,
            });
        }
    }

    fn run(mut self) -> CritPath {
        let runtime = self.rec.runtime;
        let finish =
            |ivs: &Vec<(Time, Time, State)>| ivs.last().map(|iv| iv.1).unwrap_or(Time::ZERO);
        // lowest finishing rank starts the walk (deterministic tiebreak)
        let mut rank = self
            .rec
            .intervals
            .iter()
            .position(|ivs| finish(ivs) == runtime)
            .unwrap_or(0);
        let mut t = runtime;
        // Strictly more steps than any walk can take: every step either
        // consumes a nonzero interval (there are finitely many) or jumps
        // rank; jump chains at a fixed time are bounded by the message
        // count. Overflow degrades to a truthful endpoint-wait residue
        // instead of hanging — the partition property is preserved.
        let total: usize = self.rec.intervals.iter().map(Vec::len).sum();
        let mut budget = 4 * (total + self.rec.msgs.len()) + 64;
        while t > Time::ZERO {
            if budget == 0 {
                self.push(rank, Time::ZERO, t, Blame::EndpointWait, None, None);
                break;
            }
            budget -= 1;
            let ivs = &self.rec.intervals[rank];
            // last interval with start < t covers (t - epsilon)
            let k = ivs.partition_point(|iv| iv.0 < t);
            if k == 0 {
                // before this rank's first interval: nothing gates it
                // but the program start — attribute to endpoint-wait
                self.push(rank, Time::ZERO, t, Blame::EndpointWait, None, None);
                break;
            }
            let (a, b, state) = ivs[k - 1];
            if b < t {
                // gap (rank idle past its finish while others ran): the
                // walk only reaches this when a jump overshot; bridge it
                self.push(rank, b, t, Blame::EndpointWait, None, None);
                t = b;
                continue;
            }
            // covering interval, clipped at the cursor
            let e = t;
            if state == State::Compute {
                self.push(rank, a, e, Blame::Compute, None, None);
                t = a;
                continue;
            }
            // wait interval: follow its causal edge (keyed by the
            // interval's true end — edges are 1:1 with wait intervals)
            let edges = &self.rec.edges[rank];
            let pos = edges.partition_point(|ed| ed.until < b);
            let edge = edges.get(pos).filter(|ed| ed.until == b).copied();
            let Some(edge) = edge else {
                self.push(rank, a, e, Blame::EndpointWait, None, None);
                t = a;
                continue;
            };
            let m = match self.rec.msgs.get(edge.msg) {
                Some(m) if m.known => *m,
                _ => {
                    self.push(rank, a, e, Blame::EndpointWait, None, None);
                    t = a;
                    continue;
                }
            };
            let chan = Some((m.src, m.dst));
            let mid = Some(edge.msg);
            match edge.kind {
                WaitEdge::Injection => {
                    // eager sender waiting for its own grant + injection
                    // (segments pushed newest-first: the walk runs
                    // backward and reverses once at the end)
                    let m1 = clamp(m.t_start.unwrap_or(e), a, e);
                    self.push(rank, m1, e, Blame::TransferLatency, mid, chan);
                    self.push(rank, a, m1, Blame::ContentionStall, mid, chan);
                    t = a;
                }
                WaitEdge::Arrival => {
                    // jump to the sender when it posted after we started
                    // waiting — its timeline is what gated us before `lo`
                    let (lo, jump) = if m.t_send >= a && m.t_send <= e {
                        (m.t_send, true)
                    } else {
                        (a, false)
                    };
                    match m.t_start {
                        None => {
                            // never granted while we watched: all wait
                            self.push(rank, lo, e, Blame::EndpointWait, mid, chan);
                        }
                        Some(t_start) => {
                            let m1 = clamp(t_start, lo, e);
                            let m2 = clamp(t_start + m.latency, m1, e);
                            let m3 = match m.unc_arrival {
                                Some(u) => clamp(u, m2, e),
                                None => e,
                            };
                            let pre = if m.rendezvous {
                                Blame::EndpointWait
                            } else {
                                Blame::ContentionStall
                            };
                            let post = if m.rerouted {
                                Blame::FaultReroute
                            } else {
                                Blame::ContentionStall
                            };
                            // newest-first, like every push in the walk
                            self.push(rank, m3, e, post, mid, chan);
                            self.push(rank, m2, m3, Blame::TransferBandwidth, mid, chan);
                            self.push(rank, m1, m2, Blame::TransferLatency, mid, chan);
                            self.push(rank, lo, m1, pre, mid, chan);
                        }
                    }
                    if jump {
                        rank = m.src as usize;
                        t = lo;
                    } else {
                        t = a;
                    }
                }
            }
        }
        self.segs.reverse();
        finalize(runtime, self.segs)
    }
}

/// `x` clamped into `[lo, hi]` (marks must be monotone within a wait).
fn clamp(x: Time, lo: Time, hi: Time) -> Time {
    x.max(lo).min(hi)
}

/// Fold the chronological segments into aggregates and certify
/// exactness.
fn finalize(runtime: Time, segments: Vec<CritSegment>) -> CritPath {
    let nranks = segments.iter().map(|s| s.rank + 1).max().unwrap_or(0);
    let mut class = [(); Blame::COUNT].map(|_| ExactSum::default());
    let mut ranks = vec![ExactSum::default(); nranks];
    let mut channels: BTreeMap<(u32, u32), ExactSum> = BTreeMap::new();
    let mut all = ExactSum::default();
    let mut chained = true;
    let mut prev_end = Time::ZERO;
    for seg in &segments {
        chained &= seg.start.as_secs().to_bits() == prev_end.as_secs().to_bits();
        prev_end = seg.end;
        let (s, e) = (seg.start.as_secs(), seg.end.as_secs());
        all.add(e);
        all.add(-s);
        class[seg.blame.idx()].add(e);
        class[seg.blame.idx()].add(-s);
        ranks[seg.rank].add(e);
        ranks[seg.rank].add(-s);
        if let Some(ch) = seg.channel {
            let c = channels.entry(ch).or_default();
            c.add(e);
            c.add(-s);
        }
    }
    chained &= prev_end.as_secs().to_bits() == runtime.as_secs().to_bits();
    all.add(-runtime.as_secs());
    let exact = chained && all.is_zero();
    CritPath {
        runtime,
        segments,
        class_totals: class.map(|c| c.value()),
        rank_totals: ranks.into_iter().map(|r| r.value()).collect(),
        channel_totals: channels.into_iter().map(|(k, v)| (k, v.value())).collect(),
        exact,
    }
}

// The recorder must be a live sink; checked at compile time like the
// others in `probe.rs`.
const _: () = {
    assert!(CritPathRecorder::ENABLED);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sum_proves_telescoping_cancellation() {
        let mut s = ExactSum::default();
        // deliberately awkward magnitudes: naive summation rounds
        let cuts = [0.0, 0.1, 1e-17, 0.3, 1.0 + 1e-16, 7.77];
        let mut acc = 0.0f64;
        let mut points = vec![0.0];
        for c in cuts {
            acc += c;
            points.push(acc);
        }
        for w in points.windows(2) {
            s.add(w[1]);
            s.add(-w[0]);
        }
        s.add(-points[points.len() - 1]);
        assert!(s.is_zero(), "telescoping boundaries must cancel exactly");
        // and a genuinely nonzero residue is detected, even one far
        // below the ulp of the values it hides behind
        let mut t = ExactSum::default();
        t.add(1.0);
        t.add(1e-18);
        t.add(-1.0);
        assert!(!t.is_zero());
    }

    #[test]
    fn exact_sum_value_is_deterministic() {
        let mut a = ExactSum::default();
        let mut b = ExactSum::default();
        for x in [1e16, 1.0, -1e16, 1e-3, 2.5] {
            a.add(x);
            b.add(x);
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
        assert_eq!(a.value(), 1.0 + 1e-3 + 2.5);
    }

    #[test]
    fn lone_compute_rank_is_all_compute() {
        let mut r = CritPathRecorder::new();
        r.on_begin(2, &[]);
        r.on_state(0, Time::ZERO, Time::secs(0.25), State::Compute);
        r.on_state(1, Time::ZERO, Time::secs(1.0), State::Compute);
        r.on_end(Time::secs(1.0), 0);
        let cp = r.into_critpath();
        assert!(cp.exact);
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.segments[0].rank, 1);
        assert_eq!(cp.segments[0].blame, Blame::Compute);
        assert_eq!(cp.total(Blame::Compute), 1.0);
        assert_eq!(cp.rank_totals, vec![0.0, 1.0]);
    }

    #[test]
    fn wait_interval_follows_edge_to_late_sender() {
        // rank 1 waits [0, 2]; the gating send was posted at t=1 by
        // rank 0 (which computed [0, 1]), granted at 1, latency 0.25,
        // uncontended arrival 2 — the walk must jump to rank 0.
        let mut r = CritPathRecorder::new();
        r.on_begin(2, &[]);
        r.on_state(0, Time::ZERO, Time::secs(1.0), State::Compute);
        r.on_state(1, Time::ZERO, Time::secs(2.0), State::WaitRecv);
        r.on_send_posted(0, 0, 1, 7, 1024, false, Time::secs(1.0));
        r.on_transfer_granted(0, Time::secs(1.0), Time::secs(0.25), Some(Time::secs(2.0)));
        r.on_wait_edge(1, Time::ZERO, Time::secs(2.0), 0, WaitEdge::Arrival);
        r.on_end(Time::secs(2.0), 0);
        let cp = r.into_critpath();
        assert!(cp.exact);
        let blames: Vec<(usize, Blame)> = cp.segments.iter().map(|s| (s.rank, s.blame)).collect();
        assert_eq!(
            blames,
            vec![
                (0, Blame::Compute),
                (1, Blame::TransferLatency),
                (1, Blame::TransferBandwidth),
            ]
        );
        assert_eq!(cp.total(Blame::Compute), 1.0);
        assert_eq!(cp.total(Blame::TransferLatency), 0.25);
        assert_eq!(cp.total(Blame::TransferBandwidth), 0.75);
        assert_eq!(cp.channel_totals, vec![((0, 1), 1.0)]);
    }

    #[test]
    fn early_sender_charges_contention_and_rendezvous_charges_endpoint() {
        // receiver waits [1, 4]; send posted at 0.5 (before the wait),
        // granted at 2, latency 0.5, uncontended arrival 3, actual 4.
        let run = |rendezvous: bool| {
            let mut r = CritPathRecorder::new();
            r.on_begin(2, &[]);
            // the sender finishes early: rank 1 alone decides the runtime
            r.on_state(0, Time::ZERO, Time::secs(0.5), State::Compute);
            r.on_state(1, Time::ZERO, Time::secs(1.0), State::Compute);
            r.on_state(1, Time::secs(1.0), Time::secs(4.0), State::WaitRecv);
            r.on_send_posted(0, 0, 1, 7, 1024, rendezvous, Time::secs(0.5));
            r.on_transfer_granted(0, Time::secs(2.0), Time::secs(0.5), Some(Time::secs(3.0)));
            r.on_wait_edge(1, Time::secs(1.0), Time::secs(4.0), 0, WaitEdge::Arrival);
            r.on_end(Time::secs(4.0), 0);
            r.into_critpath()
        };
        let eager = run(false);
        assert!(eager.exact);
        // rank 1: compute [0,1], pre-grant stall [1,2], latency
        // [2,2.5], bandwidth [2.5,3], post-uncontended stall [3,4]
        assert_eq!(eager.total(Blame::Compute), 1.0);
        assert_eq!(eager.total(Blame::ContentionStall), 2.0);
        assert_eq!(eager.total(Blame::TransferLatency), 0.5);
        assert_eq!(eager.total(Blame::TransferBandwidth), 0.5);
        let rdv = run(true);
        assert!(rdv.exact);
        // pre-grant time becomes endpoint-wait under rendezvous
        assert_eq!(rdv.total(Blame::EndpointWait), 1.0);
        assert_eq!(rdv.total(Blame::ContentionStall), 1.0);
    }

    #[test]
    fn rerouted_flow_blames_fault_reroute() {
        let mut r = CritPathRecorder::new();
        r.on_begin(2, &[]);
        r.on_state(0, Time::ZERO, Time::secs(3.0), State::WaitRecv);
        r.on_state(1, Time::ZERO, Time::secs(0.5), State::Compute);
        r.on_send_posted(0, 1, 0, 7, 1024, false, Time::ZERO);
        r.on_transfer_granted(0, Time::ZERO, Time::secs(0.5), None);
        r.on_flow_path(0, Time::secs(2.0));
        r.on_flow_rerouted(0);
        r.on_wait_edge(0, Time::ZERO, Time::secs(3.0), 0, WaitEdge::Arrival);
        r.on_end(Time::secs(3.0), 0);
        let cp = r.into_critpath();
        assert!(cp.exact);
        assert_eq!(cp.total(Blame::FaultReroute), 1.0);
        assert_eq!(cp.total(Blame::TransferLatency), 0.5);
        assert_eq!(cp.total(Blame::TransferBandwidth), 1.5);
    }

    #[test]
    fn json_rendering_is_stable() {
        let mut r = CritPathRecorder::new();
        r.on_begin(1, &[]);
        r.on_state(0, Time::ZERO, Time::secs(0.5), State::Compute);
        r.on_end(Time::secs(0.5), 0);
        let cp = r.into_critpath();
        let a = cp.to_json();
        assert_eq!(a, cp.to_json());
        assert!(a.contains("\"exact\": true"));
        assert!(a.contains("\"blame_totals_s\""));
        assert!(a.contains("\"compute\": 0.5"));
    }
}
