//! Time-resolved observability probes for the replay engine.
//!
//! A [`ProbeSink`] receives callbacks from the engine at every state
//! transition, transfer start/finish, flow reshare, and event dispatch.
//! The engine is generic over the sink, so the default [`NoopSink`]
//! (with [`ProbeSink::ENABLED`]` = false`) monomorphizes every hook to
//! nothing — `simulate` pays zero cost for the instrumentation.
//!
//! [`WindowedRecorder`] is the production sink: it folds the callback
//! stream into fixed-width time windows and produces a [`Metrics`]
//! document with per-rank state occupancy, per-link utilization,
//! network health gauges (in-flight transfers, event-queue depth,
//! bus/port occupancy), and engine self-profiling counters. Everything
//! is derived from simulated time and deterministic event order, so
//! metrics are bit-identical across runs, worker counts, and probe
//! on/off settings — and they never feed back into the simulation, so
//! sweep replay fingerprints are unaffected.
//!
//! Durations are split across window boundaries proportionally;
//! point-sampled gauges fill forward (a gauge holds its value until the
//! next sample) and report each window's maximum.

use crate::net::fault::FaultAction;
use crate::net::topology::{Link, LinkId};
use crate::time::Time;
use crate::timeline::State;

/// Which engine event was dispatched (payload-free mirror of
/// [`Event`](crate::event::Event), used for per-kind counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A rank resumed execution.
    Resume,
    /// A bus-model / intra-node / WAN transfer completed.
    TransferDone,
    /// A flow-level completion estimate fired (possibly stale).
    FlowDone,
    /// A scheduled link fault struck (kill, degrade or restore).
    Fault,
}

/// What released a rank from a wait interval — the causal parent edge
/// the critical-path walk follows backward
/// ([`CritPathRecorder`](crate::critpath::CritPathRecorder)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitEdge {
    /// The awaited message was delivered (`until` is its arrival time).
    Arrival,
    /// The eager sender finished local injection (`until` is the grant
    /// time plus the link class's injection latency).
    Injection,
}

impl EventKind {
    /// Dense index for counter arrays.
    pub fn idx(self) -> usize {
        match self {
            EventKind::Resume => 0,
            EventKind::TransferDone => 1,
            EventKind::FlowDone => 2,
            EventKind::Fault => 3,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            EventKind::Resume => "resume",
            EventKind::TransferDone => "transfer_done",
            EventKind::FlowDone => "flow_done",
            EventKind::Fault => "fault",
        }
    }
}

/// Observer of one replay. All methods default to no-ops; implement the
/// ones you need. Implementations must not assume callbacks arrive in
/// global time order — the engine emits them in *event processing*
/// order, and a state interval is reported when it closes, not when it
/// opens.
#[allow(unused_variables)]
pub trait ProbeSink {
    /// `false` compiles every engine-side hook away ([`NoopSink`]).
    const ENABLED: bool = true;

    /// Replay starting: rank count and the link graph (empty under the
    /// bus contention model).
    fn on_begin(&mut self, nranks: usize, links: &[Link]) {}

    /// A rank spent `[start, end)` in `state` (never zero-length).
    fn on_state(&mut self, rank: usize, start: Time, end: Time, state: State) {}

    /// An event was popped at `at`; `queue_depth` is the number of
    /// events still pending after the pop.
    fn on_event(&mut self, at: Time, kind: EventKind, queue_depth: usize) {}

    /// A network-level (non-intra-node) transfer acquired its resources.
    /// Gauges are sampled *after* the acquire.
    fn on_transfer_start(&mut self, at: Time, in_flight: u32, buses: u32, ports: u32) {}

    /// A network-level transfer released its resources. Gauges are
    /// sampled *after* the release.
    fn on_transfer_done(&mut self, at: Time, in_flight: u32, buses: u32, ports: u32) {}

    /// A rank's transfer was granted: `bytes` entered the network at
    /// `at` (all link classes, including intra-node).
    fn on_injected(&mut self, rank: usize, at: Time, bytes: u64) {}

    /// Link `link` carried `bytes` over `[t0, t1)`; `t0 == t1` means an
    /// instantaneous credit (the rounding tail of a finishing flow).
    fn on_link_traffic(&mut self, link: usize, t0: Time, t1: Time, bytes: f64) {}

    /// The max-min allocator ran at `at` over `active_flows` flows.
    fn on_reshare(&mut self, at: Time, active_flows: usize) {}

    /// A stale `FlowDone` was popped and discarded at `at` (its epoch
    /// was superseded by a reshare before it fired). Counts the dead
    /// heap traffic the epoch-guard scheme trades for O(1) rescheduling.
    fn on_stale_flow_done(&mut self, at: Time) {}

    /// A scheduled fault was applied to `links` at `at`: `rerouted`
    /// in-flight flows were moved off killed links, and `reshared` says
    /// whether the allocator re-ran (faults on idle links don't
    /// reshare, which keeps them invisible to flow timing).
    fn on_fault(
        &mut self,
        at: Time,
        links: &[LinkId],
        action: &FaultAction,
        rerouted: u32,
        reshared: bool,
    ) {
    }

    /// A send record executed: message `msg` entered the pending queue
    /// at `at` (the sender's local time). `rendezvous` reflects the
    /// *effective* mode after the platform's eager threshold.
    #[allow(clippy::too_many_arguments)]
    fn on_send_posted(
        &mut self,
        msg: usize,
        src: usize,
        dst: usize,
        tag: u32,
        bytes: u64,
        rendezvous: bool,
        at: Time,
    ) {
    }

    /// Message `msg` acquired its resource triple at `at`. `latency` is
    /// the sender-side injection latency of its link class;
    /// `uncontended_arrival` is the exact arrival time for link classes
    /// with closed-form timing (`None` for flow-level transfers, whose
    /// uncontended estimate arrives via [`ProbeSink::on_flow_path`]).
    fn on_transfer_granted(
        &mut self,
        msg: usize,
        at: Time,
        latency: Time,
        uncontended_arrival: Option<Time>,
    ) {
    }

    /// Flow `msg` was routed: `uncontended_eta` is when it would arrive
    /// if it never shared a link. Computed with the same float ops as
    /// the allocator's estimate, so a flow that is alone on its route
    /// from start to finish arrives at exactly this time, to the bit.
    fn on_flow_path(&mut self, msg: usize, uncontended_eta: Time) {}

    /// Flow `msg` was moved onto a new route by a link kill.
    fn on_flow_rerouted(&mut self, msg: usize) {}

    /// A rank's wait interval `[since, until)` was closed by message
    /// `msg`; `until` is exactly the event that released the rank (see
    /// [`WaitEdge`]). Emitted 1:1 with the corresponding
    /// [`ProbeSink::on_state`] wait interval (never zero-length).
    fn on_wait_edge(&mut self, rank: usize, since: Time, until: Time, msg: usize, edge: WaitEdge) {}

    /// High-water mark of trace records resident in the engine's record
    /// supply: the whole trace for a materialized replay, buffered
    /// cursor records for a streamed one ([`simulate_source`]). Emitted
    /// once, just before [`ProbeSink::on_end`] — this is the counter
    /// that makes the "streamed replay memory is O(active ranks)" claim
    /// observable.
    ///
    /// [`simulate_source`]: crate::replay::simulate_source
    fn on_records_peak(&mut self, peak: u64) {}

    /// Replay finished: final runtime and the event-queue high-water
    /// mark.
    fn on_end(&mut self, runtime: Time, queue_peak: usize) {}
}

/// Fans every probe callback out to two sinks, so one replay can feed
/// e.g. a [`WindowedRecorder`] and a
/// [`CritPathRecorder`](crate::critpath::CritPathRecorder) at once.
/// Enabled iff either side is — pairing with [`NoopSink`] keeps the
/// other side's hooks live at zero extra cost.
#[derive(Debug, Default)]
pub struct TeeSink<A, B>(pub A, pub B);

impl<A: ProbeSink, B: ProbeSink> ProbeSink for TeeSink<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_begin(&mut self, nranks: usize, links: &[Link]) {
        self.0.on_begin(nranks, links);
        self.1.on_begin(nranks, links);
    }

    fn on_state(&mut self, rank: usize, start: Time, end: Time, state: State) {
        self.0.on_state(rank, start, end, state);
        self.1.on_state(rank, start, end, state);
    }

    fn on_event(&mut self, at: Time, kind: EventKind, queue_depth: usize) {
        self.0.on_event(at, kind, queue_depth);
        self.1.on_event(at, kind, queue_depth);
    }

    fn on_transfer_start(&mut self, at: Time, in_flight: u32, buses: u32, ports: u32) {
        self.0.on_transfer_start(at, in_flight, buses, ports);
        self.1.on_transfer_start(at, in_flight, buses, ports);
    }

    fn on_transfer_done(&mut self, at: Time, in_flight: u32, buses: u32, ports: u32) {
        self.0.on_transfer_done(at, in_flight, buses, ports);
        self.1.on_transfer_done(at, in_flight, buses, ports);
    }

    fn on_injected(&mut self, rank: usize, at: Time, bytes: u64) {
        self.0.on_injected(rank, at, bytes);
        self.1.on_injected(rank, at, bytes);
    }

    fn on_link_traffic(&mut self, link: usize, t0: Time, t1: Time, bytes: f64) {
        self.0.on_link_traffic(link, t0, t1, bytes);
        self.1.on_link_traffic(link, t0, t1, bytes);
    }

    fn on_reshare(&mut self, at: Time, active_flows: usize) {
        self.0.on_reshare(at, active_flows);
        self.1.on_reshare(at, active_flows);
    }

    fn on_stale_flow_done(&mut self, at: Time) {
        self.0.on_stale_flow_done(at);
        self.1.on_stale_flow_done(at);
    }

    fn on_fault(
        &mut self,
        at: Time,
        links: &[LinkId],
        action: &FaultAction,
        rerouted: u32,
        reshared: bool,
    ) {
        self.0.on_fault(at, links, action, rerouted, reshared);
        self.1.on_fault(at, links, action, rerouted, reshared);
    }

    fn on_send_posted(
        &mut self,
        msg: usize,
        src: usize,
        dst: usize,
        tag: u32,
        bytes: u64,
        rendezvous: bool,
        at: Time,
    ) {
        self.0
            .on_send_posted(msg, src, dst, tag, bytes, rendezvous, at);
        self.1
            .on_send_posted(msg, src, dst, tag, bytes, rendezvous, at);
    }

    fn on_transfer_granted(
        &mut self,
        msg: usize,
        at: Time,
        latency: Time,
        uncontended_arrival: Option<Time>,
    ) {
        self.0
            .on_transfer_granted(msg, at, latency, uncontended_arrival);
        self.1
            .on_transfer_granted(msg, at, latency, uncontended_arrival);
    }

    fn on_flow_path(&mut self, msg: usize, uncontended_eta: Time) {
        self.0.on_flow_path(msg, uncontended_eta);
        self.1.on_flow_path(msg, uncontended_eta);
    }

    fn on_flow_rerouted(&mut self, msg: usize) {
        self.0.on_flow_rerouted(msg);
        self.1.on_flow_rerouted(msg);
    }

    fn on_wait_edge(&mut self, rank: usize, since: Time, until: Time, msg: usize, edge: WaitEdge) {
        self.0.on_wait_edge(rank, since, until, msg, edge);
        self.1.on_wait_edge(rank, since, until, msg, edge);
    }

    fn on_records_peak(&mut self, peak: u64) {
        self.0.on_records_peak(peak);
        self.1.on_records_peak(peak);
    }

    fn on_end(&mut self, runtime: Time, queue_peak: usize) {
        self.0.on_end(runtime, queue_peak);
        self.1.on_end(runtime, queue_peak);
    }
}

/// The do-nothing sink [`simulate`](crate::simulate) uses. With
/// [`ProbeSink::ENABLED`]` = false` every hook call sits behind a
/// constant-false branch and is removed by the compiler.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl ProbeSink for NoopSink {
    const ENABLED: bool = false;
}

/// Point-sampled gauge folded to a per-window maximum with
/// fill-forward: between samples the gauge holds its last value, so a
/// window nobody sampled in reports the value carried into it.
#[derive(Debug, Default)]
struct PeakSeries {
    vals: Vec<u32>,
    cur: u32,
}

impl PeakSeries {
    fn record(&mut self, w: usize, v: u32) {
        // windows entered since the last sample held `cur`
        while self.vals.len() <= w {
            self.vals.push(self.cur);
        }
        self.vals[w] = self.vals[w].max(v);
        self.cur = v;
    }

    fn finish(mut self, windows: usize) -> Vec<u32> {
        while self.vals.len() < windows {
            self.vals.push(self.cur);
        }
        self.vals.truncate(windows);
        self.vals
    }
}

/// Sink that folds probe callbacks into fixed-width time windows.
///
/// Feed it to [`simulate_probed`](crate::replay::simulate_probed), then
/// call [`WindowedRecorder::into_metrics`] for the final document.
#[derive(Debug)]
pub struct WindowedRecorder {
    window_s: f64,
    link_meta: Vec<(std::sync::Arc<str>, f64)>,
    /// rank -> window -> seconds in [compute, wait-recv, wait-send,
    /// collective].
    occupancy: Vec<Vec<[f64; 4]>>,
    /// rank -> window -> bytes injected.
    injected: Vec<Vec<u64>>,
    /// link -> window -> bytes carried.
    link_bytes: Vec<Vec<f64>>,
    /// window -> events dispatched per [`EventKind`].
    events_w: Vec<[u64; 4]>,
    /// window -> reshare passes.
    reshares_w: Vec<u64>,
    in_flight: PeakSeries,
    queue_depth: PeakSeries,
    buses: PeakSeries,
    ports: PeakSeries,
    events_by_kind: [u64; 4],
    reshares: u64,
    stale_popped: u64,
    queue_peak: usize,
    records_peak: u64,
    max_in_flight: u32,
    /// link -> hit by at least one fault event.
    link_faulted: Vec<bool>,
    faults_applied: u64,
    flows_rerouted: u64,
    reroute_reshares: u64,
    runtime_s: f64,
}

impl WindowedRecorder {
    /// A recorder with `window` wide bins. Panics unless `window` is
    /// positive and finite.
    pub fn new(window: Time) -> WindowedRecorder {
        let window_s = window.as_secs();
        assert!(
            window_s > 0.0 && window_s.is_finite(),
            "probe window must be positive and finite, got {window_s}"
        );
        WindowedRecorder {
            window_s,
            link_meta: Vec::new(),
            occupancy: Vec::new(),
            injected: Vec::new(),
            link_bytes: Vec::new(),
            events_w: Vec::new(),
            reshares_w: Vec::new(),
            in_flight: PeakSeries::default(),
            queue_depth: PeakSeries::default(),
            buses: PeakSeries::default(),
            ports: PeakSeries::default(),
            events_by_kind: [0; 4],
            reshares: 0,
            stale_popped: 0,
            queue_peak: 0,
            records_peak: 0,
            max_in_flight: 0,
            link_faulted: Vec::new(),
            faults_applied: 0,
            flows_rerouted: 0,
            reroute_reshares: 0,
            runtime_s: 0.0,
        }
    }

    /// Window index containing time `t`.
    fn window(&self, t: Time) -> usize {
        (t.as_secs() / self.window_s).floor() as usize
    }

    /// Consume the recorder into the final [`Metrics`] document.
    pub fn into_metrics(self) -> Metrics {
        // enough windows to cover the runtime, and never fewer than any
        // series touched (an event exactly at the runtime lands one
        // window past ceil(runtime / dt))
        let mut windows = ((self.runtime_s / self.window_s).ceil() as usize).max(1);
        for r in &self.occupancy {
            windows = windows.max(r.len());
        }
        for r in &self.injected {
            windows = windows.max(r.len());
        }
        for l in &self.link_bytes {
            windows = windows.max(l.len());
        }
        windows = windows.max(self.events_w.len()).max(self.reshares_w.len());

        let pad = |mut v: Vec<f64>| {
            v.resize(windows, 0.0);
            v
        };
        let ranks = self
            .occupancy
            .into_iter()
            .zip(self.injected)
            .map(|(mut occ, mut inj)| {
                occ.resize(windows, [0.0; 4]);
                inj.resize(windows, 0);
                RankSeries {
                    occupancy: occ
                        .into_iter()
                        .map(|s| s.map(|secs| secs / self.window_s))
                        .collect(),
                    injected_bytes: inj,
                }
            })
            .collect();
        let links = self
            .link_meta
            .into_iter()
            .zip(self.link_bytes)
            .zip(self.link_faulted)
            .map(|(((label, capacity_bps), bytes), faulted)| {
                let bytes = pad(bytes);
                let full = capacity_bps * self.window_s;
                let utilization = bytes
                    .iter()
                    .map(|&b| {
                        if full.is_finite() && full > 0.0 {
                            b / full
                        } else {
                            0.0
                        }
                    })
                    .collect();
                LinkSeries {
                    label: String::from(&*label),
                    capacity_bps,
                    utilization,
                    bytes,
                    faulted,
                }
            })
            .collect();
        let mut events_w = self.events_w;
        events_w.resize(windows, [0; 4]);
        let mut reshares_w = self.reshares_w;
        reshares_w.resize(windows, 0);
        Metrics {
            window_s: self.window_s,
            runtime_s: self.runtime_s,
            windows,
            ranks,
            links,
            net: NetSeries {
                in_flight: self.in_flight.finish(windows),
                queue_depth: self.queue_depth.finish(windows),
                buses_busy: self.buses.finish(windows),
                ports_busy: self.ports.finish(windows),
            },
            engine: EngineCounters {
                events_by_kind: self.events_by_kind,
                events_per_window: events_w,
                reshares: self.reshares,
                reshares_per_window: reshares_w,
                stale_popped: self.stale_popped,
                queue_peak: self.queue_peak,
                records_peak: self.records_peak,
                max_in_flight: self.max_in_flight,
                faults_applied: self.faults_applied,
                flows_rerouted: self.flows_rerouted,
                reroute_reshares: self.reroute_reshares,
            },
        }
    }
}

fn bump_f64(series: &mut Vec<f64>, w: usize, amount: f64) {
    if series.len() <= w {
        series.resize(w + 1, 0.0);
    }
    series[w] += amount;
}

/// Split `[a, b)` into `dt`-wide windows, calling `f(window, seconds)`
/// for every overlapped window.
fn split_windows(dt: f64, a: Time, b: Time, mut f: impl FnMut(usize, f64)) {
    let (a, b) = (a.as_secs(), b.as_secs());
    let mut t = a;
    let mut w = (a / dt).floor() as usize;
    while t < b {
        let edge = (w as f64 + 1.0) * dt;
        let end = b.min(edge);
        if end > t {
            f(w, end - t);
        }
        t = edge;
        w += 1;
    }
}

impl ProbeSink for WindowedRecorder {
    fn on_begin(&mut self, nranks: usize, links: &[Link]) {
        self.occupancy = vec![Vec::new(); nranks];
        self.injected = vec![Vec::new(); nranks];
        self.link_meta = links
            .iter()
            .map(|l| (l.label.clone(), l.capacity))
            .collect();
        self.link_bytes = vec![Vec::new(); links.len()];
        self.link_faulted = vec![false; links.len()];
    }

    fn on_state(&mut self, rank: usize, start: Time, end: Time, state: State) {
        let slot = match state {
            State::Compute => 0,
            State::WaitRecv => 1,
            State::WaitSend => 2,
            State::Collective => 3,
            State::Done => return,
        };
        let occ = &mut self.occupancy[rank];
        split_windows(self.window_s, start, end, |w, secs| {
            if occ.len() <= w {
                occ.resize(w + 1, [0.0; 4]);
            }
            occ[w][slot] += secs;
        });
    }

    fn on_event(&mut self, at: Time, kind: EventKind, queue_depth: usize) {
        let w = self.window(at);
        if self.events_w.len() <= w {
            self.events_w.resize(w + 1, [0; 4]);
        }
        self.events_w[w][kind.idx()] += 1;
        self.events_by_kind[kind.idx()] += 1;
        self.queue_depth.record(w, queue_depth as u32);
    }

    fn on_transfer_start(&mut self, at: Time, in_flight: u32, buses: u32, ports: u32) {
        let w = self.window(at);
        self.in_flight.record(w, in_flight);
        self.buses.record(w, buses);
        self.ports.record(w, ports);
        self.max_in_flight = self.max_in_flight.max(in_flight);
    }

    fn on_transfer_done(&mut self, at: Time, in_flight: u32, buses: u32, ports: u32) {
        let w = self.window(at);
        self.in_flight.record(w, in_flight);
        self.buses.record(w, buses);
        self.ports.record(w, ports);
    }

    fn on_injected(&mut self, rank: usize, at: Time, bytes: u64) {
        let w = self.window(at);
        let inj = &mut self.injected[rank];
        if inj.len() <= w {
            inj.resize(w + 1, 0);
        }
        inj[w] += bytes;
    }

    fn on_link_traffic(&mut self, link: usize, t0: Time, t1: Time, bytes: f64) {
        if bytes <= 0.0 {
            return;
        }
        if t1 <= t0 {
            let w = self.window(t0);
            bump_f64(&mut self.link_bytes[link], w, bytes);
            return;
        }
        let span = (t1 - t0).as_secs();
        let series = &mut self.link_bytes[link];
        split_windows(self.window_s, t0, t1, |w, secs| {
            bump_f64(series, w, bytes * secs / span);
        });
    }

    fn on_reshare(&mut self, at: Time, _active_flows: usize) {
        let w = self.window(at);
        if self.reshares_w.len() <= w {
            self.reshares_w.resize(w + 1, 0);
        }
        self.reshares_w[w] += 1;
        self.reshares += 1;
    }

    fn on_stale_flow_done(&mut self, _at: Time) {
        self.stale_popped += 1;
    }

    fn on_fault(
        &mut self,
        _at: Time,
        links: &[LinkId],
        _action: &FaultAction,
        rerouted: u32,
        reshared: bool,
    ) {
        self.faults_applied += 1;
        self.flows_rerouted += u64::from(rerouted);
        self.reroute_reshares += u64::from(reshared);
        for l in links {
            if let Some(f) = self.link_faulted.get_mut(l.idx()) {
                *f = true;
            }
        }
    }

    fn on_records_peak(&mut self, peak: u64) {
        self.records_peak = peak;
    }

    fn on_end(&mut self, runtime: Time, queue_peak: usize) {
        self.runtime_s = runtime.as_secs();
        self.queue_peak = queue_peak;
    }
}

/// Windowed metric timelines of one replay. All series have exactly
/// [`Metrics::windows`] entries; window `w` covers simulated time
/// `[w·window_s, (w+1)·window_s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Window width, seconds.
    pub window_s: f64,
    /// Simulated runtime, seconds.
    pub runtime_s: f64,
    /// Number of windows in every series.
    pub windows: usize,
    /// Per-rank series, indexed by rank.
    pub ranks: Vec<RankSeries>,
    /// Per-link series (flow-level contention only; empty under the bus
    /// model), in link-graph order.
    pub links: Vec<LinkSeries>,
    /// Network health gauges (per-window maxima, fill-forward).
    pub net: NetSeries,
    /// Engine self-profiling counters.
    pub engine: EngineCounters,
}

/// One rank's windowed series.
#[derive(Debug, Clone, PartialEq)]
pub struct RankSeries {
    /// Fraction of each window spent in [compute, wait-recv, wait-send,
    /// collective]. Sums to < 1.0 in windows the rank was idle/done.
    pub occupancy: Vec<[f64; 4]>,
    /// Bytes whose transfers were granted in each window.
    pub injected_bytes: Vec<u64>,
}

/// One link's windowed series.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSeries {
    /// Endpoint label from the topology (e.g. `n0->sw`).
    pub label: String,
    /// Capacity in bytes/s (possibly infinite).
    pub capacity_bps: f64,
    /// Bytes carried over capacity·window per window (0 for an
    /// infinite-capacity link; the trailing partial window is
    /// normalized by the full window width).
    pub utilization: Vec<f64>,
    /// Bytes carried per window.
    pub bytes: Vec<f64>,
    /// Whether any scheduled fault (kill, degrade or restore) touched
    /// this link during the replay.
    pub faulted: bool,
}

/// Network health gauges: each series holds the per-window maximum of a
/// point-sampled gauge with fill-forward between samples.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSeries {
    /// Network-level (non-intra-node) transfers holding resources.
    pub in_flight: Vec<u32>,
    /// Event-queue depth after each pop.
    pub queue_depth: Vec<u32>,
    /// Global buses in use.
    pub buses_busy: Vec<u32>,
    /// Port units in use (2 per in-flight transfer).
    pub ports_busy: Vec<u32>,
}

/// Engine self-profiling counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCounters {
    /// Total events dispatched, indexed like [`EventKind::idx`].
    pub events_by_kind: [u64; 4],
    /// Events dispatched per window, indexed like [`EventKind::idx`].
    pub events_per_window: Vec<[u64; 4]>,
    /// Total max-min reshare passes.
    pub reshares: u64,
    /// Reshare passes per window.
    pub reshares_per_window: Vec<u64>,
    /// Stale `FlowDone` events popped and discarded.
    pub stale_popped: u64,
    /// Event-queue high-water mark.
    pub queue_peak: usize,
    /// High-water mark of trace records resident in the record supply
    /// (total trace size for materialized replays, buffered cursor
    /// records for streamed ones).
    pub records_peak: u64,
    /// Peak concurrent network-level transfers.
    pub max_in_flight: u32,
    /// Scheduled fault events applied.
    pub faults_applied: u64,
    /// In-flight flows moved off killed links.
    pub flows_rerouted: u64,
    /// Reshare passes triggered by fault events (idle-link faults
    /// don't reshare).
    pub reroute_reshares: u64,
}

impl Metrics {
    /// Peak per-window utilization across all links, per window. Empty
    /// when there are no links.
    pub fn max_link_utilization(&self) -> Vec<f64> {
        if self.links.is_empty() {
            return Vec::new();
        }
        (0..self.windows)
            .map(|w| {
                self.links
                    .iter()
                    .map(|l| l.utilization[w])
                    .fold(0.0, f64::max)
            })
            .collect()
    }

    /// Serialize as the stable `ovlp.metrics.v1` JSON document (see
    /// `docs/observability.md` for the schema). Key order and number
    /// formatting are deterministic; non-finite floats render as
    /// `null`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"schema\": \"ovlp.metrics.v1\",\n");
        s.push_str(&format!("  \"window_s\": {},\n", json_f64(self.window_s)));
        s.push_str(&format!("  \"runtime_s\": {},\n", json_f64(self.runtime_s)));
        s.push_str(&format!("  \"windows\": {},\n", self.windows));
        s.push_str("  \"ranks\": [\n");
        for (i, r) in self.ranks.iter().enumerate() {
            s.push_str("    {\"occupancy\": {");
            for (j, name) in ["compute", "wait_recv", "wait_send", "collective"]
                .iter()
                .enumerate()
            {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "\"{name}\": {}",
                    json_f64_array(r.occupancy.iter().map(|o| o[j]))
                ));
            }
            s.push_str("}, \"injected_bytes\": [");
            push_join(&mut s, r.injected_bytes.iter().map(u64::to_string));
            s.push_str("]}");
            s.push_str(if i + 1 < self.ranks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"links\": [\n");
        for (i, l) in self.links.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": {}, \"capacity_bps\": {}, \"utilization\": {}, \"bytes\": {}, \"faulted\": {}}}",
                json_str(&l.label),
                json_f64(l.capacity_bps),
                json_f64_array(l.utilization.iter().copied()),
                json_f64_array(l.bytes.iter().copied()),
                l.faulted,
            ));
            s.push_str(if i + 1 < self.links.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"net\": {\n");
        for (j, (name, series)) in [
            ("in_flight", &self.net.in_flight),
            ("queue_depth", &self.net.queue_depth),
            ("buses_busy", &self.net.buses_busy),
            ("ports_busy", &self.net.ports_busy),
        ]
        .iter()
        .enumerate()
        {
            s.push_str(&format!("    \"{name}\": ["));
            push_join(&mut s, series.iter().map(u32::to_string));
            s.push(']');
            s.push_str(if j < 3 { ",\n" } else { "\n" });
        }
        s.push_str("  },\n  \"engine\": {\n    \"events\": {");
        for (j, kind) in [
            EventKind::Resume,
            EventKind::TransferDone,
            EventKind::FlowDone,
            EventKind::Fault,
        ]
        .iter()
        .enumerate()
        {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\": {}",
                kind.name(),
                self.engine.events_by_kind[kind.idx()]
            ));
        }
        s.push_str("},\n    \"events_per_window\": [");
        push_join(
            &mut s,
            self.engine
                .events_per_window
                .iter()
                .map(|e| format!("[{},{},{},{}]", e[0], e[1], e[2], e[3])),
        );
        s.push_str("],\n    \"reshares\": ");
        s.push_str(&self.engine.reshares.to_string());
        s.push_str(",\n    \"reshares_per_window\": [");
        push_join(
            &mut s,
            self.engine.reshares_per_window.iter().map(u64::to_string),
        );
        s.push_str("],\n    \"stale_popped\": ");
        s.push_str(&self.engine.stale_popped.to_string());
        s.push_str(",\n    \"queue_peak\": ");
        s.push_str(&self.engine.queue_peak.to_string());
        s.push_str(",\n    \"records_peak\": ");
        s.push_str(&self.engine.records_peak.to_string());
        s.push_str(",\n    \"max_in_flight\": ");
        s.push_str(&self.engine.max_in_flight.to_string());
        s.push_str(",\n    \"faults_applied\": ");
        s.push_str(&self.engine.faults_applied.to_string());
        s.push_str(",\n    \"flows_rerouted\": ");
        s.push_str(&self.engine.flows_rerouted.to_string());
        s.push_str(",\n    \"reroute_reshares\": ");
        s.push_str(&self.engine.reroute_reshares.to_string());
        s.push_str("\n  }\n}\n");
        s
    }
}

pub(crate) fn push_join(s: &mut String, parts: impl Iterator<Item = String>) {
    for (i, p) in parts.enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&p);
    }
}

/// A finite f64 in shortest-roundtrip form; non-finite values are not
/// representable in JSON and render as `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn json_f64_array(vals: impl Iterator<Item = f64>) -> String {
    let mut s = String::from("[");
    push_join(&mut s, vals.map(json_f64));
    s.push(']');
    s
}

fn json_str(v: &str) -> String {
    let mut s = String::from("\"");
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
    s
}

// NoopSink must stay disabled (that's the zero-overhead contract) and
// the recorder enabled; checked at compile time.
const _: () = {
    assert!(!NoopSink::ENABLED);
    assert!(WindowedRecorder::ENABLED);
    // TeeSink inherits enablement: two noops stay zero-overhead, one
    // live side turns every hook on.
    assert!(!<TeeSink<NoopSink, NoopSink>>::ENABLED);
    assert!(<TeeSink<NoopSink, WindowedRecorder>>::ENABLED);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_splits_across_windows() {
        let mut r = WindowedRecorder::new(Time::secs(1.0));
        r.on_begin(1, &[]);
        // 0.5 .. 2.25 compute: 0.5 s in w0, 1.0 s in w1, 0.25 s in w2
        r.on_state(0, Time::secs(0.5), Time::secs(2.25), State::Compute);
        r.on_end(Time::secs(2.25), 0);
        let m = r.into_metrics();
        assert_eq!(m.windows, 3);
        let occ = &m.ranks[0].occupancy;
        assert!((occ[0][0] - 0.5).abs() < 1e-12);
        assert!((occ[1][0] - 1.0).abs() < 1e-12);
        assert!((occ[2][0] - 0.25).abs() < 1e-12);
        assert_eq!(occ[0][1], 0.0);
    }

    #[test]
    fn gauges_fill_forward() {
        let mut r = WindowedRecorder::new(Time::secs(1.0));
        r.on_begin(1, &[]);
        r.on_transfer_start(Time::secs(0.1), 2, 2, 4);
        // nothing sampled in w1/w2; gauge holds 2
        r.on_transfer_done(Time::secs(3.5), 1, 1, 2);
        r.on_end(Time::secs(5.0), 0);
        let m = r.into_metrics();
        assert_eq!(m.net.in_flight, vec![2, 2, 2, 2, 1]);
        assert_eq!(m.net.ports_busy, vec![4, 4, 4, 4, 2]);
        assert_eq!(m.engine.max_in_flight, 2);
    }

    #[test]
    fn link_traffic_is_split_proportionally() {
        let links = vec![Link {
            label: "n0->sw".into(),
            capacity: 100.0,
        }];
        let mut r = WindowedRecorder::new(Time::secs(1.0));
        r.on_begin(1, &links);
        r.on_link_traffic(0, Time::secs(0.5), Time::secs(1.5), 100.0);
        // instant credit lands in its own window
        r.on_link_traffic(0, Time::secs(1.5), Time::secs(1.5), 7.0);
        r.on_end(Time::secs(2.0), 0);
        let m = r.into_metrics();
        assert_eq!(m.links[0].bytes.len(), 2);
        assert!((m.links[0].bytes[0] - 50.0).abs() < 1e-9);
        assert!((m.links[0].bytes[1] - 57.0).abs() < 1e-9);
        // capacity 100 B/s over a 1 s window
        assert!((m.links[0].utilization[0] - 0.5).abs() < 1e-9);
        assert_eq!(m.max_link_utilization().len(), 2);
    }

    #[test]
    fn empty_run_has_one_window() {
        let mut r = WindowedRecorder::new(Time::micros(100.0));
        r.on_begin(2, &[]);
        r.on_end(Time::ZERO, 0);
        let m = r.into_metrics();
        assert_eq!(m.windows, 1);
        assert_eq!(m.ranks.len(), 2);
        assert_eq!(m.ranks[0].occupancy, vec![[0.0; 4]]);
        assert_eq!(m.net.queue_depth, vec![0]);
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let mut r = WindowedRecorder::new(Time::secs(1.0));
        r.on_begin(1, &[]);
        r.on_state(0, Time::ZERO, Time::secs(0.5), State::Compute);
        r.on_event(Time::ZERO, EventKind::Resume, 3);
        r.on_end(Time::secs(0.5), 4);
        let m = r.into_metrics();
        let a = m.to_json();
        let b = m.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"ovlp.metrics.v1\""));
        assert!(a.contains("\"queue_peak\": 4"));
        assert!(a.contains("\"compute\": [0.5]"));
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }

    #[test]
    fn fault_hook_marks_links_and_counts() {
        let links = vec![
            Link {
                label: "n0->sw".into(),
                capacity: 100.0,
            },
            Link {
                label: "sw->n0".into(),
                capacity: 100.0,
            },
        ];
        let mut r = WindowedRecorder::new(Time::secs(1.0));
        r.on_begin(1, &links);
        r.on_event(Time::secs(0.5), EventKind::Fault, 0);
        r.on_fault(Time::secs(0.5), &[LinkId(1)], &FaultAction::Kill, 2, true);
        r.on_fault(
            Time::secs(0.7),
            &[LinkId(1)],
            &FaultAction::Restore,
            0,
            false,
        );
        r.on_end(Time::secs(1.0), 0);
        let m = r.into_metrics();
        assert!(!m.links[0].faulted);
        assert!(m.links[1].faulted);
        assert_eq!(m.engine.events_by_kind[EventKind::Fault.idx()], 1);
        assert_eq!(m.engine.faults_applied, 2);
        assert_eq!(m.engine.flows_rerouted, 2);
        assert_eq!(m.engine.reroute_reshares, 1);
        let json = m.to_json();
        assert!(json.contains("\"fault\": 1"));
        assert!(json.contains("\"faulted\": true"));
        assert!(json.contains("\"faults_applied\": 2"));
        assert!(json.contains("\"flows_rerouted\": 2"));
        assert!(json.contains("\"reroute_reshares\": 1"));
    }
}
