//! Trace-driven machine simulator — the framework's Dimemas.
//!
//! Given a [`Trace`](ovlp_trace::Trace) (per-rank streams of computation
//! bursts and communication records) and a [`Platform`] description,
//! [`simulate`] reconstructs the application's time behaviour with a
//! discrete-event engine implementing the Dimemas communication model
//! (Girona, Labarta & Badia, EuroPVM/MPI 2000):
//!
//! * a **linear model** — a point-to-point transfer takes
//!   `latency + size / bandwidth`;
//! * **non-linear contention effects** — a finite number of *global
//!   buses* bounds how many messages may concurrently travel through the
//!   network, and per-node *input/output ports* bound each processor's
//!   injection/extraction concurrency;
//! * **CPU speed** — computation bursts (virtual instruction counts) are
//!   scaled by a MIPS rate;
//! * **collectives decomposed into point-to-point transfers** (the paper
//!   assumes no collective hardware support), via linear or
//!   binomial-tree algorithms selected by the platform.
//!
//! The simulator is fully deterministic: simultaneous events are ordered
//! by insertion sequence, and pending transfers acquire resources in a
//! deterministic first-fit scan.
//!
//! Output is a [`SimResult`]: total runtime, a per-rank state
//! [`Timeline`] (compute / wait-receive / wait-send / collective), and
//! the list of physical communication events — everything the
//! visualization layer (`ovlp-viz`, the framework's Paraver) needs.

pub mod chanstat;
pub mod collective;
pub mod critpath;
pub mod event;
mod fx;
pub mod net;
pub mod platform;
pub mod probe;
pub mod replay;
pub mod resources;
pub mod time;
pub mod timeline;

pub use chanstat::{channel_stats, ChannelStat};
pub use collective::expand_collectives;
pub use critpath::{Blame, CritPath, CritPathRecorder, CritSegment};
pub use net::{
    AppliedFault, ContentionModel, FaultAction, FaultEvent, FaultSchedule, LinkSelector, LinkUsage,
    Topology,
};
pub use platform::{CollectiveAlgo, Platform};
pub use probe::{EventKind, Metrics, NoopSink, ProbeSink, TeeSink, WaitEdge, WindowedRecorder};
pub use replay::{
    render_exact, replay_scale, simulate, simulate_probed, simulate_probed_with, simulate_source,
    simulate_source_probed_with, simulate_source_with, simulate_with, NetworkStats, ReplayEngine,
    ScaleReport, SimError, SimResult,
};
pub use time::Time;
pub use timeline::{CommRecord, Interval, State, StateTotals, Timeline};

// The parallel sweep engine (ovlp-core::sweep) replays traces from
// worker threads; everything crossing [`simulate`]'s boundary must stay
// thread-safe. These assertions turn an accidental `Rc`/`RefCell`/raw
// pointer regression into a compile error right here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Platform>();
    assert_send_sync::<SimResult>();
    assert_send_sync::<SimError>();
    assert_send_sync::<Timeline>();
    assert_send_sync::<ovlp_trace::Trace>();
    assert_send_sync::<ovlp_trace::AccessDb>();
};
