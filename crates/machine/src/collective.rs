//! Collective decomposition into point-to-point transfers.
//!
//! The paper states (§III-C): *"collective communication operations are
//! performed in Dimemas without assuming any collective hardware
//! support on the network, so they are implemented as usual using
//! multiple point-to-point MPI transfers."*
//!
//! This pass rewrites every [`Record::Collective`] in a trace into the
//! equivalent sequence of `Send`/`Recv` records using internal tags
//! ([`Tag::collective`]) so the replay engine only ever sees
//! point-to-point traffic. The `i`-th collective of each rank's stream
//! belongs to instance `i` (trace validation guarantees ranks agree on
//! the sequence), so the internal tags match up across ranks.
//!
//! Two algorithm families are provided, selected by
//! [`CollectiveAlgo`]:
//!
//! * **Binomial** — log₂(P)-depth trees for bcast/reduce/barrier,
//!   reduce-to-root + bcast for allreduce, gather + bcast for
//!   allgather, pairwise ordered exchange for alltoall;
//! * **Linear** — the root exchanges P−1 individual messages (a star);
//!   alltoall remains pairwise.
//!
//! Byte-size conventions per operation (per-rank `bytes_in`/`bytes_out`
//! of the collective record):
//!
//! | op        | meaning of `bytes_in`            | tree message size |
//! |-----------|----------------------------------|-------------------|
//! | barrier   | ignored                          | 0                 |
//! | bcast     | payload size (root's buffer)     | `bytes_in`        |
//! | reduce    | per-rank contribution            | `bytes_in`        |
//! | allreduce | per-rank contribution            | `bytes_in`        |
//! | gather    | per-rank contribution            | subtree-summed    |
//! | allgather | per-rank contribution            | subtree-summed    |
//! | scatter   | per-leaf slice size              | subtree-summed    |
//! | alltoall  | per-pair block size              | `bytes_in`        |

use crate::platform::CollectiveAlgo;
use ovlp_trace::record::SendMode;
use ovlp_trace::{Bytes, CollOp, Rank, Record, Tag, Trace, TransferId};

/// Rewrite all collectives in `trace` into point-to-point records.
///
/// The result contains no [`Record::Collective`]; all synthesized
/// records reuse the collective's [`TransferId`] so provenance is
/// preserved for visualization.
pub fn expand_collectives(trace: &Trace, algo: CollectiveAlgo) -> Trace {
    let nranks = trace.nranks();
    let mut out = Trace::new(nranks);
    out.meta = trace.meta.clone();
    out.meta
        .insert("collectives".to_string(), algo.name().to_string());

    for (r, rt) in trace.ranks.iter().enumerate() {
        expand_rank(nranks, r, &rt.records, algo, &mut out.ranks[r].records);
    }
    out
}

/// Expand one rank's record stream into `out`. Each rank's expansion is
/// independent — the instance counter that keys the internal tags is
/// per-rank, and trace validation guarantees ranks agree on the
/// collective sequence — so the parallel replay driver fans this out
/// across worker threads, one rank per call, with bit-identical output.
pub(crate) fn expand_rank(
    nranks: usize,
    r: usize,
    records: &[Record],
    algo: CollectiveAlgo,
    out: &mut Vec<Record>,
) {
    let rank = Rank(r as u32);
    let mut instance = 0u32;
    // collectives expand to at most 2·(P−1) records each; reserving
    // for the common tree case (≤ 2·log₂P + 2) avoids most regrowth
    out.reserve(records.len() + 4);
    for rec in records {
        expand_one(nranks, rank, rec, &mut instance, algo, &mut |r| out.push(r));
    }
}

/// Expand a single record: collectives become their point-to-point
/// steps (advancing the rank-local `instance` counter that keys the
/// internal tags), everything else passes through verbatim.
///
/// Both the eager rewriter above and the streaming trace supply
/// (`replay::supply`) funnel through this function, which is what
/// guarantees streamed and materialized replays see byte-identical
/// record sequences.
pub(crate) fn expand_one(
    nranks: usize,
    rank: Rank,
    rec: &Record,
    instance: &mut u32,
    algo: CollectiveAlgo,
    emit: &mut impl FnMut(Record),
) {
    match *rec {
        Record::Collective {
            op,
            bytes_in,
            bytes_out: _,
            root,
            transfer,
        } => {
            let tag = Tag::collective(*instance);
            *instance += 1;
            plan(op, algo, nranks as u32, rank, root, bytes_in, &mut |step| {
                emit(step.into_record(tag, transfer))
            });
        }
        other => emit(other),
    }
}

/// One point-to-point step of a decomposed collective, relative to the
/// executing rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    SendTo(Rank, Bytes),
    RecvFrom(Rank, Bytes),
}

impl Step {
    fn into_record(self, tag: Tag, transfer: TransferId) -> Record {
        match self {
            Step::SendTo(dst, bytes) => Record::Send {
                dst,
                tag,
                bytes,
                mode: SendMode::Eager,
                transfer,
            },
            Step::RecvFrom(src, bytes) => Record::Recv {
                src,
                tag,
                bytes,
                transfer,
            },
        }
    }
}

/// Emit the point-to-point step sequence rank `me` executes for one
/// collective instance (directly into `emit`, in execution order).
fn plan(
    op: CollOp,
    algo: CollectiveAlgo,
    p: u32,
    me: Rank,
    root: Rank,
    bytes: Bytes,
    emit: &mut impl FnMut(Step),
) {
    if p <= 1 {
        return;
    }
    match (op, algo) {
        (CollOp::Barrier, _) => {
            // reduce-to-0 then bcast-from-0, zero bytes, always tree-shaped
            reduce_tree(p, me, Rank(0), |_| Bytes::ZERO, emit);
            bcast_tree(p, me, Rank(0), Bytes::ZERO, emit);
        }
        (CollOp::Bcast, CollectiveAlgo::Binomial) => bcast_tree(p, me, root, bytes, emit),
        (CollOp::Bcast, CollectiveAlgo::Linear) => bcast_linear(p, me, root, bytes, emit),
        (CollOp::Reduce, CollectiveAlgo::Binomial) => reduce_tree(p, me, root, |_| bytes, emit),
        (CollOp::Reduce, CollectiveAlgo::Linear) => reduce_linear(p, me, root, bytes, emit),
        (CollOp::Allreduce, CollectiveAlgo::Binomial) => {
            reduce_tree(p, me, Rank(0), |_| bytes, emit);
            bcast_tree(p, me, Rank(0), bytes, emit);
        }
        (CollOp::Allreduce, CollectiveAlgo::Linear) => {
            reduce_linear(p, me, Rank(0), bytes, emit);
            bcast_linear(p, me, Rank(0), bytes, emit);
        }
        (CollOp::Gather, CollectiveAlgo::Binomial) => {
            // message sizes grow with the gathered subtree
            reduce_tree(
                p,
                me,
                root,
                |subtree| Bytes(bytes.get() * subtree as u64),
                emit,
            )
        }
        (CollOp::Gather, CollectiveAlgo::Linear) => reduce_linear(p, me, root, bytes, emit),
        (CollOp::Allgather, CollectiveAlgo::Binomial) => {
            reduce_tree(
                p,
                me,
                Rank(0),
                |subtree| Bytes(bytes.get() * subtree as u64),
                emit,
            );
            bcast_tree(p, me, Rank(0), Bytes(bytes.get() * p as u64), emit);
        }
        (CollOp::Allgather, CollectiveAlgo::Linear) => {
            reduce_linear(p, me, Rank(0), bytes, emit);
            bcast_linear(p, me, Rank(0), Bytes(bytes.get() * p as u64), emit);
        }
        (CollOp::Scatter, CollectiveAlgo::Binomial) => scatter_tree(p, me, root, bytes, emit),
        (CollOp::Scatter, CollectiveAlgo::Linear) => scatter_linear(p, me, root, bytes, emit),
        (CollOp::Alltoall, _) => alltoall_pairwise(p, me, bytes, emit),
    }
}

/// Relative rank in a tree rooted at `root`.
fn rel(me: Rank, root: Rank, p: u32) -> u32 {
    (me.get() + p - root.get()) % p
}

fn abs(rel: u32, root: Rank, p: u32) -> Rank {
    Rank((rel + root.get()) % p)
}

/// Size of the binomial subtree rooted at relative rank `rel` in a
/// `p`-rank tree (number of ranks whose data flows through `rel`,
/// including itself).
fn subtree_size(rel: u32, p: u32) -> u32 {
    if rel == 0 {
        return p;
    }
    // In the clear-highest-bit binomial tree, the descendants of `rel`
    // are exactly the ranks congruent to `rel` modulo the next power of
    // two above it.
    let s = 1u32 << (32 - rel.leading_zeros());
    (p - 1 - rel) / s + 1
}

/// Binomial-tree broadcast from `root`. Parent of relative rank `r`
/// (r>0) is `r` with its highest set bit cleared; parents forward to
/// children in decreasing-subtree order (farthest first).
fn bcast_tree(p: u32, me: Rank, root: Rank, bytes: Bytes, emit: &mut impl FnMut(Step)) {
    let r = rel(me, root, p);
    if r != 0 {
        let high = 1u32 << (31 - r.leading_zeros());
        emit(Step::RecvFrom(abs(r - high, root, p), bytes));
    }
    // children: r + m for m = next power of two above r (or 1 if r==0),
    // doubling while r + m < p. In the clear-highest-bit tree the
    // *smallest* mask owns the largest subtree, so sends go in
    // ascending-mask order (deepest subtree released first — this is
    // what makes the broadcast critical path logarithmic even though
    // the sender injects its children's messages serially).
    let start = if r == 0 {
        1u32
    } else {
        1u32 << (32 - r.leading_zeros())
    };
    let mut m = start;
    while r + m < p {
        emit(Step::SendTo(abs(r + m, root, p), bytes));
        m <<= 1;
    }
}

/// Binomial-tree reduction to `root`: mirror image of `bcast_tree`.
/// `msg_size(subtree)` maps a child's subtree size to the message size
/// it forwards (constant for reduce, growing for gather).
fn reduce_tree(
    p: u32,
    me: Rank,
    root: Rank,
    msg_size: impl Fn(u32) -> Bytes,
    emit: &mut impl FnMut(Step),
) {
    let r = rel(me, root, p);
    // receive from children, nearest first (reverse of bcast order)
    let start = if r == 0 {
        1u32
    } else {
        1u32 << (32 - r.leading_zeros())
    };
    let mut m = start;
    while r + m < p {
        let child = r + m;
        emit(Step::RecvFrom(
            abs(child, root, p),
            msg_size(subtree_size(child, p)),
        ));
        m <<= 1;
    }
    if r != 0 {
        let high = 1u32 << (31 - r.leading_zeros());
        emit(Step::SendTo(
            abs(r - high, root, p),
            msg_size(subtree_size(r, p)),
        ));
    }
}

/// Binomial scatter: root pushes subtree-sized slices down the tree.
fn scatter_tree(p: u32, me: Rank, root: Rank, bytes: Bytes, emit: &mut impl FnMut(Step)) {
    let r = rel(me, root, p);
    if r != 0 {
        let high = 1u32 << (31 - r.leading_zeros());
        emit(Step::RecvFrom(
            abs(r - high, root, p),
            Bytes(bytes.get() * subtree_size(r, p) as u64),
        ));
    }
    let start = if r == 0 {
        1u32
    } else {
        1u32 << (32 - r.leading_zeros())
    };
    let mut m = start;
    while r + m < p {
        let child = r + m;
        emit(Step::SendTo(
            abs(child, root, p),
            Bytes(bytes.get() * subtree_size(child, p) as u64),
        ));
        m <<= 1;
    }
}

fn bcast_linear(p: u32, me: Rank, root: Rank, bytes: Bytes, emit: &mut impl FnMut(Step)) {
    if me == root {
        for r in (0..p).filter(|&r| Rank(r) != root) {
            emit(Step::SendTo(Rank(r), bytes));
        }
    } else {
        emit(Step::RecvFrom(root, bytes));
    }
}

fn reduce_linear(p: u32, me: Rank, root: Rank, bytes: Bytes, emit: &mut impl FnMut(Step)) {
    if me == root {
        for r in (0..p).filter(|&r| Rank(r) != root) {
            emit(Step::RecvFrom(Rank(r), bytes));
        }
    } else {
        emit(Step::SendTo(root, bytes));
    }
}

fn scatter_linear(p: u32, me: Rank, root: Rank, bytes: Bytes, emit: &mut impl FnMut(Step)) {
    // same message pattern as a linear bcast, but per-leaf slice sizes
    bcast_linear(p, me, root, bytes, emit)
}

/// Pairwise-ordered alltoall: in step `k` (1..P), exchange with
/// `(me+k) mod P` / `(me-k) mod P`. Eager sends keep this deadlock-free
/// in the replay model.
fn alltoall_pairwise(p: u32, me: Rank, block: Bytes, emit: &mut impl FnMut(Step)) {
    for k in 1..p {
        let to = Rank((me.get() + k) % p);
        let from = Rank((me.get() + p - k) % p);
        emit(Step::SendTo(to, block));
        emit(Step::RecvFrom(from, block));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::validate::validate;
    use ovlp_trace::Instructions;

    /// Build a trace in which every rank performs the given collective
    /// once, then expand it.
    fn expand_one(op: CollOp, algo: CollectiveAlgo, p: u32, root: u32, bytes: u64) -> Trace {
        let mut t = Trace::new(p as usize);
        for r in 0..p {
            t.rank_mut(Rank(r)).push(Record::Compute {
                instr: Instructions(100),
            });
            t.rank_mut(Rank(r)).push(Record::Collective {
                op,
                bytes_in: Bytes(bytes),
                bytes_out: Bytes(bytes),
                root: Rank(root),
                transfer: TransferId::new(Rank(r), 0),
            });
        }
        expand_collectives(&t, algo)
    }

    /// The expanded trace must be channel-consistent (every send has a
    /// matching recv of equal size) — `validate` checks exactly that.
    fn assert_consistent(t: &Trace) {
        let errs = validate(t);
        assert!(errs.is_empty(), "expansion inconsistent: {errs:?}");
    }

    #[test]
    fn all_ops_all_algos_all_sizes_consistent() {
        for op in CollOp::ALL {
            for algo in [CollectiveAlgo::Binomial, CollectiveAlgo::Linear] {
                for p in [1u32, 2, 3, 4, 5, 8, 13, 16] {
                    for root in [0u32, p - 1] {
                        let t = expand_one(op, algo, p, root % p, 4096);
                        assert_consistent(&t);
                        // no collective records remain
                        for rt in &t.ranks {
                            assert!(rt
                                .records
                                .iter()
                                .all(|r| !matches!(r, Record::Collective { .. })));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn binomial_bcast_message_count_is_p_minus_1() {
        for p in [2u32, 4, 7, 16] {
            let t = expand_one(CollOp::Bcast, CollectiveAlgo::Binomial, p, 0, 100);
            let sends: usize = t
                .ranks
                .iter()
                .flat_map(|rt| &rt.records)
                .filter(|r| matches!(r, Record::Send { .. }))
                .count();
            assert_eq!(sends, (p - 1) as usize, "p={p}");
        }
    }

    #[test]
    fn binomial_bcast_depth_is_logarithmic() {
        // the root sends ceil(log2(p)) messages
        let t = expand_one(CollOp::Bcast, CollectiveAlgo::Binomial, 16, 0, 100);
        let root_sends = t.ranks[0]
            .records
            .iter()
            .filter(|r| matches!(r, Record::Send { .. }))
            .count();
        assert_eq!(root_sends, 4);
    }

    #[test]
    fn linear_bcast_root_sends_all() {
        let t = expand_one(CollOp::Bcast, CollectiveAlgo::Linear, 8, 2, 64);
        let root_sends = t.ranks[2]
            .records
            .iter()
            .filter(|r| matches!(r, Record::Send { .. }))
            .count();
        assert_eq!(root_sends, 7);
    }

    #[test]
    fn gather_total_bytes_reach_root() {
        // every rank contributes `b` bytes; the root must receive
        // (p-1)*b in total regardless of tree shape
        for algo in [CollectiveAlgo::Binomial, CollectiveAlgo::Linear] {
            let p = 8u32;
            let b = 100u64;
            let t = expand_one(CollOp::Gather, algo, p, 0, b);
            let root_recv_bytes: u64 = t.ranks[0]
                .records
                .iter()
                .filter_map(|r| match r {
                    Record::Recv { bytes, .. } => Some(bytes.get()),
                    _ => None,
                })
                .sum();
            assert_eq!(root_recv_bytes, (p as u64 - 1) * b, "{algo:?}");
        }
    }

    #[test]
    fn alltoall_each_rank_sends_p_minus_1_blocks() {
        let p = 6u32;
        let t = expand_one(CollOp::Alltoall, CollectiveAlgo::Binomial, p, 0, 32);
        for rt in &t.ranks {
            let sends = rt
                .records
                .iter()
                .filter(|r| matches!(r, Record::Send { .. }))
                .count();
            let recvs = rt
                .records
                .iter()
                .filter(|r| matches!(r, Record::Recv { .. }))
                .count();
            assert_eq!(sends, (p - 1) as usize);
            assert_eq!(recvs, (p - 1) as usize);
        }
    }

    #[test]
    fn barrier_moves_zero_bytes() {
        let t = expand_one(CollOp::Barrier, CollectiveAlgo::Binomial, 8, 0, 999);
        for rt in &t.ranks {
            for rec in &rt.records {
                if let Record::Send { bytes, .. } = rec {
                    assert_eq!(*bytes, Bytes::ZERO);
                }
            }
        }
    }

    #[test]
    fn single_rank_collectives_are_noops() {
        let t = expand_one(CollOp::Allreduce, CollectiveAlgo::Binomial, 1, 0, 64);
        assert_eq!(t.ranks[0].comm_records(), 0);
    }

    #[test]
    fn nonzero_root_trees_are_consistent() {
        for root in 0..5u32 {
            let t = expand_one(CollOp::Reduce, CollectiveAlgo::Binomial, 5, root, 10);
            assert_consistent(&t);
        }
    }

    #[test]
    fn subtree_sizes_partition_the_tree() {
        for p in [2u32, 3, 8, 13] {
            // children of the root partition [1, p)
            let total: u32 = (1..p)
                .filter(|&r| r & (r - 1) == 0) // powers of two = root's children
                .map(|r| subtree_size(r, p))
                .sum();
            assert_eq!(total, p - 1, "p={p}");
        }
    }

    #[test]
    fn successive_collectives_get_distinct_instance_tags() {
        let mut t = Trace::new(2);
        for r in 0..2u32 {
            for s in 0..2u32 {
                t.rank_mut(Rank(r)).push(Record::Collective {
                    op: CollOp::Barrier,
                    bytes_in: Bytes::ZERO,
                    bytes_out: Bytes::ZERO,
                    root: Rank(0),
                    transfer: TransferId::new(Rank(r), s),
                });
            }
        }
        let e = expand_collectives(&t, CollectiveAlgo::Binomial);
        let tags: std::collections::HashSet<u32> = e.ranks[0]
            .records
            .iter()
            .filter_map(|r| match r {
                Record::Send { tag, .. } | Record::Recv { tag, .. } => Some(tag.0),
                _ => None,
            })
            .collect();
        assert_eq!(tags.len(), 2, "two instances, two internal tags");
    }
}
