//! Explicit network topologies and deterministic routing.
//!
//! A [`Topology`] is a declarative description (crossbar, k-ary
//! fat-tree, N-dimensional torus); [`LinkGraph::build`] compiles it into
//! a flat list of unidirectional [`Link`]s plus a routing function.
//! Routing is static and deterministic — fat-tree up-paths are selected
//! by destination (d-mod ECMP, so every packet to a given host takes the
//! same core), tori use dimension-order routing taking the shorter wrap
//! direction (ties go the positive way) — which keeps the flow-level
//! simulation a pure function of `(trace, platform)`.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// How network contention is modelled for intra-machine transfers.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum ContentionModel {
    /// The legacy Dimemas model: a global bus count plus per-node
    /// input/output ports ([`crate::resources::Resources`]). This is the
    /// calibrated model of the paper's Table I and the default.
    #[default]
    Bus,
    /// Flow-level model: each transfer becomes a flow routed over an
    /// explicit [`Topology`]; link bandwidth is shared max-min fair and
    /// in-flight completion times are re-estimated whenever flows start
    /// or finish. Per-node ports still bound injection/extraction
    /// concurrency; the global bus count is ignored.
    Flow(Topology),
}

/// Declarative network topology for [`ContentionModel::Flow`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Topology {
    /// Single ideal switch: every node gets a dedicated full-capacity
    /// up link and down link. With one in/out port per node this is
    /// exactly the bus model with unlimited buses.
    Crossbar,
    /// Classic three-level k-ary fat-tree (`radix` even, ≥ 2): k pods of
    /// k/2 edge and k/2 aggregation switches, (k/2)² core switches,
    /// k³/4 host endpoints. `oversubscription` divides the capacity of
    /// every fabric (edge↔agg, agg↔core) link; 1 is fully provisioned.
    FatTree { radix: u32, oversubscription: u32 },
    /// N-dimensional torus (1–3 dims, each ≥ 2) with dimension-order
    /// routing and wraparound links; one node per endpoint.
    Torus { dims: Vec<u32> },
}

impl Topology {
    /// Validate the topology parameters themselves (endpoint
    /// sufficiency is checked at build time, when the node count is
    /// known).
    pub fn check(&self) -> Result<(), String> {
        match self {
            Topology::Crossbar => Ok(()),
            Topology::FatTree {
                radix,
                oversubscription,
            } => {
                if *radix < 2 || radix % 2 != 0 {
                    return Err(format!("fat-tree radix must be even and >= 2, got {radix}"));
                }
                if *oversubscription == 0 {
                    return Err("fat-tree oversubscription must be >= 1, got 0".to_string());
                }
                Ok(())
            }
            Topology::Torus { dims } => {
                if dims.is_empty() || dims.len() > 3 {
                    return Err(format!("torus needs 1 to 3 dimensions, got {}", dims.len()));
                }
                if let Some(d) = dims.iter().find(|&&d| d < 2) {
                    return Err(format!("torus dimensions must each be >= 2, got {d}"));
                }
                Ok(())
            }
        }
    }

    /// Number of host endpoints the topology provides. `None` means the
    /// topology scales to any node count (the crossbar grows a port per
    /// node).
    pub fn endpoints(&self) -> Option<usize> {
        match self {
            Topology::Crossbar => None,
            Topology::FatTree { radix, .. } => {
                let k = *radix as usize;
                Some(k * k * k / 4)
            }
            Topology::Torus { dims } => Some(dims.iter().map(|&d| d as usize).product()),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Topology::Crossbar => write!(f, "crossbar"),
            Topology::FatTree {
                radix,
                oversubscription: 1,
            } => write!(f, "fat-tree:{radix}"),
            Topology::FatTree {
                radix,
                oversubscription,
            } => write!(f, "fat-tree:{radix}:{oversubscription}"),
            Topology::Torus { dims } => {
                write!(f, "torus:")?;
                for (i, d) in dims.iter().enumerate() {
                    if i > 0 {
                        write!(f, "x")?;
                    }
                    write!(f, "{d}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for ContentionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContentionModel::Bus => write!(f, "bus"),
            ContentionModel::Flow(t) => write!(f, "{t}"),
        }
    }
}

impl ContentionModel {
    /// Parse a CLI topology spec. Accepted forms:
    ///
    /// ```text
    /// bus                         legacy buses + ports model
    /// crossbar                    single ideal switch
    /// fat-tree:<radix>            fully provisioned k-ary fat-tree
    /// fat-tree:<radix>:<oversub>  with oversubscribed fabric links
    /// torus:<A>x<B>[x<C>]        1-3 dimensional torus
    /// ```
    ///
    /// The parsed topology is validated, so invalid parameters (zero or
    /// odd radix, dims < 2, …) fail here with a clean message.
    pub fn parse(spec: &str) -> Result<ContentionModel, String> {
        let spec = spec.trim();
        let model = match spec {
            "bus" => ContentionModel::Bus,
            "crossbar" | "xbar" => ContentionModel::Flow(Topology::Crossbar),
            _ => {
                if let Some(rest) = spec
                    .strip_prefix("fat-tree:")
                    .or_else(|| spec.strip_prefix("fattree:"))
                {
                    let mut parts = rest.split(':');
                    let radix_s = parts.next().unwrap_or("");
                    let radix: u32 = radix_s
                        .parse()
                        .map_err(|_| format!("bad fat-tree radix `{radix_s}`"))?;
                    let oversubscription = match parts.next() {
                        None => 1,
                        Some(o) => o
                            .parse()
                            .map_err(|_| format!("bad fat-tree oversubscription `{o}`"))?,
                    };
                    if let Some(extra) = parts.next() {
                        return Err(format!("trailing fat-tree parameter `{extra}`"));
                    }
                    ContentionModel::Flow(Topology::FatTree {
                        radix,
                        oversubscription,
                    })
                } else if let Some(rest) = spec.strip_prefix("torus:") {
                    let dims = rest
                        .split('x')
                        .map(|d| {
                            d.parse::<u32>()
                                .map_err(|_| format!("bad torus dimension `{d}`"))
                        })
                        .collect::<Result<Vec<u32>, String>>()?;
                    ContentionModel::Flow(Topology::Torus { dims })
                } else {
                    return Err(format!(
                        "unknown topology `{spec}` (expected bus | crossbar | \
                         fat-tree:<radix>[:<oversub>] | torus:<A>x<B>[x<C>])"
                    ));
                }
            }
        };
        if let ContentionModel::Flow(t) = &model {
            t.check()?;
        }
        Ok(model)
    }
}

impl std::str::FromStr for ContentionModel {
    type Err = String;

    fn from_str(s: &str) -> Result<ContentionModel, String> {
        ContentionModel::parse(s)
    }
}

/// Index of a unidirectional link in a [`LinkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One unidirectional link.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Human-readable endpoint pair, e.g. `h3->e1` or `n5->n6(+x)`.
    /// Shared so per-replay usage snapshots never copy the text.
    pub label: Arc<str>,
    /// Capacity in bytes per second (`f64::INFINITY` allowed).
    pub capacity: f64,
}

/// Compiled topology: the link list plus a static routing function.
#[derive(Debug, Clone)]
pub struct LinkGraph {
    links: Vec<Link>,
    router: Router,
}

#[derive(Debug, Clone)]
enum Router {
    Crossbar { nodes: usize },
    FatTree { half: usize },
    Torus { dims: Vec<u32> },
}

impl LinkGraph {
    /// Compile `topo` for `nodes` endpoints with `bandwidth_mbs` MB/s
    /// host links. Errors if the topology cannot host that many nodes.
    pub fn build(topo: &Topology, nodes: usize, bandwidth_mbs: f64) -> Result<LinkGraph, String> {
        topo.check()?;
        if let Some(cap) = topo.endpoints() {
            if nodes > cap {
                return Err(format!(
                    "topology `{topo}` has {cap} endpoints but the trace needs {nodes} nodes"
                ));
            }
        }
        let host_cap = bandwidth_mbs * 1e6;
        let mut links = Vec::new();
        let router = match topo {
            Topology::Crossbar => {
                for i in 0..nodes {
                    links.push(Link {
                        label: format!("n{i}->sw").into(),
                        capacity: host_cap,
                    });
                }
                for i in 0..nodes {
                    links.push(Link {
                        label: format!("sw->n{i}").into(),
                        capacity: host_cap,
                    });
                }
                Router::Crossbar { nodes }
            }
            Topology::FatTree {
                radix,
                oversubscription,
            } => {
                let k = *radix as usize;
                let half = k / 2;
                let hosts = k * half * half;
                let fabric_cap = host_cap / *oversubscription as f64;
                // Block layout: host-up, host-down, edge->agg, agg->edge,
                // agg->core, core->agg. Each block has `hosts` links.
                for h in 0..hosts {
                    links.push(Link {
                        label: format!("h{h}->e{}", h / half).into(),
                        capacity: host_cap,
                    });
                }
                for h in 0..hosts {
                    links.push(Link {
                        label: format!("e{}->h{h}", h / half).into(),
                        capacity: host_cap,
                    });
                }
                for edge in 0..k * half {
                    for a in 0..half {
                        let agg = (edge / half) * half + a;
                        links.push(Link {
                            label: format!("e{edge}->a{agg}").into(),
                            capacity: fabric_cap,
                        });
                    }
                }
                for edge in 0..k * half {
                    for a in 0..half {
                        let agg = (edge / half) * half + a;
                        links.push(Link {
                            label: format!("a{agg}->e{edge}").into(),
                            capacity: fabric_cap,
                        });
                    }
                }
                for pod in 0..k {
                    for a in 0..half {
                        for i in 0..half {
                            links.push(Link {
                                label: format!("a{}->c{}", pod * half + a, a * half + i).into(),
                                capacity: fabric_cap,
                            });
                        }
                    }
                }
                for pod in 0..k {
                    for a in 0..half {
                        for i in 0..half {
                            links.push(Link {
                                label: format!("c{}->a{}", a * half + i, pod * half + a).into(),
                                capacity: fabric_cap,
                            });
                        }
                    }
                }
                Router::FatTree { half }
            }
            Topology::Torus { dims } => {
                let n: usize = dims.iter().map(|&d| d as usize).product();
                let ndims = dims.len();
                const AXES: [char; 3] = ['x', 'y', 'z'];
                for node in 0..n {
                    for (dim, &axis) in AXES.iter().enumerate().take(ndims) {
                        for dir in 0..2usize {
                            let to = torus_neighbor(node, dims, dim, dir);
                            let sign = if dir == 0 { '+' } else { '-' };
                            links.push(Link {
                                label: format!("n{node}->n{to}({sign}{axis})").into(),
                                capacity: host_cap,
                            });
                        }
                    }
                }
                Router::Torus { dims: dims.clone() }
            }
        };
        Ok(LinkGraph { links, router })
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    pub fn len(&self) -> usize {
        self.links.len()
    }

    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// The static route for a `src -> dst` node pair (`src != dst`).
    pub fn route(&self, src: usize, dst: usize) -> Vec<LinkId> {
        let mut out = Vec::new();
        self.route_into(src, dst, &mut out);
        out
    }

    /// Append the static `src -> dst` route to `out` without allocating
    /// (beyond growing `out`). The hot path for flow registration: the
    /// caller owns and reuses the buffer.
    pub fn route_into(&self, src: usize, dst: usize, out: &mut Vec<LinkId>) {
        debug_assert_ne!(src, dst, "routing a node to itself");
        match &self.router {
            Router::Crossbar { nodes } => {
                out.push(LinkId(src as u32));
                out.push(LinkId((nodes + dst) as u32));
            }
            Router::FatTree { half } => fat_tree_route(src, dst, *half, out),
            Router::Torus { dims } => torus_route(src, dst, dims, out),
        }
    }

    /// Resolve a fault selector to the concrete links it addresses.
    pub fn select(&self, sel: &super::fault::LinkSelector) -> Result<Vec<LinkId>, String> {
        use super::fault::LinkSelector;
        match sel {
            LinkSelector::Label(label) => self
                .links
                .iter()
                .position(|l| &*l.label == label.as_str())
                .map(|i| vec![LinkId(i as u32)])
                .ok_or_else(|| format!("no link labelled `{label}` in this topology")),
            LinkSelector::Index(i) => {
                if (*i as usize) < self.links.len() {
                    Ok(vec![LinkId(*i)])
                } else {
                    Err(format!(
                        "link index {i} out of range (topology has {} links)",
                        self.links.len()
                    ))
                }
            }
            LinkSelector::Uplinks => match &self.router {
                Router::Crossbar { nodes } => Ok((0..*nodes as u32).map(LinkId).collect()),
                Router::FatTree { .. } => {
                    // block layout: host-up, host-down, edge->agg,
                    // agg->edge, agg->core, core->agg (see `build`)
                    let hosts = self.links.len() / 6;
                    Ok((0..hosts)
                        .chain(2 * hosts..3 * hosts)
                        .chain(4 * hosts..5 * hosts)
                        .map(|i| LinkId(i as u32))
                        .collect())
                }
                Router::Torus { .. } => Err(
                    "selector `uplink:*` needs an up direction; only crossbar and fat-tree \
                     topologies have one"
                        .to_string(),
                ),
            },
            LinkSelector::Dim(d) => match &self.router {
                Router::Torus { dims } => {
                    let ndims = dims.len();
                    if *d as usize >= ndims {
                        return Err(format!(
                            "torus dimension {d} out of range (topology has {ndims})"
                        ));
                    }
                    Ok((0..self.links.len())
                        .filter(|slot| (slot / 2) % ndims == *d as usize)
                        .map(|i| LinkId(i as u32))
                        .collect())
                }
                _ => Err(format!(
                    "selector `dim:{d}` addresses torus dimensions; only torus topologies \
                     have them"
                )),
            },
        }
    }

    /// Deterministic route from `src` to `dst` avoiding every link with
    /// `dead[link] == true`, exploiting whatever path diversity the
    /// topology has: the fat-tree re-selects its ECMP plane/core pair,
    /// the torus falls back to the reverse wrap direction per dimension.
    /// Errs with the blocking link when the pair is partitioned.
    pub fn route_avoiding(
        &self,
        src: usize,
        dst: usize,
        dead: &[bool],
        out: &mut Vec<LinkId>,
    ) -> Result<(), LinkId> {
        debug_assert_ne!(src, dst, "routing a node to itself");
        let alive = |l: LinkId| !dead[l.idx()];
        match &self.router {
            Router::Crossbar { nodes } => {
                // a crossbar has exactly one path per pair
                let up = LinkId(src as u32);
                let down = LinkId((nodes + dst) as u32);
                if !alive(up) {
                    return Err(up);
                }
                if !alive(down) {
                    return Err(down);
                }
                out.push(up);
                out.push(down);
                Ok(())
            }
            Router::FatTree { half } => fat_tree_route_avoiding(src, dst, *half, dead, out),
            Router::Torus { dims } => torus_route_avoiding(src, dst, dims, dead, out),
        }
    }

    /// Build `topo` through a process-wide cache of compiled graphs.
    ///
    /// Compiling a topology is pure — the result depends only on
    /// `(topo, nodes, bandwidth_mbs)` — but costs a few microseconds of
    /// link-table and label construction, which dominates short replays
    /// when a sweep revisits the same platform thousands of times. The
    /// cache hands out shared immutable graphs instead; it is bounded
    /// (wholesale-cleared beyond [`GRAPH_CACHE_CAP`] distinct keys, far
    /// more than any sweep uses) and safe to share across sweep worker
    /// threads.
    pub fn cached(
        topo: &Topology,
        nodes: usize,
        bandwidth_mbs: f64,
    ) -> Result<Arc<LinkGraph>, String> {
        type GraphCache = Mutex<HashMap<(Topology, usize, u64), Arc<LinkGraph>>>;
        static CACHE: OnceLock<GraphCache> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let key = (topo.clone(), nodes, bandwidth_mbs.to_bits());
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(g) = map.get(&key) {
            return Ok(Arc::clone(g));
        }
        let g = Arc::new(LinkGraph::build(topo, nodes, bandwidth_mbs)?);
        if map.len() >= GRAPH_CACHE_CAP {
            map.clear();
        }
        map.insert(key, Arc::clone(&g));
        Ok(g)
    }
}

/// Distinct compiled topologies kept by [`LinkGraph::cached`].
const GRAPH_CACHE_CAP: usize = 64;

/// Coordinates of `node` in mixed radix (dimension 0 fastest).
fn torus_coords(node: usize, dims: &[u32]) -> [usize; 3] {
    let mut c = [0usize; 3];
    let mut rest = node;
    for (i, &d) in dims.iter().enumerate() {
        c[i] = rest % d as usize;
        rest /= d as usize;
    }
    c
}

fn torus_index(coords: &[usize; 3], dims: &[u32]) -> usize {
    let mut idx = 0usize;
    for (i, &d) in dims.iter().enumerate().rev() {
        idx = idx * d as usize + coords[i];
    }
    idx
}

/// Neighbour of `node` one hop along `dim` (`dir` 0 = +, 1 = −).
fn torus_neighbor(node: usize, dims: &[u32], dim: usize, dir: usize) -> usize {
    let d = dims[dim] as usize;
    let mut c = torus_coords(node, dims);
    c[dim] = if dir == 0 {
        (c[dim] + 1) % d
    } else {
        (c[dim] + d - 1) % d
    };
    torus_index(&c, dims)
}

/// Link id of the `(node, dim, dir)` torus link, matching build order.
fn torus_link(node: usize, ndims: usize, dim: usize, dir: usize) -> LinkId {
    LinkId(((node * ndims + dim) * 2 + dir) as u32)
}

/// Dimension-order routing, shorter wrap direction, ties positive.
fn torus_route(src: usize, dst: usize, dims: &[u32], path: &mut Vec<LinkId>) {
    let ndims = dims.len();
    let mut cur = torus_coords(src, dims);
    let target = torus_coords(dst, dims);
    for dim in 0..ndims {
        let d = dims[dim] as usize;
        while cur[dim] != target[dim] {
            let forward = (target[dim] + d - cur[dim]) % d;
            let dir = if forward <= d - forward { 0 } else { 1 };
            path.push(torus_link(torus_index(&cur, dims), ndims, dim, dir));
            cur[dim] = if dir == 0 {
                (cur[dim] + 1) % d
            } else {
                (cur[dim] + d - 1) % d
            };
        }
    }
}

/// d-mod ECMP fat-tree route; see [`LinkGraph::build`] for the link
/// block layout.
fn fat_tree_route(src: usize, dst: usize, half: usize, path: &mut Vec<LinkId>) {
    let hosts_per_pod = half * half;
    let total_hosts = 2 * half * hosts_per_pod; // k * half * half
    let edge_of = |h: usize| h / half; // global edge index
    let pod_of = |h: usize| h / hosts_per_pod;
    let up_host = |h: usize| LinkId(h as u32);
    let down_host = |h: usize| LinkId((total_hosts + h) as u32);
    let edge_up = |edge: usize, a: usize| LinkId((2 * total_hosts + edge * half + a) as u32);
    let edge_down = |edge: usize, a: usize| LinkId((3 * total_hosts + edge * half + a) as u32);
    let agg_up = |pod: usize, a: usize, i: usize| {
        LinkId((4 * total_hosts + (pod * half + a) * half + i) as u32)
    };
    let agg_down = |pod: usize, a: usize, i: usize| {
        LinkId((5 * total_hosts + (pod * half + a) * half + i) as u32)
    };

    let (es, ed) = (edge_of(src), edge_of(dst));
    path.push(up_host(src));
    if es == ed {
        path.push(down_host(dst));
        return;
    }
    // deterministic ECMP: the destination picks the aggregation plane
    // and, across pods, the core within the plane
    let a = dst % half;
    if pod_of(src) == pod_of(dst) {
        path.push(edge_up(es, a));
        path.push(edge_down(ed, a));
    } else {
        let i = (dst / half) % half;
        path.push(edge_up(es, a));
        path.push(agg_up(pod_of(src), a, i));
        path.push(agg_down(pod_of(dst), a, i));
        path.push(edge_down(ed, a));
    }
    path.push(down_host(dst));
}

/// Fat-tree routing with ECMP re-selection around dead links. The
/// destination-preferred `(plane, core)` pair is tried first (so with
/// no dead link on it the route equals [`fat_tree_route`] exactly),
/// then the remaining pairs in ascending order — a fixed, load-blind
/// order that keeps replays deterministic.
fn fat_tree_route_avoiding(
    src: usize,
    dst: usize,
    half: usize,
    dead: &[bool],
    path: &mut Vec<LinkId>,
) -> Result<(), LinkId> {
    let hosts_per_pod = half * half;
    let total_hosts = 2 * half * hosts_per_pod;
    let edge_of = |h: usize| h / half;
    let pod_of = |h: usize| h / hosts_per_pod;
    let up_host = |h: usize| LinkId(h as u32);
    let down_host = |h: usize| LinkId((total_hosts + h) as u32);
    let edge_up = |edge: usize, a: usize| LinkId((2 * total_hosts + edge * half + a) as u32);
    let edge_down = |edge: usize, a: usize| LinkId((3 * total_hosts + edge * half + a) as u32);
    let agg_up = |pod: usize, a: usize, i: usize| {
        LinkId((4 * total_hosts + (pod * half + a) * half + i) as u32)
    };
    let agg_down = |pod: usize, a: usize, i: usize| {
        LinkId((5 * total_hosts + (pod * half + a) * half + i) as u32)
    };
    let alive = |l: LinkId| !dead[l.idx()];

    // the host links have no alternative
    let (up, down) = (up_host(src), down_host(dst));
    if !alive(up) {
        return Err(up);
    }
    if !alive(down) {
        return Err(down);
    }
    let (es, ed) = (edge_of(src), edge_of(dst));
    if es == ed {
        path.push(up);
        path.push(down);
        return Ok(());
    }
    let a0 = dst % half;
    if pod_of(src) == pod_of(dst) {
        // same pod: the free choice is the aggregation plane
        let planes = std::iter::once(a0).chain((0..half).filter(|&a| a != a0));
        let mut blocker = None;
        for a in planes {
            let hops = [edge_up(es, a), edge_down(ed, a)];
            match hops.iter().find(|&&l| !alive(l)) {
                None => {
                    path.push(up);
                    path.extend_from_slice(&hops);
                    path.push(down);
                    return Ok(());
                }
                Some(&l) => blocker.get_or_insert(l),
            };
        }
        return Err(blocker.unwrap());
    }
    // cross-pod: the free choice is the (plane, core-within-plane) pair
    let i0 = (dst / half) % half;
    let (ps, pd) = (pod_of(src), pod_of(dst));
    let pairs = std::iter::once((a0, i0))
        .chain((0..half).flat_map(|a| (0..half).map(move |i| (a, i)).filter(|&p| p != (a0, i0))));
    let mut blocker = None;
    for (a, i) in pairs {
        let hops = [
            edge_up(es, a),
            agg_up(ps, a, i),
            agg_down(pd, a, i),
            edge_down(ed, a),
        ];
        match hops.iter().find(|&&l| !alive(l)) {
            None => {
                path.push(up);
                path.extend_from_slice(&hops);
                path.push(down);
                return Ok(());
            }
            Some(&l) => blocker.get_or_insert(l),
        };
    }
    Err(blocker.unwrap())
}

/// Dimension-order torus routing with dimension-reversal fallback:
/// when the preferred wrap direction crosses a dead link, the whole
/// dimension is traversed the other way round instead.
fn torus_route_avoiding(
    src: usize,
    dst: usize,
    dims: &[u32],
    dead: &[bool],
    path: &mut Vec<LinkId>,
) -> Result<(), LinkId> {
    let ndims = dims.len();
    let mut cur = torus_coords(src, dims);
    let target = torus_coords(dst, dims);
    let mut hops: Vec<LinkId> = Vec::new();
    for dim in 0..ndims {
        if cur[dim] == target[dim] {
            continue;
        }
        let d = dims[dim] as usize;
        let forward = (target[dim] + d - cur[dim]) % d;
        let preferred = if forward <= d - forward { 0 } else { 1 };
        let mut blocker = None;
        let mut routed = false;
        'dirs: for dir in [preferred, 1 - preferred] {
            hops.clear();
            let mut c = cur;
            while c[dim] != target[dim] {
                let l = torus_link(torus_index(&c, dims), ndims, dim, dir);
                if dead[l.idx()] {
                    blocker.get_or_insert(l);
                    continue 'dirs;
                }
                hops.push(l);
                c[dim] = if dir == 0 {
                    (c[dim] + 1) % d
                } else {
                    (c[dim] + d - 1) % d
                };
            }
            path.extend_from_slice(&hops);
            cur[dim] = target[dim];
            routed = true;
            break;
        }
        if !routed {
            return Err(blocker.unwrap());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_through_display() {
        for spec in [
            "bus",
            "crossbar",
            "fat-tree:4",
            "fat-tree:8:2",
            "torus:4x4",
            "torus:2x2x2",
        ] {
            let m = ContentionModel::parse(spec).unwrap();
            assert_eq!(m.to_string(), spec, "display must match the parsed spec");
            assert_eq!(ContentionModel::parse(&m.to_string()).unwrap(), m);
        }
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for spec in [
            "mesh",
            "fat-tree:0",
            "fat-tree:3",
            "fat-tree:x",
            "fat-tree:4:0",
            "fat-tree:4:1:9",
            "torus:",
            "torus:1x4",
            "torus:2x2x2x2",
            "torus:axb",
        ] {
            assert!(ContentionModel::parse(spec).is_err(), "{spec} must fail");
        }
    }

    #[test]
    fn endpoint_counts() {
        assert_eq!(Topology::Crossbar.endpoints(), None);
        assert_eq!(
            Topology::FatTree {
                radix: 4,
                oversubscription: 1
            }
            .endpoints(),
            Some(16)
        );
        assert_eq!(Topology::Torus { dims: vec![4, 2] }.endpoints(), Some(8));
    }

    #[test]
    fn build_rejects_too_many_nodes() {
        let t = Topology::Torus { dims: vec![2] };
        assert!(LinkGraph::build(&t, 3, 250.0).is_err());
        assert!(LinkGraph::build(&t, 2, 250.0).is_ok());
    }

    #[test]
    fn crossbar_routes_are_two_hops() {
        let g = LinkGraph::build(&Topology::Crossbar, 4, 100.0).unwrap();
        assert_eq!(g.len(), 8);
        let p = g.route(1, 3);
        assert_eq!(p, vec![LinkId(1), LinkId(4 + 3)]);
        assert_eq!(&*g.links()[1].label, "n1->sw");
        assert_eq!(&*g.links()[7].label, "sw->n3");
    }

    #[test]
    fn fat_tree_structure_and_routes() {
        let t = Topology::FatTree {
            radix: 4,
            oversubscription: 1,
        };
        let g = LinkGraph::build(&t, 16, 100.0).unwrap();
        assert_eq!(g.len(), 6 * 16);
        // same edge switch: up, down
        assert_eq!(g.route(0, 1).len(), 2);
        // same pod, different edge: 4 hops
        assert_eq!(g.route(0, 2).len(), 4);
        // cross-pod: 6 hops
        assert_eq!(g.route(0, 4).len(), 6);
        // routes to the same destination share their down-path core
        let p1 = g.route(0, 14);
        let p2 = g.route(2, 14);
        assert_eq!(p1.last(), p2.last());
        assert_eq!(p1[p1.len() - 2], p2[p2.len() - 2]);
        // every hop is a real link
        for p in [g.route(0, 15), g.route(7, 8), g.route(13, 2)] {
            for l in p {
                assert!(l.idx() < g.len());
            }
        }
    }

    #[test]
    fn fat_tree_oversubscription_reduces_fabric_capacity() {
        let t = Topology::FatTree {
            radix: 4,
            oversubscription: 2,
        };
        let g = LinkGraph::build(&t, 16, 100.0).unwrap();
        assert!((g.links()[0].capacity - 100e6).abs() < 1.0, "host link");
        let fabric = &g.links()[2 * 16]; // first edge->agg link
        assert!(
            (fabric.capacity - 50e6).abs() < 1.0,
            "fabric link must be halved, got {}",
            fabric.capacity
        );
    }

    #[test]
    fn torus_dimension_order_routing() {
        let t = Topology::Torus { dims: vec![4, 4] };
        let g = LinkGraph::build(&t, 16, 100.0).unwrap();
        assert_eq!(g.len(), 16 * 2 * 2);
        // node 0 -> node 5 = (1,1): one +x hop then one +y hop
        let p = g.route(0, 5);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], torus_link(0, 2, 0, 0));
        assert_eq!(p[1], torus_link(1, 2, 1, 0));
        // wraparound: 0 -> 3 in x is one -x hop, not three +x hops
        let p = g.route(0, 3);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0], torus_link(0, 2, 0, 1));
        // opposite corner: two hops per dimension max
        assert_eq!(g.route(0, 10).len(), 4);
    }

    #[test]
    fn torus_route_ends_at_destination() {
        let dims = vec![2u32, 3, 2];
        let t = Topology::Torus { dims: dims.clone() };
        let g = LinkGraph::build(&t, 12, 100.0).unwrap();
        for src in 0..12 {
            for dst in 0..12 {
                if src == dst {
                    continue;
                }
                let p = g.route(src, dst);
                assert!(!p.is_empty());
                // replaying the hops from src must land on dst
                let mut cur = src;
                for l in &p {
                    let ndims = dims.len();
                    let slot = l.idx();
                    let dir = slot % 2;
                    let dim = (slot / 2) % ndims;
                    let node = slot / (2 * ndims);
                    assert_eq!(node, cur, "hop must leave the current node");
                    cur = torus_neighbor(node, &dims, dim, dir);
                }
                assert_eq!(cur, dst);
            }
        }
    }

    #[test]
    fn route_into_appends_without_clearing() {
        let g = LinkGraph::build(&Topology::Crossbar, 4, 100.0).unwrap();
        let mut arena = Vec::new();
        g.route_into(0, 1, &mut arena);
        let first = arena.len();
        assert!(first > 0);
        g.route_into(2, 3, &mut arena);
        // the first route must be untouched and the second appended
        assert_eq!(&arena[..first], g.route(0, 1).as_slice());
        assert_eq!(&arena[first..], g.route(2, 3).as_slice());
    }

    #[test]
    fn route_into_matches_route_on_every_topology() {
        let topos: Vec<(Topology, usize)> = vec![
            (Topology::Crossbar, 5),
            (
                Topology::FatTree {
                    radix: 4,
                    oversubscription: 2,
                },
                8,
            ),
            (Topology::Torus { dims: vec![3, 2] }, 6),
        ];
        for (topo, nodes) in topos {
            let g = LinkGraph::build(&topo, nodes, 100.0).unwrap();
            for src in 0..nodes {
                for dst in 0..nodes {
                    if src == dst {
                        continue;
                    }
                    let mut out = Vec::new();
                    g.route_into(src, dst, &mut out);
                    assert_eq!(out, g.route(src, dst), "{topo:?} {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn cached_graphs_are_shared_and_keyed_on_all_inputs() {
        let topo = Topology::Torus { dims: vec![2, 2] };
        let a = LinkGraph::cached(&topo, 4, 125.0).unwrap();
        let b = LinkGraph::cached(&topo, 4, 125.0).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same key must share");
        let c = LinkGraph::cached(&topo, 4, 250.0).unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&a, &c),
            "bandwidth is part of the key"
        );
        let d = LinkGraph::cached(&Topology::Crossbar, 4, 125.0).unwrap();
        assert!(
            !std::sync::Arc::ptr_eq(&a, &d),
            "topology is part of the key"
        );
        // the cached graph is the same compiled object as a fresh build
        let fresh = LinkGraph::build(&topo, 4, 125.0).unwrap();
        assert_eq!(a.len(), fresh.len());
        for (x, y) in a.links().iter().zip(fresh.links()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.capacity.to_bits(), y.capacity.to_bits());
        }
        // errors pass through rather than poisoning the cache
        assert!(LinkGraph::cached(&Topology::Torus { dims: vec![] }, 4, 125.0).is_err());
    }

    #[test]
    fn route_avoiding_matches_route_when_nothing_is_dead() {
        let topos: Vec<(Topology, usize)> = vec![
            (Topology::Crossbar, 5),
            (
                Topology::FatTree {
                    radix: 4,
                    oversubscription: 1,
                },
                16,
            ),
            (Topology::Torus { dims: vec![3, 2] }, 6),
        ];
        for (topo, nodes) in topos {
            let g = LinkGraph::build(&topo, nodes, 100.0).unwrap();
            let dead = vec![false; g.len()];
            for src in 0..nodes {
                for dst in 0..nodes {
                    if src == dst {
                        continue;
                    }
                    let mut out = Vec::new();
                    g.route_avoiding(src, dst, &dead, &mut out).unwrap();
                    assert_eq!(out, g.route(src, dst), "{topo:?} {src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn fat_tree_reroutes_around_a_dead_fabric_link() {
        let t = Topology::FatTree {
            radix: 4,
            oversubscription: 1,
        };
        let g = LinkGraph::build(&t, 16, 100.0).unwrap();
        let mut dead = vec![false; g.len()];
        // kill every link on the default 0->4 route except the host
        // links; an alternate (plane, core) pair must be found
        let default = g.route(0, 4);
        assert_eq!(default.len(), 6);
        for l in &default[1..5] {
            dead[l.idx()] = true;
        }
        let mut out = Vec::new();
        g.route_avoiding(0, 4, &dead, &mut out).unwrap();
        assert_eq!(out.len(), 6);
        assert_ne!(out, default);
        assert!(out.iter().all(|l| !dead[l.idx()]));
        assert_eq!(out[0], default[0], "host up link is fixed");
        assert_eq!(out[5], default[5], "host down link is fixed");
        // killing a host link partitions the pair: no alternative
        dead[default[0].idx()] = true;
        let mut out = Vec::new();
        assert_eq!(g.route_avoiding(0, 4, &dead, &mut out), Err(default[0]));
    }

    #[test]
    fn torus_reverses_a_dimension_around_a_dead_link() {
        let t = Topology::Torus { dims: vec![4] };
        let g = LinkGraph::build(&t, 4, 100.0).unwrap();
        // preferred 0 -> 1 is one +x hop; kill it and the route must
        // wrap the other way (three -x hops)
        let mut dead = vec![false; g.len()];
        dead[torus_link(0, 1, 0, 0).idx()] = true;
        let mut out = Vec::new();
        g.route_avoiding(0, 1, &dead, &mut out).unwrap();
        assert_eq!(
            out,
            vec![
                torus_link(0, 1, 0, 1),
                torus_link(3, 1, 0, 1),
                torus_link(2, 1, 0, 1),
            ]
        );
        // killing both directions out of node 0 partitions it
        dead[torus_link(0, 1, 0, 1).idx()] = true;
        let mut out = Vec::new();
        assert_eq!(
            g.route_avoiding(0, 1, &dead, &mut out),
            Err(torus_link(0, 1, 0, 0))
        );
    }

    #[test]
    fn select_resolves_labels_uplinks_and_dims() {
        use crate::net::fault::LinkSelector;
        let g = LinkGraph::build(&Topology::Crossbar, 3, 100.0).unwrap();
        assert_eq!(
            g.select(&LinkSelector::Label("sw->n2".into())).unwrap(),
            vec![LinkId(5)]
        );
        assert_eq!(
            g.select(&LinkSelector::Uplinks).unwrap(),
            vec![LinkId(0), LinkId(1), LinkId(2)]
        );
        assert!(g.select(&LinkSelector::Index(99)).is_err());
        assert!(g.select(&LinkSelector::Dim(0)).is_err());
        let torus = LinkGraph::build(&Topology::Torus { dims: vec![2, 2] }, 4, 100.0).unwrap();
        let d0 = torus.select(&LinkSelector::Dim(0)).unwrap();
        assert_eq!(d0.len(), 8);
        assert!(d0.iter().all(|l| (l.idx() / 2) % 2 == 0));
    }
}
