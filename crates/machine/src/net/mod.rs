//! Topology-aware flow-level network model.
//!
//! The legacy Dimemas contention model (global buses + per-node ports)
//! treats the fabric as a counter; this subsystem replaces the counter
//! with an explicit topology when [`ContentionModel::Flow`] is selected
//! on the [`Platform`](crate::Platform):
//!
//! * [`topology`] — declarative topologies (crossbar, k-ary fat-tree,
//!   torus) compiled into a [`LinkGraph`](topology::LinkGraph) of
//!   unidirectional capacitated links with deterministic static routing;
//! * [`fairshare`] — the progressive-filling max-min fair bandwidth
//!   allocator;
//! * [`flows`] — [`FlowNet`](flows::FlowNet), the in-flight flow state
//!   the replay engine drives: flows drain at their fair rate, and every
//!   start/finish reshares the affected links and re-estimates
//!   completion times (htsim-style), with epoch counters invalidating
//!   completion events that resharing made stale.
//!
//! Per-node ports still gate injection/extraction concurrency in flow
//! mode (the global bus limit is ignored — the topology itself is the
//! contention), which makes a single-switch crossbar with one port per
//! node behave bit-identically to the uncontended bus model.

pub mod fairshare;
pub mod fault;
pub mod flows;
pub mod topology;

pub use fairshare::max_min_rates;
pub use fault::{AppliedFault, FaultAction, FaultEvent, FaultSchedule, LinkSelector};
pub use flows::{FlowEvent, FlowNet};
pub use topology::{ContentionModel, Link, LinkGraph, LinkId, Topology};

/// Usage statistics of one link over a whole replay, reported through
/// [`SimResult::links`](crate::SimResult::links).
#[derive(Debug, Clone, PartialEq)]
pub struct LinkUsage {
    /// Human-readable endpoint pair (e.g. `h3->e1`, `n0->n1(+x)`).
    pub label: std::sync::Arc<str>,
    /// Link capacity, bytes per second.
    pub capacity_bps: f64,
    /// Total bytes carried.
    pub bytes: f64,
    /// Seconds the link carried at least one flow.
    pub busy_secs: f64,
    /// Maximum number of simultaneous flows observed.
    pub peak_flows: u32,
    /// Fault events that touched this link (kill, degrade or restore).
    pub faults: u32,
}

impl LinkUsage {
    /// Mean utilization over `runtime_s` seconds: bytes carried over
    /// bytes the link could have carried. Zero for a degenerate runtime
    /// or an infinite-capacity link.
    pub fn utilization(&self, runtime_s: f64) -> f64 {
        let denom = self.capacity_bps * runtime_s;
        if denom > 0.0 && denom.is_finite() {
            self.bytes / denom
        } else {
            0.0
        }
    }
}
