//! Active-flow bookkeeping for the flow-level contention model.
//!
//! A [`FlowNet`] tracks every in-flight inter-node transfer as a flow
//! over its static route. Rates are piecewise constant: they only
//! change when a flow starts or finishes, so the net settles lazily —
//! at each change point it drains `rate · dt` bytes from every flow,
//! recomputes the max-min fair allocation, and re-estimates the
//! completion time of each flow whose rate changed.
//!
//! Completion events already sitting in the engine's queue cannot be
//! removed, so each re-estimate carries a fresh *epoch*: the engine
//! drops any `FlowDone` whose epoch is no longer the flow's current
//! one. A flow's estimate is deliberately left untouched while its rate
//! is bit-for-bit unchanged — this keeps an uncontended flow's arrival
//! time identical (to the last bit) to the legacy bus model's
//! `latency + size/bandwidth`, which the crossbar-equivalence tests
//! pin down.

use super::fairshare::max_min_rates;
use super::topology::{Link, LinkGraph, LinkId};
use super::LinkUsage;
use crate::probe::ProbeSink;
use crate::time::Time;
use std::collections::BTreeMap;

/// A (re-)estimated completion the engine must schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEvent {
    /// Message index of the flow.
    pub msg: usize,
    /// Estimated completion time.
    pub at: Time,
    /// Epoch the estimate was issued under; stale epochs are ignored.
    pub epoch: u64,
}

#[derive(Debug)]
struct ActiveFlow {
    path: Vec<LinkId>,
    /// Startup latency still to elapse, seconds.
    latency_left: f64,
    /// Bytes still to drain.
    remaining: f64,
    /// Current max-min fair rate, bytes/s (`0.0` until first reshare).
    rate: f64,
    /// Epoch of the currently scheduled completion (0 = none yet).
    epoch: u64,
}

/// Flow-level network state for one replay.
#[derive(Debug)]
pub struct FlowNet {
    graph: LinkGraph,
    caps: Vec<f64>,
    /// Active flows keyed by message index (ordered, so the allocator
    /// input — and thus every result — is deterministic).
    flows: BTreeMap<usize, ActiveFlow>,
    /// Time the net was last settled to.
    last: Time,
    next_epoch: u64,
    reshares: u64,
    // per-link statistics
    bytes: Vec<f64>,
    busy_secs: Vec<f64>,
    active: Vec<u32>,
    peak_flows: Vec<u32>,
}

impl FlowNet {
    pub fn new(graph: LinkGraph) -> FlowNet {
        let n = graph.len();
        let caps = graph.links().iter().map(|l| l.capacity).collect();
        FlowNet {
            graph,
            caps,
            flows: BTreeMap::new(),
            last: Time::ZERO,
            next_epoch: 1,
            reshares: 0,
            bytes: vec![0.0; n],
            busy_secs: vec![0.0; n],
            active: vec![0; n],
            peak_flows: vec![0; n],
        }
    }

    /// Register a new flow granted at `now` and reshare. Emits a
    /// completion estimate for the new flow and for every existing flow
    /// whose rate changed.
    #[allow(clippy::too_many_arguments)]
    pub fn start<P: ProbeSink>(
        &mut self,
        msg: usize,
        src_node: usize,
        dst_node: usize,
        bytes: f64,
        latency_s: f64,
        now: Time,
        out: &mut Vec<FlowEvent>,
        probe: &mut P,
    ) {
        self.settle(now, probe);
        let path = self.graph.route(src_node, dst_node);
        for l in &path {
            let i = l.idx();
            self.active[i] += 1;
            self.peak_flows[i] = self.peak_flows[i].max(self.active[i]);
        }
        let prev = self.flows.insert(
            msg,
            ActiveFlow {
                path,
                latency_left: latency_s,
                remaining: bytes,
                rate: 0.0,
                epoch: 0,
            },
        );
        debug_assert!(prev.is_none(), "flow {msg} started twice");
        self.reshare(now, out, probe);
    }

    /// Remove a completed flow at `now` and reshare the survivors.
    pub fn finish<P: ProbeSink>(
        &mut self,
        msg: usize,
        now: Time,
        out: &mut Vec<FlowEvent>,
        probe: &mut P,
    ) {
        self.settle(now, probe);
        let Some(f) = self.flows.remove(&msg) else {
            debug_assert!(false, "finishing unknown flow {msg}");
            return;
        };
        for l in &f.path {
            let i = l.idx();
            self.active[i] -= 1;
            // credit the last settle's rounding tail so per-link byte
            // totals are exact
            self.bytes[i] += f.remaining;
            if P::ENABLED && f.remaining > 0.0 {
                probe.on_link_traffic(i, now, now, f.remaining);
            }
        }
        if !self.flows.is_empty() {
            self.reshare(now, out, probe);
        }
    }

    /// Whether `epoch` is still the live completion estimate of `msg`
    /// (false once resharing superseded it or the flow finished).
    pub fn is_current(&self, msg: usize, epoch: u64) -> bool {
        self.flows.get(&msg).is_some_and(|f| f.epoch == epoch)
    }

    /// Number of reshare passes performed (an engine cost metric).
    pub fn reshares(&self) -> u64 {
        self.reshares
    }

    /// Flows currently in flight.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// The links of the underlying graph (topology order).
    pub fn links(&self) -> &[Link] {
        self.graph.links()
    }

    /// Per-link usage statistics accumulated so far.
    pub fn usage(&self) -> Vec<LinkUsage> {
        self.graph
            .links()
            .iter()
            .enumerate()
            .map(|(i, l)| LinkUsage {
                label: l.label.clone(),
                capacity_bps: l.capacity,
                bytes: self.bytes[i],
                busy_secs: self.busy_secs[i],
                peak_flows: self.peak_flows[i],
            })
            .collect()
    }

    /// Advance all flows from `last` to `now` at their current rates.
    fn settle<P: ProbeSink>(&mut self, now: Time, probe: &mut P) {
        let dt = (now - self.last).as_secs();
        self.last = now;
        if dt <= 0.0 {
            return;
        }
        for (i, &a) in self.active.iter().enumerate() {
            if a > 0 {
                self.busy_secs[i] += dt;
            }
        }
        for f in self.flows.values_mut() {
            let mut avail = dt;
            if f.latency_left > 0.0 {
                let spent = f.latency_left.min(avail);
                f.latency_left -= spent;
                avail -= spent;
            }
            if avail <= 0.0 || f.remaining <= 0.0 {
                continue;
            }
            // infinite rate · dt would drain everything; the clamp also
            // keeps `remaining` non-negative under f64 rounding
            let drained = (f.rate * avail).min(f.remaining);
            f.remaining -= drained;
            for l in &f.path {
                self.bytes[l.idx()] += drained;
                if P::ENABLED && drained > 0.0 {
                    // the drain covered the last `avail` seconds of the
                    // settle interval (after injection latency elapsed)
                    probe.on_link_traffic(l.idx(), now - Time::secs(avail), now, drained);
                }
            }
        }
    }

    /// Recompute the max-min allocation and re-estimate completions.
    /// Flows whose rate is bitwise unchanged keep their scheduled event.
    fn reshare<P: ProbeSink>(&mut self, now: Time, out: &mut Vec<FlowEvent>, probe: &mut P) {
        self.reshares += 1;
        if P::ENABLED {
            probe.on_reshare(now, self.flows.len());
        }
        let rates = {
            let paths: Vec<&[LinkId]> = self.flows.values().map(|f| f.path.as_slice()).collect();
            max_min_rates(&paths, &self.caps)
        };
        for ((&msg, f), rate) in self.flows.iter_mut().zip(rates) {
            if f.epoch != 0 && rate.to_bits() == f.rate.to_bits() {
                continue;
            }
            f.rate = rate;
            // rate is either +inf (remaining/rate == 0) or > 0, so the
            // estimate is always finite; for an uncontended flow at its
            // start this is exactly `now + (latency + size/capacity)`,
            // the same float ops as the bus model's transfer_time
            let eta = now + Time::secs(f.latency_left + f.remaining / f.rate);
            f.epoch = self.next_epoch;
            self.next_epoch += 1;
            out.push(FlowEvent {
                msg,
                at: eta,
                epoch: f.epoch,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::topology::Topology;
    use crate::probe::NoopSink;

    fn net(nodes: usize, mbs: f64) -> FlowNet {
        FlowNet::new(LinkGraph::build(&Topology::Crossbar, nodes, mbs).unwrap())
    }

    #[test]
    fn lone_flow_completes_at_linear_model_time() {
        let mut out = Vec::new();
        let mut n = net(2, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            10e-6,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        );
        assert_eq!(out.len(), 1);
        let expect = Time::secs(10e-6 + 1_000_000.0 / 100e6);
        assert_eq!(out[0].at, expect, "must match latency + size/capacity");
        assert!(n.is_current(0, out[0].epoch));
        out.clear();
        n.finish(0, expect, &mut out, &mut NoopSink);
        assert!(out.is_empty());
        assert!(!n.is_current(0, 1));
        let usage = n.usage();
        let up = &usage[0];
        assert!((up.bytes - 1_000_000.0).abs() < 1e-6, "{}", up.bytes);
    }

    #[test]
    fn second_flow_on_same_link_halves_rates_and_bumps_epochs() {
        let mut out = Vec::new();
        // both flows leave node 0: they share its single up link
        let mut n = net(3, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        );
        let first = out[0];
        out.clear();
        n.start(
            1,
            0,
            2,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        );
        // both flows re-estimated at 50 MB/s
        assert_eq!(out.len(), 2);
        assert!(!n.is_current(0, first.epoch), "old estimate must be stale");
        for e in &out {
            assert_eq!(e.at, Time::secs(1_000_000.0 / 50e6));
        }
    }

    #[test]
    fn unchanged_rate_keeps_the_original_estimate() {
        let mut out = Vec::new();
        // disjoint node pairs: no shared links, no re-estimates
        let mut n = net(4, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            5e-6,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        );
        let first = out[0];
        out.clear();
        n.start(
            1,
            2,
            3,
            500_000.0,
            5e-6,
            Time::secs(0.001),
            &mut out,
            &mut NoopSink,
        );
        assert_eq!(out.len(), 1, "only the new flow gets an event");
        assert_eq!(out[0].msg, 1);
        assert!(n.is_current(0, first.epoch));
    }

    #[test]
    fn finishing_a_flow_speeds_up_the_survivor() {
        let mut out = Vec::new();
        let mut n = net(3, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        );
        n.start(1, 0, 2, 500_000.0, 0.0, Time::ZERO, &mut out, &mut NoopSink);
        out.clear();
        // flow 1 (500 kB at 50 MB/s) completes at 10 ms
        let t = Time::secs(0.01);
        n.finish(1, t, &mut out, &mut NoopSink);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg, 0);
        // flow 0 drained 500 kB in those 10 ms; the rest at full rate
        let expect = Time::secs(0.01 + 500_000.0 / 100e6);
        assert!(
            (out[0].at.as_secs() - expect.as_secs()).abs() < 1e-12,
            "{} vs {}",
            out[0].at,
            expect
        );
    }

    #[test]
    fn busy_seconds_and_peak_flows_accumulate() {
        let mut out = Vec::new();
        let mut n = net(3, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        );
        n.start(
            1,
            0,
            2,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        );
        n.finish(0, Time::secs(0.02), &mut out, &mut NoopSink);
        n.finish(1, Time::secs(0.02), &mut out, &mut NoopSink);
        let usage = n.usage();
        assert_eq!(usage[0].peak_flows, 2, "node 0 up link carried both");
        assert!((usage[0].busy_secs - 0.02).abs() < 1e-12);
        assert_eq!(usage[3 + 1].peak_flows, 1, "down link of node 1");
        assert!((usage[0].bytes - 2_000_000.0).abs() < 1e-3);
    }
}
