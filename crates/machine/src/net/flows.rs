//! Active-flow bookkeeping for the flow-level contention model.
//!
//! A [`FlowNet`] tracks every in-flight inter-node transfer as a flow
//! over its static route. Rates are piecewise constant: they only
//! change when a flow starts or finishes, so the net settles lazily —
//! at each change point it drains `rate · dt` bytes from every flow,
//! recomputes the max-min fair allocation, and re-estimates the
//! completion time of each flow whose rate changed.
//!
//! Completion events already sitting in the engine's queue cannot be
//! removed, so each re-estimate carries a fresh *epoch*: the engine
//! drops any `FlowDone` whose epoch is no longer the flow's current
//! one. A flow's estimate is deliberately left untouched while its rate
//! is bit-for-bit unchanged — this keeps an uncontended flow's arrival
//! time identical (to the last bit) to the legacy bus model's
//! `latency + size/bandwidth`, which the crossbar-equivalence tests
//! pin down.
//!
//! ## State layout
//!
//! Everything on the reshare path is allocation-free after warm-up:
//!
//! * flows live in dense reusable **slots** (`slots` + `free`), found
//!   from a message id through the direct-indexed `slot_of` table;
//! * the ids of active flows are kept sorted in `active_ids` (with the
//!   matching slots in `active_slots`), preserving the ascending-id
//!   iteration order the previous `BTreeMap` storage provided — the
//!   order every settle, solve, and event emission depends on;
//! * routes are interned per `(src, dst)` pair into a shared **path
//!   arena**, so each distinct pair is routed once per replay;
//! * per-link active-flow counts double as the membership test for
//!   `active_links`, the set of links currently carrying flows — the
//!   connected component(s) the incremental solver
//!   ([`max_min_rates_active`]) restricts every scan to.
//!
//! The from-scratch solver is retained as a debug oracle: debug builds
//! re-solve every reshare with [`max_min_rates`] and assert bitwise
//! agreement, and [`FlowNet::with_reference_solver`] switches a net to
//! the oracle outright so whole replays can be cross-validated.

use super::fairshare::{max_min_rates, max_min_rates_active, SolveScratch};
use super::fault::{FaultAction, Partition};
use super::topology::{Link, LinkGraph, LinkId};
use super::LinkUsage;
use crate::fx::FxBuildHasher;
use crate::probe::ProbeSink;
use crate::time::Time;
use std::collections::HashMap;
use std::sync::Arc;

/// A (re-)estimated completion the engine must schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEvent {
    /// Message index of the flow.
    pub msg: usize,
    /// Estimated completion time.
    pub at: Time,
    /// Epoch the estimate was issued under; stale epochs are ignored.
    pub epoch: u64,
}

/// What applying one fault event did (for probes and engine counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultOutcome {
    /// Active flows moved onto a new route by a kill.
    pub rerouted: u32,
    /// Whether the fault forced a reshare (it touched live traffic).
    pub reshared: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct FlowSlot {
    /// Path as an `(offset, len)` view into the route arena.
    off: u32,
    len: u32,
    /// Endpoint nodes, kept so a kill can reroute the flow mid-flight.
    src: u32,
    dst: u32,
    /// Startup latency still to elapse, seconds.
    latency_left: f64,
    /// Bytes still to drain.
    remaining: f64,
    /// Current max-min fair rate, bytes/s (`0.0` until first reshare).
    rate: f64,
    /// Epoch of the currently scheduled completion (0 = none yet).
    epoch: u64,
}

/// Flow-level network state for one replay.
#[derive(Debug)]
pub struct FlowNet {
    graph: Arc<LinkGraph>,
    caps: Vec<f64>,
    /// Dense flow storage; freed slots are recycled through `free`.
    slots: Vec<FlowSlot>,
    free: Vec<u32>,
    /// Message id -> slot + 1 (0 = not active), grown on demand.
    slot_of: Vec<u32>,
    /// Active message ids, ascending, with their slots alongside.
    active_ids: Vec<u32>,
    active_slots: Vec<u32>,
    /// Interned routes: `(src, dst) -> (offset, len)` into `arena`.
    route_cache: HashMap<(u32, u32), (u32, u32), FxBuildHasher>,
    arena: Vec<LinkId>,
    /// Links with at least one active flow (unordered); lazily
    /// compacted when a departure empties a link.
    active_links: Vec<u32>,
    links_dirty: bool,
    /// Links currently carrying two or more flows. While zero (and the
    /// graph is capacity-uniform) every flow trivially gets its
    /// bottleneck capacity and the solve is skipped entirely.
    shared_links: u32,
    /// The common link capacity if every link has the same finite one.
    uniform_cap: Option<f64>,
    scratch: SolveScratch,
    rates: Vec<f64>,
    /// Solve with the from-scratch oracle instead of the incremental
    /// active-set solver (validation mode; results are bit-identical).
    reference: bool,
    /// Time the net was last settled to.
    last: Time,
    next_epoch: u64,
    reshares: u64,
    /// Links removed by a fault (`kill`) and not yet restored. While
    /// `dead_count > 0`, routing goes through the dead-aware fallback
    /// and the route cache only holds routes valid for the current dead
    /// set (it is cleared on every kill and restore).
    dead: Vec<bool>,
    dead_count: u32,
    // fault statistics
    link_faults: Vec<u32>,
    faults_applied: u64,
    flows_rerouted: u64,
    reroute_reshares: u64,
    // per-link statistics
    bytes: Vec<f64>,
    busy_secs: Vec<f64>,
    active: Vec<u32>,
    peak_flows: Vec<u32>,
}

impl FlowNet {
    pub fn new(graph: LinkGraph) -> FlowNet {
        FlowNet::new_shared(Arc::new(graph))
    }

    /// Build on a shared compiled topology (see [`LinkGraph::cached`]).
    pub fn new_shared(graph: Arc<LinkGraph>) -> FlowNet {
        let n = graph.len();
        let caps: Vec<f64> = graph.links().iter().map(|l| l.capacity).collect();
        let uniform_cap = match caps.first() {
            Some(&c) if c.is_finite() && caps.iter().all(|x| x.to_bits() == c.to_bits()) => Some(c),
            _ => None,
        };
        FlowNet {
            caps,
            slots: Vec::new(),
            free: Vec::new(),
            slot_of: Vec::new(),
            active_ids: Vec::new(),
            active_slots: Vec::new(),
            route_cache: HashMap::default(),
            arena: Vec::new(),
            active_links: Vec::new(),
            links_dirty: false,
            shared_links: 0,
            uniform_cap,
            scratch: SolveScratch::new(n),
            rates: Vec::new(),
            reference: false,
            last: Time::ZERO,
            next_epoch: 1,
            reshares: 0,
            dead: vec![false; n],
            dead_count: 0,
            link_faults: vec![0; n],
            faults_applied: 0,
            flows_rerouted: 0,
            reroute_reshares: 0,
            bytes: vec![0.0; n],
            busy_secs: vec![0.0; n],
            active: vec![0; n],
            peak_flows: vec![0; n],
            graph,
        }
    }

    /// Switch this net to the from-scratch oracle solver. Replays are
    /// bit-identical either way; this exists so tests (and bisections)
    /// can cross-validate the incremental solver against the original.
    pub fn with_reference_solver(mut self) -> FlowNet {
        self.reference = true;
        self
    }

    /// Register a new flow granted at `now` and reshare. Emits a
    /// completion estimate for the new flow and for every existing flow
    /// whose rate changed. Errs when killed links leave no path from
    /// `src_node` to `dst_node`.
    #[allow(clippy::too_many_arguments)]
    pub fn start<P: ProbeSink>(
        &mut self,
        msg: usize,
        src_node: usize,
        dst_node: usize,
        bytes: f64,
        latency_s: f64,
        now: Time,
        out: &mut Vec<FlowEvent>,
        probe: &mut P,
    ) -> Result<(), Partition> {
        self.settle(now, probe);
        // drop stale zero-load entries BEFORE registering the new path:
        // a link this flow re-populates would otherwise be pushed a
        // second time, and a duplicate entry double-charges the link in
        // the solver's subtract pass. (Departure reshares tolerate the
        // stale entries — zero-load links are never read — but the
        // last-flow-finished path skips its reshare, so the set can
        // still be dirty here.)
        if self.links_dirty {
            let active = &self.active;
            self.active_links.retain(|&l| active[l as usize] > 0);
            self.links_dirty = false;
        }
        let (off, len) = self.route_ref(src_node, dst_node)?;
        if P::ENABLED {
            // uncontended ETA: alone on this route the flow would run at
            // the bottleneck capacity — same float ops as a lone-flow
            // reshare, so an uncontended transfer's estimate matches the
            // actual arrival bit for bit
            let min_cap = self.arena[off as usize..(off + len) as usize]
                .iter()
                .map(|l| self.caps[l.idx()])
                .fold(f64::INFINITY, f64::min);
            probe.on_flow_path(msg, now + Time::secs(latency_s + bytes / min_cap));
        }
        for k in off..off + len {
            let i = self.arena[k as usize].idx();
            if self.active[i] == 0 {
                self.active_links.push(i as u32);
            }
            self.active[i] += 1;
            if self.active[i] == 2 {
                self.shared_links += 1;
            }
            self.peak_flows[i] = self.peak_flows[i].max(self.active[i]);
        }
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(FlowSlot::default());
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = FlowSlot {
            off,
            len,
            src: src_node as u32,
            dst: dst_node as u32,
            latency_left: latency_s,
            remaining: bytes,
            rate: 0.0,
            epoch: 0,
        };
        if self.slot_of.len() <= msg {
            self.slot_of.resize(msg + 1, 0);
        }
        debug_assert!(self.slot_of[msg] == 0, "flow {msg} started twice");
        self.slot_of[msg] = slot + 1;
        let pos = self.active_ids.partition_point(|&m| m < msg as u32);
        self.active_ids.insert(pos, msg as u32);
        self.active_slots.insert(pos, slot);
        self.reshare(now, out, probe);
        Ok(())
    }

    /// Remove a completed flow at `now` and reshare the survivors.
    pub fn finish<P: ProbeSink>(
        &mut self,
        msg: usize,
        now: Time,
        out: &mut Vec<FlowEvent>,
        probe: &mut P,
    ) {
        self.settle(now, probe);
        let slot = match self.slot_of.get(msg) {
            Some(&s) if s != 0 => s - 1,
            _ => {
                debug_assert!(false, "finishing unknown flow {msg}");
                return;
            }
        };
        self.slot_of[msg] = 0;
        let f = self.slots[slot as usize];
        for l in &self.arena[f.off as usize..(f.off + f.len) as usize] {
            let i = l.idx();
            self.active[i] -= 1;
            if self.active[i] == 1 {
                self.shared_links -= 1;
            } else if self.active[i] == 0 {
                self.links_dirty = true;
            }
            // credit the last settle's rounding tail so per-link byte
            // totals are exact
            self.bytes[i] += f.remaining;
            if P::ENABLED && f.remaining > 0.0 {
                probe.on_link_traffic(i, now, now, f.remaining);
            }
        }
        let pos = self.active_ids.partition_point(|&m| m < msg as u32);
        debug_assert!(self.active_ids.get(pos) == Some(&(msg as u32)));
        self.active_ids.remove(pos);
        self.active_slots.remove(pos);
        self.free.push(slot);
        if !self.active_ids.is_empty() {
            self.reshare(now, out, probe);
        }
    }

    /// Apply one resolved fault event at `now`: mutate the selected
    /// links' capacity/liveness, reroute active flows off killed links,
    /// and reshare iff the fault can change any live rate — a fault
    /// touching only idle links leaves every flow's timing untouched,
    /// which keeps zero-traffic fault schedules bit-identical to the
    /// fault-free replay.
    ///
    /// Degrade factors always apply to the healthy capacity (they do
    /// not compound); restore resets both liveness and capacity.
    pub fn apply_fault<P: ProbeSink>(
        &mut self,
        action: &FaultAction,
        links: &[LinkId],
        now: Time,
        out: &mut Vec<FlowEvent>,
        probe: &mut P,
    ) -> Result<FaultOutcome, Partition> {
        self.settle(now, probe);
        self.faults_applied += 1;
        // decided before any mutation: a touched link with traffic means
        // rates can change (kill reroutes its flows away; degrade and
        // restore change the capacity under them)
        let mut needs_reshare = links.iter().any(|l| self.active[l.idx()] > 0);
        let mut rerouted_now = 0u32;
        match action {
            FaultAction::Degrade { factor } => {
                for l in links {
                    let i = l.idx();
                    self.link_faults[i] += 1;
                    self.caps[i] = self.graph.links()[i].capacity * factor;
                }
            }
            FaultAction::Restore => {
                for l in links {
                    let i = l.idx();
                    self.link_faults[i] += 1;
                    if self.dead[i] {
                        self.dead[i] = false;
                        self.dead_count -= 1;
                    }
                    self.caps[i] = self.graph.links()[i].capacity;
                }
                // routes may legitimately use the restored links again
                self.route_cache.clear();
            }
            FaultAction::Kill => {
                for l in links {
                    let i = l.idx();
                    self.link_faults[i] += 1;
                    if !self.dead[i] {
                        self.dead[i] = true;
                        self.dead_count += 1;
                    }
                }
                self.route_cache.clear();
                rerouted_now = self.reroute_dead_flows(probe)?;
                self.flows_rerouted += u64::from(rerouted_now);
                needs_reshare |= rerouted_now > 0;
            }
        }
        // the uniform-capacity fast path must only consider links flows
        // can still cross
        let mut alive = self
            .caps
            .iter()
            .zip(&self.dead)
            .filter(|&(_, &d)| !d)
            .map(|(&c, _)| c);
        self.uniform_cap = match alive.next() {
            Some(c) if c.is_finite() && alive.all(|x| x.to_bits() == c.to_bits()) => Some(c),
            _ => None,
        };
        if needs_reshare {
            self.reroute_reshares += 1;
            self.reshare(now, out, probe);
        }
        Ok(FaultOutcome {
            rerouted: rerouted_now,
            reshared: needs_reshare,
        })
    }

    /// Move every active flow whose path crosses a dead link onto an
    /// alive route (ascending message id, so the pass is deterministic).
    fn reroute_dead_flows<P: ProbeSink>(&mut self, probe: &mut P) -> Result<u32, Partition> {
        let mut rerouted = 0u32;
        for k in 0..self.active_ids.len() {
            let slot = self.active_slots[k] as usize;
            let f = self.slots[slot];
            let crosses_dead = self.arena[f.off as usize..(f.off + f.len) as usize]
                .iter()
                .any(|l| self.dead[l.idx()]);
            if !crosses_dead {
                continue;
            }
            // unregister the old path
            for idx in f.off..f.off + f.len {
                let i = self.arena[idx as usize].idx();
                self.active[i] -= 1;
                if self.active[i] == 1 {
                    self.shared_links -= 1;
                } else if self.active[i] == 0 {
                    self.links_dirty = true;
                }
            }
            // compact stale zero-load entries before re-registering so a
            // link this flow re-populates is not pushed twice
            if self.links_dirty {
                let active = &self.active;
                self.active_links.retain(|&l| active[l as usize] > 0);
                self.links_dirty = false;
            }
            let (off, len) = self.route_ref(f.src as usize, f.dst as usize)?;
            for idx in off..off + len {
                let i = self.arena[idx as usize].idx();
                if self.active[i] == 0 {
                    self.active_links.push(i as u32);
                }
                self.active[i] += 1;
                if self.active[i] == 2 {
                    self.shared_links += 1;
                }
                self.peak_flows[i] = self.peak_flows[i].max(self.active[i]);
            }
            let f = &mut self.slots[slot];
            f.off = off;
            f.len = len;
            if P::ENABLED {
                probe.on_flow_rerouted(self.active_ids[k] as usize);
            }
            rerouted += 1;
        }
        Ok(rerouted)
    }

    /// Whether `epoch` is still the live completion estimate of `msg`
    /// (false once resharing superseded it or the flow finished).
    pub fn is_current(&self, msg: usize, epoch: u64) -> bool {
        match self.slot_of.get(msg) {
            Some(&s) if s != 0 => self.slots[(s - 1) as usize].epoch == epoch,
            _ => false,
        }
    }

    /// Number of reshare passes performed (an engine cost metric).
    pub fn reshares(&self) -> u64 {
        self.reshares
    }

    /// Fault events applied so far.
    pub fn faults_applied(&self) -> u64 {
        self.faults_applied
    }

    /// Active flows moved onto a new route by kills so far.
    pub fn flows_rerouted(&self) -> u64 {
        self.flows_rerouted
    }

    /// Reshare passes forced by fault events (subset of `reshares`).
    pub fn reroute_reshares(&self) -> u64 {
        self.reroute_reshares
    }

    /// Flows currently in flight.
    pub fn active_flows(&self) -> usize {
        self.active_ids.len()
    }

    /// The links of the underlying graph (topology order).
    pub fn links(&self) -> &[Link] {
        self.graph.links()
    }

    /// Per-link usage statistics accumulated so far.
    pub fn usage(&self) -> Vec<LinkUsage> {
        self.graph
            .links()
            .iter()
            .enumerate()
            .map(|(i, l)| LinkUsage {
                label: l.label.clone(),
                capacity_bps: l.capacity,
                bytes: self.bytes[i],
                busy_secs: self.busy_secs[i],
                peak_flows: self.peak_flows[i],
                faults: self.link_faults[i],
            })
            .collect()
    }

    /// Current `(msg, rate)` pairs in ascending message order. For the
    /// property suite that cross-checks the incremental solver against
    /// the from-scratch oracle; not a stable API.
    #[doc(hidden)]
    pub fn debug_rates(&self) -> Vec<(usize, f64)> {
        self.active_ids
            .iter()
            .zip(&self.active_slots)
            .map(|(&m, &s)| (m as usize, self.slots[s as usize].rate))
            .collect()
    }

    /// Intern the `src -> dst` route and return its arena view. With
    /// dead links in play the route avoids them (the cache is cleared
    /// on every kill/restore, so cached routes always match the current
    /// dead set); a disconnected pair errs instead of routing.
    fn route_ref(&mut self, src_node: usize, dst_node: usize) -> Result<(u32, u32), Partition> {
        let key = (src_node as u32, dst_node as u32);
        if let Some(&r) = self.route_cache.get(&key) {
            return Ok(r);
        }
        let off = self.arena.len() as u32;
        if self.dead_count == 0 {
            self.graph.route_into(src_node, dst_node, &mut self.arena);
        } else if let Err(link) =
            self.graph
                .route_avoiding(src_node, dst_node, &self.dead, &mut self.arena)
        {
            // drop any partial hops the torus fallback appended
            self.arena.truncate(off as usize);
            return Err(Partition {
                src: src_node,
                dst: dst_node,
                link: self.graph.links()[link.idx()].label.clone(),
            });
        }
        let len = self.arena.len() as u32 - off;
        self.route_cache.insert(key, (off, len));
        Ok((off, len))
    }

    /// Advance all flows from `last` to `now` at their current rates.
    fn settle<P: ProbeSink>(&mut self, now: Time, probe: &mut P) {
        let dt = (now - self.last).as_secs();
        self.last = now;
        if dt <= 0.0 {
            return;
        }
        // only links carrying flows accrue busy time; scan the active
        // set, not the whole graph (stale zero-load entries awaiting
        // compaction fail the a > 0 check, and each link's sum is
        // independent, so the restriction is exact)
        for &l in &self.active_links {
            let i = l as usize;
            if self.active[i] > 0 {
                self.busy_secs[i] += dt;
            }
        }
        let (slots, arena, bytes) = (&mut self.slots, &self.arena, &mut self.bytes);
        for &slot in &self.active_slots {
            let f = &mut slots[slot as usize];
            let mut avail = dt;
            if f.latency_left > 0.0 {
                let spent = f.latency_left.min(avail);
                f.latency_left -= spent;
                avail -= spent;
            }
            if avail <= 0.0 || f.remaining <= 0.0 {
                continue;
            }
            // infinite rate · dt would drain everything; the clamp also
            // keeps `remaining` non-negative under f64 rounding
            let drained = (f.rate * avail).min(f.remaining);
            f.remaining -= drained;
            for l in &arena[f.off as usize..(f.off + f.len) as usize] {
                bytes[l.idx()] += drained;
                if P::ENABLED && drained > 0.0 {
                    // the drain covered the last `avail` seconds of the
                    // settle interval (after injection latency elapsed)
                    probe.on_link_traffic(l.idx(), now - Time::secs(avail), now, drained);
                }
            }
        }
    }

    /// Recompute the max-min allocation and re-estimate completions.
    /// Flows whose rate is bitwise unchanged keep their scheduled event.
    fn reshare<P: ProbeSink>(&mut self, now: Time, out: &mut Vec<FlowEvent>, probe: &mut P) {
        self.reshares += 1;
        if P::ENABLED {
            probe.on_reshare(now, self.active_ids.len());
        }
        let fast = !self.reference && self.shared_links == 0 && self.uniform_cap.is_some();
        // the general solver wants the active set compacted; the fast
        // path never reads it (stale entries stay until the next
        // arrival or general solve compacts them)
        if self.links_dirty && !fast {
            let active = &self.active;
            self.active_links.retain(|&l| active[l as usize] > 0);
            self.links_dirty = false;
        }
        let n = self.active_ids.len();
        {
            let (slots, arena, active_slots) = (&self.slots, &self.arena, &self.active_slots);
            let path_of = |k: usize| -> &[LinkId] {
                let f = &slots[active_slots[k] as usize];
                &arena[f.off as usize..(f.off + f.len) as usize]
            };
            if self.reference {
                let paths: Vec<&[LinkId]> = (0..n).map(path_of).collect();
                self.rates = max_min_rates(&paths, &self.caps);
            } else {
                if fast {
                    // no link carries two flows and every capacity is
                    // the same finite `c`: the water-fill's first round
                    // raises the level by min(residual/load) = c/1 and
                    // saturates every loaded link at once, freezing all
                    // flows at exactly `0.0 + c == c`. Assigning `c`
                    // directly is the identical result without the solve
                    let c = self.uniform_cap.unwrap();
                    self.rates.clear();
                    self.rates.extend((0..n).map(|k| {
                        if slots[active_slots[k] as usize].len == 0 {
                            f64::INFINITY
                        } else {
                            c
                        }
                    }));
                } else {
                    max_min_rates_active(
                        n,
                        path_of,
                        &self.caps,
                        &self.active_links,
                        &mut self.scratch,
                        &mut self.rates,
                    );
                }
                #[cfg(debug_assertions)]
                {
                    // debug oracle: the incremental solve must agree
                    // with the from-scratch one to the last bit
                    let paths: Vec<&[LinkId]> = (0..n).map(path_of).collect();
                    let oracle = max_min_rates(&paths, &self.caps);
                    for (k, (a, b)) in oracle.iter().zip(&self.rates).enumerate() {
                        debug_assert!(
                            a.to_bits() == b.to_bits(),
                            "solver divergence on flow {}: oracle {a} vs incremental {b}",
                            self.active_ids[k]
                        );
                    }
                }
            }
        }
        for k in 0..n {
            let rate = self.rates[k];
            let f = &mut self.slots[self.active_slots[k] as usize];
            if f.epoch != 0 && rate.to_bits() == f.rate.to_bits() {
                continue;
            }
            f.rate = rate;
            // rate is either +inf (remaining/rate == 0) or > 0, so the
            // estimate is always finite; for an uncontended flow at its
            // start this is exactly `now + (latency + size/capacity)`,
            // the same float ops as the bus model's transfer_time
            let eta = now + Time::secs(f.latency_left + f.remaining / f.rate);
            f.epoch = self.next_epoch;
            self.next_epoch += 1;
            out.push(FlowEvent {
                msg: self.active_ids[k] as usize,
                at: eta,
                epoch: f.epoch,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::topology::Topology;
    use crate::probe::NoopSink;

    fn net(nodes: usize, mbs: f64) -> FlowNet {
        FlowNet::new(LinkGraph::build(&Topology::Crossbar, nodes, mbs).unwrap())
    }

    #[test]
    fn lone_flow_completes_at_linear_model_time() {
        let mut out = Vec::new();
        let mut n = net(2, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            10e-6,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let expect = Time::secs(10e-6 + 1_000_000.0 / 100e6);
        assert_eq!(out[0].at, expect, "must match latency + size/capacity");
        assert!(n.is_current(0, out[0].epoch));
        out.clear();
        n.finish(0, expect, &mut out, &mut NoopSink);
        assert!(out.is_empty());
        assert!(!n.is_current(0, 1));
        let usage = n.usage();
        let up = &usage[0];
        assert!((up.bytes - 1_000_000.0).abs() < 1e-6, "{}", up.bytes);
    }

    #[test]
    fn second_flow_on_same_link_halves_rates_and_bumps_epochs() {
        let mut out = Vec::new();
        // both flows leave node 0: they share its single up link
        let mut n = net(3, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        let first = out[0];
        out.clear();
        n.start(
            1,
            0,
            2,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        // both flows re-estimated at 50 MB/s
        assert_eq!(out.len(), 2);
        assert!(!n.is_current(0, first.epoch), "old estimate must be stale");
        for e in &out {
            assert_eq!(e.at, Time::secs(1_000_000.0 / 50e6));
        }
    }

    #[test]
    fn unchanged_rate_keeps_the_original_estimate() {
        let mut out = Vec::new();
        // disjoint node pairs: no shared links, no re-estimates
        let mut n = net(4, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            5e-6,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        let first = out[0];
        out.clear();
        n.start(
            1,
            2,
            3,
            500_000.0,
            5e-6,
            Time::secs(0.001),
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        assert_eq!(out.len(), 1, "only the new flow gets an event");
        assert_eq!(out[0].msg, 1);
        assert!(n.is_current(0, first.epoch));
    }

    #[test]
    fn finishing_a_flow_speeds_up_the_survivor() {
        let mut out = Vec::new();
        let mut n = net(3, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        n.start(1, 0, 2, 500_000.0, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        out.clear();
        // flow 1 (500 kB at 50 MB/s) completes at 10 ms
        let t = Time::secs(0.01);
        n.finish(1, t, &mut out, &mut NoopSink);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].msg, 0);
        // flow 0 drained 500 kB in those 10 ms; the rest at full rate
        let expect = Time::secs(0.01 + 500_000.0 / 100e6);
        assert!(
            (out[0].at.as_secs() - expect.as_secs()).abs() < 1e-12,
            "{} vs {}",
            out[0].at,
            expect
        );
    }

    #[test]
    fn busy_seconds_and_peak_flows_accumulate() {
        let mut out = Vec::new();
        let mut n = net(3, 100.0);
        n.start(
            0,
            0,
            1,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        n.start(
            1,
            0,
            2,
            1_000_000.0,
            0.0,
            Time::ZERO,
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        n.finish(0, Time::secs(0.02), &mut out, &mut NoopSink);
        n.finish(1, Time::secs(0.02), &mut out, &mut NoopSink);
        let usage = n.usage();
        assert_eq!(usage[0].peak_flows, 2, "node 0 up link carried both");
        assert!((usage[0].busy_secs - 0.02).abs() < 1e-12);
        assert_eq!(usage[3 + 1].peak_flows, 1, "down link of node 1");
        assert!((usage[0].bytes - 2_000_000.0).abs() < 1e-3);
    }

    #[test]
    fn slots_are_recycled_and_out_of_order_ids_stay_sorted() {
        let mut out = Vec::new();
        let mut n = net(6, 100.0);
        // start 3, finish the middle one, then start a *lower* id than
        // the current maximum (as rendezvous grants can) and a higher one
        n.start(5, 0, 1, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        n.start(7, 2, 3, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        n.start(9, 4, 5, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        n.finish(7, Time::secs(0.001), &mut out, &mut NoopSink);
        n.start(
            6,
            2,
            3,
            1e6,
            0.0,
            Time::secs(0.001),
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        n.start(
            11,
            1,
            0,
            1e6,
            0.0,
            Time::secs(0.001),
            &mut out,
            &mut NoopSink,
        )
        .unwrap();
        let ids: Vec<usize> = n.debug_rates().iter().map(|&(m, _)| m).collect();
        assert_eq!(ids, vec![5, 6, 9, 11], "ascending id order maintained");
        assert_eq!(n.active_flows(), 4);
        assert!(n.slots.len() <= 4, "freed slot must be reused");
        // every flow is alone on its links: full capacity each
        for (_, r) in n.debug_rates() {
            assert_eq!(r, 100e6);
        }
    }

    #[test]
    fn repopulating_an_emptied_link_does_not_double_charge_it() {
        let mut out = Vec::new();
        let mut n = net(3, 100.0);
        // drain the net to empty: the last finish skips its reshare, so
        // node 0's up link lingers in the active set with zero load
        n.start(0, 0, 1, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        n.finish(0, Time::secs(0.02), &mut out, &mut NoopSink);
        // re-populate that same link with two flows; a duplicate active
        // entry would double-charge it and halve both rates
        let t = Time::secs(0.03);
        n.start(1, 0, 1, 1e6, 0.0, t, &mut out, &mut NoopSink)
            .unwrap();
        n.start(2, 0, 2, 1e6, 0.0, t, &mut out, &mut NoopSink)
            .unwrap();
        for (msg, r) in n.debug_rates() {
            assert_eq!(r, 50e6, "flow {msg} must get half the shared link");
        }
    }

    #[test]
    fn kill_reroutes_a_mid_flight_fat_tree_flow() {
        let g = LinkGraph::build(
            &Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            },
            16,
            100.0,
        )
        .unwrap();
        let route = g.route(0, 4);
        let fabric = route[1]; // first fabric hop (e0 -> an agg)
        let mut n = FlowNet::new(g);
        let mut out = Vec::new();
        // cross-pod flow occupying the default ECMP path
        n.start(0, 0, 4, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        assert_eq!(n.usage()[fabric.idx()].peak_flows, 1);
        out.clear();
        let outcome = n
            .apply_fault(
                &FaultAction::Kill,
                &[fabric],
                Time::secs(1e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap();
        assert_eq!(outcome.rerouted, 1, "the flow must move off the dead link");
        assert!(outcome.reshared);
        assert_eq!(n.flows_rerouted(), 1);
        // the survivor still drains at full rate on its alternate path,
        // so no re-estimate is due (rate unchanged => old ETA stands)
        for (_, r) in n.debug_rates() {
            assert_eq!(r, 100e6);
        }
        assert!(out.is_empty());
        // killing the host up-link leaves no alternate: partition
        let host = FlowNet::new(
            LinkGraph::build(
                &Topology::FatTree {
                    radix: 4,
                    oversubscription: 1,
                },
                16,
                100.0,
            )
            .unwrap(),
        );
        let mut host = host;
        host.start(0, 0, 4, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        let up = host.graph.route(0, 4)[0];
        let err = host
            .apply_fault(
                &FaultAction::Kill,
                &[up],
                Time::secs(1e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap_err();
        assert_eq!((err.src, err.dst), (0, 4));
        assert_eq!(&*err.link, "h0->e0");
    }

    #[test]
    fn degrade_then_restore_recovers_full_rate() {
        let mut out = Vec::new();
        let mut n = net(2, 100.0);
        n.start(0, 0, 1, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        let up = LinkId(0);
        let o = n
            .apply_fault(
                &FaultAction::Degrade { factor: 0.25 },
                &[up],
                Time::secs(1e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap();
        assert!(o.reshared, "active link: degrade must reshare");
        assert_eq!(n.debug_rates()[0].1, 25e6);
        // degrading again applies to the HEALTHY capacity, not compounding
        let o2 = n
            .apply_fault(
                &FaultAction::Degrade { factor: 0.5 },
                &[up],
                Time::secs(2e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap();
        assert!(o2.reshared);
        assert_eq!(n.debug_rates()[0].1, 50e6);
        let o3 = n
            .apply_fault(
                &FaultAction::Restore,
                &[up],
                Time::secs(3e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap();
        assert!(o3.reshared);
        assert_eq!(n.debug_rates()[0].1, 100e6);
        assert_eq!(n.faults_applied(), 3);
        assert_eq!(n.usage()[0].faults, 3);
    }

    #[test]
    fn fault_on_idle_link_does_not_reshare() {
        let mut out = Vec::new();
        let mut n = net(3, 100.0);
        n.start(0, 0, 1, 1e6, 0.0, Time::ZERO, &mut out, &mut NoopSink)
            .unwrap();
        let reshares_before = n.reshares();
        // node 2's links carry nothing: fault must not touch flow state
        let idle = LinkId(2);
        let o = n
            .apply_fault(
                &FaultAction::Kill,
                &[idle],
                Time::secs(1e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap();
        assert!(!o.reshared);
        assert_eq!(o.rerouted, 0);
        assert_eq!(n.reshares(), reshares_before);
        assert_eq!(n.debug_rates()[0].1, 100e6);
    }

    #[test]
    fn reference_solver_replays_identically() {
        let run = |reference: bool| {
            let g = LinkGraph::build(&Topology::Crossbar, 3, 100.0).unwrap();
            let mut n = if reference {
                FlowNet::new(g).with_reference_solver()
            } else {
                FlowNet::new(g)
            };
            let mut out = Vec::new();
            n.start(0, 0, 1, 1e6, 1e-5, Time::ZERO, &mut out, &mut NoopSink)
                .unwrap();
            n.start(
                1,
                0,
                2,
                2e6,
                1e-5,
                Time::secs(1e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap();
            n.start(
                2,
                1,
                2,
                5e5,
                1e-5,
                Time::secs(2e-3),
                &mut out,
                &mut NoopSink,
            )
            .unwrap();
            n.finish(0, Time::secs(3e-2), &mut out, &mut NoopSink);
            out.iter()
                .map(|e| (e.msg, e.at, e.epoch))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }
}
