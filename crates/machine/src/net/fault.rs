//! Deterministic link-fault schedules.
//!
//! A [`FaultSchedule`] is a list of `(time, action, selector)` triples
//! applied to the flow-level fabric as first-class replay events:
//! degrade a link's capacity by a factor, kill it outright, or restore
//! it to full health. Schedules are part of the
//! [`Platform`](crate::Platform), so a replay stays a pure function of
//! `(trace, platform)` — the same schedule produces bit-identical
//! results on every run and for any sweep worker count.
//!
//! The text grammar (used by `ovlp --faults` and the sweep
//! fingerprints) is one event per `<action>@<time>:<selector>`, events
//! joined by `;`:
//!
//! ```text
//! kill@2ms:e0->a0                 kill a single link by label
//! degrade=0.25@500us:uplink:*     degrade every upward link to 25%
//! restore@4ms:e0->a0              bring a link back to full health
//! kill@1ms:dim:1                  kill every dimension-1 torus link
//! kill@1ms:link:3                 address a link by its LinkId
//! ```
//!
//! Times are absolute sim times in seconds; `us`/`ms`/`s` suffixes are
//! accepted. Selectors resolve against the compiled
//! [`LinkGraph`](super::topology::LinkGraph) when the replay starts, so
//! a schedule referencing links the topology does not have fails with a
//! clean error instead of silently doing nothing.

use super::topology::{LinkGraph, LinkId};
use crate::time::Time;
use std::fmt;
use std::sync::Arc;

/// What a fault event does to its selected links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Multiply the link capacity by `factor` (in `(0, 1]`).
    Degrade { factor: f64 },
    /// Remove the link: active flows crossing it are rerouted (or the
    /// replay fails with `SimError::Partitioned` when no alternative
    /// path exists) and new flows avoid it until restored.
    Kill,
    /// Undo any kill or degrade: full capacity, routable again.
    Restore,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::Degrade { factor } => write!(f, "degrade={factor}"),
            FaultAction::Kill => write!(f, "kill"),
            FaultAction::Restore => write!(f, "restore"),
        }
    }
}

/// Which links a fault event addresses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LinkSelector {
    /// One link by its exact label, e.g. `h3->e1` or `n0->n1(+x)`.
    Label(String),
    /// One link by its [`LinkId`] index (`link:<id>`).
    Index(u32),
    /// Every upward link (`uplink:*`): host→switch on the crossbar;
    /// host-up, edge→agg and agg→core on the fat-tree.
    Uplinks,
    /// Every torus link along dimension `d` (`dim:<d>`).
    Dim(u32),
}

impl fmt::Display for LinkSelector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkSelector::Label(l) => write!(f, "{l}"),
            LinkSelector::Index(i) => write!(f, "link:{i}"),
            LinkSelector::Uplinks => write!(f, "uplink:*"),
            LinkSelector::Dim(d) => write!(f, "dim:{d}"),
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Absolute sim time, seconds (must be finite and > 0).
    pub at_s: f64,
    pub action: FaultAction,
    pub selector: LinkSelector,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}s:{}", self.action, self.at_s, self.selector)
    }
}

/// A deterministic, replay-stable fault schedule (possibly empty).
///
/// The `Display` form is canonical — two schedules render identically
/// iff they are equal — which is what the sweep fingerprints hash.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSchedule {
    pub events: Vec<FaultEvent>,
}

impl fmt::Display for FaultSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{ev}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for FaultSchedule {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSchedule, String> {
        FaultSchedule::parse(s)
    }
}

impl FaultSchedule {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parse a `;`-joined fault spec. The empty string (or `none`) is
    /// the empty schedule. The parsed schedule is validated, so
    /// malformed specs (unknown action or selector, time ≤ 0, degrade
    /// factor outside `(0, 1]`, restore before any kill/degrade) fail
    /// here with a clean message.
    pub fn parse(spec: &str) -> Result<FaultSchedule, String> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(FaultSchedule::default());
        }
        let events = spec
            .split(';')
            .map(|ev| parse_event(ev.trim()))
            .collect::<Result<Vec<FaultEvent>, String>>()?;
        let schedule = FaultSchedule { events };
        schedule.validate()?;
        Ok(schedule)
    }

    /// Check event times, degrade factors, and restore ordering.
    /// Construction via [`parse`](Self::parse) already validates; this
    /// re-runs on hand-built schedules from `Platform::check`.
    pub fn validate(&self) -> Result<(), String> {
        for ev in &self.events {
            if !ev.at_s.is_finite() || ev.at_s <= 0.0 {
                return Err(format!(
                    "fault time must be a finite value > 0, got `{}` in `{ev}`",
                    ev.at_s
                ));
            }
            if let FaultAction::Degrade { factor } = ev.action {
                if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                    return Err(format!(
                        "degrade factor must be in (0, 1], got `{factor}` in `{ev}`"
                    ));
                }
            }
        }
        // a restore must follow a kill or degrade of the same selector;
        // ordering is by time, insertion order breaking ties (exactly
        // how the engine's event queue applies them)
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| {
            self.events[a]
                .at_s
                .total_cmp(&self.events[b].at_s)
                .then(a.cmp(&b))
        });
        let mut touched: Vec<&LinkSelector> = Vec::new();
        for &i in &order {
            let ev = &self.events[i];
            match ev.action {
                FaultAction::Restore => {
                    if !touched.contains(&&ev.selector) {
                        return Err(format!(
                            "restore of `{}` at {}s has no earlier kill or degrade \
                             of the same selector",
                            ev.selector, ev.at_s
                        ));
                    }
                }
                FaultAction::Kill | FaultAction::Degrade { .. } => touched.push(&ev.selector),
            }
        }
        Ok(())
    }

    /// Resolve every selector against a compiled graph, producing the
    /// concrete per-event link sets the engine schedules. Fails when a
    /// selector addresses links the topology does not have.
    pub fn resolve(&self, graph: &LinkGraph) -> Result<Vec<ResolvedFault>, String> {
        self.events
            .iter()
            .map(|ev| {
                let links = graph.select(&ev.selector)?;
                Ok(ResolvedFault {
                    at: Time::secs(ev.at_s),
                    action: ev.action,
                    links,
                    desc: ev.to_string(),
                })
            })
            .collect()
    }
}

fn parse_event(s: &str) -> Result<FaultEvent, String> {
    let (action_s, rest) = s.split_once('@').ok_or_else(|| {
        format!("bad fault event `{s}` (expected <action>@<time>:<selector>, e.g. kill@2ms:e0->a0)")
    })?;
    let (time_s, sel_s) = rest
        .split_once(':')
        .ok_or_else(|| format!("bad fault event `{s}` (missing `:<selector>` after the time)"))?;
    Ok(FaultEvent {
        at_s: parse_time(time_s.trim())?,
        action: parse_action(action_s.trim())?,
        selector: parse_selector(sel_s.trim())?,
    })
}

fn parse_action(s: &str) -> Result<FaultAction, String> {
    match s {
        "kill" => Ok(FaultAction::Kill),
        "restore" => Ok(FaultAction::Restore),
        _ => {
            if let Some(fs) = s.strip_prefix("degrade=") {
                let factor: f64 = fs
                    .parse()
                    .map_err(|_| format!("bad degrade factor `{fs}`"))?;
                Ok(FaultAction::Degrade { factor })
            } else {
                Err(format!(
                    "unknown fault action `{s}` (expected kill | restore | degrade=<factor>)"
                ))
            }
        }
    }
}

fn parse_time(s: &str) -> Result<f64, String> {
    // divide by the scale instead of multiplying by its reciprocal:
    // 50/1e6 rounds to a double that Displays as `0.00005`, while
    // 50*1e-6 lands one ulp off and Displays as 0.0000499..96
    let (num, scale) = if let Some(n) = s.strip_suffix("us") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1.0)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad fault time `{s}` (expected seconds, or a us/ms/s suffix)"))?;
    let at = v / scale;
    if !at.is_finite() || at <= 0.0 {
        return Err(format!("fault time must be > 0, got `{s}`"));
    }
    Ok(at)
}

fn parse_selector(s: &str) -> Result<LinkSelector, String> {
    if s.is_empty() {
        return Err("empty link selector".to_string());
    }
    if s == "uplink:*" || s == "uplinks" {
        return Ok(LinkSelector::Uplinks);
    }
    if let Some(d) = s.strip_prefix("dim:") {
        let dim: u32 = d
            .parse()
            .map_err(|_| format!("bad torus dimension `{d}` in selector `{s}`"))?;
        return Ok(LinkSelector::Dim(dim));
    }
    if let Some(i) = s.strip_prefix("link:") {
        let idx: u32 = i
            .parse()
            .map_err(|_| format!("bad link index `{i}` in selector `{s}`"))?;
        return Ok(LinkSelector::Index(idx));
    }
    // remaining selectors are exact link labels; labels never contain
    // `:`, so anything else colon-shaped is a typo, not a label
    if s.contains(':') {
        return Err(format!(
            "unknown selector `{s}` (expected a link label | link:<id> | uplink:* | dim:<d>)"
        ));
    }
    Ok(LinkSelector::Label(s.to_string()))
}

/// A schedule entry resolved against a compiled graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedFault {
    pub at: Time,
    pub action: FaultAction,
    pub links: Vec<LinkId>,
    /// The originating event's canonical text, for reports and markers.
    pub desc: String,
}

/// One fault the engine actually applied, kept on
/// [`SimResult`](crate::SimResult) for reports and Gantt rulers.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedFault {
    pub at: Time,
    /// Canonical event text plus the resolved link count.
    pub desc: String,
}

/// A killed link disconnected a node pair and no alternative path
/// exists; the engine maps this to `SimError::Partitioned`.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    pub src: usize,
    pub dst: usize,
    pub link: Arc<str>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::topology::Topology;

    #[test]
    fn parse_roundtrips_through_display() {
        for spec in [
            "kill@0.002s:e0->a0",
            "degrade=0.25@0.0005s:uplink:*",
            "kill@0.001s:dim:1;restore@0.002s:dim:1",
            "kill@0.001s:link:3;degrade=0.5@0.002s:n0->sw",
        ] {
            let s = FaultSchedule::parse(spec).unwrap();
            assert_eq!(s.to_string(), spec, "canonical display");
            assert_eq!(FaultSchedule::parse(&s.to_string()).unwrap(), s);
        }
    }

    #[test]
    fn time_suffixes_scale() {
        let s = FaultSchedule::parse("kill@2ms:e0->a0;restore@500us:e0->a0;kill@1s:e1->a1")
            .unwrap_err();
        // restore at 500us precedes the kill at 2ms: ordering is by time
        assert!(s.contains("no earlier kill"), "{s}");
        let s = FaultSchedule::parse("kill@2ms:x;restore@4ms:x").unwrap();
        assert_eq!(s.events[0].at_s, 2e-3);
        assert_eq!(s.events[1].at_s, 4e-3);
    }

    #[test]
    fn empty_and_none_are_the_empty_schedule() {
        assert!(FaultSchedule::parse("").unwrap().is_empty());
        assert!(FaultSchedule::parse("  none ").unwrap().is_empty());
        assert_eq!(FaultSchedule::default().to_string(), "");
    }

    #[test]
    fn malformed_specs_fail_cleanly() {
        for (spec, needle) in [
            ("boom@1ms:e0->a0", "unknown fault action"),
            ("kill@0:e0->a0", "fault time must be > 0"),
            ("kill@-1ms:e0->a0", "fault time must be > 0"),
            ("kill@xyz:e0->a0", "bad fault time"),
            ("degrade=0@1ms:e0->a0", "degrade factor must be in (0, 1]"),
            ("degrade=1.5@1ms:e0->a0", "degrade factor must be in (0, 1]"),
            ("degrade=abc@1ms:e0->a0", "bad degrade factor"),
            ("restore@1ms:e0->a0", "no earlier kill or degrade"),
            ("kill@1ms", "missing `:<selector>`"),
            ("kill:e0->a0", "expected <action>@<time>:<selector>"),
            ("kill@1ms:uplnk:*", "unknown selector"),
            ("kill@1ms:dim:x", "bad torus dimension"),
            ("kill@1ms:link:x", "bad link index"),
        ] {
            let err = FaultSchedule::parse(spec).unwrap_err();
            assert!(err.contains(needle), "`{spec}`: {err}");
        }
    }

    #[test]
    fn restore_ordering_uses_time_not_text_order() {
        // textually the restore comes first, but it fires after the kill
        let s = FaultSchedule::parse("restore@2ms:x;kill@1ms:x").unwrap();
        assert_eq!(s.events.len(), 2);
    }

    #[test]
    fn resolve_maps_selectors_to_link_sets() {
        let g = LinkGraph::build(&Topology::Crossbar, 4, 100.0).unwrap();
        let s = FaultSchedule::parse("kill@1ms:n1->sw;degrade=0.5@2ms:uplink:*;kill@3ms:link:5")
            .unwrap();
        let r = s.resolve(&g).unwrap();
        assert_eq!(r[0].links, vec![LinkId(1)]);
        assert_eq!(r[1].links, (0..4).map(LinkId).collect::<Vec<_>>());
        assert_eq!(r[2].links, vec![LinkId(5)]);
        assert_eq!(r[0].at, Time::secs(1e-3));

        let err = FaultSchedule::parse("kill@1ms:h9->e9")
            .unwrap()
            .resolve(&g)
            .unwrap_err();
        assert!(err.contains("no link labelled"), "{err}");
        let err = FaultSchedule::parse("kill@1ms:dim:0")
            .unwrap()
            .resolve(&g)
            .unwrap_err();
        assert!(err.contains("only torus topologies"), "{err}");
    }

    #[test]
    fn resolve_dims_and_uplinks_on_explicit_fabrics() {
        let torus = LinkGraph::build(&Topology::Torus { dims: vec![2, 2] }, 4, 100.0).unwrap();
        let s = FaultSchedule::parse("degrade=0.5@1ms:dim:1").unwrap();
        let r = s.resolve(&torus).unwrap();
        assert_eq!(r[0].links.len(), 8, "4 nodes x 2 directions in dim 1");
        assert!(FaultSchedule::parse("kill@1ms:dim:2")
            .unwrap()
            .resolve(&torus)
            .is_err());
        assert!(FaultSchedule::parse("kill@1ms:uplink:*")
            .unwrap()
            .resolve(&torus)
            .is_err());

        let ft = LinkGraph::build(
            &Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            },
            16,
            100.0,
        )
        .unwrap();
        let r = FaultSchedule::parse("kill@1ms:uplink:*")
            .unwrap()
            .resolve(&ft)
            .unwrap();
        // host-up + edge->agg + agg->core = 3 blocks of 16 links
        assert_eq!(r[0].links.len(), 48);
    }
}
