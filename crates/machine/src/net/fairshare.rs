//! Progressive-filling max-min fair bandwidth allocation.
//!
//! Given the set of active flows (each a list of links it crosses) and
//! the per-link capacities, water-fill: raise every unfrozen flow's rate
//! uniformly until some link saturates, freeze the flows crossing that
//! link at their current rate, subtract their share from the remaining
//! links, repeat. The result is the unique max-min fair allocation; it
//! is computed from scratch on every reshare, which is O(links × flows)
//! per bottleneck round — plenty for the flow counts a trace replay
//! produces, and (unlike incremental updates) trivially deterministic.

use super::topology::LinkId;

/// Max-min fair rates (bytes/s) for `flows`, where `flows[i]` is the
/// link path of flow `i` and `caps[l]` the capacity of link `l`.
///
/// * A flow with an empty path (e.g. intra-node in a degenerate layout)
///   gets `f64::INFINITY`.
/// * Infinite-capacity links never bottleneck; if every link a flow
///   crosses is infinite, the flow gets `f64::INFINITY`.
/// * Every returned rate is `> 0` (capacities are validated positive at
///   graph build time), so completion times stay finite.
pub fn max_min_rates(flows: &[&[LinkId]], caps: &[f64]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![f64::INFINITY; n];
    if n == 0 {
        return rates;
    }
    // residual capacity and number of unfrozen flows per link
    let mut residual = caps.to_vec();
    let mut load = vec![0u32; caps.len()];
    let mut unfrozen: Vec<usize> = Vec::with_capacity(n);
    for (i, path) in flows.iter().enumerate() {
        if path.is_empty() {
            continue; // stays INFINITY
        }
        unfrozen.push(i);
        for l in *path {
            load[l.idx()] += 1;
        }
    }

    let mut level = 0.0f64; // current water level
    while !unfrozen.is_empty() {
        // the next link to saturate is the one with the smallest
        // fair-share increment residual/load
        let mut inc = f64::INFINITY;
        for (l, &r) in residual.iter().enumerate() {
            if load[l] > 0 && r.is_finite() {
                let step = (r / load[l] as f64).max(0.0);
                if step < inc {
                    inc = step;
                }
            }
        }
        if !inc.is_finite() {
            // every remaining flow crosses only infinite links
            break;
        }
        level += inc;
        // charge the increment to every link still carrying unfrozen flows
        for (l, r) in residual.iter_mut().enumerate() {
            if load[l] > 0 && r.is_finite() {
                *r = (*r - inc * load[l] as f64).max(0.0);
            }
        }
        // freeze flows crossing a saturated link
        let mut still = Vec::with_capacity(unfrozen.len());
        for &i in &unfrozen {
            let bottlenecked = flows[i]
                .iter()
                .any(|l| residual[l.idx()] <= 0.0 && caps[l.idx()].is_finite());
            if bottlenecked {
                rates[i] = level;
                for l in flows[i] {
                    load[l.idx()] -= 1;
                }
            } else {
                still.push(i);
            }
        }
        debug_assert!(
            still.len() < unfrozen.len(),
            "progressive filling must freeze at least one flow per round"
        );
        if still.len() == unfrozen.len() {
            // numerical pathology guard: freeze everything at the level
            for &i in &still {
                rates[i] = level;
            }
            break;
        }
        unfrozen = still;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: fn(u32) -> LinkId = LinkId;

    fn rates(flows: &[Vec<LinkId>], caps: &[f64]) -> Vec<f64> {
        let refs: Vec<&[LinkId]> = flows.iter().map(|p| p.as_slice()).collect();
        max_min_rates(&refs, caps)
    }

    #[test]
    fn single_flow_gets_bottleneck_capacity() {
        let r = rates(&[vec![L(0), L(1)]], &[100.0, 40.0]);
        assert_eq!(r, vec![40.0]);
    }

    #[test]
    fn equal_flows_split_a_link() {
        let r = rates(&[vec![L(0)], vec![L(0)], vec![L(0)], vec![L(0)]], &[100.0]);
        assert_eq!(r, vec![25.0; 4]);
    }

    #[test]
    fn unconstrained_flow_takes_the_leftovers() {
        // flow 0 crosses the narrow link 1 (cap 10); flow 1 shares link 0
        // (cap 100) with it but is otherwise free: max-min gives it 90.
        let r = rates(&[vec![L(0), L(1)], vec![L(0)]], &[100.0, 10.0]);
        assert_eq!(r[0], 10.0);
        assert_eq!(r[1], 90.0);
    }

    #[test]
    fn classic_three_flow_parking_lot() {
        // A: 0-1, B: 0, C: 1, caps 10 each -> all get 5
        let r = rates(&[vec![L(0), L(1)], vec![L(0)], vec![L(1)]], &[10.0, 10.0]);
        assert_eq!(r, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn empty_path_and_infinite_links_yield_infinity() {
        let r = rates(&[vec![], vec![L(0)]], &[f64::INFINITY]);
        assert!(r[0].is_infinite());
        assert!(r[1].is_infinite());
    }

    #[test]
    fn shares_never_exceed_capacity() {
        let flows = vec![
            vec![L(0), L(2)],
            vec![L(1), L(2)],
            vec![L(0), L(1)],
            vec![L(2)],
        ];
        let caps = [30.0, 20.0, 25.0];
        let r = rates(&flows, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&r)
                .filter(|(p, _)| p.iter().any(|x| x.idx() == l))
                .map(|(_, &rate)| rate)
                .sum();
            assert!(
                used <= cap * (1.0 + 1e-9),
                "link {l}: used {used} > cap {cap}"
            );
        }
        for &rate in &r {
            assert!(rate > 0.0);
        }
    }
}
