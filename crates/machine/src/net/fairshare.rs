//! Progressive-filling max-min fair bandwidth allocation.
//!
//! Given the set of active flows (each a list of links it crosses) and
//! the per-link capacities, water-fill: raise every unfrozen flow's rate
//! uniformly until some link saturates, freeze the flows crossing that
//! link at their current rate, subtract their share from the remaining
//! links, repeat. The result is the unique max-min fair allocation.
//!
//! Two implementations share the algorithm:
//!
//! * [`max_min_rates`] — the from-scratch reference: allocates its own
//!   working vectors and scans *every* link each round. O(links ×
//!   flows) per bottleneck round and trivially auditable; the replay
//!   engine keeps it as the debug oracle and as the
//!   `simulate_reference` validation path.
//! * [`max_min_rates_active`] — the production solver: reuses a
//!   [`SolveScratch`], takes paths through an accessor (no intermediate
//!   `Vec<&[LinkId]>` collect), and scans only the caller-maintained
//!   set of links currently carrying flows — i.e. only the connected
//!   component(s) of the flow/link graph actually touched by the
//!   arrival or departure that triggered the reshare. Zero allocations
//!   after warm-up.
//!
//! The two are bit-identical by construction, not merely approximately
//! equal: a link with no unfrozen flows contributes nothing to any
//! round's increment and is never written, so restricting every scan to
//! the active-link superset performs exactly the same float operations
//! in an order whose variation cannot change the result (a `min` over
//! floats and independent per-link/per-flow updates). The debug build
//! asserts this equivalence on every reshare, and the `proptest` suite
//! checks it on randomized arrival/departure sequences.

use super::topology::LinkId;

/// Reusable working memory for [`max_min_rates_active`].
///
/// `residual` and `load` are full-size per-link tables whose entries
/// are only (re-)initialized for the links named in the solve's
/// `active_links`; entries for other links hold stale values from
/// earlier solves and are never read.
#[derive(Debug, Default)]
pub(crate) struct SolveScratch {
    residual: Vec<f64>,
    load: Vec<u32>,
    unfrozen: Vec<u32>,
    still: Vec<u32>,
}

impl SolveScratch {
    pub(crate) fn new(nlinks: usize) -> SolveScratch {
        SolveScratch {
            residual: vec![0.0; nlinks],
            load: vec![0; nlinks],
            unfrozen: Vec::new(),
            still: Vec::new(),
        }
    }
}

/// Max-min fair rates for `n` flows whose paths are produced by
/// `path_of`, written into `out` (cleared first; `out[i]` is flow `i`'s
/// rate in bytes/s).
///
/// `active_links` must contain every link crossed by at least one of
/// the `n` flows (a superset is fine). Bit-identical to
/// [`max_min_rates`] over the same flows — see the module docs for why.
pub(crate) fn max_min_rates_active<'a, F>(
    n: usize,
    path_of: F,
    caps: &[f64],
    active_links: &[u32],
    s: &mut SolveScratch,
    out: &mut Vec<f64>,
) where
    F: Fn(usize) -> &'a [LinkId],
{
    out.clear();
    out.resize(n, f64::INFINITY);
    if n == 0 {
        return;
    }
    for &l in active_links {
        let l = l as usize;
        s.residual[l] = caps[l];
        s.load[l] = 0;
    }
    s.unfrozen.clear();
    for i in 0..n {
        let path = path_of(i);
        if path.is_empty() {
            continue; // stays INFINITY
        }
        s.unfrozen.push(i as u32);
        for l in path {
            s.load[l.idx()] += 1;
        }
    }

    if s.unfrozen.len() == 1 {
        // a lone flow freezes in one round at its narrowest link; the
        // general loop below computes exactly `min(caps over path)`
        // for it (level = 0.0 + cap/1, residual hits exactly 0.0)
        let i = s.unfrozen[0] as usize;
        let mut cap = f64::INFINITY;
        for l in path_of(i) {
            let c = caps[l.idx()];
            if c < cap {
                cap = c;
            }
        }
        if cap.is_finite() {
            out[i] = cap;
        }
        return;
    }

    let mut level = 0.0f64; // current water level
    while !s.unfrozen.is_empty() {
        // the next link to saturate is the one with the smallest
        // fair-share increment residual/load
        let mut inc = f64::INFINITY;
        for &l in active_links {
            let l = l as usize;
            let r = s.residual[l];
            if s.load[l] > 0 && r.is_finite() {
                let step = (r / s.load[l] as f64).max(0.0);
                if step < inc {
                    inc = step;
                }
            }
        }
        if !inc.is_finite() {
            // every remaining flow crosses only infinite links
            break;
        }
        level += inc;
        // charge the increment to every link still carrying unfrozen flows
        for &l in active_links {
            let l = l as usize;
            if s.load[l] > 0 && s.residual[l].is_finite() {
                s.residual[l] = (s.residual[l] - inc * s.load[l] as f64).max(0.0);
            }
        }
        // freeze flows crossing a saturated link
        s.still.clear();
        for &i in &s.unfrozen {
            let path = path_of(i as usize);
            let bottlenecked = path
                .iter()
                .any(|l| s.residual[l.idx()] <= 0.0 && caps[l.idx()].is_finite());
            if bottlenecked {
                out[i as usize] = level;
                for l in path {
                    s.load[l.idx()] -= 1;
                }
            } else {
                s.still.push(i);
            }
        }
        if s.still.len() == s.unfrozen.len() {
            // no flow froze this round — float rounding left a positive
            // sliver on the min link; freeze everything at the current
            // level, exactly as the oracle does
            for &i in &s.still {
                out[i as usize] = level;
            }
            break;
        }
        std::mem::swap(&mut s.unfrozen, &mut s.still);
    }
}

/// Max-min fair rates (bytes/s) for `flows`, where `flows[i]` is the
/// link path of flow `i` and `caps[l]` the capacity of link `l`.
///
/// * A flow with an empty path (e.g. intra-node in a degenerate layout)
///   gets `f64::INFINITY`.
/// * Infinite-capacity links never bottleneck; if every link a flow
///   crosses is infinite, the flow gets `f64::INFINITY`.
/// * Every returned rate is `> 0` (capacities are validated positive at
///   graph build time), so completion times stay finite.
pub fn max_min_rates(flows: &[&[LinkId]], caps: &[f64]) -> Vec<f64> {
    let n = flows.len();
    let mut rates = vec![f64::INFINITY; n];
    if n == 0 {
        return rates;
    }
    // residual capacity and number of unfrozen flows per link
    let mut residual = caps.to_vec();
    let mut load = vec![0u32; caps.len()];
    let mut unfrozen: Vec<usize> = Vec::with_capacity(n);
    for (i, path) in flows.iter().enumerate() {
        if path.is_empty() {
            continue; // stays INFINITY
        }
        unfrozen.push(i);
        for l in *path {
            load[l.idx()] += 1;
        }
    }

    let mut level = 0.0f64; // current water level
    while !unfrozen.is_empty() {
        // the next link to saturate is the one with the smallest
        // fair-share increment residual/load
        let mut inc = f64::INFINITY;
        for (l, &r) in residual.iter().enumerate() {
            if load[l] > 0 && r.is_finite() {
                let step = (r / load[l] as f64).max(0.0);
                if step < inc {
                    inc = step;
                }
            }
        }
        if !inc.is_finite() {
            // every remaining flow crosses only infinite links
            break;
        }
        level += inc;
        // charge the increment to every link still carrying unfrozen flows
        for (l, r) in residual.iter_mut().enumerate() {
            if load[l] > 0 && r.is_finite() {
                *r = (*r - inc * load[l] as f64).max(0.0);
            }
        }
        // freeze flows crossing a saturated link
        let mut still = Vec::with_capacity(unfrozen.len());
        for &i in &unfrozen {
            let bottlenecked = flows[i]
                .iter()
                .any(|l| residual[l.idx()] <= 0.0 && caps[l.idx()].is_finite());
            if bottlenecked {
                rates[i] = level;
                for l in flows[i] {
                    load[l.idx()] -= 1;
                }
            } else {
                still.push(i);
            }
        }
        if still.len() == unfrozen.len() {
            // no flow froze this round: the min-achieving link's
            // residual `r - (r/load)·load` can round to a positive
            // sliver instead of exactly 0, leaving nothing saturated.
            // Freeze everything at the current level (off by at most
            // that sliver's share) rather than looping on it.
            for &i in &still {
                rates[i] = level;
            }
            break;
        }
        unfrozen = still;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: fn(u32) -> LinkId = LinkId;

    fn rates(flows: &[Vec<LinkId>], caps: &[f64]) -> Vec<f64> {
        let refs: Vec<&[LinkId]> = flows.iter().map(|p| p.as_slice()).collect();
        max_min_rates(&refs, caps)
    }

    #[test]
    fn single_flow_gets_bottleneck_capacity() {
        let r = rates(&[vec![L(0), L(1)]], &[100.0, 40.0]);
        assert_eq!(r, vec![40.0]);
    }

    #[test]
    fn equal_flows_split_a_link() {
        let r = rates(&[vec![L(0)], vec![L(0)], vec![L(0)], vec![L(0)]], &[100.0]);
        assert_eq!(r, vec![25.0; 4]);
    }

    #[test]
    fn unconstrained_flow_takes_the_leftovers() {
        // flow 0 crosses the narrow link 1 (cap 10); flow 1 shares link 0
        // (cap 100) with it but is otherwise free: max-min gives it 90.
        let r = rates(&[vec![L(0), L(1)], vec![L(0)]], &[100.0, 10.0]);
        assert_eq!(r[0], 10.0);
        assert_eq!(r[1], 90.0);
    }

    #[test]
    fn classic_three_flow_parking_lot() {
        // A: 0-1, B: 0, C: 1, caps 10 each -> all get 5
        let r = rates(&[vec![L(0), L(1)], vec![L(0)], vec![L(1)]], &[10.0, 10.0]);
        assert_eq!(r, vec![5.0, 5.0, 5.0]);
    }

    #[test]
    fn empty_path_and_infinite_links_yield_infinity() {
        let r = rates(&[vec![], vec![L(0)]], &[f64::INFINITY]);
        assert!(r[0].is_infinite());
        assert!(r[1].is_infinite());
    }

    /// Run the production solver the way `FlowNet` does and compare it
    /// bitwise against the oracle.
    fn active_vs_oracle(flows: &[Vec<LinkId>], caps: &[f64]) {
        let oracle = rates(flows, caps);
        let mut active: Vec<u32> = flows.iter().flatten().map(|l| l.0).collect();
        active.sort_unstable();
        active.dedup();
        let mut s = SolveScratch::new(caps.len());
        let mut out = Vec::new();
        // run twice on the same scratch: the second solve must not be
        // contaminated by the first one's leftovers
        for _ in 0..2 {
            max_min_rates_active(
                flows.len(),
                |i| flows[i].as_slice(),
                caps,
                &active,
                &mut s,
                &mut out,
            );
            assert_eq!(oracle.len(), out.len());
            for (i, (a, b)) in oracle.iter().zip(&out).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "flow {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn active_solver_matches_oracle_bitwise() {
        let caps = [30.0, 20.0, 25.0, 100.0, 10.0, f64::INFINITY];
        let cases: Vec<Vec<Vec<LinkId>>> = vec![
            vec![vec![L(0), L(1)]],                   // lone finite flow
            vec![vec![L(5)]],                         // lone infinite flow
            vec![vec![]],                             // empty path
            vec![vec![L(0)], vec![L(0)], vec![L(0)]], // one shared link
            vec![vec![L(0), L(2)], vec![L(1), L(2)], vec![L(2)]],
            // two independent components with different loads: the
            // global water level interleaves their increments, which is
            // exactly the float behaviour both solvers must share
            vec![vec![L(0)], vec![L(0)], vec![L(0)], vec![L(4)], vec![L(4)]],
            vec![vec![L(1), L(5)], vec![L(5)], vec![]],
            vec![
                vec![L(0), L(1), L(2)],
                vec![L(3)],
                vec![L(3), L(4)],
                vec![L(2), L(3)],
                vec![L(0)],
            ],
        ];
        for flows in &cases {
            active_vs_oracle(flows, &caps);
        }
    }

    #[test]
    fn active_solver_ignores_stale_scratch_outside_active_set() {
        let caps = [10.0, 40.0, 7.0];
        let mut s = SolveScratch::new(caps.len());
        // poison the scratch for link 1, then solve a flow set that
        // never touches it
        s.residual[1] = -1.0;
        s.load[1] = 99;
        let flows = [vec![L(0), L(2)], vec![L(2)]];
        let mut out = Vec::new();
        max_min_rates_active(2, |i| flows[i].as_slice(), &caps, &[0, 2], &mut s, &mut out);
        let oracle = rates(flows.as_ref(), &caps);
        assert_eq!(out, oracle);
    }

    #[test]
    fn shares_never_exceed_capacity() {
        let flows = vec![
            vec![L(0), L(2)],
            vec![L(1), L(2)],
            vec![L(0), L(1)],
            vec![L(2)],
        ];
        let caps = [30.0, 20.0, 25.0];
        let r = rates(&flows, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&r)
                .filter(|(p, _)| p.iter().any(|x| x.idx() == l))
                .map(|(_, &rate)| rate)
                .sum();
            assert!(
                used <= cap * (1.0 + 1e-9),
                "link {l}: used {used} > cap {cap}"
            );
        }
        for &rate in &r {
            assert!(rate > 0.0);
        }
    }
}
