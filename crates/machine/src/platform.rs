//! Configurable parallel platform description.
//!
//! These are exactly the knobs the paper tunes in Dimemas: network
//! bandwidth, latency, the number of global buses (Table I), per-node
//! input/output ports, and the CPU speed used to scale instruction
//! counts into time.

use crate::net::{ContentionModel, FaultSchedule, Topology};
use crate::time::Time;
use ovlp_trace::{Bytes, Instructions};

/// Algorithm used to decompose collectives into point-to-point
/// transfers (the paper assumes no hardware collective support).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CollectiveAlgo {
    /// Binomial trees for bcast/reduce (log₂P stages); allreduce as
    /// reduce-to-0 plus bcast; pairwise-ordered alltoall.
    #[default]
    Binomial,
    /// Star topology: the root sends/receives P−1 individual messages.
    Linear,
}

impl CollectiveAlgo {
    pub fn name(self) -> &'static str {
        match self {
            CollectiveAlgo::Binomial => "binomial",
            CollectiveAlgo::Linear => "linear",
        }
    }
}

/// The simulated parallel platform.
///
/// ```
/// use ovlp_machine::Platform;
/// use ovlp_trace::Bytes;
///
/// // the paper's test bed: 250 MB/s Myrinet, 8 us latency, Table I buses
/// let p = Platform::marenostrum(12);
/// // the Dimemas linear model: latency + size/bandwidth
/// let t = p.transfer_time(Bytes(1_000_000));
/// assert!((t.as_secs() - (8e-6 + 0.004)).abs() < 1e-12);
/// // sweepable knobs for the bandwidth experiments
/// let slow = p.with_bandwidth(11.75);
/// assert!(slow.transfer_time(Bytes(1_000_000)) > t);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// CPU speed in millions of (virtual) instructions per second.
    /// Computation bursts of `n` instructions take `n / (mips·10⁶)` s.
    pub mips: f64,
    /// Unidirectional link bandwidth in MB/s (10⁶ bytes per second,
    /// matching the paper's "250 MB/s" Myrinet figure).
    /// `f64::INFINITY` is allowed and models an infinitely fast network
    /// where only latency remains (used by the equivalent-bandwidth
    /// experiment's divergence probe).
    pub bandwidth_mbs: f64,
    /// Per-message startup latency in microseconds.
    pub latency_us: f64,
    /// Number of global buses: how many messages may concurrently
    /// travel through the network. `0` means unlimited.
    pub buses: u32,
    /// Concurrent incoming transfers each node sustains.
    pub input_ports: u32,
    /// Concurrent outgoing transfers each node sustains.
    pub output_ports: u32,
    /// Collective decomposition algorithm.
    pub collective: CollectiveAlgo,
    /// Ranks per (multi-core) node. Messages between ranks on the same
    /// node are memory copies: they use the intra-node model below and
    /// consume no network resources (no bus, no ports) — the Dimemas
    /// intra-node model. `1` (the default) makes every rank its own
    /// node.
    pub ranks_per_node: u32,
    /// Intra-node (shared-memory) bandwidth, MB/s.
    pub intra_bandwidth_mbs: f64,
    /// Intra-node latency, microseconds.
    pub intra_latency_us: f64,
    /// Messages strictly larger than this switch to rendezvous
    /// semantics regardless of their record's send mode (the MPI eager
    /// threshold). `None` honours the trace's modes unconditionally.
    pub eager_threshold_bytes: Option<u64>,
    /// Per-rank relative CPU speed (Dimemas' per-task ratio). A rank's
    /// bursts take `instr / (mips·ratio·10⁶)` seconds; ranks beyond the
    /// vector's length get ratio 1.0. Empty = homogeneous machine.
    pub cpu_ratios: Vec<f64>,
    /// Nodes per machine for the Dimemas multi-machine (Grid/WAN)
    /// hierarchy. `0` disables the level (everything is one machine).
    /// Transfers between ranks on different machines use the WAN model
    /// below; they still occupy the endpoints' ports but not the
    /// machine-local buses.
    pub nodes_per_machine: u32,
    /// Inter-machine bandwidth, MB/s.
    pub wan_bandwidth_mbs: f64,
    /// Inter-machine latency, microseconds.
    pub wan_latency_us: f64,
    /// Concurrent inter-machine transfers network-wide (0 = unlimited).
    pub wan_links: u32,
    /// How intra-machine network contention is modelled:
    /// [`ContentionModel::Bus`] (the default) is the Dimemas buses+ports
    /// counter; [`ContentionModel::Flow`] routes each transfer over an
    /// explicit topology with max-min fair link sharing. In flow mode
    /// `buses` is ignored (ports still apply) and `bandwidth_mbs` is the
    /// endpoint link capacity.
    pub contention: ContentionModel,
    /// Deterministic link-fault schedule applied during the replay
    /// (kill/degrade/restore events, see [`crate::net::fault`]). Only
    /// meaningful in flow mode; empty (the default) injects nothing.
    pub faults: FaultSchedule,
}

impl Default for Platform {
    fn default() -> Platform {
        Platform {
            mips: 2300.0,
            bandwidth_mbs: 250.0,
            latency_us: 8.0,
            buses: 0,
            input_ports: 1,
            output_ports: 1,
            collective: CollectiveAlgo::Binomial,
            ranks_per_node: 1,
            intra_bandwidth_mbs: 2000.0,
            intra_latency_us: 0.5,
            eager_threshold_bytes: None,
            cpu_ratios: Vec::new(),
            nodes_per_machine: 0,
            wan_bandwidth_mbs: 10.0,
            wan_latency_us: 1000.0,
            wan_links: 0,
            contention: ContentionModel::Bus,
            faults: FaultSchedule::default(),
        }
    }
}

impl Platform {
    /// The paper's test bed: Marenostrum nodes (PowerPC 970 @ 2.3 GHz,
    /// modelled as 2300 MIPS) on Myrinet at 250 MB/s unidirectional
    /// bandwidth, with the per-application bus count of Table I.
    pub fn marenostrum(buses: u32) -> Platform {
        Platform {
            buses,
            ..Platform::default()
        }
    }

    /// Same platform with a different bandwidth — the axis swept by the
    /// bandwidth-relaxation and equivalent-bandwidth experiments.
    pub fn with_bandwidth(&self, bandwidth_mbs: f64) -> Platform {
        assert!(
            bandwidth_mbs > 0.0,
            "bandwidth must be positive (can be infinite)"
        );
        Platform {
            bandwidth_mbs,
            ..self.clone()
        }
    }

    /// Same platform with a different bus count.
    pub fn with_buses(&self, buses: u32) -> Platform {
        Platform {
            buses,
            ..self.clone()
        }
    }

    /// Same platform with a different contention model.
    pub fn with_contention(&self, contention: ContentionModel) -> Platform {
        Platform {
            contention,
            ..self.clone()
        }
    }

    /// Same platform routed over an explicit topology (flow-level
    /// contention instead of the bus counter).
    pub fn with_topology(&self, topology: Topology) -> Platform {
        self.with_contention(ContentionModel::Flow(topology))
    }

    /// Same platform with a link-fault schedule (flow mode only; the
    /// bus model has no links to fault — `check` rejects that combo).
    pub fn with_faults(&self, faults: FaultSchedule) -> Platform {
        Platform {
            faults,
            ..self.clone()
        }
    }

    /// Same platform with multi-core nodes: `ranks_per_node` ranks
    /// share a node, exchanging intra-node messages at
    /// `intra_bandwidth_mbs` / `intra_latency_us` without touching the
    /// network.
    pub fn with_nodes(
        &self,
        ranks_per_node: u32,
        intra_bandwidth_mbs: f64,
        intra_latency_us: f64,
    ) -> Platform {
        assert!(ranks_per_node >= 1);
        Platform {
            ranks_per_node,
            intra_bandwidth_mbs,
            intra_latency_us,
            ..self.clone()
        }
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node.max(1) as usize
    }

    /// The machine hosting `rank` (0 when the machine level is
    /// disabled).
    pub fn machine_of(&self, rank: usize) -> usize {
        if self.nodes_per_machine == 0 {
            0
        } else {
            self.node_of(rank) / self.nodes_per_machine as usize
        }
    }

    /// Same platform split into machines of `nodes_per_machine` nodes
    /// connected by a WAN of the given bandwidth/latency.
    pub fn with_machines(
        &self,
        nodes_per_machine: u32,
        wan_bandwidth_mbs: f64,
        wan_latency_us: f64,
        wan_links: u32,
    ) -> Platform {
        assert!(nodes_per_machine >= 1);
        Platform {
            nodes_per_machine,
            wan_bandwidth_mbs,
            wan_latency_us,
            wan_links,
            ..self.clone()
        }
    }

    /// Uncontended duration of an inter-machine transfer.
    pub fn wan_transfer_time(&self, bytes: Bytes) -> Time {
        let wire = if self.wan_bandwidth_mbs.is_infinite() {
            0.0
        } else {
            bytes.get() as f64 / (self.wan_bandwidth_mbs * 1e6)
        };
        Time::micros(self.wan_latency_us) + Time::secs(wire)
    }

    /// Relative CPU speed of `rank`.
    pub fn cpu_ratio(&self, rank: usize) -> f64 {
        self.cpu_ratios.get(rank).copied().unwrap_or(1.0)
    }

    /// Duration of a computation burst on this platform (homogeneous
    /// part; see [`Platform::compute_time_for`] for per-rank ratios).
    pub fn compute_time(&self, instr: Instructions) -> Time {
        Time::secs(instr.get() as f64 / (self.mips * 1e6))
    }

    /// Duration of a computation burst on `rank`, honouring its CPU
    /// ratio.
    pub fn compute_time_for(&self, rank: usize, instr: Instructions) -> Time {
        Time::secs(instr.get() as f64 / (self.mips * self.cpu_ratio(rank) * 1e6))
    }

    /// Effective send mode of a message of `bytes` whose trace record
    /// requested `requested` (the eager threshold may force
    /// rendezvous).
    pub fn effective_mode(
        &self,
        requested: ovlp_trace::record::SendMode,
        bytes: Bytes,
    ) -> ovlp_trace::record::SendMode {
        use ovlp_trace::record::SendMode;
        match self.eager_threshold_bytes {
            Some(th) if bytes.get() > th => SendMode::Rendezvous,
            Some(_) => SendMode::Eager,
            None => requested,
        }
    }

    /// Uncontended duration of an intra-node transfer.
    pub fn intra_transfer_time(&self, bytes: Bytes) -> Time {
        let wire = if self.intra_bandwidth_mbs.is_infinite() {
            0.0
        } else {
            bytes.get() as f64 / (self.intra_bandwidth_mbs * 1e6)
        };
        Time::micros(self.intra_latency_us) + Time::secs(wire)
    }

    /// Message startup latency.
    pub fn latency(&self) -> Time {
        Time::micros(self.latency_us)
    }

    /// Pure wire occupancy of a message (without latency): `size / BW`.
    pub fn wire_time(&self, bytes: Bytes) -> Time {
        if self.bandwidth_mbs.is_infinite() {
            Time::ZERO
        } else {
            Time::secs(bytes.get() as f64 / (self.bandwidth_mbs * 1e6))
        }
    }

    /// Full uncontended transfer duration: `latency + size / BW`
    /// (the Dimemas linear model).
    pub fn transfer_time(&self, bytes: Bytes) -> Time {
        self.latency() + self.wire_time(bytes)
    }

    /// Validate internal consistency; used by constructors in the
    /// experiment layer before long sweeps.
    pub fn check(&self) -> Result<(), String> {
        if self.mips <= 0.0 || self.mips.is_nan() {
            return Err(format!("mips must be positive, got {}", self.mips));
        }
        if self.bandwidth_mbs <= 0.0 || self.bandwidth_mbs.is_nan() {
            return Err(format!(
                "bandwidth must be positive, got {}",
                self.bandwidth_mbs
            ));
        }
        if self.latency_us < 0.0 {
            return Err(format!("latency must be >= 0, got {}", self.latency_us));
        }
        if self.input_ports == 0 || self.output_ports == 0 {
            return Err("ports must be >= 1".to_string());
        }
        if let ContentionModel::Flow(topo) = &self.contention {
            topo.check()?;
        }
        self.faults.validate()?;
        if !self.faults.is_empty() && !matches!(self.contention, ContentionModel::Flow(_)) {
            return Err(
                "fault schedules need explicit links: use a flow-level topology \
                 (crossbar | fat-tree:<radix>[:<oversub>] | torus:<A>x<B>[x<C>]), not the \
                 bus model"
                    .to_string(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model() {
        let p = Platform::marenostrum(12);
        // 1 MB at 250 MB/s = 4 ms wire time + 8 us latency
        let t = p.transfer_time(Bytes(1_000_000));
        assert!((t.as_secs() - (0.004 + 8e-6)).abs() < 1e-12);
        // zero-size message costs exactly the latency
        assert_eq!(p.transfer_time(Bytes::ZERO), p.latency());
    }

    #[test]
    fn compute_scaling() {
        let p = Platform::marenostrum(12);
        // 2300 Minstr at 2300 MIPS = 1 second
        let t = p.compute_time(Instructions(2_300_000_000));
        assert!((t.as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infinite_bandwidth_leaves_latency() {
        let p = Platform::default().with_bandwidth(f64::INFINITY);
        assert_eq!(p.transfer_time(Bytes(1 << 30)), p.latency());
    }

    #[test]
    fn builders_preserve_other_fields() {
        let p = Platform::marenostrum(12);
        let q = p.with_bandwidth(10.0).with_buses(3);
        assert_eq!(q.buses, 3);
        assert!((q.bandwidth_mbs - 10.0).abs() < 1e-12);
        assert!((q.mips - p.mips).abs() < 1e-12);
    }

    #[test]
    fn check_catches_bad_configs() {
        assert!(Platform::default().check().is_ok());
        assert!(Platform {
            mips: 0.0,
            ..Platform::default()
        }
        .check()
        .is_err());
        assert!(Platform {
            input_ports: 0,
            ..Platform::default()
        }
        .check()
        .is_err());
        assert!(Platform {
            latency_us: -1.0,
            ..Platform::default()
        }
        .check()
        .is_err());
    }

    #[test]
    fn faults_require_a_flow_topology() {
        let faults: FaultSchedule = "kill@1ms:n0->sw".parse().unwrap();
        let bus = Platform::default().with_faults(faults.clone());
        let err = bus.check().unwrap_err();
        assert!(err.contains("not the bus model"), "{err}");
        let flow = Platform::default()
            .with_topology(Topology::Crossbar)
            .with_faults(faults);
        assert!(flow.check().is_ok());
        // builders must carry the schedule along
        assert!(!flow.with_bandwidth(100.0).faults.is_empty());
    }
}
