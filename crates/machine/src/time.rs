//! Simulated wall-clock time.
//!
//! Time exists only inside the machine simulator: the tracing front end
//! works in virtual instruction counts, which the platform's MIPS rate
//! converts to seconds here.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or span of) simulated time, in seconds.
///
/// Wraps `f64` with a total order (`total_cmp`); construction asserts
/// finiteness so the event queue can never be poisoned by NaNs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Time(f64);

impl Time {
    pub const ZERO: Time = Time(0.0);

    /// Construct from seconds. Panics on non-finite input.
    #[inline]
    pub fn secs(s: f64) -> Time {
        assert!(s.is_finite(), "non-finite Time: {s}");
        Time(s)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn micros(us: f64) -> Time {
        Time::secs(us * 1e-6)
    }

    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Eq for Time {}

impl PartialOrd for Time {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time::secs(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time::secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: f64) -> Time {
        Time::secs(self.0 * rhs)
    }
}

impl Div<Time> for Time {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Time) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Time::secs(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.6}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.3}us", self.0 * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = Time::secs(1.0);
        let b = Time::secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic() {
        let t = Time::secs(1.5) + Time::micros(500_000.0);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
        assert!((Time::secs(3.0) - Time::secs(1.0)).as_secs() - 2.0 < 1e-12);
        assert!(((Time::secs(4.0) / Time::secs(2.0)) - 2.0).abs() < 1e-12);
        let s: Time = [Time::secs(1.0), Time::secs(2.0)].into_iter().sum();
        assert!((s.as_secs() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan() {
        let _ = Time::secs(f64::NAN);
    }

    #[test]
    fn display_scales() {
        assert!(Time::secs(2.0).to_string().ends_with('s'));
        assert!(Time::secs(2e-3).to_string().ends_with("ms"));
        assert!(Time::micros(5.0).to_string().ends_with("us"));
    }
}
