//! Minimal Fx-style hasher for the engine's hot-path maps.
//!
//! The replay engine keys small maps by dense integer tuples (channel
//! triples, route endpoints). The default SipHash is DoS-resistant but
//! costs more than the lookups themselves here; these keys come from
//! the trace being replayed, not from an adversary, so a fast
//! multiply-rotate hash (the rustc/Firefox "Fx" construction) is the
//! right trade.

use std::hash::{BuildHasherDefault, Hasher};

/// See module docs. Not DoS-resistant; only for trusted integer keys.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hashes_are_stable_and_maps_work() {
        let mut m: HashMap<(u32, u32, u32), u32, FxBuildHasher> = HashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i * 7, i % 3), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i * 7, i % 3)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_writes_cover_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghij"); // 8-byte chunk + 2-byte tail
        let mut b = FxHasher::default();
        b.write(b"abcdefghik");
        assert_ne!(a.finish(), b.finish());
    }
}
