//! The trace replay engine.
//!
//! Reconstructs an application's time behaviour from per-rank record
//! streams. Each rank is an interpreter over its stream; ranks interact
//! only through messages and shared network resources, and all
//! interactions are sequenced through a deterministic event queue.
//!
//! ## Communication semantics
//!
//! A point-to-point transfer passes through three phases:
//!
//! 1. **Initiation** — the sender executes the send record at its local
//!    time `t_send`. The message enters the pending queue.
//! 2. **Grant** — the message atomically acquires its resource triple
//!    (sender output port, receiver input port, one global bus) at
//!    `t_start ≥ t_send`; grants happen in a deterministic first-fit
//!    scan of the pending queue. A rendezvous-mode message additionally
//!    requires the matching receive to be posted before it can be
//!    granted.
//! 3. **Delivery** — the transfer occupies its resources for
//!    `latency + size/bandwidth` and completes at `t_arrive`.
//!
//! Blocking semantics: an eager `Send` releases the sender at
//! `t_start + latency` (local injection); a rendezvous `Send` blocks
//! until `t_arrive`. `Recv`/`Wait` block until the matched message's
//! `t_arrive`. Matching is first-in-first-out per `(src, dst, tag)`
//! channel, like MPI's non-overtaking rule.

use crate::collective::expand_collectives;
use crate::event::{Event, EventQueue, QueueLike};
use crate::fx::FxBuildHasher;
use crate::net::fault::{AppliedFault, Partition, ResolvedFault};
use crate::net::flows::{FlowEvent, FlowNet};
use crate::net::{ContentionModel, LinkGraph, LinkUsage};
use crate::platform::Platform;
use crate::probe::{EventKind, NoopSink, ProbeSink, WaitEdge};
use crate::resources::Resources;
use crate::time::Time;
use crate::timeline::{CommRecord, State, StateTotals, Timeline};
use ovlp_trace::record::{Record, SendMode};
use ovlp_trace::source::TraceSource;
use ovlp_trace::{Bytes, Rank, ReqId, Tag, Trace};
use std::collections::{HashMap, VecDeque};
use std::str::FromStr;

mod parallel;
mod supply;

use supply::Supply;

/// Which replay driver advances the simulation.
///
/// Both drivers produce **byte-identical** [`SimResult`]s (and probe
/// streams, when probed): the sequential engine is the semantics, the
/// parallel engine is an execution strategy for it. Debug builds keep
/// the sequential run as an asserted oracle inside every parallel run;
/// the `parallel_equivalence` differential suite pins the same
/// guarantee in release builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplayEngine {
    /// One event loop, one heap — the reference interpreter.
    #[default]
    Sequential,
    /// Per-rank contexts with local clocks advancing under conservative
    /// lookahead, plus `workers` threads for the compile and finish
    /// phases. `workers` never changes results, only wall time.
    Parallel { workers: usize },
}

impl ReplayEngine {
    /// The parallel engine sized to the host (capped at 8 workers —
    /// the compile/finish phases stop scaling well beyond that).
    pub fn parallel_auto() -> ReplayEngine {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1);
        ReplayEngine::Parallel { workers }
    }
}

impl FromStr for ReplayEngine {
    type Err = String;

    /// `sequential`/`seq`, `parallel`/`par`, or `parallel:N` to pin the
    /// worker count.
    fn from_str(s: &str) -> Result<ReplayEngine, String> {
        match s {
            "sequential" | "seq" => return Ok(ReplayEngine::Sequential),
            "parallel" | "par" => return Ok(ReplayEngine::parallel_auto()),
            _ => {}
        }
        if let Some(n) = s
            .strip_prefix("parallel:")
            .or_else(|| s.strip_prefix("par:"))
        {
            let workers: usize = n
                .parse()
                .map_err(|_| format!("bad worker count {n:?} in engine {s:?}"))?;
            if workers == 0 {
                return Err(format!("engine {s:?}: worker count must be >= 1"));
            }
            return Ok(ReplayEngine::Parallel { workers });
        }
        Err(format!(
            "unknown engine {s:?} (expected sequential|parallel[:N])"
        ))
    }
}

impl std::fmt::Display for ReplayEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayEngine::Sequential => write!(f, "sequential"),
            ReplayEngine::Parallel { workers } => write!(f, "parallel:{workers}"),
        }
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The event queue drained while some ranks were still blocked.
    Deadlock { stuck: Vec<(usize, String)> },
    /// A `Wait` referenced a request never issued.
    UnknownRequest { rank: usize, req: ReqId },
    /// A transfer needed a route between two nodes but every candidate
    /// path crosses a killed link: the fault schedule disconnected the
    /// fabric. `link` is the label of the first dead link the router
    /// hit. Reported instead of hanging — a partitioned run can never
    /// complete.
    Partitioned {
        src: usize,
        dst: usize,
        link: String,
    },
    /// Platform configuration rejected.
    BadPlatform(String),
    /// Internal resource accounting went corrupt (e.g. a release
    /// without a matching acquire). Always a bug in the engine; fails
    /// loudly in release builds too.
    Accounting(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { stuck } => {
                write!(f, "deadlock; stuck ranks: ")?;
                for (r, why) in stuck {
                    write!(f, "[rank {r}: {why}] ")?;
                }
                Ok(())
            }
            SimError::UnknownRequest { rank, req } => {
                write!(f, "rank {rank}: wait on unknown request {req}")
            }
            SimError::Partitioned { src, dst, link } => write!(
                f,
                "network partitioned: no route from node {src} to node {dst} \
                 (link {link} is down)"
            ),
            SimError::BadPlatform(s) => write!(f, "bad platform: {s}"),
            SimError::Accounting(s) => write!(f, "resource accounting corrupt: {s}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of one replay.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Completion time of the slowest rank.
    pub runtime: Time,
    /// Per-rank state timelines.
    pub timelines: Vec<Timeline>,
    /// Every physical message transfer, in initiation order.
    pub comms: Vec<CommRecord>,
    /// Per-rank aggregated state totals.
    pub totals: Vec<StateTotals>,
    /// Time at which each rank passed each structural marker, in
    /// execution order (feeds per-iteration analysis).
    pub markers: Vec<Vec<(ovlp_trace::record::Marker, Time)>>,
    /// Aggregate network behaviour.
    pub network: NetworkStats,
    /// Per-link usage when the platform used flow-level contention
    /// ([`ContentionModel::Flow`]); empty under the bus model.
    pub links: Vec<LinkUsage>,
    /// Discrete events processed (engine throughput metric).
    pub events_processed: u64,
    /// Event-queue high-water mark (engine memory metric).
    pub queue_peak: usize,
    /// Stale `FlowDone` events popped and discarded — completions that
    /// resharing re-estimated after they were scheduled. Zero under the
    /// bus model; a cost metric of the flow-level engine.
    pub stale_events: u64,
    /// Scheduled faults that were applied, in application order. Empty
    /// when the platform carried no fault schedule.
    pub fault_log: Vec<AppliedFault>,
}

/// Aggregate network statistics of one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NetworkStats {
    /// Point-to-point transfers simulated (after collective
    /// decomposition).
    pub transfers: usize,
    /// Transfers that used the intra-node (shared-memory) path.
    pub intra_node: usize,
    /// Transfers that crossed machines (WAN path).
    pub inter_machine: usize,
    /// Total bus·seconds consumed by inter-node transfers.
    pub bus_seconds: f64,
    /// Total time transfers spent queued for network resources.
    pub queue_seconds: f64,
    /// Max-min reshare passes performed (flow-level contention only).
    pub reshares: u64,
    /// Scheduled fault events applied to the fabric.
    pub faults_applied: u64,
    /// In-flight flows moved off killed links.
    pub flows_rerouted: u64,
    /// Reshare passes triggered by fault events (faults on idle links
    /// don't reshare).
    pub reroute_reshares: u64,
}

impl NetworkStats {
    /// Mean number of buses simultaneously in use over the run.
    pub fn mean_bus_concurrency(&self, runtime: Time) -> f64 {
        let rt = runtime.as_secs();
        if rt <= 0.0 {
            0.0
        } else {
            self.bus_seconds / rt
        }
    }
}

impl SimResult {
    /// Runtime in seconds.
    pub fn runtime(&self) -> f64 {
        self.runtime.as_secs()
    }

    /// Sum of all ranks' wait time (everything but compute), seconds.
    pub fn total_wait(&self) -> f64 {
        self.totals.iter().map(|t| t.total_wait().as_secs()).sum()
    }

    /// Parallel efficiency: compute time over total rank-time.
    pub fn efficiency(&self) -> f64 {
        let nranks = self.totals.len().max(1) as f64;
        let denom = self.runtime.as_secs() * nranks;
        if denom == 0.0 {
            return 1.0;
        }
        let compute: f64 = self.totals.iter().map(|t| t.compute.as_secs()).sum();
        compute / denom
    }
}

/// Simulate `trace` on `platform`.
///
/// Collective records are decomposed into point-to-point transfers
/// first (per the platform's [`CollectiveAlgo`](crate::CollectiveAlgo)).
pub fn simulate(trace: &Trace, platform: &Platform) -> Result<SimResult, SimError> {
    simulate_probed(trace, platform, &mut NoopSink)
}

/// [`simulate`] with an explicit replay driver. Results are identical
/// for every [`ReplayEngine`]; only wall time differs.
pub fn simulate_with(
    trace: &Trace,
    platform: &Platform,
    engine: ReplayEngine,
) -> Result<SimResult, SimError> {
    simulate_inner(trace, platform, &mut NoopSink, false, engine)
}

/// [`simulate_probed`] with an explicit replay driver. The probe
/// stream, too, is bit-identical across engines.
pub fn simulate_probed_with<P: ProbeSink>(
    trace: &Trace,
    platform: &Platform,
    probe: &mut P,
    engine: ReplayEngine,
) -> Result<SimResult, SimError> {
    simulate_inner(trace, platform, probe, false, engine)
}

/// Simulate `trace` on `platform`, streaming observability callbacks
/// into `probe`.
///
/// The probe observes the replay but never influences it: simulated
/// time, timelines, and communication records are bit-identical to
/// [`simulate`] for any [`ProbeSink`] implementation (a property the
/// determinism test suite pins down).
pub fn simulate_probed<P: ProbeSink>(
    trace: &Trace,
    platform: &Platform,
    probe: &mut P,
) -> Result<SimResult, SimError> {
    simulate_inner(trace, platform, probe, false, ReplayEngine::Sequential)
}

/// [`simulate`], but forcing the from-scratch max-min solver instead of
/// the incremental one. Results are bit-identical by construction; this
/// entry exists so the test suite (and bisections) can cross-validate
/// whole replays against the reference solver.
#[doc(hidden)]
pub fn simulate_reference(trace: &Trace, platform: &Platform) -> Result<SimResult, SimError> {
    simulate_inner(
        trace,
        platform,
        &mut NoopSink,
        true,
        ReplayEngine::Sequential,
    )
}

/// Simulate a lazily supplied trace ([`TraceSource`]) on `platform`.
///
/// The sequential engine streams records straight out of the source —
/// collectives are expanded inline per cursor — so the trace is never
/// materialized and the record footprint stays O(ranks). For any source
/// that *can* be materialized, the result is byte-identical to
/// [`simulate`] on [`TraceSource::materialize`]'s trace (pinned by the
/// streaming differential suite).
pub fn simulate_source(
    source: &dyn TraceSource,
    platform: &Platform,
) -> Result<SimResult, SimError> {
    simulate_source_probed_with(source, platform, &mut NoopSink, ReplayEngine::Sequential)
}

/// [`simulate_source`] with an explicit replay driver.
pub fn simulate_source_with(
    source: &dyn TraceSource,
    platform: &Platform,
    engine: ReplayEngine,
) -> Result<SimResult, SimError> {
    simulate_source_probed_with(source, platform, &mut NoopSink, engine)
}

/// [`simulate_source`] with an explicit probe and replay driver.
///
/// The parallel driver compiles per-rank schedules from the whole
/// trace up front — an O(total records) pass by construction — so it
/// materializes the source and takes the classic path; only the
/// sequential engine streams.
pub fn simulate_source_probed_with<P: ProbeSink>(
    source: &dyn TraceSource,
    platform: &Platform,
    probe: &mut P,
    engine: ReplayEngine,
) -> Result<SimResult, SimError> {
    match engine {
        ReplayEngine::Sequential => {
            platform.check().map_err(SimError::BadPlatform)?;
            let (flownet, faults) = net_setup(source.nranks(), platform, false)?;
            Engine::new(
                Supply::stream(source, platform.collective),
                platform,
                flownet,
                faults,
                probe,
                EventQueue::new(),
            )
            .run()
        }
        ReplayEngine::Parallel { .. } => {
            let trace = source.materialize();
            simulate_inner(&trace, platform, probe, false, engine)
        }
    }
}

/// Aggregate outcome of a summary-mode ([`replay_scale`]) replay.
///
/// Summary mode recycles engine state, so the per-message and
/// per-interval artifacts of a [`SimResult`] don't exist; what remains
/// is the aggregate picture plus the engine's own footprint counters —
/// which are exactly the quantities a weak-scaling study plots.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// Ranks simulated.
    pub nranks: usize,
    /// Completion time of the slowest rank.
    pub runtime: Time,
    /// Discrete events processed.
    pub events_processed: u64,
    /// Event-queue high-water mark.
    pub queue_peak: usize,
    /// Point-to-point transfers simulated (after collective
    /// decomposition).
    pub transfers: u64,
    /// Records streamed through the engine (post-expansion).
    pub records_streamed: u64,
    /// High-water mark of records resident in the supply.
    pub records_peak: u64,
    /// Message-slot high-water mark (live messages, not total).
    pub msg_slots: usize,
    /// Receive-request-slot high-water mark.
    pub req_slots: usize,
    /// Channel-slot high-water mark.
    pub chan_slots: usize,
    /// State totals summed across ranks (rank order, deterministic).
    pub totals: StateTotals,
}

impl ScaleReport {
    /// Parallel efficiency: compute time over total rank-time.
    pub fn efficiency(&self) -> f64 {
        let denom = self.runtime.as_secs() * self.nranks.max(1) as f64;
        if denom == 0.0 {
            return 1.0;
        }
        self.totals.compute.as_secs() / denom
    }
}

/// Replay a [`TraceSource`] in summary mode: streamed record supply
/// *plus* recycled engine state, making live memory O(in-flight
/// traffic) instead of O(total transfers). This is the 100k–1M-rank
/// path.
///
/// Restricted to the bus contention model and the sequential driver:
/// flow-level contention keeps per-link state the summary mode has no
/// business approximating, and the parallel driver's compile pass is
/// O(total records) anyway. `runtime` and `events_processed` are
/// bit-identical to the full-fidelity streamed replay (pinned by the
/// scale cross-check test); the folded state totals may differ in the
/// last ulp because they are accumulated per push rather than per
/// merged interval.
pub fn replay_scale(
    source: &dyn TraceSource,
    platform: &Platform,
) -> Result<ScaleReport, SimError> {
    platform.check().map_err(SimError::BadPlatform)?;
    if !matches!(platform.contention, ContentionModel::Bus) {
        return Err(SimError::BadPlatform(
            "scale replay supports only the bus contention model \
             (use the streaming full-fidelity path for flow-level studies)"
                .to_string(),
        ));
    }
    let n = source.nranks();
    let mut probe = NoopSink;
    let mut eng = Engine::new(
        Supply::stream(source, platform.collective),
        platform,
        None,
        Vec::new(),
        &mut probe,
        EventQueue::new(),
    );
    eng.recycle = true;
    eng.sum_totals = vec![StateTotals::default(); n];
    eng.run_scale()
}

/// Build the flow-level network state (and resolved fault schedule)
/// for one replay, or nothing under the bus model. Cheap to call twice
/// for the same platform: the compiled topology is cached.
fn net_setup(
    nranks: usize,
    platform: &Platform,
    reference: bool,
) -> Result<(Option<FlowNet>, Vec<ResolvedFault>), SimError> {
    match &platform.contention {
        ContentionModel::Bus => Ok((None, Vec::new())),
        ContentionModel::Flow(topo) => {
            let nodes = if nranks == 0 {
                0
            } else {
                platform.node_of(nranks - 1) + 1
            };
            // sweeps replay thousands of traces on the same platform:
            // reuse the compiled topology across replays (and threads)
            let graph = LinkGraph::cached(topo, nodes, platform.bandwidth_mbs)
                .map_err(SimError::BadPlatform)?;
            let faults = platform
                .faults
                .resolve(&graph)
                .map_err(SimError::BadPlatform)?;
            let net = FlowNet::new_shared(graph);
            Ok((
                Some(if reference {
                    net.with_reference_solver()
                } else {
                    net
                }),
                faults,
            ))
        }
    }
}

fn simulate_inner<P: ProbeSink>(
    trace: &Trace,
    platform: &Platform,
    probe: &mut P,
    reference: bool,
    engine: ReplayEngine,
) -> Result<SimResult, SimError> {
    platform.check().map_err(SimError::BadPlatform)?;
    let has_collectives = trace.ranks.iter().any(|rt| {
        rt.records
            .iter()
            .any(|r| matches!(r, Record::Collective { .. }))
    });
    let expanded;
    let trace = if has_collectives {
        // Both paths produce byte-identical traces; the parallel one
        // expands rank streams on worker threads.
        expanded = match engine {
            ReplayEngine::Sequential => expand_collectives(trace, platform.collective),
            ReplayEngine::Parallel { workers } => {
                parallel::expand(trace, platform.collective, workers)
            }
        };
        &expanded
    } else {
        trace
    };
    match engine {
        ReplayEngine::Sequential => {
            let (flownet, faults) = net_setup(trace.nranks(), platform, reference)?;
            Engine::new(
                Supply::Slice(trace),
                platform,
                flownet,
                faults,
                probe,
                EventQueue::new(),
            )
            .run()
        }
        ReplayEngine::Parallel { workers } => {
            // Debug builds replay sequentially first and hold the
            // parallel engine to its byte-identical contract on every
            // single run, not just the ones the differential suite
            // covers.
            #[cfg(debug_assertions)]
            let want = {
                let (flownet, faults) = net_setup(trace.nranks(), platform, reference)?;
                Engine::new(
                    Supply::Slice(trace),
                    platform,
                    flownet,
                    faults,
                    &mut NoopSink,
                    EventQueue::new(),
                )
                .run()
            };
            let (flownet, faults) = net_setup(trace.nranks(), platform, reference)?;
            let got = parallel::run(trace, platform, flownet, faults, probe, workers);
            #[cfg(debug_assertions)]
            assert_eq!(
                render_exact(&want),
                render_exact(&got),
                "parallel engine diverged from the sequential oracle"
            );
            got
        }
    }
}

/// Lossless rendering of a replay outcome: Rust's `{:?}` for `f64`
/// prints the shortest round-trip representation, so string equality
/// here is bit equality of every timestamp, counter, and error detail.
/// Shared by the debug oracle and the differential test suite.
pub fn render_exact(outcome: &Result<SimResult, SimError>) -> String {
    format!("{outcome:#?}")
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MsgState {
    /// Waiting for resources (and, if rendezvous, for a match).
    Pending,
    /// Resources held; arrives at `t1`.
    Flying { t1: Time },
    /// Delivered at `t1`.
    Done { t1: Time },
}

/// Which level of the platform hierarchy a transfer crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Link {
    /// Same node: shared-memory model, no network resources.
    Intra,
    /// Same machine: the network model (buses + ports).
    Net,
    /// Different machines: the WAN model (WAN links + ports).
    Wan,
}

#[derive(Debug)]
struct Msg {
    src: usize,
    dst: usize,
    tag: Tag,
    bytes: Bytes,
    mode: SendMode,
    t_send: Time,
    t_start: Time,
    link: Link,
    state: MsgState,
    /// Index of the paired receive request, once matched.
    paired: Option<usize>,
    /// Rank blocked on this message (blocking send, or wait on isend).
    waiter: Option<usize>,
    waiter_since: Time,
    /// The sender has fully observed this message (its wait consumed
    /// the release time, or its parked waiter was resumed). Maintained
    /// for slot retirement in summary mode; meaningless otherwise.
    send_done: bool,
}

#[derive(Debug)]
struct RecvReq {
    rank: usize,
    /// Sender rank the receive was posted against (diagnostics only).
    src: usize,
    /// Completion time (message arrival), once known.
    complete: Option<Time>,
    /// When the receiver's recv/wait actually returned.
    consumed_at: Option<Time>,
    msg: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
enum ReqHandle {
    Recv(usize),
    Send(usize),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Blocked {
    /// Runnable or running.
    None,
    /// A Resume event is already scheduled.
    ResumeScheduled,
    /// Blocked on a receive request with unknown completion time.
    OnReq {
        req: usize,
        since: Time,
        state: State,
    },
    /// Blocked on a message (send side) with unknown grant time.
    OnMsg { since: Time, state: State },
    /// Trace fully interpreted.
    Finished,
}

/// Per-rank registry of outstanding non-blocking requests. Tracers
/// allocate request ids densely from zero, so lookups are a direct
/// index into `dense`; ids past [`DENSE_REQ_LIMIT`] (synthetic or
/// adversarial traces) fall back to a hash map.
#[derive(Default)]
struct ReqTable {
    dense: Vec<Option<ReqHandle>>,
    sparse: HashMap<u64, ReqHandle, FxBuildHasher>,
}

/// Bounds `dense` growth to 1 MiB per rank even if a trace uses one
/// huge request id.
const DENSE_REQ_LIMIT: u64 = 1 << 16;

impl ReqTable {
    fn insert(&mut self, req: ReqId, h: ReqHandle) {
        if req.0 < DENSE_REQ_LIMIT {
            let i = req.0 as usize;
            if self.dense.len() <= i {
                self.dense.resize(i + 1, None);
            }
            self.dense[i] = Some(h);
        } else {
            self.sparse.insert(req.0, h);
        }
    }

    fn remove(&mut self, req: ReqId) -> Option<ReqHandle> {
        if req.0 < DENSE_REQ_LIMIT {
            self.dense.get_mut(req.0 as usize).and_then(Option::take)
        } else {
            self.sparse.remove(&req.0)
        }
    }
}

struct RankState {
    pc: usize,
    clock: Time,
    blocked: Blocked,
    reqs: ReqTable,
    timeline: Timeline,
    markers: Vec<(ovlp_trace::record::Marker, Time)>,
}

#[derive(Default)]
struct Channel {
    unmatched_msgs: VecDeque<usize>,
    unmatched_reqs: VecDeque<usize>,
}

struct Engine<'a, P: ProbeSink, Q: QueueLike> {
    supply: Supply<'a>,
    platform: &'a Platform,
    queue: Q,
    ranks: Vec<RankState>,
    msgs: Vec<Msg>,
    recv_reqs: Vec<RecvReq>,
    /// Channels in dense storage; `(src, dst, tag)` triples are interned
    /// into ids on first use so the hot matching path is a cheap hash
    /// plus a vector index.
    chan_ids: HashMap<(u32, u32, u32), u32, FxBuildHasher>,
    channels: Vec<Channel>,
    /// Per-`(rank, pc)` match partners precompiled by the parallel
    /// driver (`u64::MAX` on non-comm and unmatched records); empty
    /// when matching runs through the channel FIFOs. Matching on a
    /// channel is FIFO on both sides and each side issues in program
    /// order, so "the k-th send on `(src, dst, tag)` pairs with the
    /// k-th recv" is a static fact — precomputing it replaces the
    /// channel hash-map and its unmatched queues without moving a
    /// single pairing.
    pair_lut: Vec<Box<[u64]>>,
    /// Runtime half of the precompiled matching: `rec_slot[rank][pc]`
    /// holds the msg id (at a send record) or recv-request id (at a
    /// recv record) once that record has executed, `u32::MAX` before.
    /// A comm record checks its partner's slot — set means the partner
    /// already executed and the pair closes now, exactly when the FIFO
    /// front would have matched.
    rec_slot: Vec<Box<[u32]>>,
    pending: VecDeque<usize>,
    resources: Resources,
    /// Tag each receive request was posted with (for state labeling).
    recv_req_tags: Vec<Tag>,
    /// Flow-level network state when the platform selected
    /// [`ContentionModel::Flow`]; `None` under the bus model.
    flownet: Option<FlowNet>,
    /// Resolved fault schedule, indexed by [`Event::Fault`]'s `idx`.
    faults: Vec<ResolvedFault>,
    /// Faults applied so far, in application order.
    fault_log: Vec<AppliedFault>,
    /// Reusable scratch buffer for flow (re-)estimates.
    flow_scratch: Vec<FlowEvent>,
    /// Observability sink; [`NoopSink`] monomorphizes all hooks away.
    probe: &'a mut P,
    /// Network-level transfers currently holding resources (maintained
    /// only when the probe is enabled).
    in_flight: u32,
    /// Stale `FlowDone` events popped and discarded.
    stale_popped: u64,
    /// Summary (scale) replay: recycle retired message/request slots,
    /// fold timelines into running totals, and garbage-collect drained
    /// channels, so live state is O(in-flight traffic) instead of
    /// O(total transfers). Never set on the full-fidelity paths — the
    /// freelists below stay empty there, which keeps message ids equal
    /// to initiation order and results bit-identical to before the
    /// field existed.
    recycle: bool,
    /// Free message slots (summary mode only).
    msg_free: Vec<usize>,
    /// Free receive-request slots (summary mode only).
    req_free: Vec<usize>,
    /// Free channel slots (summary mode only).
    chan_free: Vec<u32>,
    /// Per-rank state totals accumulated per push (summary mode only;
    /// replaces the interval timelines).
    sum_totals: Vec<StateTotals>,
    /// Transfers initiated (survives slot recycling).
    transfers_total: u64,
}

enum Flow {
    Continue,
    Yield,
}

impl<'a, P: ProbeSink, Q: QueueLike> Engine<'a, P, Q> {
    fn new(
        supply: Supply<'a>,
        platform: &'a Platform,
        flownet: Option<FlowNet>,
        faults: Vec<ResolvedFault>,
        probe: &'a mut P,
        queue: Q,
    ) -> Engine<'a, P, Q> {
        let n = supply.nranks();
        // In flow mode the topology itself is the contention: the global
        // bus limit is ignored (0 = unlimited), ports still gate each
        // endpoint's injection/extraction concurrency.
        let buses = if flownet.is_some() { 0 } else { platform.buses };
        Engine {
            supply,
            platform,
            queue,
            ranks: (0..n)
                .map(|_| RankState {
                    pc: 0,
                    clock: Time::ZERO,
                    blocked: Blocked::None,
                    reqs: ReqTable::default(),
                    timeline: Timeline::default(),
                    markers: Vec::new(),
                })
                .collect(),
            msgs: Vec::new(),
            recv_reqs: Vec::new(),
            chan_ids: HashMap::default(),
            channels: Vec::new(),
            pair_lut: Vec::new(),
            rec_slot: Vec::new(),
            pending: VecDeque::new(),
            recv_req_tags: Vec::new(),
            resources: Resources::with_wan(
                n,
                buses,
                platform.input_ports,
                platform.output_ports,
                platform.wan_links,
            ),
            flownet,
            faults,
            fault_log: Vec::new(),
            flow_scratch: Vec::new(),
            probe,
            in_flight: 0,
            stale_popped: 0,
            recycle: false,
            msg_free: Vec::new(),
            req_free: Vec::new(),
            chan_free: Vec::new(),
            sum_totals: Vec::new(),
            transfers_total: 0,
        }
    }

    /// The channel id for `(src, dst, tag)`, interned on first use.
    /// Outside summary mode `chan_free` is always empty, so ids are
    /// allocated densely in first-touch order exactly as before.
    fn channel_id(&mut self, src: usize, dst: usize, tag: Tag) -> u32 {
        let key = (src as u32, dst as u32, tag.0);
        if let Some(&id) = self.chan_ids.get(&key) {
            return id;
        }
        let id = match self.chan_free.pop() {
            Some(id) => id, // recycled slot; its queues drained before GC
            None => {
                self.channels.push(Channel::default());
                (self.channels.len() - 1) as u32
            }
        };
        self.chan_ids.insert(key, id);
        id
    }

    /// Summary mode: drop a drained channel's interning entry so the
    /// channel table tracks *live* channels, not every `(src, dst, tag)`
    /// ever seen. Streamed collectives mint a fresh tag per instance —
    /// without this the table grows O(instances × fan-out).
    fn channel_gc(&mut self, src: usize, dst: usize, tag: Tag, id: u32) {
        if !self.recycle {
            return;
        }
        let ch = &self.channels[id as usize];
        if ch.unmatched_msgs.is_empty() && ch.unmatched_reqs.is_empty() {
            self.chan_ids.remove(&(src as u32, dst as u32, tag.0));
            self.chan_free.push(id);
        }
    }

    /// Precompiled match partner (packed `(rank << 32) | pc`) for the
    /// record at `(rank, pc)`, or `u64::MAX` when no pairing LUT is
    /// installed (sequential engine) or the record is unmatched.
    #[inline]
    fn pair_at(&self, rank: usize, pc: usize) -> u64 {
        self.pair_lut.get(rank).map_or(u64::MAX, |lut| lut[pc])
    }

    /// Append a state interval to a rank's timeline, mirroring it to
    /// the probe (zero-length intervals are dropped by both).
    fn push_state(&mut self, rank: usize, start: Time, end: Time, state: State) {
        if P::ENABLED && end > start {
            self.probe.on_state(rank, start, end, state);
        }
        if self.recycle {
            // summary mode: fold the interval into running totals
            // instead of storing it (the only timeline consumer is the
            // aggregate report)
            if end > start {
                let d = end - start;
                let t = &mut self.sum_totals[rank];
                match state {
                    State::Compute => t.compute += d,
                    State::WaitRecv => t.wait_recv += d,
                    State::WaitSend => t.wait_send += d,
                    State::Collective => t.collective += d,
                    State::Done => {}
                }
            }
        } else {
            self.ranks[rank].timeline.push(start, end, state);
        }
    }

    /// Whether `Flying { t1 }` carries an exact arrival time for `mid`.
    /// Under flow-level contention a network transfer's `t1` is only an
    /// estimate that resharing may move, so arrival-dependent decisions
    /// must wait for the actual `FlowDone`.
    fn exact_flight(&self, mid: usize) -> bool {
        self.flownet.is_none() || self.msgs[mid].link != Link::Net
    }

    /// Announce the replay to the probe and seed the queue: one resume
    /// per rank at t=0, plus the resolved fault schedule.
    fn begin(&mut self) {
        if P::ENABLED {
            let links = self.flownet.as_ref().map(|n| n.links()).unwrap_or(&[]);
            self.probe.on_begin(self.ranks.len(), links);
        }
        for r in 0..self.ranks.len() {
            self.queue.push(Time::ZERO, Event::Resume { rank: r });
            self.ranks[r].blocked = Blocked::ResumeScheduled;
        }
        // an empty schedule pushes nothing, so a fault-free replay is
        // bit-identical to an engine without this feature
        for (i, f) in self.faults.iter().enumerate() {
            self.queue.push(f.at, Event::Fault { idx: i });
        }
    }

    /// Handle one popped event. Both drivers funnel every event they
    /// don't fast-path through here, so the semantics live in exactly
    /// one place.
    fn dispatch(&mut self, t: Time, ev: Event) -> Result<(), SimError> {
        if P::ENABLED {
            let kind = match ev {
                Event::Resume { .. } => EventKind::Resume,
                Event::TransferDone { .. } => EventKind::TransferDone,
                Event::FlowDone { .. } => EventKind::FlowDone,
                Event::Fault { .. } => EventKind::Fault,
            };
            self.probe.on_event(t, kind, self.queue.len());
        }
        match ev {
            Event::Resume { rank } => self.step(rank, t),
            Event::TransferDone { msg } => self.on_transfer_done(msg, t),
            Event::Fault { idx } => self.on_fault(idx, t),
            Event::FlowDone { msg, epoch } => {
                let current = self
                    .flownet
                    .as_ref()
                    .is_some_and(|n| n.is_current(msg, epoch));
                if current {
                    self.on_flow_done(msg, t)
                } else {
                    // superseded by a reshare (or the flow already
                    // finished): drop it here so the handler only
                    // ever sees live completions
                    self.stale_popped += 1;
                    if P::ENABLED {
                        self.probe.on_stale_flow_done(t);
                    }
                    Ok(())
                }
            }
        }
    }

    fn run(mut self) -> Result<SimResult, SimError> {
        self.begin();
        while let Some((t, ev)) = self.queue.pop() {
            self.dispatch(t, ev)?;
        }
        self.finish()
    }

    /// Summary-mode driver: same event loop as [`run`](Self::run), but
    /// the epilogue reports aggregates instead of materializing
    /// per-message/per-interval artifacts (which recycling already
    /// destroyed).
    fn run_scale(mut self) -> Result<ScaleReport, SimError> {
        debug_assert!(self.recycle, "run_scale requires summary mode");
        self.begin();
        while let Some((t, ev)) = self.queue.pop() {
            self.dispatch(t, ev)?;
        }
        self.finish_scale()
    }

    fn finish_scale(mut self) -> Result<ScaleReport, SimError> {
        self.check_stuck()?;
        let runtime = self.final_runtime();
        let mut totals = StateTotals::default();
        for t in &self.sum_totals {
            totals.compute += t.compute;
            totals.wait_recv += t.wait_recv;
            totals.wait_send += t.wait_send;
            totals.collective += t.collective;
        }
        Ok(ScaleReport {
            nranks: self.ranks.len(),
            runtime,
            events_processed: self.queue.processed(),
            queue_peak: self.queue.peak(),
            transfers: self.transfers_total,
            records_streamed: self.supply.records_fetched(),
            records_peak: self.supply.records_peak(),
            msg_slots: self.msgs.len(),
            req_slots: self.recv_reqs.len(),
            chan_slots: self.channels.len(),
            totals,
        })
    }

    /// Error out if any rank is still blocked after the queue drained.
    /// Takes `&mut self` because sizing a streamed rank's program for
    /// the report drains its remaining cursor — harmless on this cold
    /// path, where the replay is already dead.
    fn check_stuck(&mut self) -> Result<(), SimError> {
        let stuck_ranks: Vec<(usize, usize, Blocked)> = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, rs)| rs.blocked != Blocked::Finished)
            .map(|(r, rs)| (r, rs.pc, rs.blocked))
            .collect();
        let stuck: Vec<(usize, String)> = stuck_ranks
            .into_iter()
            .map(|(r, pc, blocked)| {
                let total = self.supply.total_len(r);
                (
                    r,
                    format!(
                        "pc={} of {}: {}",
                        pc,
                        total,
                        self.blocked_detail(r, blocked)
                    ),
                )
            })
            .collect();
        if !stuck.is_empty() {
            return Err(SimError::Deadlock { stuck });
        }
        Ok(())
    }

    /// Completion time of the slowest rank.
    fn final_runtime(&self) -> Time {
        self.ranks
            .iter()
            .map(|rs| rs.clock)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Drained-queue epilogue: deadlock check, then assemble the
    /// [`SimResult`]. Shared verbatim by both drivers (the parallel one
    /// farms the per-rank/per-message pieces out to workers but goes
    /// through the same helpers).
    fn finish(mut self) -> Result<SimResult, SimError> {
        self.check_stuck()?;
        let runtime = self.final_runtime();
        if P::ENABLED {
            self.probe.on_records_peak(self.supply.records_peak());
            self.probe.on_end(runtime, self.queue.peak());
        }
        let totals = self
            .ranks
            .iter()
            .map(|rs| StateTotals::of(&rs.timeline))
            .collect();
        let network = self.network_stats();
        let links = self.flownet.as_ref().map(|n| n.usage()).unwrap_or_default();
        let comms = self
            .msgs
            .iter()
            .map(|m| Self::comm_record(&self.recv_reqs, m))
            .collect();
        let (timelines, markers) = self
            .ranks
            .into_iter()
            .map(|rs| (rs.timeline, rs.markers))
            .unzip();
        Ok(SimResult {
            runtime,
            timelines,
            comms,
            totals,
            markers,
            network,
            links,
            events_processed: self.queue.processed(),
            queue_peak: self.queue.peak(),
            stale_events: self.stale_popped,
            fault_log: self.fault_log,
        })
    }

    /// Fold the aggregate network statistics. The `f64` accumulations
    /// run in message-initiation order — floating-point addition is not
    /// associative, so this fold must never be parallelized or
    /// reordered.
    fn network_stats(&self) -> NetworkStats {
        let mut network = NetworkStats {
            transfers: self.msgs.len(),
            ..NetworkStats::default()
        };
        for m in &self.msgs {
            match m.link {
                Link::Intra => network.intra_node += 1,
                Link::Wan => network.inter_machine += 1,
                Link::Net => {
                    if let MsgState::Done { t1 } | MsgState::Flying { t1 } = m.state {
                        network.bus_seconds += (t1 - m.t_start).as_secs();
                    }
                }
            }
            network.queue_seconds += (m.t_start - m.t_send).as_secs();
        }
        if let Some(n) = &self.flownet {
            network.reshares = n.reshares();
            network.faults_applied = n.faults_applied();
            network.flows_rerouted = n.flows_rerouted();
            network.reroute_reshares = n.reroute_reshares();
        }
        network
    }

    /// The externally visible record of one message transfer. An
    /// associated function (not a method) so worker threads can map it
    /// over message chunks while holding only the two shared slices.
    fn comm_record(recv_reqs: &[RecvReq], m: &Msg) -> CommRecord {
        let t_arrive = match m.state {
            MsgState::Done { t1 } | MsgState::Flying { t1 } => t1,
            MsgState::Pending => m.t_send, // never started (unmatched rendezvous)
        };
        let t_consume = m
            .paired
            .and_then(|r| recv_reqs[r].consumed_at)
            .unwrap_or(t_arrive)
            .max(t_arrive);
        CommRecord {
            src: Rank(m.src as u32),
            dst: Rank(m.dst as u32),
            tag: m.tag,
            bytes: m.bytes,
            t_send: m.t_send,
            t_start: m.t_start,
            t_arrive,
            t_consume,
        }
    }

    /// Human-readable account of what a stuck rank is blocked on, for
    /// deadlock reports.
    fn blocked_detail(&self, rank: usize, blocked: Blocked) -> String {
        match blocked {
            Blocked::OnReq { req, since, .. } => {
                let rr = &self.recv_reqs[req];
                let tag = self.recv_req_tags[req];
                let why = match rr.msg {
                    None => "no matching send was ever posted".to_string(),
                    Some(m) => format!(
                        "matched send is {:?} ({:?})",
                        self.msgs[m].state, self.msgs[m].mode
                    ),
                };
                format!(
                    "waiting since {:?} on recv(src={}, tag={}): {why}",
                    since, rr.src, tag.0
                )
            }
            Blocked::OnMsg { since, .. } => {
                match self.msgs.iter().find(|m| m.waiter == Some(rank)) {
                    Some(m) => format!(
                        "waiting since {:?} on send(dst={}, tag={}, {:?}, {:?})",
                        since, m.dst, m.tag.0, m.mode, m.state
                    ),
                    None => format!("waiting since {since:?} on a send"),
                }
            }
            other => format!("({other:?})"),
        }
    }

    /// Wait-state label for a tag (collective-internal traffic is
    /// rendered as collective time).
    fn wait_state(tag: Tag, base: State) -> State {
        if tag.0 & Tag::COLL_BIT != 0 {
            State::Collective
        } else {
            base
        }
    }

    fn step(&mut self, rank: usize, now: Time) -> Result<(), SimError> {
        debug_assert!(self.ranks[rank].clock <= now + Time::micros(1e-6));
        self.ranks[rank].clock = now;
        self.ranks[rank].blocked = Blocked::None;
        loop {
            let pc = self.ranks[rank].pc;
            let Some(rec) = self.supply.fetch(rank, pc) else {
                self.ranks[rank].blocked = Blocked::Finished;
                return Ok(());
            };
            let clock = self.ranks[rank].clock;
            match rec {
                Record::Marker { marker } => {
                    self.ranks[rank].markers.push((marker, clock));
                    self.ranks[rank].pc += 1;
                }
                Record::Compute { instr } => {
                    let dt = self.platform.compute_time_for(rank, instr);
                    let end = clock + dt;
                    self.push_state(rank, clock, end, State::Compute);
                    self.ranks[rank].clock = end;
                    self.ranks[rank].pc += 1;
                    self.queue.push(end, Event::Resume { rank });
                    self.ranks[rank].blocked = Blocked::ResumeScheduled;
                    return Ok(());
                }
                Record::IRecv { src, tag, req, .. } => {
                    let partner = self.pair_at(rank, pc);
                    let r = self.post_recv(rank, src.idx(), tag, clock, pc, partner)?;
                    self.ranks[rank].reqs.insert(req, ReqHandle::Recv(r));
                    self.ranks[rank].pc += 1;
                }
                Record::ISend {
                    dst,
                    tag,
                    bytes,
                    mode,
                    req,
                    ..
                } => {
                    let partner = self.pair_at(rank, pc);
                    let m =
                        self.start_send(rank, dst.idx(), tag, bytes, mode, clock, pc, partner)?;
                    self.ranks[rank].reqs.insert(req, ReqHandle::Send(m));
                    self.ranks[rank].pc += 1;
                }
                Record::Send {
                    dst,
                    tag,
                    bytes,
                    mode,
                    ..
                } => {
                    let partner = self.pair_at(rank, pc);
                    let m =
                        self.start_send(rank, dst.idx(), tag, bytes, mode, clock, pc, partner)?;
                    self.ranks[rank].pc += 1;
                    match self.wait_on_send(rank, m, clock) {
                        Flow::Continue => {}
                        Flow::Yield => return Ok(()),
                    }
                }
                Record::Recv { src, tag, .. } => {
                    let partner = self.pair_at(rank, pc);
                    let r = self.post_recv(rank, src.idx(), tag, clock, pc, partner)?;
                    self.ranks[rank].pc += 1;
                    match self.wait_on_recv(rank, r, tag, clock) {
                        Flow::Continue => {}
                        Flow::Yield => return Ok(()),
                    }
                }
                Record::Wait { req } => {
                    let handle = self.ranks[rank]
                        .reqs
                        .remove(req)
                        .ok_or(SimError::UnknownRequest { rank, req })?;
                    self.ranks[rank].pc += 1;
                    let flow = match handle {
                        ReqHandle::Recv(r) => {
                            let tag = self.msgs_tag_of_req(r);
                            self.wait_on_recv(rank, r, tag, clock)
                        }
                        ReqHandle::Send(m) => self.wait_on_send(rank, m, clock),
                    };
                    match flow {
                        Flow::Continue => {}
                        Flow::Yield => return Ok(()),
                    }
                }
                Record::Collective { .. } => {
                    unreachable!("collectives must be expanded before replay")
                }
            }
        }
    }

    /// Tag a receive request was posted with (for state labeling).
    fn msgs_tag_of_req(&self, r: usize) -> Tag {
        self.recv_req_tags[r]
    }

    fn post_recv(
        &mut self,
        rank: usize,
        src: usize,
        tag: Tag,
        now: Time,
        pc: usize,
        partner: u64,
    ) -> Result<usize, SimError> {
        let fresh = RecvReq {
            rank,
            src,
            complete: None,
            consumed_at: None,
            msg: None,
        };
        // outside summary mode the freelist is empty and ids are dense
        // posting order, exactly as before
        let idx = match self.req_free.pop() {
            Some(i) => {
                self.recv_reqs[i] = fresh;
                self.recv_req_tags[i] = tag;
                i
            }
            None => {
                self.recv_reqs.push(fresh);
                self.recv_req_tags.push(tag);
                self.recv_reqs.len() - 1
            }
        };
        let matched = if partner != u64::MAX {
            // Precompiled pairing: the partner send either executed
            // already (its slot holds the msg id — pair now, exactly
            // when it would sit at the FIFO front) or it didn't
            // (advertise this request in our own slot).
            let mid = self.rec_slot[(partner >> 32) as usize][partner as u32 as usize];
            if mid != u32::MAX {
                Some(mid as usize)
            } else {
                self.rec_slot[rank][pc] = idx as u32;
                None
            }
        } else {
            let id = self.channel_id(src, rank, tag);
            let ch = &mut self.channels[id as usize];
            if let Some(mid) = ch.unmatched_msgs.pop_front() {
                self.channel_gc(src, rank, tag, id);
                Some(mid)
            } else {
                ch.unmatched_reqs.push_back(idx);
                None
            }
        };
        if let Some(mid) = matched {
            self.pair(mid, idx);
            // a rendezvous message may have been waiting for this match
            if self.msgs[mid].mode == SendMode::Rendezvous
                && self.msgs[mid].state == MsgState::Pending
            {
                self.try_start_all(now)?;
            }
        }
        Ok(idx)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_send(
        &mut self,
        src: usize,
        dst: usize,
        tag: Tag,
        bytes: Bytes,
        mode: SendMode,
        now: Time,
        pc: usize,
        partner: u64,
    ) -> Result<usize, SimError> {
        let mode = self.platform.effective_mode(mode, bytes);
        let link = if self.platform.node_of(src) == self.platform.node_of(dst) {
            Link::Intra
        } else if self.platform.machine_of(src) == self.platform.machine_of(dst) {
            Link::Net
        } else {
            Link::Wan
        };
        let fresh = Msg {
            src,
            dst,
            tag,
            bytes,
            mode,
            t_send: now,
            t_start: now,
            link,
            state: MsgState::Pending,
            paired: None,
            waiter: None,
            waiter_since: now,
            send_done: false,
        };
        self.transfers_total += 1;
        // outside summary mode the freelist is empty and message ids
        // are dense initiation order, exactly as before
        let mid = match self.msg_free.pop() {
            Some(i) => {
                self.msgs[i] = fresh;
                i
            }
            None => {
                self.msgs.push(fresh);
                self.msgs.len() - 1
            }
        };
        if P::ENABLED {
            self.probe.on_send_posted(
                mid,
                src,
                dst,
                tag.0,
                bytes.get(),
                mode == SendMode::Rendezvous,
                now,
            );
        }
        if partner != u64::MAX {
            let req = self.rec_slot[(partner >> 32) as usize][partner as u32 as usize];
            if req != u32::MAX {
                self.pair(mid, req as usize);
            } else {
                self.rec_slot[src][pc] = mid as u32;
            }
        } else {
            let id = self.channel_id(src, dst, tag);
            let ch = &mut self.channels[id as usize];
            if let Some(req) = ch.unmatched_reqs.pop_front() {
                self.channel_gc(src, dst, tag, id);
                self.pair(mid, req);
            } else {
                ch.unmatched_msgs.push_back(mid);
            }
        }
        self.pending.push_back(mid);
        self.try_start_all(now)?;
        Ok(mid)
    }

    fn pair(&mut self, mid: usize, req: usize) {
        debug_assert!(self.msgs[mid].paired.is_none());
        debug_assert!(self.recv_reqs[req].msg.is_none());
        self.msgs[mid].paired = Some(req);
        self.recv_reqs[req].msg = Some(mid);
        let known = match self.msgs[mid].state {
            MsgState::Done { t1 } => Some(t1),
            MsgState::Flying { t1 } if self.exact_flight(mid) => Some(t1),
            _ => None,
        };
        if let Some(t1) = known {
            // arrival time already known
            self.complete_recv_req(req, t1);
        }
        // rendezvous messages may have been waiting for this match
        // (grant attempted by the caller via try_start_all where needed)
    }

    /// Summary mode: recycle a message slot (and its paired receive
    /// request) once no live path can reference it again — delivered,
    /// sender fully released, receiver consumed. Each condition is
    /// reported by exactly one code path, and this is called from all
    /// of them, so whichever fires last retires the slot. A no-op
    /// outside summary mode and whenever any condition is still open
    /// (retries harmlessly until the last one closes).
    fn try_retire(&mut self, mid: usize) {
        if !self.recycle {
            return;
        }
        let m = &self.msgs[mid];
        if !matches!(m.state, MsgState::Done { .. }) || !m.send_done || m.waiter.is_some() {
            return;
        }
        let Some(req) = m.paired else { return };
        if self.recv_reqs[req].consumed_at.is_none() {
            return;
        }
        // scrub the links so a stale retire attempt on the freed slot
        // (before reuse) sees no pairing and no-ops
        self.msgs[mid].paired = None;
        self.recv_reqs[req].msg = None;
        self.msg_free.push(mid);
        self.req_free.push(req);
    }

    /// Record a receive request's completion time and unblock its owner
    /// if currently parked on it.
    fn complete_recv_req(&mut self, req: usize, t1: Time) {
        self.recv_reqs[req].complete = Some(t1);
        let owner = self.recv_reqs[req].rank;
        if let Blocked::OnReq {
            req: r,
            since,
            state,
        } = self.ranks[owner].blocked
        {
            if r == req {
                let resume = t1.max(since);
                self.push_state(owner, since, resume, state);
                if P::ENABLED && resume > since {
                    if let Some(mid) = self.recv_reqs[req].msg {
                        self.probe
                            .on_wait_edge(owner, since, resume, mid, WaitEdge::Arrival);
                    }
                }
                self.recv_reqs[req].consumed_at = Some(resume);
                self.queue.push(resume, Event::Resume { rank: owner });
                self.ranks[owner].blocked = Blocked::ResumeScheduled;
            }
        }
        if self.recycle {
            if let Some(mid) = self.recv_reqs[req].msg {
                self.try_retire(mid);
            }
        }
    }

    /// First-fit scan of the pending queue, granting resources to every
    /// startable transfer at time `now`. Fails only when a killed link
    /// left a transfer's endpoints disconnected.
    fn try_start_all(&mut self, now: Time) -> Result<(), SimError> {
        let mut i = 0;
        while i < self.pending.len() {
            let mid = self.pending[i];
            let (src, dst, mode, paired, bytes, link) = {
                let m = &self.msgs[mid];
                (m.src, m.dst, m.mode, m.paired, m.bytes, m.link)
            };
            if mode == SendMode::Rendezvous && paired.is_none() {
                i += 1;
                continue;
            }
            let granted = match link {
                Link::Intra => true,
                Link::Net => self.resources.try_acquire(src, dst),
                Link::Wan => self.resources.try_acquire_wan(src, dst),
            };
            if !granted {
                i += 1;
                continue;
            }
            self.pending.remove(i);
            self.msgs[mid].t_start = now;
            if P::ENABLED {
                self.probe.on_injected(src, now, bytes.get());
                if link != Link::Intra {
                    self.in_flight += 1;
                    self.probe.on_transfer_start(
                        now,
                        self.in_flight,
                        self.resources.buses_in_use(),
                        self.resources.ports_in_use(),
                    );
                }
            }
            let flow_mode = self.flownet.is_some() && link == Link::Net;
            let t1 = if flow_mode {
                // flow-level: register the flow; its completion arrives
                // as an epoch-guarded FlowDone, `t1` is only the current
                // estimate
                self.start_flow(mid, src, dst, bytes, now)?
            } else {
                let t1 = now
                    + match link {
                        Link::Intra => self.platform.intra_transfer_time(bytes),
                        Link::Net => self.platform.transfer_time(bytes),
                        Link::Wan => self.platform.wan_transfer_time(bytes),
                    };
                self.queue.push(t1, Event::TransferDone { msg: mid });
                t1
            };
            self.msgs[mid].state = MsgState::Flying { t1 };
            if P::ENABLED {
                // the uncontended arrival of a flow-level transfer is
                // reported by the allocator (`on_flow_path`); closed-form
                // link classes arrive exactly at `t1`
                let unc = if flow_mode { None } else { Some(t1) };
                self.probe
                    .on_transfer_granted(mid, now, self.injection_latency(link), unc);
            }
            // a sender parked on this message can now compute its
            // release time (a rendezvous sender in flow mode cannot:
            // it stays parked until the actual FlowDone)
            if let Some(w) = self.msgs[mid].waiter {
                let resume = match mode {
                    SendMode::Eager => Some(now + self.injection_latency(link)),
                    SendMode::Rendezvous if !flow_mode => Some(t1),
                    SendMode::Rendezvous => None,
                };
                if let Some(resume) = resume {
                    let since = self.msgs[mid].waiter_since;
                    if let Blocked::OnMsg { state, .. } = self.ranks[w].blocked {
                        self.push_state(w, since, resume, state);
                        if P::ENABLED && resume > since {
                            let edge = if mode == SendMode::Eager {
                                WaitEdge::Injection
                            } else {
                                WaitEdge::Arrival
                            };
                            self.probe.on_wait_edge(w, since, resume, mid, edge);
                        }
                        self.queue.push(resume, Event::Resume { rank: w });
                        self.ranks[w].blocked = Blocked::ResumeScheduled;
                        self.msgs[mid].waiter = None;
                        // the parked sender is scheduled and will never
                        // look at this message again
                        self.msgs[mid].send_done = true;
                    }
                }
            }
        }
        Ok(())
    }

    /// Convert a routing failure into the engine-level error.
    fn partitioned(p: Partition) -> SimError {
        SimError::Partitioned {
            src: p.src,
            dst: p.dst,
            link: String::from(&*p.link),
        }
    }

    /// Register message `mid` as a flow over the topology and schedule
    /// every (re-)estimated completion. Returns the new flow's estimate.
    fn start_flow(
        &mut self,
        mid: usize,
        src: usize,
        dst: usize,
        bytes: Bytes,
        now: Time,
    ) -> Result<Time, SimError> {
        let mut evs = std::mem::take(&mut self.flow_scratch);
        evs.clear();
        let net = self.flownet.as_mut().expect("flow mode");
        net.start(
            mid,
            self.platform.node_of(src),
            self.platform.node_of(dst),
            bytes.get() as f64,
            self.platform.latency().as_secs(),
            now,
            &mut evs,
            self.probe,
        )
        .map_err(Self::partitioned)?;
        let mut est = now;
        for e in &evs {
            self.queue.push(
                e.at,
                Event::FlowDone {
                    msg: e.msg,
                    epoch: e.epoch,
                },
            );
            if e.msg == mid {
                est = e.at;
            }
        }
        self.flow_scratch = evs;
        Ok(est)
    }

    /// A scheduled fault strikes: settle traffic, mutate the fabric,
    /// reroute flows off killed links, and schedule the re-estimated
    /// completions. A fault that disconnects an in-flight flow's
    /// endpoints fails the replay with [`SimError::Partitioned`].
    fn on_fault(&mut self, idx: usize, now: Time) -> Result<(), SimError> {
        let mut evs = std::mem::take(&mut self.flow_scratch);
        evs.clear();
        let f = &self.faults[idx];
        let net = self.flownet.as_mut().expect("faults need flow mode");
        let outcome = net
            .apply_fault(&f.action, &f.links, now, &mut evs, self.probe)
            .map_err(Self::partitioned)?;
        if P::ENABLED {
            self.probe
                .on_fault(now, &f.links, &f.action, outcome.rerouted, outcome.reshared);
        }
        self.fault_log.push(AppliedFault {
            at: now,
            desc: f.desc.clone(),
        });
        for e in &evs {
            self.queue.push(
                e.at,
                Event::FlowDone {
                    msg: e.msg,
                    epoch: e.epoch,
                },
            );
        }
        self.flow_scratch = evs;
        Ok(())
    }

    /// A flow's *live* completion estimate fired (the run loop already
    /// discarded stale epochs): the transfer is delivered exactly like a
    /// `TransferDone`, and the freed bandwidth is reshared among the
    /// surviving flows.
    fn on_flow_done(&mut self, mid: usize, t1: Time) -> Result<(), SimError> {
        let mut evs = std::mem::take(&mut self.flow_scratch);
        evs.clear();
        self.flownet
            .as_mut()
            .expect("flow mode")
            .finish(mid, t1, &mut evs, self.probe);
        for e in &evs {
            self.queue.push(
                e.at,
                Event::FlowDone {
                    msg: e.msg,
                    epoch: e.epoch,
                },
            );
        }
        self.flow_scratch = evs;
        let (src, dst) = (self.msgs[mid].src, self.msgs[mid].dst);
        self.msgs[mid].state = MsgState::Done { t1 };
        self.resources
            .release(src, dst)
            .map_err(SimError::Accounting)?;
        if P::ENABLED {
            self.in_flight -= 1;
            self.probe.on_transfer_done(
                t1,
                self.in_flight,
                self.resources.buses_in_use(),
                self.resources.ports_in_use(),
            );
        }
        self.try_start_all(t1)?;
        // a rendezvous sender may still be parked on this message
        if let Some(w) = self.msgs[mid].waiter {
            let since = self.msgs[mid].waiter_since;
            if let Blocked::OnMsg { state, .. } = self.ranks[w].blocked {
                let resume = t1.max(since);
                self.push_state(w, since, resume, state);
                if P::ENABLED && resume > since {
                    self.probe
                        .on_wait_edge(w, since, resume, mid, WaitEdge::Arrival);
                }
                self.queue.push(resume, Event::Resume { rank: w });
                self.ranks[w].blocked = Blocked::ResumeScheduled;
                self.msgs[mid].waiter = None;
                self.msgs[mid].send_done = true;
            }
        }
        if let Some(req) = self.msgs[mid].paired {
            if self.recv_reqs[req].complete.is_none() {
                self.complete_recv_req(req, t1);
            }
        }
        Ok(())
    }

    /// Sender-side injection latency per link class (eager sends).
    fn injection_latency(&self, link: Link) -> Time {
        match link {
            Link::Intra => Time::micros(self.platform.intra_latency_us),
            Link::Net => self.platform.latency(),
            Link::Wan => Time::micros(self.platform.wan_latency_us),
        }
    }

    fn on_transfer_done(&mut self, mid: usize, t1: Time) -> Result<(), SimError> {
        let (src, dst) = (self.msgs[mid].src, self.msgs[mid].dst);
        self.msgs[mid].state = MsgState::Done { t1 };
        match self.msgs[mid].link {
            Link::Intra => Ok(()),
            Link::Net => self.resources.release(src, dst),
            Link::Wan => self.resources.release_wan(src, dst),
        }
        .map_err(SimError::Accounting)?;
        if P::ENABLED && self.msgs[mid].link != Link::Intra {
            self.in_flight -= 1;
            self.probe.on_transfer_done(
                t1,
                self.in_flight,
                self.resources.buses_in_use(),
                self.resources.ports_in_use(),
            );
        }
        self.try_start_all(t1)?;
        if let Some(req) = self.msgs[mid].paired {
            if self.recv_reqs[req].complete.is_none() {
                self.complete_recv_req(req, t1);
            }
        }
        self.try_retire(mid);
        Ok(())
    }

    /// Receiver-side wait (blocking recv, or wait on an irecv request).
    fn wait_on_recv(&mut self, rank: usize, req: usize, tag: Tag, clock: Time) -> Flow {
        let state = Self::wait_state(tag, State::WaitRecv);
        // arrival time, if already determined
        let known = self.recv_reqs[req].complete.or_else(|| {
            self.recv_reqs[req]
                .msg
                .and_then(|m| match self.msgs[m].state {
                    MsgState::Done { t1 } => Some(t1),
                    MsgState::Flying { t1 } if self.exact_flight(m) => Some(t1),
                    _ => None,
                })
        });
        match known {
            Some(tc) if tc <= clock => {
                self.recv_reqs[req].consumed_at = Some(clock);
                if self.recycle {
                    if let Some(mid) = self.recv_reqs[req].msg {
                        self.try_retire(mid);
                    }
                }
                Flow::Continue
            }
            Some(tc) => {
                self.push_state(rank, clock, tc, state);
                if P::ENABLED {
                    if let Some(mid) = self.recv_reqs[req].msg {
                        self.probe
                            .on_wait_edge(rank, clock, tc, mid, WaitEdge::Arrival);
                    }
                }
                self.recv_reqs[req].consumed_at = Some(tc);
                self.queue.push(tc, Event::Resume { rank });
                self.ranks[rank].blocked = Blocked::ResumeScheduled;
                if self.recycle {
                    if let Some(mid) = self.recv_reqs[req].msg {
                        self.try_retire(mid);
                    }
                }
                Flow::Yield
            }
            None => {
                self.ranks[rank].blocked = Blocked::OnReq {
                    req,
                    since: clock,
                    state,
                };
                Flow::Yield
            }
        }
    }

    /// Sender-side wait (blocking send, or wait on an isend request).
    fn wait_on_send(&mut self, rank: usize, mid: usize, clock: Time) -> Flow {
        let state = Self::wait_state(self.msgs[mid].tag, State::WaitSend);
        let release = match (self.msgs[mid].state, self.msgs[mid].mode) {
            (MsgState::Pending, _) => None,
            (MsgState::Flying { .. } | MsgState::Done { .. }, SendMode::Eager) => {
                Some(self.msgs[mid].t_start + self.injection_latency(self.msgs[mid].link))
            }
            (MsgState::Done { t1 }, SendMode::Rendezvous) => Some(t1),
            (MsgState::Flying { t1 }, SendMode::Rendezvous) if self.exact_flight(mid) => Some(t1),
            // flow-level estimate: park until the actual FlowDone
            (MsgState::Flying { .. }, SendMode::Rendezvous) => None,
        };
        match release {
            Some(tc) if tc <= clock => {
                self.msgs[mid].send_done = true;
                self.try_retire(mid);
                Flow::Continue
            }
            Some(tc) => {
                self.push_state(rank, clock, tc, state);
                if P::ENABLED {
                    let edge = if self.msgs[mid].mode == SendMode::Eager {
                        WaitEdge::Injection
                    } else {
                        WaitEdge::Arrival
                    };
                    self.probe.on_wait_edge(rank, clock, tc, mid, edge);
                }
                self.queue.push(tc, Event::Resume { rank });
                self.ranks[rank].blocked = Blocked::ResumeScheduled;
                self.msgs[mid].send_done = true;
                self.try_retire(mid);
                Flow::Yield
            }
            None => {
                self.msgs[mid].waiter = Some(rank);
                self.msgs[mid].waiter_since = clock;
                self.ranks[rank].blocked = Blocked::OnMsg {
                    since: clock,
                    state,
                };
                Flow::Yield
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::{Instructions, TransferId};

    const EPS: f64 = 1e-9;

    fn plat() -> Platform {
        // round numbers: 1000 MIPS, 100 MB/s, 10 us latency
        Platform {
            mips: 1000.0,
            bandwidth_mbs: 100.0,
            latency_us: 10.0,
            buses: 0,
            input_ports: 1,
            output_ports: 1,
            collective: crate::platform::CollectiveAlgo::Binomial,
            ..Platform::default()
        }
    }

    fn tid(r: u32, s: u32) -> TransferId {
        TransferId::new(Rank(r), s)
    }

    fn compute(instr: u64) -> Record {
        Record::Compute {
            instr: Instructions(instr),
        }
    }

    fn send(dst: u32, tag: u32, bytes: u64, s: u32) -> Record {
        Record::Send {
            dst: Rank(dst),
            tag: Tag::user(tag),
            bytes: Bytes(bytes),
            mode: SendMode::Eager,
            transfer: tid(99, s),
        }
    }

    fn recv(src: u32, tag: u32, bytes: u64, s: u32) -> Record {
        Record::Recv {
            src: Rank(src),
            tag: Tag::user(tag),
            bytes: Bytes(bytes),
            transfer: tid(98, s),
        }
    }

    /// Single message on an idle network: receiver finishes exactly at
    /// latency + size/BW (sender sends at t=0, receiver posted at t=0).
    #[test]
    fn single_message_linear_model() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(send(1, 0, 1_000_000, 0)); // 1 MB
        t.rank_mut(Rank(1)).push(recv(0, 0, 1_000_000, 0));
        let res = simulate(&t, &plat()).unwrap();
        // wire = 1e6 / 100e6 = 10 ms; latency 10 us
        let expect = 0.01 + 10e-6;
        assert!((res.runtime() - expect).abs() < EPS, "{}", res.runtime());
        // receiver waited the whole transfer
        assert!(
            (res.totals[1].wait_recv.as_secs() - expect).abs() < EPS,
            "{:?}",
            res.totals[1]
        );
        // sender released after latency only (eager)
        assert!((res.totals[0].wait_send.as_secs() - 10e-6).abs() < EPS);
        // comm record fields agree
        let c = &res.comms[0];
        assert_eq!(c.t_send, Time::ZERO);
        assert_eq!(c.t_start, Time::ZERO);
        assert!((c.t_arrive.as_secs() - expect).abs() < EPS);
    }

    /// Computation bursts scale by MIPS.
    #[test]
    fn compute_only() {
        let mut t = Trace::new(1);
        t.rank_mut(Rank(0)).push(compute(5_000_000)); // 5 Minstr @ 1000 MIPS = 5 ms
        let res = simulate(&t, &plat()).unwrap();
        assert!((res.runtime() - 0.005).abs() < EPS);
        assert!((res.totals[0].compute.as_secs() - 0.005).abs() < EPS);
        assert!((res.efficiency() - 1.0).abs() < EPS);
    }

    /// Ping-pong: runtime = 2 * (latency + size/BW) when both sides are
    /// otherwise idle.
    #[test]
    fn ping_pong() {
        let mut t = Trace::new(2);
        let r0 = t.rank_mut(Rank(0));
        r0.push(send(1, 0, 100_000, 0));
        r0.push(recv(1, 1, 100_000, 1));
        let r1 = t.rank_mut(Rank(1));
        r1.push(recv(0, 0, 100_000, 0));
        r1.push(send(0, 1, 100_000, 1));
        let res = simulate(&t, &plat()).unwrap();
        let one = 10e-6 + 1e5 / 100e6;
        assert!((res.runtime() - 2.0 * one).abs() < EPS, "{}", res.runtime());
    }

    /// k simultaneous messages over b buses serialize into ceil(k/b)
    /// wire rounds. Use distinct (src,dst) pairs so ports don't bind.
    #[test]
    fn bus_contention_serializes() {
        let k = 4u32;
        let bytes = 1_000_000u64; // 10 ms each
        for buses in [1u32, 2, 4] {
            let mut t = Trace::new(2 * k as usize);
            for i in 0..k {
                t.rank_mut(Rank(i)).push(send(k + i, 0, bytes, 0));
                t.rank_mut(Rank(k + i)).push(recv(i, 0, bytes, 0));
            }
            let p = Platform { buses, ..plat() };
            let res = simulate(&t, &p).unwrap();
            let rounds = k.div_ceil(buses);
            let expect = rounds as f64 * 0.01 + 10e-6 * 1.0; // latency overlaps per round start...
                                                             // each round's transfers start when a bus frees: round r starts at r*(10ms+10us)?
                                                             // transfer occupies resources for latency+wire, so rounds serialize fully:
            let expect_full = rounds as f64 * (0.01 + 10e-6);
            let _ = expect;
            assert!(
                (res.runtime() - expect_full).abs() < 1e-6,
                "buses={buses}: got {} want {}",
                res.runtime(),
                expect_full
            );
        }
    }

    /// A single output port serializes two sends from the same rank.
    #[test]
    fn output_port_serializes() {
        let mut t = Trace::new(3);
        let r0 = t.rank_mut(Rank(0));
        r0.push(Record::ISend {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            req: ovlp_trace::ReqId(0),
            transfer: tid(0, 0),
        });
        r0.push(Record::ISend {
            dst: Rank(2),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Eager,
            req: ovlp_trace::ReqId(1),
            transfer: tid(0, 1),
        });
        t.rank_mut(Rank(1)).push(recv(0, 0, 1_000_000, 0));
        t.rank_mut(Rank(2)).push(recv(0, 0, 1_000_000, 0));
        let res = simulate(&t, &plat()).unwrap();
        let one = 0.01 + 10e-6;
        assert!((res.runtime() - 2.0 * one).abs() < EPS, "{}", res.runtime());

        // with 2 output ports they run concurrently
        let p = Platform {
            output_ports: 2,
            ..plat()
        };
        let res2 = simulate(&t, &p).unwrap();
        assert!((res2.runtime() - one).abs() < EPS, "{}", res2.runtime());
    }

    /// IRecv + overlap: receiver computes while the message flies; the
    /// wait costs nothing if compute covers the transfer.
    #[test]
    fn irecv_overlaps_compute() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(send(1, 0, 1_000_000, 0)); // arrives ~10ms
        let r1 = t.rank_mut(Rank(1));
        r1.push(Record::IRecv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            req: ovlp_trace::ReqId(0),
            transfer: tid(1, 0),
        });
        r1.push(compute(20_000_000)); // 20 ms > transfer
        r1.push(Record::Wait {
            req: ovlp_trace::ReqId(0),
        });
        let res = simulate(&t, &plat()).unwrap();
        assert!((res.runtime() - 0.02).abs() < EPS, "{}", res.runtime());
        assert_eq!(res.totals[1].wait_recv, Time::ZERO);
    }

    /// Blocking recv with no overlap pays the full transfer.
    #[test]
    fn blocking_recv_pays_transfer() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(send(1, 0, 1_000_000, 0));
        let r1 = t.rank_mut(Rank(1));
        r1.push(recv(0, 0, 1_000_000, 0));
        r1.push(compute(20_000_000));
        let res = simulate(&t, &plat()).unwrap();
        let expect = 0.01 + 10e-6 + 0.02;
        assert!((res.runtime() - expect).abs() < EPS, "{}", res.runtime());
    }

    /// Rendezvous sender blocks until delivery; transfer cannot start
    /// before the receive is posted.
    #[test]
    fn rendezvous_waits_for_match() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(1_000_000),
            mode: SendMode::Rendezvous,
            transfer: tid(0, 0),
        });
        let r1 = t.rank_mut(Rank(1));
        r1.push(compute(50_000_000)); // 50 ms before posting recv
        r1.push(recv(0, 0, 1_000_000, 0));
        let res = simulate(&t, &plat()).unwrap();
        let expect = 0.05 + 0.01 + 10e-6;
        assert!((res.runtime() - expect).abs() < EPS, "{}", res.runtime());
        // sender was blocked the whole time
        assert!((res.totals[0].wait_send.as_secs() - expect).abs() < EPS);
    }

    /// Eager message sent before recv posted: arrival buffered, recv
    /// returns immediately when late-posted.
    #[test]
    fn eager_early_arrival_buffers() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(send(1, 0, 1000, 0)); // tiny, arrives fast
        let r1 = t.rank_mut(Rank(1));
        r1.push(compute(50_000_000)); // 50 ms
        r1.push(recv(0, 0, 1000, 0));
        let res = simulate(&t, &plat()).unwrap();
        assert!((res.runtime() - 0.05).abs() < EPS, "{}", res.runtime());
        assert_eq!(res.totals[1].wait_recv, Time::ZERO);
    }

    /// FIFO matching: two same-tag messages of different sizes must
    /// match their receives in order.
    #[test]
    fn fifo_matching_preserves_order() {
        let mut t = Trace::new(2);
        let r0 = t.rank_mut(Rank(0));
        r0.push(send(1, 0, 1_000_000, 0)); // big first
        r0.push(send(1, 0, 1000, 1)); // small second
        let r1 = t.rank_mut(Rank(1));
        r1.push(recv(0, 0, 1_000_000, 0));
        r1.push(recv(0, 0, 1000, 1));
        let res = simulate(&t, &plat()).unwrap();
        // first recv completes after big message; second after small
        // (serialized by the sender's single output port)
        let big = 0.01 + 10e-6;
        let small = 1e3 / 100e6 + 10e-6;
        assert!((res.runtime() - (big + small)).abs() < EPS);
        assert!(res.comms[0].t_arrive < res.comms[1].t_arrive);
    }

    /// Deadlock (recv with no sender) is detected, not an infinite
    /// loop, and the report says what the stuck rank waits on.
    #[test]
    fn deadlock_detected() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(recv(1, 0, 100, 0));
        let err = simulate(&t, &plat()).unwrap_err();
        match err {
            SimError::Deadlock { stuck } => {
                assert_eq!(stuck.len(), 1);
                assert_eq!(stuck[0].0, 0);
                assert!(
                    stuck[0].1.contains("recv(src=1, tag=0)")
                        && stuck[0].1.contains("no matching send"),
                    "uninformative deadlock detail: {}",
                    stuck[0].1
                );
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    /// A rendezvous sender with no receiver deadlocks with a send-side
    /// diagnosis.
    #[test]
    fn deadlock_reports_blocked_sender() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(7),
            bytes: Bytes(1_000_000),
            mode: SendMode::Rendezvous,
            transfer: tid(0, 0),
        });
        let err = simulate(&t, &plat()).unwrap_err();
        match err {
            SimError::Deadlock { stuck } => {
                assert_eq!(stuck[0].0, 0);
                assert!(
                    stuck[0].1.contains("send(dst=1, tag=7"),
                    "uninformative deadlock detail: {}",
                    stuck[0].1
                );
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    /// Killing the only path on a crossbar (no route diversity) fails
    /// cleanly with `Partitioned` instead of hanging.
    #[test]
    fn killed_crossbar_link_partitions() {
        let mut t = Trace::new(2);
        let r0 = t.rank_mut(Rank(0));
        r0.push(compute(2_000_000)); // 2 ms, so the send follows the kill
        r0.push(send(1, 0, 1_000_000, 0));
        t.rank_mut(Rank(1)).push(recv(0, 0, 1_000_000, 1));
        let p = plat()
            .with_topology(crate::net::Topology::Crossbar)
            .with_faults("kill@1ms:n0->sw".parse().unwrap());
        match simulate(&t, &p).unwrap_err() {
            SimError::Partitioned { src, dst, link } => {
                assert_eq!((src, dst), (0, 1));
                assert_eq!(link, "n0->sw");
            }
            other => panic!("expected partition, got {other}"),
        }
    }

    /// Degrading a link stretches the wire time by exactly the factor
    /// (single flow, crossbar: the degraded up-link is the bottleneck).
    #[test]
    fn degraded_link_slows_transfers() {
        let mut t = Trace::new(2);
        let r0 = t.rank_mut(Rank(0));
        r0.push(compute(2_000_000)); // 2 ms
        r0.push(send(1, 0, 1_000_000, 0));
        let r1 = t.rank_mut(Rank(1));
        r1.push(compute(2_000_000));
        r1.push(recv(0, 0, 1_000_000, 1));
        let base = plat().with_topology(crate::net::Topology::Crossbar);
        let healthy = simulate(&t, &base).unwrap();
        let degraded = simulate(
            &t,
            &base.with_faults("degrade=0.5@1ms:n0->sw".parse().unwrap()),
        )
        .unwrap();
        // healthy: 2 ms + 10 ms wire; degraded: 2 ms + 20 ms wire
        assert!(
            (healthy.runtime() - (0.002 + 0.01 + 10e-6)).abs() < EPS,
            "{}",
            healthy.runtime()
        );
        assert!(
            (degraded.runtime() - (0.002 + 0.02 + 10e-6)).abs() < EPS,
            "{}",
            degraded.runtime()
        );
        assert_eq!(degraded.network.faults_applied, 1);
        assert_eq!(degraded.fault_log.len(), 1);
        assert!(degraded.fault_log[0].desc.contains("degrade"));
        let faulted: Vec<_> = degraded
            .links
            .iter()
            .filter(|l| l.faults > 0)
            .map(|l| &*l.label)
            .collect();
        assert_eq!(faulted, ["n0->sw"]);
    }

    /// Kill-then-restore around an idle period completes and matches
    /// the fault-free replay bit for bit (no traffic ever saw the dead
    /// link).
    #[test]
    fn kill_restore_on_idle_link_is_invisible() {
        let mut t = Trace::new(2);
        let r0 = t.rank_mut(Rank(0));
        r0.push(compute(5_000_000)); // 5 ms of compute covers the outage
        r0.push(send(1, 0, 1_000_000, 0));
        let r1 = t.rank_mut(Rank(1));
        r1.push(compute(5_000_000));
        r1.push(recv(0, 0, 1_000_000, 1));
        let base = plat().with_topology(crate::net::Topology::Crossbar);
        let clean = simulate(&t, &base).unwrap();
        let faulted = simulate(
            &t,
            &base.with_faults("kill@1ms:n0->sw;restore@2ms:n0->sw".parse().unwrap()),
        )
        .unwrap();
        assert_eq!(clean.runtime().to_bits(), faulted.runtime().to_bits());
        assert_eq!(clean.timelines, faulted.timelines);
        assert_eq!(faulted.network.faults_applied, 2);
        assert_eq!(faulted.network.flows_rerouted, 0);
        assert_eq!(faulted.network.reroute_reshares, 0);
    }

    /// Wait on an unknown request is an error.
    #[test]
    fn unknown_request_detected() {
        let mut t = Trace::new(1);
        t.rank_mut(Rank(0)).push(Record::Wait {
            req: ovlp_trace::ReqId(42),
        });
        assert!(matches!(
            simulate(&t, &plat()),
            Err(SimError::UnknownRequest { .. })
        ));
    }

    /// Collectives are expanded transparently: a barrier synchronizes
    /// skewed ranks.
    #[test]
    fn barrier_synchronizes() {
        let mut t = Trace::new(4);
        for r in 0..4u32 {
            let rt = t.rank_mut(Rank(r));
            rt.push(compute((r as u64 + 1) * 1_000_000)); // 1..4 ms
            rt.push(Record::Collective {
                op: ovlp_trace::CollOp::Barrier,
                bytes_in: Bytes::ZERO,
                bytes_out: Bytes::ZERO,
                root: Rank(0),
                transfer: tid(r, 0),
            });
            rt.push(compute(1_000_000));
        }
        let res = simulate(&t, &plat()).unwrap();
        // all ranks leave the barrier after the slowest (4 ms) plus
        // a few latencies; then 1 ms of compute
        assert!(res.runtime() > 0.005);
        assert!(res.runtime() < 0.0052, "{}", res.runtime());
        // collective time is labeled as such
        assert!(res.totals[0].collective > Time::ZERO);
    }

    /// Determinism: identical inputs give identical outputs.
    #[test]
    fn deterministic() {
        let mut t = Trace::new(4);
        for r in 0..4u32 {
            let rt = t.rank_mut(Rank(r));
            rt.push(compute(1_000_000 * (r as u64 + 1)));
            rt.push(send((r + 1) % 4, 0, 10_000, 0));
            rt.push(recv((r + 3) % 4, 0, 10_000, 1));
            rt.push(compute(500_000));
        }
        let p = Platform { buses: 2, ..plat() };
        let a = simulate(&t, &p).unwrap();
        let b = simulate(&t, &p).unwrap();
        assert_eq!(a.runtime, b.runtime);
        assert_eq!(a.timelines, b.timelines);
        assert_eq!(a.events_processed, b.events_processed);
    }

    /// More bandwidth never hurts.
    #[test]
    fn runtime_monotone_in_bandwidth() {
        let mut t = Trace::new(2);
        let r0 = t.rank_mut(Rank(0));
        r0.push(compute(1_000_000));
        r0.push(send(1, 0, 500_000, 0));
        let r1 = t.rank_mut(Rank(1));
        r1.push(recv(0, 0, 500_000, 0));
        r1.push(compute(1_000_000));
        let mut last = f64::INFINITY;
        for bw in [10.0, 50.0, 100.0, 1000.0, f64::INFINITY] {
            let res = simulate(&t, &plat().with_bandwidth(bw)).unwrap();
            assert!(
                res.runtime() <= last + EPS,
                "bw={bw}: {} > {last}",
                res.runtime()
            );
            last = res.runtime();
        }
    }

    /// Marker records are free.
    #[test]
    fn markers_cost_nothing() {
        let mut t = Trace::new(1);
        let rt = t.rank_mut(Rank(0));
        rt.push(Record::Marker {
            marker: ovlp_trace::record::Marker::IterBegin(0),
        });
        rt.push(compute(1_000_000));
        rt.push(Record::Marker {
            marker: ovlp_trace::record::Marker::IterEnd(0),
        });
        let res = simulate(&t, &plat()).unwrap();
        assert!((res.runtime() - 0.001).abs() < EPS);
    }

    /// Empty trace simulates to zero time.
    #[test]
    fn empty_trace() {
        let res = simulate(&Trace::new(3), &plat()).unwrap();
        assert_eq!(res.runtime, Time::ZERO);
        assert_eq!(res.comms.len(), 0);
    }

    /// Engine selector round-trips through its textual form.
    #[test]
    fn engine_parses_and_displays() {
        assert_eq!(
            "sequential".parse::<ReplayEngine>().unwrap(),
            ReplayEngine::Sequential
        );
        assert_eq!(
            "seq".parse::<ReplayEngine>().unwrap(),
            ReplayEngine::Sequential
        );
        assert_eq!(
            "parallel:4".parse::<ReplayEngine>().unwrap(),
            ReplayEngine::Parallel { workers: 4 }
        );
        assert_eq!(
            "par:2".parse::<ReplayEngine>().unwrap(),
            ReplayEngine::Parallel { workers: 2 }
        );
        assert!(matches!(
            "parallel".parse::<ReplayEngine>().unwrap(),
            ReplayEngine::Parallel { workers } if workers >= 1
        ));
        assert!("parallel:0".parse::<ReplayEngine>().is_err());
        assert!("turbo".parse::<ReplayEngine>().is_err());
        assert_eq!(
            ReplayEngine::Parallel { workers: 8 }.to_string(),
            "parallel:8"
        );
        assert_eq!(ReplayEngine::default(), ReplayEngine::Sequential);
    }

    /// The parallel engine is byte-identical to the sequential one on a
    /// mixed workload (ring exchange with skewed compute), at several
    /// worker counts. In debug builds the in-engine oracle re-asserts
    /// this on every run; here we also pin it explicitly.
    #[test]
    fn parallel_engine_matches_sequential() {
        let mut t = Trace::new(4);
        for r in 0..4u32 {
            let rt = t.rank_mut(Rank(r));
            rt.push(compute(1_000_000 * (r as u64 + 1)));
            rt.push(send((r + 1) % 4, 0, 10_000, 0));
            rt.push(recv((r + 3) % 4, 0, 10_000, 1));
            rt.push(compute(500_000));
        }
        let p = Platform { buses: 2, ..plat() };
        let want = render_exact(&simulate(&t, &p));
        for workers in [1, 2, 8] {
            let got = render_exact(&simulate_with(&t, &p, ReplayEngine::Parallel { workers }));
            assert_eq!(want, got, "workers={workers}");
        }
    }

    /// Error paths are byte-identical too: a deadlocked replay reports
    /// the same diagnosis from both engines.
    #[test]
    fn parallel_engine_matches_sequential_errors() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(compute(1_000_000));
        t.rank_mut(Rank(0)).push(recv(1, 0, 100, 0));
        let want = render_exact(&simulate(&t, &plat()));
        let got = render_exact(&simulate_with(
            &t,
            &plat(),
            ReplayEngine::Parallel { workers: 2 },
        ));
        assert_eq!(want, got);
    }

    /// A compute-heavy trace exercises the elided-resume fast path and
    /// still reports identical event counts and queue peaks.
    #[test]
    fn parallel_engine_fast_path_accounting_matches() {
        let mut t = Trace::new(3);
        for r in 0..3u32 {
            let rt = t.rank_mut(Rank(r));
            for i in 0..50u64 {
                rt.push(Record::Marker {
                    marker: ovlp_trace::record::Marker::IterBegin(i as u32),
                });
                rt.push(compute(100_000 + 13_000 * (r as u64 + 1) * (i % 7 + 1)));
            }
            rt.push(send((r + 1) % 3, 0, 10_000, 0));
            rt.push(recv((r + 2) % 3, 0, 10_000, 1));
        }
        let seq = simulate(&t, &plat()).unwrap();
        let par = simulate_with(&t, &plat(), ReplayEngine::Parallel { workers: 2 }).unwrap();
        assert_eq!(seq.events_processed, par.events_processed);
        assert_eq!(seq.queue_peak, par.queue_peak);
        assert_eq!(seq.timelines, par.timelines);
        assert_eq!(seq.markers, par.markers);
        assert_eq!(render_exact(&Ok(seq)), render_exact(&Ok(par)));
    }
}
