//! Per-channel communication statistics.
//!
//! Aggregates the simulated [`CommRecord`]s by `(src, dst, tag)`
//! channel — the granularity at which the overlap transformation
//! operates — exposing where bytes, queueing and synchronization spans
//! concentrate. The `ovlp analyze` CLI prints the heaviest channels.

use crate::replay::SimResult;
use crate::time::Time;
use ovlp_trace::{Bytes, Rank, Tag};
use std::collections::HashMap;

/// Aggregate statistics of one `(src, dst, tag)` channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelStat {
    pub src: Rank,
    pub dst: Rank,
    pub tag: Tag,
    pub messages: usize,
    pub bytes: Bytes,
    /// Mean time messages queued for network resources.
    pub mean_queue: Time,
    /// Mean send-to-consume span (the Paraver synchronization line).
    pub mean_span: Time,
    pub max_span: Time,
}

/// Running `(messages, bytes, queue_sum, span_sum, span_max)` totals.
type ChannelAgg = (usize, u64, f64, f64, f64);

/// Aggregate all channels, sorted by total bytes descending (ties by
/// channel key, so the output is deterministic).
pub fn channel_stats(sim: &SimResult) -> Vec<ChannelStat> {
    let mut agg: HashMap<(u32, u32, u32), ChannelAgg> = HashMap::new();
    for c in &sim.comms {
        let e = agg
            .entry((c.src.get(), c.dst.get(), c.tag.0))
            .or_insert((0, 0, 0.0, 0.0, 0.0));
        e.0 += 1;
        e.1 += c.bytes.get();
        e.2 += c.queue_delay().as_secs();
        e.3 += c.span().as_secs();
        e.4 = e.4.max(c.span().as_secs());
    }
    let mut out: Vec<ChannelStat> = agg
        .into_iter()
        .map(|((src, dst, tag), (n, bytes, q, s, mx))| ChannelStat {
            src: Rank(src),
            dst: Rank(dst),
            tag: Tag(tag),
            messages: n,
            bytes: Bytes(bytes),
            mean_queue: Time::secs(q / n as f64),
            mean_span: Time::secs(s / n as f64),
            max_span: Time::secs(mx),
        })
        .collect();
    out.sort_by(|a, b| {
        b.bytes
            .cmp(&a.bytes)
            .then(a.src.cmp(&b.src))
            .then(a.dst.cmp(&b.dst))
            .then(a.tag.0.cmp(&b.tag.0))
    });
    out
}

/// Render the `top` heaviest channels as a text table.
pub fn render_top(sim: &SimResult, top: usize) -> String {
    let stats = channel_stats(sim);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
        "channel", "msgs", "bytes", "mean queue", "mean span", "max span"
    ));
    for s in stats.iter().take(top) {
        out.push_str(&format!(
            "{:<16} {:>6} {:>12} {:>12} {:>12} {:>12}\n",
            format!("{}->{} {}", s.src, s.dst, s.tag),
            s.messages,
            s.bytes.to_string(),
            s.mean_queue.to_string(),
            s.mean_span.to_string(),
            s.max_span.to_string()
        ));
    }
    if stats.len() > top {
        out.push_str(&format!("  … {} more channels\n", stats.len() - top));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;
    use crate::replay::simulate;
    use ovlp_trace::record::{Record, SendMode};
    use ovlp_trace::{Instructions, Trace, TransferId};

    fn sim() -> SimResult {
        let mut t = Trace::new(2);
        let r0 = t.rank_mut(Rank(0));
        for s in 0..3u32 {
            r0.push(Record::Compute {
                instr: Instructions(100_000),
            });
            r0.push(Record::Send {
                dst: Rank(1),
                tag: Tag::user(s % 2), // two channels: tags 0 and 1
                bytes: Bytes(1000 * (s as u64 + 1)),
                mode: SendMode::Eager,
                transfer: TransferId::new(Rank(0), s),
            });
        }
        let r1 = t.rank_mut(Rank(1));
        for s in 0..3u32 {
            r1.push(Record::Recv {
                src: Rank(0),
                tag: Tag::user(s % 2),
                bytes: Bytes(1000 * (s as u64 + 1)),
                transfer: TransferId::new(Rank(1), s),
            });
        }
        simulate(&t, &Platform::default()).unwrap()
    }

    #[test]
    fn channels_aggregate_by_key() {
        let stats = channel_stats(&sim());
        assert_eq!(stats.len(), 2);
        // tag 0 carried messages 1 and 3 (1000 + 3000 bytes)
        let tag0 = stats.iter().find(|s| s.tag == Tag::user(0)).unwrap();
        assert_eq!(tag0.messages, 2);
        assert_eq!(tag0.bytes, Bytes(4000));
        let tag1 = stats.iter().find(|s| s.tag == Tag::user(1)).unwrap();
        assert_eq!(tag1.messages, 1);
        assert_eq!(tag1.bytes, Bytes(2000));
        // sorted by bytes descending
        assert!(stats[0].bytes >= stats[1].bytes);
    }

    #[test]
    fn spans_are_positive_and_bounded() {
        for s in channel_stats(&sim()) {
            assert!(s.mean_span.as_secs() > 0.0);
            assert!(s.max_span >= s.mean_span);
        }
    }

    #[test]
    fn render_caps_output() {
        let text = render_top(&sim(), 1);
        assert!(text.contains("… 1 more channels"), "{text}");
        assert!(text.contains("r0->r1"));
    }

    #[test]
    fn empty_sim_renders_header_only() {
        let t = Trace::new(1);
        let s = simulate(&t, &Platform::default()).unwrap();
        let text = render_top(&s, 5);
        assert_eq!(text.lines().count(), 1);
    }
}
