//! Record supply for the replay engine: materialized slice or lazy
//! per-rank stream.
//!
//! The engine fetches each `(rank, pc)` exactly once, in increasing
//! `pc` order per rank (every dispatch arm advances `pc` past the
//! record it consumed, and at most one resume is in flight per rank).
//! That access pattern is what makes a forward-only iterator a valid
//! backing store: [`StreamSupply`] keeps one cursor per rank and a
//! small buffer holding at most one collective's expansion, so the
//! resident record footprint is O(ranks), not O(ranks × records).
//!
//! Collective records are expanded to point-to-point steps *inside the
//! cursor*, through the same [`collective::expand_one`] the eager
//! rewriter uses with the same rank-local instance counter — streamed
//! and materialized replays therefore interpret byte-identical record
//! sequences.

use crate::collective;
use crate::platform::CollectiveAlgo;
use ovlp_trace::source::TraceSource;
use ovlp_trace::{Rank, Record, Trace};
use std::collections::VecDeque;

/// Where the engine's records come from.
pub(crate) enum Supply<'a> {
    /// A fully materialized trace (the classic path; also what the
    /// parallel driver compiles against).
    Slice(&'a Trace),
    /// Generator-backed per-rank cursors with inline collective
    /// expansion.
    Stream(StreamSupply<'a>),
}

impl<'a> Supply<'a> {
    pub(crate) fn stream(source: &'a dyn TraceSource, algo: CollectiveAlgo) -> Supply<'a> {
        let n = source.nranks();
        Supply::Stream(StreamSupply {
            cursors: (0..n)
                .map(|r| RankCursor {
                    iter: source.rank_records(r),
                    buf: VecDeque::new(),
                    instance: 0,
                    consumed: 0,
                })
                .collect(),
            algo,
            fetched: 0,
            resident: 0,
            peak: 0,
        })
    }

    pub(crate) fn nranks(&self) -> usize {
        match self {
            Supply::Slice(t) => t.nranks(),
            Supply::Stream(s) => s.cursors.len(),
        }
    }

    /// The record at `(rank, pc)`, or `None` past the end of the rank's
    /// stream. Streamed ranks must be fetched in increasing `pc` order
    /// (the engine's access pattern); the trailing `None` fetch is
    /// idempotent.
    #[inline]
    pub(crate) fn fetch(&mut self, rank: usize, pc: usize) -> Option<Record> {
        match self {
            Supply::Slice(t) => t.ranks[rank].records.get(pc).copied(),
            Supply::Stream(s) => s.fetch(rank, pc),
        }
    }

    /// Total (post-expansion) record count of one rank. Under streaming
    /// this drains the rank's remaining stream — only called on the
    /// cold deadlock-report path, where the engine is already dead.
    pub(crate) fn total_len(&mut self, rank: usize) -> usize {
        match self {
            Supply::Slice(t) => t.ranks[rank].records.len(),
            Supply::Stream(s) => {
                let nranks = s.cursors.len();
                let algo = s.algo;
                let c = &mut s.cursors[rank];
                let mut n = c.consumed + c.buf.len();
                for rec in c.iter.by_ref() {
                    collective::expand_one(
                        nranks,
                        Rank(rank as u32),
                        &rec,
                        &mut c.instance,
                        algo,
                        &mut |_| n += 1,
                    );
                }
                n
            }
        }
    }

    /// High-water mark of records resident in the supply: total trace
    /// size for a slice (everything is materialized), buffered + in-hand
    /// records for a stream. This is the engine self-counter backing the
    /// "replay memory is O(active ranks)" claim.
    pub(crate) fn records_peak(&self) -> u64 {
        match self {
            Supply::Slice(t) => t.total_records() as u64,
            Supply::Stream(s) => s.peak,
        }
    }

    /// Records handed to the engine so far (post-expansion).
    pub(crate) fn records_fetched(&self) -> u64 {
        match self {
            Supply::Slice(t) => t.total_records() as u64,
            Supply::Stream(s) => s.fetched,
        }
    }
}

/// Per-rank forward cursors over a [`TraceSource`].
pub(crate) struct StreamSupply<'a> {
    cursors: Vec<RankCursor<'a>>,
    algo: CollectiveAlgo,
    /// Records handed out (post-expansion).
    fetched: u64,
    /// Records currently buffered across all cursors.
    resident: usize,
    /// High-water mark of `resident` + the in-hand record.
    peak: u64,
}

struct RankCursor<'a> {
    iter: Box<dyn Iterator<Item = Record> + 'a>,
    /// Expansion lookahead: holds the not-yet-consumed steps of the
    /// collective most recently pulled from `iter` (bounded by one
    /// collective's fan-out, ≤ 2·(P−1) and ≤ 2·log₂P for trees).
    buf: VecDeque<Record>,
    /// Rank-local collective instance counter (tags internal traffic).
    instance: u32,
    /// Records already handed out — mirrors the engine's `pc`.
    consumed: usize,
}

impl StreamSupply<'_> {
    fn fetch(&mut self, rank: usize, pc: usize) -> Option<Record> {
        let nranks = self.cursors.len();
        let c = &mut self.cursors[rank];
        debug_assert!(
            pc == c.consumed,
            "streamed supply fetched out of order: rank {rank} pc {pc} != consumed {}",
            c.consumed
        );
        loop {
            if let Some(rec) = c.buf.pop_front() {
                self.resident -= 1;
                c.consumed += 1;
                self.fetched += 1;
                self.peak = self.peak.max(self.resident as u64 + 1);
                return Some(rec);
            }
            let rec = c.iter.next()?;
            if matches!(rec, Record::Collective { .. }) {
                let buf = &mut c.buf;
                collective::expand_one(
                    nranks,
                    Rank(rank as u32),
                    &rec,
                    &mut c.instance,
                    self.algo,
                    &mut |r| buf.push_back(r),
                );
                self.resident += c.buf.len();
                // an expansion may be empty (p <= 1): loop to the next
                // source record rather than ending the stream
            } else {
                c.consumed += 1;
                self.fetched += 1;
                self.peak = self.peak.max(self.resident as u64 + 1);
                return Some(rec);
            }
        }
    }
}
