//! The parallel replay driver.
//!
//! Each rank is an independently advancing **context** with a local
//! clock ([`RankState::clock`]); its pending resume lives in a
//! dedicated single-slot time-stamped channel (a [`LaneQueue`] lane),
//! and the minimum `(time, seq)` over the *other* lanes plus the
//! shared heap is the context's **conservative lookahead horizon** —
//! the DAM-RS per-context-time / channel-time-view pattern. A context
//! that owns the earliest pending event may interpret its own record
//! stream (compute bursts, markers) strictly *below* that horizon
//! without consulting anyone: every event another context could
//! possibly inject is bounded below by the horizon, because each
//! communication step carries a nonzero link latency, so no
//! zero-lookahead cycle exists. The moment the context's clock would
//! reach the horizon — or its next record is a communication
//! operation, which touches shared state (channels, ports, the flow
//! network) — it re-enters the global sequencer.
//!
//! Reshares of the flow-level network are global barriers: they run on
//! the sequencer, in event order, exactly as the sequential engine
//! runs them. That is not a compromise, it is the determinism
//! argument: *everything with cross-context effects happens on the
//! sequencer in the sequential engine's own order*, and everything off
//! the sequencer is rank-local with an airtight bound. The fast path
//! even replicates the sequential engine's bookkeeping — each elided
//! `push(Resume)+pop` advances the queue's seq counter and pop
//! statistics ([`LaneQueue::note_elided_resume_cycle`]) so later
//! same-time ties break identically, and a merged compute interval is
//! byte-equal to the sequence of intervals [`Timeline::push`] would
//! have coalesced. The result is bit-identical output for *any* worker
//! count — asserted against the sequential oracle on every run in
//! debug builds, and by `tests/parallel_equivalence.rs` in release.
//!
//! Worker threads carry the embarrassingly parallel phases around the
//! sequencer: the **compile** phase precomputes every context's local
//! step durations (the MIPS scaling of each compute burst), and the
//! **finish** phase folds per-rank state totals and per-message
//! records. The `f64` accumulations of [`NetworkStats`] stay on the
//! sequencer in message order — floating-point addition is not
//! associative, and "same bits" is the contract.

use super::*;
use crate::collective::expand_rank;
use crate::event::LaneQueue;
use crate::platform::CollectiveAlgo;

/// Spawning a thread costs tens of microseconds; fan a phase out only
/// when each worker gets at least this many records/messages to chew
/// on, otherwise run it inline. Purely a wall-clock knob — the work is
/// identical either way.
const SPAWN_GRAIN: usize = 16_384;

pub(super) fn run<P: ProbeSink>(
    trace: &Trace,
    platform: &Platform,
    flownet: Option<FlowNet>,
    faults: Vec<ResolvedFault>,
    probe: &mut P,
    workers: usize,
) -> Result<SimResult, SimError> {
    // `workers` is the requested degree; actual fan-out is additionally
    // clamped to the hardware (threads beyond the core count only add
    // spawn and contention cost, never concurrency). The clamp cannot
    // move a bit: every fanned-out phase produces identical output for
    // any thread count.
    let workers = workers.max(1).min(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
    );
    let (dts, counts, pair_lut, rec_slot) = compile(trace, platform, workers);
    let n = trace.nranks();
    let mut eng = Engine::new(
        Supply::Slice(trace),
        platform,
        flownet,
        faults,
        probe,
        LaneQueue::new(n),
    );
    // The compile pass counted every record class, so the hot growth
    // sites can be sized once up front instead of doubling mid-replay.
    eng.msgs.reserve(counts.sends);
    eng.recv_reqs.reserve(counts.recvs);
    for (rs, lane) in eng.ranks.iter_mut().zip(&trace.ranks) {
        rs.timeline.intervals.reserve(lane.records.len());
    }
    // Matching was solved at compile time, so the replay skips the
    // channel hash-map, its unmatched FIFOs, and their allocation
    // churn entirely; only records the matcher left unpaired (sends or
    // recvs with no counterpart anywhere in the trace) fall back to
    // the lazily interned channels.
    eng.pair_lut = pair_lut;
    eng.rec_slot = rec_slot;
    eng.begin();
    while let Some((t, ev)) = eng.queue.pop() {
        // Probed runs disable the fast path: the probe observes every
        // event pop (with queue depth), and the sequential engine is
        // the definition of that stream.
        if !P::ENABLED {
            if let Event::Resume { rank } = ev {
                eng.step_context(rank, t, &dts)?;
                continue;
            }
        }
        eng.dispatch(t, ev)?;
    }
    eng.finish_parallel(workers)
}

/// Record-class totals over the (collective-expanded) trace, gathered
/// by the compile pass so [`run`] can pre-size the engine's hot
/// vectors.
#[derive(Debug, Default, Clone, Copy)]
struct Counts {
    sends: usize,
    recvs: usize,
}

/// A channel key `(src, dst, tag)` — the triple [`Engine::channel`]
/// interns: sends key by `(self, dst, tag)`, receives by
/// `(src, self, tag)`.
type ChanKey = (u32, u32, u32);

/// Per-rank compile output: step durations, record-class counts, the
/// rank's send/recv occurrences as `(key, k, pc)` — `k` counts the
/// occurrences of `key` on that side, which is rank-local because
/// every send of a key issues from its `src` rank (and every recv
/// from its `dst`) in program order — and the rank's MAX-filled
/// runtime slot row.
type RankCompile = (
    Vec<Time>,
    Counts,
    Vec<(ChanKey, u32, u32)>,
    Vec<(ChanKey, u32, u32)>,
    Box<[u32]>,
    Box<[u64]>,
);

/// Compile phase: per-context step durations (`dts[rank][pc]`, filled
/// for `Compute` records and zero elsewhere), record-class counts, and
/// the precompiled match pairing. Durations come from
/// `compute_time_for`, a pure function of `(rank, instr)`. Pairing is
/// a static fact of the trace: channels are FIFO on both sides and
/// each side issues in program order, so the k-th send on a key pairs
/// with the k-th recv — the `(key, k)` join below reproduces every
/// pairing the channel FIFOs would make, and leaves surplus records
/// (no counterpart anywhere) at `u64::MAX` for the channel fallback.
#[allow(clippy::type_complexity)]
fn compile(
    trace: &Trace,
    platform: &Platform,
    workers: usize,
) -> (Vec<Vec<Time>>, Counts, Vec<Box<[u64]>>, Vec<Box<[u32]>>) {
    let n = trace.nranks();
    let rank_pass = |r: usize| -> RankCompile {
        let nrecs = trace.ranks[r].records.len();
        let mut counts = Counts::default();
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        let mut ks: HashMap<ChanKey, (u32, u32), FxBuildHasher> =
            HashMap::with_capacity_and_hasher(nrecs / 2, FxBuildHasher::default());
        let dts = trace.ranks[r]
            .records
            .iter()
            .enumerate()
            .map(|(pc, rec)| match *rec {
                Record::Compute { instr } => platform.compute_time_for(r, instr),
                Record::Send { dst, tag, .. } | Record::ISend { dst, tag, .. } => {
                    counts.sends += 1;
                    let key = (r as u32, dst.0, tag.0);
                    let k = &mut ks.entry(key).or_default().0;
                    sends.push((key, *k, pc as u32));
                    *k += 1;
                    Time::ZERO
                }
                Record::Recv { src, tag, .. } | Record::IRecv { src, tag, .. } => {
                    counts.recvs += 1;
                    let key = (src.0, r as u32, tag.0);
                    let k = &mut ks.entry(key).or_default().1;
                    recvs.push((key, *k, pc as u32));
                    *k += 1;
                    Time::ZERO
                }
                _ => Time::ZERO,
            })
            .collect();
        let slots = vec![u32::MAX; nrecs].into_boxed_slice();
        let pairs = vec![u64::MAX; nrecs].into_boxed_slice();
        (dts, counts, sends, recvs, slots, pairs)
    };
    let total_records: usize = trace.ranks.iter().map(|l| l.records.len()).sum();
    let threaded = workers > 1 && n > 1 && total_records >= workers * SPAWN_GRAIN;
    let per_rank: Vec<RankCompile> = if threaded {
        let mut out = vec![Default::default(); n];
        let rank_pass = &rank_pass;
        std::thread::scope(|s| {
            let chunk = n.div_ceil(workers);
            for (i, slot) in out.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    for (j, v) in slot.iter_mut().enumerate() {
                        *v = rank_pass(i * chunk + j);
                    }
                });
            }
        });
        out
    } else {
        (0..n).map(rank_pass).collect()
    };
    let mut total = Counts::default();
    let mut dts = Vec::with_capacity(n);
    let mut sends = Vec::with_capacity(n);
    let mut recvs = Vec::with_capacity(n);
    let mut rec_slot = Vec::with_capacity(n);
    let mut pair_lut: Vec<Box<[u64]>> = Vec::with_capacity(n);
    for (d, c, s, rv, slots, pairs) in per_rank {
        total.sends += c.sends;
        total.recvs += c.recvs;
        pair_lut.push(pairs);
        dts.push(d);
        sends.push(s);
        recvs.push(rv);
        rec_slot.push(slots);
    }
    // The (key, k) join. One presized hash op per comm record; the
    // resulting partner writes land on both sides of each pair.
    let mut open: HashMap<(ChanKey, u32), u64, FxBuildHasher> =
        HashMap::with_capacity_and_hasher(total.sends, FxBuildHasher::default());
    for (r, s) in sends.iter().enumerate() {
        for &(key, k, pc) in s {
            open.insert((key, k), ((r as u64) << 32) | pc as u64);
        }
    }
    for (r, rv) in recvs.iter().enumerate() {
        for &(key, k, pc) in rv {
            if let Some(&sp) = open.get(&(key, k)) {
                pair_lut[r][pc as usize] = sp;
                pair_lut[(sp >> 32) as usize][sp as u32 as usize] = ((r as u64) << 32) | pc as u64;
            }
        }
    }
    (dts, total, pair_lut, rec_slot)
}

/// [`expand_collectives`] with the rank streams expanded on worker
/// threads. Expansion is rank-local — the instance counter keying the
/// synthesized tags is per-rank — so the fan-out is byte-identical to
/// the sequential rewrite.
pub(super) fn expand(trace: &Trace, algo: CollectiveAlgo, workers: usize) -> Trace {
    let n = trace.nranks();
    let total_records: usize = trace.ranks.iter().map(|l| l.records.len()).sum();
    let mut out = Trace::new(n);
    out.meta = trace.meta.clone();
    out.meta
        .insert("collectives".to_string(), algo.name().to_string());
    if workers <= 1 || n <= 1 || total_records < workers * SPAWN_GRAIN {
        for (r, rt) in trace.ranks.iter().enumerate() {
            expand_rank(n, r, &rt.records, algo, &mut out.ranks[r].records);
        }
        return out;
    }
    std::thread::scope(|s| {
        let chunk = n.div_ceil(workers);
        for (i, slot) in out.ranks.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (j, lane) in slot.iter_mut().enumerate() {
                    let r = i * chunk + j;
                    expand_rank(n, r, &trace.ranks[r].records, algo, &mut lane.records);
                }
            });
        }
    });
    out
}

impl<'a, P: ProbeSink> Engine<'a, P, LaneQueue> {
    /// Advance one context under conservative lookahead.
    ///
    /// Entered with `rank`'s resume just popped at `now`. Markers and
    /// compute bursts whose end stays strictly below the horizon are
    /// interpreted locally: the `push(Resume)+pop` cycle the
    /// sequential engine performs per burst is elided (its accounting
    /// is replayed onto the queue), and the contiguous bursts become
    /// one merged `Compute` interval — byte-equal to what
    /// `Timeline::push` coalesces the sequential engine's pushes into.
    /// The strict `<` matters: at an exact tie the other pending entry
    /// holds the older seq and wins, so the context must yield.
    ///
    /// A communication record, or a burst ending on/after the horizon,
    /// exits to the shared interpreter ([`Engine::step`]) / the real
    /// queue, making the slow path literally the sequential engine.
    fn step_context(&mut self, rank: usize, now: Time, dts: &[Vec<Time>]) -> Result<(), SimError> {
        debug_assert!(!P::ENABLED);
        debug_assert!(self.ranks[rank].clock <= now + Time::micros(1e-6));
        let horizon = self.queue.horizon().map(|(t, _)| t);
        self.ranks[rank].clock = now;
        self.ranks[rank].blocked = Blocked::None;
        let mut run_start: Option<Time> = None;
        loop {
            let pc = self.ranks[rank].pc;
            let Some(rec) = self.supply.fetch(rank, pc) else {
                if let Some(start) = run_start {
                    let end = self.ranks[rank].clock;
                    self.push_state(rank, start, end, State::Compute);
                }
                self.ranks[rank].blocked = Blocked::Finished;
                return Ok(());
            };
            let clock = self.ranks[rank].clock;
            match rec {
                Record::Marker { marker } => {
                    self.ranks[rank].markers.push((marker, clock));
                    self.ranks[rank].pc += 1;
                }
                Record::Compute { .. } => {
                    let end = clock + dts[rank][pc];
                    self.ranks[rank].clock = end;
                    self.ranks[rank].pc += 1;
                    if run_start.is_none() {
                        run_start = Some(clock);
                    }
                    if horizon.is_some_and(|h| end >= h) {
                        // Another context's event (or an older tie)
                        // runs first: emit the merged interval, park
                        // the resume in our lane, yield to the
                        // sequencer.
                        self.push_state(rank, run_start.expect("run started"), end, State::Compute);
                        self.queue.push(end, Event::Resume { rank });
                        self.ranks[rank].blocked = Blocked::ResumeScheduled;
                        return Ok(());
                    }
                    // Sole owner of simulated time below the horizon:
                    // elide the resume round-trip, keep its accounting.
                    self.queue.note_elided_resume_cycle(rank);
                }
                _ => {
                    // Communication: flush the local run and fall into
                    // the exact shared interpreter at the current clock.
                    if let Some(start) = run_start {
                        self.push_state(rank, start, clock, State::Compute);
                    }
                    return self.step(rank, clock);
                }
            }
        }
    }

    /// [`Engine::finish`] with the per-rank and per-message folds
    /// fanned out over `workers` threads. Every fold is over disjoint
    /// chunks reassembled in index order, and the order-sensitive
    /// `f64` network accumulation stays sequential, so the assembled
    /// [`SimResult`] is identical to the sequential epilogue's.
    fn finish_parallel(mut self, workers: usize) -> Result<SimResult, SimError> {
        self.check_stuck()?;
        let runtime = self.final_runtime();
        if P::ENABLED {
            self.probe.on_records_peak(self.supply.records_peak());
            self.probe.on_end(runtime, self.queue.peak());
        }
        let network = self.network_stats();
        let links = self.flownet.as_ref().map(|n| n.usage()).unwrap_or_default();
        let fold_work = self.msgs.len()
            + self
                .ranks
                .iter()
                .map(|rs| rs.timeline.intervals.len())
                .sum::<usize>();
        let (totals, comms) = if workers <= 1 || fold_work < workers * SPAWN_GRAIN {
            (
                self.ranks
                    .iter()
                    .map(|rs| StateTotals::of(&rs.timeline))
                    .collect(),
                self.msgs
                    .iter()
                    .map(|m| Self::comm_record(&self.recv_reqs, m))
                    .collect(),
            )
        } else {
            let ranks = &self.ranks;
            let msgs = &self.msgs;
            let recv_reqs = &self.recv_reqs;
            std::thread::scope(|s| {
                let rank_chunk = ranks.len().div_ceil(workers).max(1);
                let totals_handles: Vec<_> = ranks
                    .chunks(rank_chunk)
                    .map(|chunk| {
                        s.spawn(move || {
                            chunk
                                .iter()
                                .map(|rs| StateTotals::of(&rs.timeline))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let msg_chunk = msgs.len().div_ceil(workers).max(1);
                let comm_handles: Vec<_> = msgs
                    .chunks(msg_chunk)
                    .map(|chunk| {
                        s.spawn(move || {
                            chunk
                                .iter()
                                .map(|m| Self::comm_record(recv_reqs, m))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                let totals: Vec<StateTotals> = totals_handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("totals worker"))
                    .collect();
                let comms: Vec<CommRecord> = comm_handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("comms worker"))
                    .collect();
                (totals, comms)
            })
        };
        let (timelines, markers) = self
            .ranks
            .into_iter()
            .map(|rs| (rs.timeline, rs.markers))
            .unzip();
        Ok(SimResult {
            runtime,
            timelines,
            comms,
            totals,
            markers,
            network,
            links,
            events_processed: self.queue.processed(),
            queue_peak: self.queue.peak(),
            stale_events: self.stale_popped,
            fault_log: self.fault_log,
        })
    }
}
