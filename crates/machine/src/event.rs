//! Deterministic discrete-event queue.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed by the replay engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A rank becomes runnable (its local clock reaches the event time).
    Resume { rank: usize },
    /// A network transfer finishes delivery.
    TransferDone { msg: usize },
    /// A flow-level transfer estimate fires. Stale if `epoch` is no
    /// longer the flow's current estimate (resharing re-estimated it).
    FlowDone { msg: usize, epoch: u64 },
    /// A scheduled link fault strikes. `idx` indexes the platform's
    /// resolved fault schedule (see [`crate::net::fault`]).
    Fault { idx: usize },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, breaking
        // ties by insertion order so the simulation is deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    pub processed: u64,
    /// High-water mark of pending entries (heap size after a push).
    pub peak: usize,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    pub fn push(&mut self, at: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.peak = self.peak.max(self.heap.len());
    }

    pub fn pop(&mut self) -> Option<(Time, Event)> {
        // account for the size at drain start too, so the high-water
        // mark is correct even if entries were bulk-scheduled through a
        // path that bypasses `push`'s bookkeeping
        self.peak = self.peak.max(self.heap.len());
        let e = self.heap.pop()?;
        self.processed += 1;
        Some((e.at, e.event))
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::secs(3.0), Event::Resume { rank: 3 });
        q.push(Time::secs(1.0), Event::Resume { rank: 1 });
        q.push(Time::secs(2.0), Event::Resume { rank: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Resume { rank } => rank,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for rank in 0..10 {
            q.push(Time::secs(1.0), Event::Resume { rank });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Resume { rank } => rank,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peak_tracks_high_water_mark_across_pops() {
        let mut q = EventQueue::new();
        for rank in 0..5 {
            q.push(Time::secs(rank as f64), Event::Resume { rank });
        }
        assert_eq!(q.peak, 5);
        while q.pop().is_some() {}
        assert_eq!(q.peak, 5, "draining must not lower the mark");
        q.push(Time::ZERO, Event::Resume { rank: 0 });
        assert_eq!(q.peak, 5, "a smaller refill must not lower the mark");
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, Event::TransferDone { msg: 0 });
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert_eq!(q.processed, 1);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
