//! Deterministic discrete-event queue.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed by the replay engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A rank becomes runnable (its local clock reaches the event time).
    Resume { rank: usize },
    /// A network transfer finishes delivery.
    TransferDone { msg: usize },
    /// A flow-level transfer estimate fires. Stale if `epoch` is no
    /// longer the flow's current estimate (resharing re-estimated it).
    FlowDone { msg: usize, epoch: u64 },
    /// A scheduled link fault strikes. `idx` indexes the platform's
    /// resolved fault schedule (see [`crate::net::fault`]).
    Fault { idx: usize },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    at: Time,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first, breaking
        // ties by insertion order so the simulation is deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic tie-breaking.
///
/// The pending high-water mark is sampled once per `push`, in program
/// order — every entry enters through [`EventQueue::push`], so the
/// size after a push is the only place the mark can move. (Sampling it
/// again at pop time, as an earlier revision did, was redundant for
/// this queue and becomes actively misleading once pending events live
/// in more than one container: a drain-start sample of one container
/// is not the pending total. [`LaneQueue`] defines the same statistic
/// over its lanes *plus* its heap for exactly that reason.)
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    next_seq: u64,
    pub processed: u64,
    /// High-water mark of pending entries (size after a push).
    pub peak: usize,
}

impl EventQueue {
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    pub fn push(&mut self, at: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
        self.peak = self.peak.max(self.heap.len());
    }

    pub fn pop(&mut self) -> Option<(Time, Event)> {
        let e = self.heap.pop()?;
        self.processed += 1;
        Some((e.at, e.event))
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The interface the replay engine needs from its pending-event store.
///
/// Both implementations share one contract: entries are totally ordered
/// by `(time, push seq)` with the push sequence assigned in program
/// order, so any two `QueueLike`s fed the same pushes pop the same
/// events in the same order. That is what lets the parallel driver swap
/// in [`LaneQueue`] without perturbing a single tie-break.
pub trait QueueLike {
    fn push(&mut self, at: Time, event: Event);
    fn pop(&mut self) -> Option<(Time, Event)>;
    /// Number of entries currently pending.
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total entries popped so far.
    fn processed(&self) -> u64;
    /// High-water mark of pending entries, sampled after each push.
    fn peak(&self) -> usize;
}

impl QueueLike for EventQueue {
    fn push(&mut self, at: Time, event: Event) {
        EventQueue::push(self, at, event)
    }
    fn pop(&mut self) -> Option<(Time, Event)> {
        EventQueue::pop(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn processed(&self) -> u64 {
        self.processed
    }
    fn peak(&self) -> usize {
        self.peak
    }
}

/// Ranks beyond this count fall back to routing resumes through the
/// heap: the linear lane scan in [`LaneQueue::pop`] would otherwise
/// dominate. Semantics are identical either way — only the container
/// changes.
pub const MAX_LANES: usize = 128;

/// Per-rank-lane event store for the parallel replay driver.
///
/// Each rank owns a single-slot *lane* holding its pending `Resume`
/// (the engine's blocked-state machine guarantees at most one is
/// outstanding per rank); all other events (transfers, flow estimates,
/// faults) share a heap. Popping takes the global `(time, seq)`
/// minimum across lanes and heap, so the pop order — including every
/// same-time tie-break — is bit-identical to [`EventQueue`] fed the
/// same pushes.
///
/// This is the DAM-style "channel per context" shape: a lane is a
/// rank's time-stamped channel, and the minimum over the *other* lanes
/// plus the heap top ([`LaneQueue::horizon`]) is the conservative
/// lookahead bound a context may advance to without violating global
/// order.
///
/// Queue statistics are kept **per context** and aggregated
/// deterministically: `peak` is sampled after each push (program
/// order, same as [`EventQueue`]) over lanes *and* the shared store
/// together, while [`LaneQueue::resume_pops`], [`LaneQueue::other_pops`]
/// and [`LaneQueue::heap_peak`] break the totals down by context.
///
/// The shared store is a `(time, seq)`-descending sorted vec rather
/// than a binary heap: the pending population is bounded by in-flight
/// transfers (ports × buses, typically well under a hundred), and at
/// those sizes a binary-search insert plus an `O(1)` tail pop beats
/// heap sift-downs by a wide margin — `BinaryHeap::pop` is the single
/// hottest frame in the sequential engine's profile.
#[derive(Debug)]
pub struct LaneQueue {
    /// One slot per rank: `(time, push seq)` of its pending resume.
    lanes: Vec<Option<(Time, u64)>>,
    /// Occupied-lane count, so `len`/`pop` skip empty scans cheaply.
    occupied: usize,
    /// Non-resume events (and resumes past [`MAX_LANES`]), sorted
    /// descending by `(time, seq)`: the global minimum is the tail.
    others: Vec<Entry>,
    next_seq: u64,
    processed: u64,
    peak: usize,
    resume_pops: Vec<u64>,
    other_pops: u64,
    heap_peak: usize,
}

impl LaneQueue {
    pub fn new(nranks: usize) -> LaneQueue {
        let lanes = if nranks <= MAX_LANES {
            vec![None; nranks]
        } else {
            Vec::new()
        };
        LaneQueue {
            lanes,
            occupied: 0,
            others: Vec::new(),
            next_seq: 0,
            processed: 0,
            peak: 0,
            resume_pops: vec![0; nranks],
            other_pops: 0,
            heap_peak: 0,
        }
    }

    /// Earliest `(time, seq)` pending anywhere. The batching fast path
    /// reads this right after popping a rank's resume: it is then the
    /// conservative bound below which that rank can advance alone.
    pub(crate) fn horizon(&self) -> Option<(Time, u64)> {
        let mut best: Option<(Time, u64)> = None;
        if self.occupied > 0 {
            for slot in self.lanes.iter().flatten() {
                if best.is_none_or(|b| *slot < b) {
                    best = Some(*slot);
                }
            }
        }
        if let Some(top) = self.others.last() {
            let key = (top.at, top.seq);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best
    }

    /// Account for one `push(Resume) + pop()` pair the batching fast
    /// path elided. Seq and pop counters advance exactly as the real
    /// cycle would; `len` is unchanged (push refills the slot the pop
    /// emptied) and `peak` cannot move because the sampled size equals
    /// the size before the elided pop, which an earlier sample already
    /// covered.
    pub(crate) fn note_elided_resume_cycle(&mut self, rank: usize) {
        self.next_seq += 1;
        self.processed += 1;
        self.resume_pops[rank] += 1;
    }

    /// Per-rank count of `Resume` events popped (any container).
    pub fn resume_pops(&self) -> &[u64] {
        &self.resume_pops
    }

    /// Count of non-resume events popped.
    pub fn other_pops(&self) -> u64 {
        self.other_pops
    }

    /// High-water mark of the shared (non-lane) store alone.
    pub fn heap_peak(&self) -> usize {
        self.heap_peak
    }
}

impl QueueLike for LaneQueue {
    fn push(&mut self, at: Time, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match event {
            Event::Resume { rank } if rank < self.lanes.len() => {
                debug_assert!(
                    self.lanes[rank].is_none(),
                    "rank {rank} already has a pending resume"
                );
                self.lanes[rank] = Some((at, seq));
                self.occupied += 1;
            }
            _ => {
                let i = self.others.partition_point(|e| (e.at, e.seq) > (at, seq));
                self.others.insert(i, Entry { at, seq, event });
                self.heap_peak = self.heap_peak.max(self.others.len());
            }
        }
        self.peak = self.peak.max(self.len());
    }

    fn pop(&mut self) -> Option<(Time, Event)> {
        let mut best: Option<(Time, u64, usize)> = None;
        if self.occupied > 0 {
            for (rank, slot) in self.lanes.iter().enumerate() {
                if let Some((at, seq)) = *slot {
                    if best.is_none_or(|(bat, bseq, _)| (at, seq) < (bat, bseq)) {
                        best = Some((at, seq, rank));
                    }
                }
            }
        }
        if let Some(top) = self.others.last() {
            if best.is_none_or(|(bat, bseq, _)| (top.at, top.seq) < (bat, bseq)) {
                let e = self.others.pop().expect("peeked entry");
                self.processed += 1;
                match e.event {
                    Event::Resume { rank } => self.resume_pops[rank] += 1,
                    _ => self.other_pops += 1,
                }
                return Some((e.at, e.event));
            }
        }
        let (at, _seq, rank) = best?;
        self.lanes[rank] = None;
        self.occupied -= 1;
        self.processed += 1;
        self.resume_pops[rank] += 1;
        Some((at, Event::Resume { rank }))
    }

    fn len(&self) -> usize {
        self.occupied + self.others.len()
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::secs(3.0), Event::Resume { rank: 3 });
        q.push(Time::secs(1.0), Event::Resume { rank: 1 });
        q.push(Time::secs(2.0), Event::Resume { rank: 2 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Resume { rank } => rank,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for rank in 0..10 {
            q.push(Time::secs(1.0), Event::Resume { rank });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::Resume { rank } => rank,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peak_tracks_high_water_mark_across_pops() {
        let mut q = EventQueue::new();
        for rank in 0..5 {
            q.push(Time::secs(rank as f64), Event::Resume { rank });
        }
        assert_eq!(q.peak, 5);
        while q.pop().is_some() {}
        assert_eq!(q.peak, 5, "draining must not lower the mark");
        q.push(Time::ZERO, Event::Resume { rank: 0 });
        assert_eq!(q.peak, 5, "a smaller refill must not lower the mark");
    }

    #[test]
    fn counts_processed() {
        let mut q = EventQueue::new();
        q.push(Time::ZERO, Event::TransferDone { msg: 0 });
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert_eq!(q.processed, 1);
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    /// A deterministic mixed workload: pushes of resumes and heap
    /// events at colliding times, interleaved with pops. `nranks`
    /// chooses lane mode (≤ MAX_LANES) or heap-fallback mode.
    #[allow(clippy::type_complexity)]
    fn exercise_both(
        nranks: usize,
    ) -> (
        EventQueue,
        LaneQueue,
        Vec<(Time, Event)>,
        Vec<(Time, Event)>,
    ) {
        let mut eq = EventQueue::new();
        let mut lq = LaneQueue::new(nranks);
        let mut eq_out = Vec::new();
        let mut lq_out = Vec::new();
        let mut state = 0x9e37_79b9_u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut pending_resume = vec![false; nranks];
        for step in 0..600 {
            let do_pop = step % 5 == 4 || next(4) == 0;
            if do_pop {
                eq_out.extend(eq.pop());
                lq_out.extend(QueueLike::pop(&mut lq));
                if let Some((_, Event::Resume { rank })) = lq_out.last() {
                    pending_resume[*rank] = false;
                }
                continue;
            }
            // Quantized times force plenty of exact ties.
            let at = Time::secs(next(7) as f64 * 0.125);
            let ev = match next(4) {
                0 => Event::TransferDone {
                    msg: next(16) as usize,
                },
                1 => Event::FlowDone {
                    msg: next(16) as usize,
                    epoch: next(3),
                },
                2 => Event::Fault {
                    idx: next(4) as usize,
                },
                _ => {
                    let rank = (0..nranks)
                        .map(|i| (i + step) % nranks)
                        .find(|&r| !pending_resume[r]);
                    match rank {
                        Some(r) => {
                            pending_resume[r] = true;
                            Event::Resume { rank: r }
                        }
                        None => Event::TransferDone {
                            msg: next(16) as usize,
                        },
                    }
                }
            };
            eq.push(at, ev);
            QueueLike::push(&mut lq, at, ev);
            assert_eq!(eq.len(), QueueLike::len(&lq), "len diverged at step {step}");
        }
        while let Some(e) = eq.pop() {
            eq_out.push(e);
        }
        while let Some(e) = QueueLike::pop(&mut lq) {
            lq_out.push(e);
        }
        (eq, lq, eq_out, lq_out)
    }

    #[test]
    fn lane_queue_matches_event_queue_bit_for_bit() {
        for nranks in [1, 4, 8] {
            let (eq, lq, eq_out, lq_out) = exercise_both(nranks);
            assert_eq!(eq_out, lq_out, "pop sequences diverged at nranks={nranks}");
            assert_eq!(eq.processed, lq.processed(), "processed diverged");
            assert_eq!(eq.peak, QueueLike::peak(&lq), "peak diverged");
        }
    }

    #[test]
    fn lane_queue_heap_fallback_matches_too() {
        let nranks = MAX_LANES + 72;
        let (eq, lq, eq_out, lq_out) = exercise_both(nranks);
        assert!(lq.lanes.is_empty(), "fallback mode must not allocate lanes");
        assert_eq!(eq_out, lq_out);
        assert_eq!(eq.processed, lq.processed());
        assert_eq!(eq.peak, QueueLike::peak(&lq));
    }

    #[test]
    fn per_context_stats_aggregate_to_the_totals() {
        for nranks in [4, MAX_LANES + 72] {
            let (_, lq, _, _) = exercise_both(nranks);
            let resumes: u64 = lq.resume_pops().iter().sum();
            assert_eq!(
                resumes + lq.other_pops(),
                lq.processed(),
                "per-context pop counts must partition the total"
            );
            assert!(
                lq.heap_peak() <= QueueLike::peak(&lq),
                "one context's high-water cannot exceed the aggregate"
            );
            assert!(
                resumes > 0 && lq.other_pops() > 0,
                "workload exercised both kinds"
            );
        }
    }

    #[test]
    fn elided_resume_cycles_account_like_real_ones() {
        // Real cycle on one queue, elided accounting on the other: seq
        // streams must stay aligned so later ties break identically.
        let mut real = LaneQueue::new(2);
        let mut elided = LaneQueue::new(2);
        for q in [&mut real, &mut elided] {
            QueueLike::push(q, Time::secs(1.0), Event::Resume { rank: 0 });
            let _ = QueueLike::pop(q);
        }
        QueueLike::push(&mut real, Time::secs(2.0), Event::Resume { rank: 0 });
        let _ = QueueLike::pop(&mut real);
        elided.note_elided_resume_cycle(0);
        assert_eq!(real.next_seq, elided.next_seq);
        assert_eq!(real.processed(), elided.processed());
        assert_eq!(real.resume_pops(), elided.resume_pops());
        assert_eq!(QueueLike::len(&real), QueueLike::len(&elided));
        assert_eq!(QueueLike::peak(&real), QueueLike::peak(&elided));
        // Next push lands with the same seq on both.
        QueueLike::push(&mut real, Time::secs(3.0), Event::Resume { rank: 1 });
        QueueLike::push(&mut elided, Time::secs(3.0), Event::Resume { rank: 1 });
        assert_eq!(QueueLike::pop(&mut real), QueueLike::pop(&mut elided));
    }

    #[test]
    fn horizon_sees_lanes_and_heap() {
        let mut q = LaneQueue::new(4);
        assert_eq!(q.horizon(), None);
        QueueLike::push(&mut q, Time::secs(5.0), Event::Resume { rank: 2 });
        assert_eq!(q.horizon(), Some((Time::secs(5.0), 0)));
        QueueLike::push(&mut q, Time::secs(3.0), Event::TransferDone { msg: 1 });
        assert_eq!(q.horizon(), Some((Time::secs(3.0), 1)));
        QueueLike::push(&mut q, Time::secs(1.0), Event::Resume { rank: 0 });
        assert_eq!(q.horizon(), Some((Time::secs(1.0), 2)));
        let _ = QueueLike::pop(&mut q);
        assert_eq!(q.horizon(), Some((Time::secs(3.0), 1)));
    }
}
