//! Parallel parameter-sweep engine with deterministic replay.
//!
//! The paper's experiments (Fig. 6a–c, Table III) are all sweeps: the
//! same traced run simulated across a grid of platforms and chunk
//! policies. This module turns that pattern into a first-class
//! subsystem:
//!
//! * [`SweepGrid`] — the cartesian product of traced apps ×
//!   [`Platform`]s × [`ChunkPolicy`]s;
//! * [`sweep()`] — evaluates every grid point on a
//!   [`scheduler`] worker pool (`--jobs N`), with results slotted by
//!   point index so **output is bit-identical for any worker count**;
//! * [`SweepCache`] — a content-hash cache keyed by
//!   `(trace fingerprint, platform fingerprint, policy fingerprint)`:
//!   re-sweeping an unchanged point is a lookup, not a simulation;
//! * graceful failure — a panicking or erroring point yields a
//!   [`PointError`] in its slot ([`PointOutcome`]); the sweep always
//!   completes.
//!
//! Determinism rests on three facts: the replay engine is a pure
//! function of `(trace, platform)`; the scheduler assigns results by
//! input index; and fingerprints/hashes are computed with FNV-1a over
//! canonical byte encodings (`f64::to_bits`, sorted access-log keys),
//! never over pointer identity or iteration order of hash maps.

pub mod chaos;
pub mod guard;
pub mod scheduler;
pub mod store;

use crate::chunk::ChunkPolicy;
use crate::experiments::speedup::{VariantCritPaths, VariantMetrics};
use crate::pipeline::{build_variants, VariantBundle};
use ovlp_instr::TraceRun;
use ovlp_machine::{Platform, ReplayEngine, Time};
use ovlp_trace::record::SendMode;
use ovlp_trace::text;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------
// FNV-1a hashing over canonical encodings
// ---------------------------------------------------------------------

/// Incremental 64-bit FNV-1a hasher over explicit byte encodings.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    pub fn new() -> Fnv {
        Fnv::default()
    }

    pub fn bytes(mut self, bytes: &[u8]) -> Fnv {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    pub fn u64(self, v: u64) -> Fnv {
        self.bytes(&v.to_le_bytes())
    }

    pub fn u32(self, v: u32) -> Fnv {
        self.bytes(&v.to_le_bytes())
    }

    /// Canonical f64 encoding: the IEEE-754 bit pattern. Distinguishes
    /// `-0.0` from `0.0` and hashes infinities/NaNs stably, which is
    /// exactly right for "same platform ⇒ same key".
    pub fn f64(self, v: f64) -> Fnv {
        self.u64(v.to_bits())
    }

    pub fn str(self, s: &str) -> Fnv {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------
// Fingerprints and cache keys
// ---------------------------------------------------------------------

/// Content fingerprint of one traced run: the canonical text emission
/// of the trace plus every access log in sorted-transfer order (the
/// access DB is hash-map backed, so its iteration order must not leak
/// into the fingerprint).
pub fn trace_fingerprint(run: &TraceRun) -> u64 {
    // The rank count is hashed explicitly (it is also inside the text
    // emission, but the weak-scaling axis makes it a first-class sweep
    // dimension: two rank counts of the same app must never share a
    // store entry, regardless of how the text format evolves).
    let mut h = Fnv::new()
        .u64(run.trace.nranks() as u64)
        .str(&text::emit(&run.trace));
    for (r, rank) in run.access.ranks.iter().enumerate() {
        h = h.u64(r as u64);
        let mut prods: Vec<_> = rank.productions.values().collect();
        prods.sort_by_key(|p| (p.transfer.rank.0, p.transfer.seq));
        for p in prods {
            h = h
                .u32(p.transfer.rank.0)
                .u32(p.transfer.seq)
                .u32(p.elems)
                .u64(p.interval_start.0)
                .u64(p.interval_end.0);
            for s in &p.last_store {
                h = h.u64(s.map(|i| i.0 + 1).unwrap_or(0));
            }
        }
        let mut cons: Vec<_> = rank.consumptions.values().collect();
        cons.sort_by_key(|c| (c.transfer.rank.0, c.transfer.seq));
        for c in cons {
            h = h
                .u32(c.transfer.rank.0)
                .u32(c.transfer.seq)
                .u32(c.elems)
                .u64(c.interval_start.0)
                .u64(c.interval_end.0);
            for l in &c.first_load {
                h = h.u64(l.map(|i| i.0 + 1).unwrap_or(0));
            }
        }
    }
    h.finish()
}

/// Fingerprint of every field that influences simulated time.
pub fn platform_fingerprint(p: &Platform) -> u64 {
    let mut h = Fnv::new()
        .f64(p.mips)
        .f64(p.bandwidth_mbs)
        .f64(p.latency_us)
        .u32(p.buses)
        .u32(p.input_ports)
        .u32(p.output_ports)
        .str(p.collective.name())
        .u32(p.ranks_per_node)
        .f64(p.intra_bandwidth_mbs)
        .f64(p.intra_latency_us)
        .u64(match p.eager_threshold_bytes {
            Some(b) => b + 1,
            None => 0,
        })
        .u32(p.nodes_per_machine)
        .f64(p.wan_bandwidth_mbs)
        .f64(p.wan_latency_us)
        .u32(p.wan_links)
        // canonical topology spec: "bus", "crossbar", "fat-tree:8:2", …
        .str(&p.contention.to_string())
        // canonical fault schedule: "" when empty, else
        // "kill@0.001s:h0->e0;restore@0.002s:h0->e0"-style — Display is
        // injective over validated schedules, so distinct schedules
        // always get distinct cache keys
        .str(&p.faults.to_string());
    h = h.u64(p.cpu_ratios.len() as u64);
    for &r in &p.cpu_ratios {
        h = h.f64(r);
    }
    h.finish()
}

/// Fingerprint of a chunking policy.
pub fn policy_fingerprint(p: &ChunkPolicy) -> u64 {
    Fnv::new()
        .u32(p.chunks)
        .u32(p.min_chunk_elems)
        .str(match p.mode {
            SendMode::Eager => "eager",
            SendMode::Rendezvous => "rendezvous",
        })
        .finish()
}

/// Cache key of one sweep point: what was simulated, not where it sat
/// in the grid. Two grids containing the same (trace, platform, policy)
/// triple share cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointKey(pub u64);

pub fn point_key(trace_fp: u64, platform: &Platform, policy: &ChunkPolicy) -> PointKey {
    PointKey(
        Fnv::new()
            .u64(trace_fp)
            .u64(platform_fingerprint(platform))
            .u64(policy_fingerprint(policy))
            .finish(),
    )
}

// ---------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------

/// One traced application entering a sweep. The trace fingerprint is
/// computed once at construction (it is the expensive part of cache
/// keying) and shared by every grid point of this app.
#[derive(Debug, Clone)]
pub struct SweepApp {
    pub name: String,
    pub run: Arc<TraceRun>,
    fingerprint: u64,
}

impl SweepApp {
    pub fn new(name: impl Into<String>, run: TraceRun) -> SweepApp {
        let fingerprint = trace_fingerprint(&run);
        SweepApp {
            name: name.into(),
            run: Arc::new(run),
            fingerprint,
        }
    }

    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// The full cartesian sweep specification.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    pub apps: Vec<SweepApp>,
    pub platforms: Vec<Platform>,
    pub policies: Vec<ChunkPolicy>,
}

/// Indices of one grid point, `(app, platform, policy)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SweepPoint {
    pub app: usize,
    pub platform: usize,
    pub policy: usize,
}

impl SweepGrid {
    pub fn len(&self) -> usize {
        self.apps.len() * self.platforms.len() * self.policies.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid points in canonical order: app-major, then platform, then
    /// policy. This order defines point indices and therefore report
    /// order, regardless of execution interleaving.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut pts = Vec::with_capacity(self.len());
        for app in 0..self.apps.len() {
            for platform in 0..self.platforms.len() {
                for policy in 0..self.policies.len() {
                    pts.push(SweepPoint {
                        app,
                        platform,
                        policy,
                    });
                }
            }
        }
        pts
    }
}

// ---------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------

/// Simulated outcome of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    pub point: SweepPoint,
    pub key: PointKey,
    pub app: String,
    /// Simulated runtime of the original (non-overlapped) trace, s.
    pub t_original: f64,
    /// Simulated runtime of the overlapped trace (measured patterns), s.
    pub t_overlapped: f64,
    /// Simulated runtime of the overlapped-ideal trace, s.
    pub t_ideal: f64,
    /// Windowed metrics of the three variants, recorded only when the
    /// sweep ran with [`SweepConfig::probe_window_us`]. Deliberately
    /// excluded from [`PointResult::result_hash`], so replay
    /// fingerprints are identical with probes on or off.
    pub metrics: Option<Arc<VariantMetrics>>,
    /// Critical paths of the three variants, recorded only when the
    /// sweep ran with [`SweepConfig::critpath`]. Excluded from
    /// [`PointResult::result_hash`] and never persisted, exactly like
    /// `metrics`, so attribution never changes a replay fingerprint.
    pub critpaths: Option<Arc<VariantCritPaths>>,
}

impl PointResult {
    pub fn speedup_real(&self) -> f64 {
        self.t_original / self.t_overlapped
    }

    pub fn speedup_ideal(&self) -> f64 {
        self.t_original / self.t_ideal
    }

    /// Content hash of the numeric result — exact bit patterns, so two
    /// runs agree on this hash iff they agree on every output bit.
    pub fn result_hash(&self) -> u64 {
        Fnv::new()
            .str(&self.app)
            .u64(self.key.0)
            .f64(self.t_original)
            .f64(self.t_overlapped)
            .f64(self.t_ideal)
            .finish()
    }
}

/// A failed grid point: simulation error, invalid platform, or a panic
/// inside the worker. The sweep reports it and carries on.
#[derive(Debug, Clone, PartialEq)]
pub struct PointError {
    pub point: SweepPoint,
    /// Failure classification; wire-stable names via [`FailKind::name`].
    pub kind: FailKind,
    pub message: String,
}

/// Why a grid point failed. The classification decides retryability
/// (only transient failures — panics and timeouts — are worth another
/// attempt; deterministic failures would fail identically) and is
/// carried on the wire so clients can tell a poisoned spec from an
/// unlucky worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// `Platform::check` rejected the platform.
    Platform,
    /// Building the variant bundle failed.
    Transform,
    /// The replay itself reported an error.
    Sim,
    /// The point computation panicked.
    Panic,
    /// The attempt exceeded its wall-clock deadline.
    Timeout,
    /// The point was quarantined after repeated transient failures.
    Quarantined,
    /// The owning job was cancelled before this point ran.
    Cancelled,
}

impl FailKind {
    pub fn name(self) -> &'static str {
        match self {
            FailKind::Platform => "platform",
            FailKind::Transform => "transform",
            FailKind::Sim => "sim",
            FailKind::Panic => "panic",
            FailKind::Timeout => "timeout",
            FailKind::Quarantined => "quarantined",
            FailKind::Cancelled => "cancelled",
        }
    }

    /// Only transient failures are retried under a
    /// [`guard::PointGuard`]; everything else is deterministic.
    pub fn retryable(self) -> bool {
        matches!(self, FailKind::Panic | FailKind::Timeout)
    }
}

/// What one grid point produced.
pub type PointOutcome = Result<PointResult, PointError>;

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

/// Content-addressed result store shared across sweeps (and, when
/// opened with [`SweepCache::persistent`], across processes). Because
/// keys are content fingerprints, a hit is guaranteed to be the result
/// the simulation would have produced — replay is a pure function of
/// the keyed inputs.
///
/// Three tiers, consulted in order by [`SweepCache::claim`]:
///
/// 1. **memory** — a plain map of results seen by this process;
/// 2. **disk** — the optional [`store::DiskStore`], hash-verified on
///    read and written atomically, shared by every process pointed at
///    the same directory;
/// 3. **in-flight** — points currently being simulated by *some*
///    thread. A second claimant of the same key blocks until the first
///    finishes instead of duplicating the work (counted in
///    [`SweepCache::coalesced`]). If the computing thread fails or
///    panics, its claim is released and one waiter takes over.
#[derive(Debug, Default)]
pub struct SweepCache {
    map: Mutex<HashMap<PointKey, PointResult>>,
    inflight: Mutex<HashMap<PointKey, Arc<Inflight>>>,
    disk: Option<store::DiskStore>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

#[derive(Debug, Default)]
struct Inflight {
    state: Mutex<InflightState>,
    done: std::sync::Condvar,
}

#[derive(Debug, Default, Clone)]
enum InflightState {
    #[default]
    Pending,
    Done(PointResult),
    /// The computing thread gave up (error or panic); waiters re-claim.
    Abandoned,
}

/// Outcome of [`SweepCache::claim`].
pub enum Claim<'a> {
    /// The result existed (memory, disk, or a just-finished in-flight
    /// computation); nothing to simulate.
    Hit(PointResult),
    /// The caller owns this key: simulate it, then
    /// [`ComputeClaim::fulfill`]. Dropping the claim unfulfilled
    /// (error, panic) releases the key and wakes any waiters.
    Compute(ComputeClaim<'a>),
}

/// RAII ownership of an in-flight point. Exactly one claimant per key
/// holds this at a time.
pub struct ComputeClaim<'a> {
    cache: &'a SweepCache,
    key: PointKey,
    entry: Arc<Inflight>,
    fulfilled: bool,
}

impl ComputeClaim<'_> {
    /// Publish the computed result to every tier and wake waiters.
    pub fn fulfill(mut self, result: &PointResult) {
        self.fulfilled = true;
        self.cache.insert(result.clone());
        self.settle(InflightState::Done(result.clone()));
    }

    fn settle(&self, state: InflightState) {
        *lock_ok(&self.entry.state) = state;
        self.entry.done.notify_all();
        lock_ok(&self.cache.inflight).remove(&self.key);
    }
}

impl Drop for ComputeClaim<'_> {
    fn drop(&mut self) {
        if !self.fulfilled {
            self.settle(InflightState::Abandoned);
        }
    }
}

impl SweepCache {
    pub fn new() -> SweepCache {
        SweepCache::default()
    }

    /// A cache backed by the persistent store at `dir`: hits survive
    /// the process, and every process (or daemon) opened on the same
    /// directory shares results.
    pub fn persistent(dir: impl Into<std::path::PathBuf>) -> std::io::Result<SweepCache> {
        Ok(SweepCache {
            disk: Some(store::DiskStore::open(dir)?),
            ..SweepCache::default()
        })
    }

    /// The disk tier, when this cache is persistent.
    pub fn disk(&self) -> Option<&store::DiskStore> {
        self.disk.as_ref()
    }

    /// Resolve `key`: a result from memory or (verified) disk, a
    /// coalesced join on another thread's in-flight computation, or a
    /// [`ComputeClaim`] making the caller responsible for simulating
    /// the point. Blocks only in the coalescing case, and only until
    /// the computing thread settles.
    pub fn claim(&self, key: PointKey) -> Claim<'_> {
        loop {
            if let Some(found) = lock_ok(&self.map).get(&key).cloned() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit(found);
            }
            // Not in memory: either join an in-flight computation or
            // register our own. One lock guards the whole decision so
            // two threads can never both claim the same key.
            let claimed = {
                let mut inflight = lock_ok(&self.inflight);
                match inflight.get(&key) {
                    Some(e) => Err(Arc::clone(e)),
                    None => {
                        let e = Arc::new(Inflight::default());
                        inflight.insert(key, Arc::clone(&e));
                        Ok(e)
                    }
                }
            };
            match claimed {
                Ok(entry) => {
                    // We own the key. Consult the disk tier before
                    // simulating; waiters that pile up meanwhile are
                    // resolved either way.
                    if let Some(stored) = self.disk.as_ref().and_then(|d| d.get(key)) {
                        let result = PointResult {
                            point: SweepPoint {
                                app: 0,
                                platform: 0,
                                policy: 0,
                            },
                            key,
                            app: String::new(),
                            t_original: stored.t_original,
                            t_overlapped: stored.t_overlapped,
                            t_ideal: stored.t_ideal,
                            metrics: None,
                            critpaths: None,
                        };
                        lock_ok(&self.map).insert(key, result.clone());
                        *lock_ok(&entry.state) = InflightState::Done(result.clone());
                        entry.done.notify_all();
                        lock_ok(&self.inflight).remove(&key);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Claim::Hit(result);
                    }
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return Claim::Compute(ComputeClaim {
                        cache: self,
                        key,
                        entry,
                        fulfilled: false,
                    });
                }
                Err(entry) => {
                    let mut state = lock_ok(&entry.state);
                    loop {
                        match &*state {
                            InflightState::Pending => {
                                state = entry.done.wait(state).unwrap_or_else(|e| e.into_inner());
                            }
                            InflightState::Done(result) => {
                                self.coalesced.fetch_add(1, Ordering::Relaxed);
                                return Claim::Hit(result.clone());
                            }
                            InflightState::Abandoned => break,
                        }
                    }
                    // Computer failed; loop back and contend for the
                    // key again (we may become the new computer).
                }
            }
        }
    }

    fn insert(&self, result: PointResult) {
        if let Some(disk) = &self.disk {
            // Best-effort persistence: an unwritable store degrades to
            // the in-memory tier rather than failing the sweep.
            let _ = disk.put(
                result.key,
                &store::StoredPoint {
                    t_original: result.t_original,
                    t_overlapped: result.t_overlapped,
                    t_ideal: result.t_ideal,
                },
            );
        }
        lock_ok(&self.map).insert(result.key, result);
    }

    pub fn len(&self) -> usize {
        lock_ok(&self.map).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction. Hits cover the memory and
    /// disk tiers; coalesced joins are counted separately.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Claims that joined another thread's in-flight computation
    /// instead of simulating or hitting a stored result.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------
// Sweep execution
// ---------------------------------------------------------------------

/// Execution knobs. `jobs == 1` runs inline on the calling thread.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads for grid evaluation.
    pub jobs: usize,
    /// Bounded work-queue depth (items in flight beyond running ones).
    pub queue_depth: usize,
    /// When set, every point is replayed with a
    /// [`WindowedRecorder`](ovlp_machine::WindowedRecorder) of this
    /// width (microseconds) and its result carries
    /// [`PointResult::metrics`]. Probed points bypass the cache both
    /// ways (cached results carry no metrics, and metric-bearing
    /// results are not stored), so the cache never changes what a
    /// probed sweep observes.
    pub probe_window_us: Option<f64>,
    /// When set, every point is replayed with a
    /// [`CritPathRecorder`](ovlp_machine::CritPathRecorder) and its
    /// result carries [`PointResult::critpaths`] (per-point blame
    /// attribution in the report). Critpath points bypass the cache
    /// like probed ones — the recorder must observe its own replay.
    pub critpath: bool,
    /// Replay engine for every point. Both engines are bit-identical by
    /// contract, so this never changes a result hash, a render, or a
    /// cache key — points simulated under either engine share the same
    /// [`PointKey`] entries. It only trades where the parallelism
    /// lives: `jobs > 1` parallelizes *across* points,
    /// [`ReplayEngine::Parallel`] parallelizes *inside* each replay
    /// (useful for grids of few, large points).
    pub engine: ReplayEngine,
    /// Failure isolation: retry/backoff, per-attempt deadline, and
    /// quarantine (see [`guard::PointGuard`]). `None` — the batch-CLI
    /// default — evaluates each point exactly once with no watchdog.
    /// Never changes a successful point's bytes.
    pub guard: Option<Arc<guard::PointGuard>>,
    /// Cooperative cancellation: once this flag is set, points that
    /// have not started yet short-circuit to
    /// [`FailKind::Cancelled`] errors instead of simulating (points
    /// already in flight finish normally). The sweep still returns a
    /// full report covering every slot.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig::with_jobs(1)
    }
}

impl SweepConfig {
    pub fn with_jobs(jobs: usize) -> SweepConfig {
        let jobs = jobs.max(1);
        SweepConfig {
            jobs,
            queue_depth: 2 * jobs,
            probe_window_us: None,
            critpath: false,
            engine: ReplayEngine::Sequential,
            guard: None,
            cancel: None,
        }
    }

    pub fn with_engine(mut self, engine: ReplayEngine) -> SweepConfig {
        self.engine = engine;
        self
    }
}

/// Outcome of a whole sweep.
#[derive(Debug)]
pub struct SweepReport {
    /// One outcome per grid point, in [`SweepGrid::points`] order.
    pub outcomes: Vec<PointOutcome>,
    /// Cache hits observed during this sweep.
    pub cache_hits: u64,
    /// Cache misses (points actually simulated) during this sweep.
    pub cache_misses: u64,
    /// Wall-clock duration of the grid evaluation.
    pub elapsed: Duration,
}

impl SweepReport {
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_ok()).count()
    }

    pub fn err_count(&self) -> usize {
        self.outcomes.len() - self.ok_count()
    }

    /// Per-point result hashes (0 for failed points) — the quantity the
    /// determinism tests compare across worker counts.
    pub fn result_hashes(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .map(|o| o.as_ref().map(|r| r.result_hash()).unwrap_or(0))
            .collect()
    }

    /// Combined hash over all points.
    pub fn grid_hash(&self) -> u64 {
        let mut h = Fnv::new();
        for v in self.result_hashes() {
            h = h.u64(v);
        }
        h.finish()
    }

    /// Deterministic human-readable rendering: depends only on the grid
    /// and the simulated numbers, never on timing, worker count, or
    /// cache state.
    pub fn render(&self, grid: &SweepGrid) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "sweep: {} apps x {} platforms x {} policies = {} points ({} ok, {} failed)\n",
            grid.apps.len(),
            grid.platforms.len(),
            grid.policies.len(),
            self.outcomes.len(),
            self.ok_count(),
            self.err_count(),
        ));
        out.push_str(
            "app          platform                               policy            t_orig[ms]  t_ovlp[ms] t_ideal[ms]  real  ideal  hash\n",
        );
        for outcome in &self.outcomes {
            match outcome {
                Ok(r) => {
                    let p = &grid.platforms[r.point.platform];
                    let pol = &grid.policies[r.point.policy];
                    out.push_str(&format!(
                        "{:<12} bw={:<7} buses={:<4} net={:<13} faults={:<9} chunks={:<2} {:<10} {:>11.6} {:>11.6} {:>11.6} {:>5.3} {:>6.3}  {:016x}\n",
                        r.app,
                        fmt_bw(p.bandwidth_mbs),
                        fmt_buses(p.buses),
                        p.contention.to_string(),
                        fmt_faults(p),
                        pol.chunks,
                        match pol.mode {
                            SendMode::Eager => "eager",
                            SendMode::Rendezvous => "rendezvous",
                        },
                        r.t_original * 1e3,
                        r.t_overlapped * 1e3,
                        r.t_ideal * 1e3,
                        r.speedup_real(),
                        r.speedup_ideal(),
                        r.result_hash(),
                    ));
                }
                Err(e) => {
                    out.push_str(&format!(
                        "point (app {}, platform {}, policy {}): FAILED: {}\n",
                        e.point.app, e.point.platform, e.point.policy, e.message
                    ));
                }
            }
        }
        out
    }

    /// The complete textual report: the main table, then (when the
    /// grid carried fault scenarios) a blank line and the retention
    /// section. This is byte-for-byte what `ovlp sweep` prints to
    /// stdout and what the daemon's report endpoint returns — the
    /// differential tests compare the two.
    pub fn render_full(&self, grid: &SweepGrid) -> String {
        let mut out = self.render(grid);
        let retention = self.render_retention(grid);
        if !retention.is_empty() {
            out.push('\n');
            out.push_str(&retention);
        }
        let blame = self.render_critpath(grid);
        if !blame.is_empty() {
            out.push('\n');
            out.push_str(&blame);
        }
        out
    }

    /// Blame-attribution section: for every point carrying critical
    /// paths ([`SweepConfig::critpath`]), where the overlap gain comes
    /// from — seconds of critical path per blame class in the original
    /// vs the overlapped variant, with the removed share. Empty string
    /// (and therefore byte-identical default output) when the sweep ran
    /// without critpath recording; deterministic like
    /// [`SweepReport::render`].
    pub fn render_critpath(&self, grid: &SweepGrid) -> String {
        use ovlp_machine::critpath::Blame;
        let mut rows = String::new();
        for r in self.outcomes.iter().flatten() {
            let Some(cp) = &r.critpaths else { continue };
            let p = &grid.platforms[r.point.platform];
            let pol = &grid.policies[r.point.policy];
            let mut parts = Vec::new();
            for b in Blame::ALL {
                let orig = cp.original.total(b);
                let ovlp = cp.overlapped.total(b);
                if orig == 0.0 && ovlp == 0.0 {
                    continue;
                }
                let mut part = format!("{} {:.6}->{:.6}", b.name(), orig, ovlp);
                if orig > 0.0 && ovlp < orig {
                    let pct = 100.0 * (orig - ovlp) / orig;
                    if pct >= 0.5 {
                        part.push_str(&format!(" (-{pct:.0}%)"));
                    }
                }
                parts.push(part);
            }
            rows.push_str(&format!(
                "{:<12} bw={:<7} buses={:<4} chunks={:<2} {:<10} {}\n",
                r.app,
                fmt_bw(p.bandwidth_mbs),
                fmt_buses(p.buses),
                pol.chunks,
                match pol.mode {
                    SendMode::Eager => "eager",
                    SendMode::Rendezvous => "rendezvous",
                },
                parts.join(", "),
            ));
        }
        if rows.is_empty() {
            return rows;
        }
        format!("critical-path blame attribution (seconds per cause, original->overlapped)\n{rows}")
    }

    /// Resilience section: for every point simulated under a fault
    /// schedule, how much of the fault-free overlap gain survives —
    /// `retention = speedup_real(faulted) / speedup_real(baseline)`,
    /// where the baseline is the same (app, policy, platform) point
    /// with an empty fault schedule. Empty string when the grid carried
    /// no fault scenarios; deterministic like [`SweepReport::render`].
    pub fn render_retention(&self, grid: &SweepGrid) -> String {
        use ovlp_machine::FaultSchedule;
        // fault-free baselines keyed by (app, policy, clean-platform fp)
        let mut base: HashMap<(usize, usize, u64), f64> = HashMap::new();
        for r in self.outcomes.iter().flatten() {
            let p = &grid.platforms[r.point.platform];
            if p.faults.is_empty() {
                let fp = platform_fingerprint(p);
                base.insert((r.point.app, r.point.policy, fp), r.speedup_real());
            }
        }
        let mut rows = String::new();
        for r in self.outcomes.iter().flatten() {
            let p = &grid.platforms[r.point.platform];
            if p.faults.is_empty() {
                continue;
            }
            let pol = &grid.policies[r.point.policy];
            let clean = platform_fingerprint(&p.with_faults(FaultSchedule::default()));
            let faulted = r.speedup_real();
            match base.get(&(r.point.app, r.point.policy, clean)) {
                Some(&b) if b > 0.0 => rows.push_str(&format!(
                    "{:<12} chunks={:<2} {:<32} {:>6.3} {:>6.3} {:>9.1}%\n",
                    r.app,
                    pol.chunks,
                    p.faults.to_string(),
                    faulted,
                    b,
                    100.0 * faulted / b,
                )),
                _ => rows.push_str(&format!(
                    "{:<12} chunks={:<2} {:<32} {:>6.3}   (no fault-free baseline in grid)\n",
                    r.app,
                    pol.chunks,
                    p.faults.to_string(),
                    faulted,
                )),
            }
        }
        if rows.is_empty() {
            return rows;
        }
        let mut out = String::from(
            "overlap-gain retention under faults (vs fault-free baseline)\n\
             app          policy    faults                             real   base  retention\n",
        );
        out.push_str(&rows);
        out
    }
}

fn fmt_faults(p: &Platform) -> String {
    if p.faults.is_empty() {
        "none".to_string()
    } else {
        p.faults.to_string()
    }
}

fn fmt_bw(bw: f64) -> String {
    if bw.is_infinite() {
        "inf".to_string()
    } else {
        format!("{bw}")
    }
}

fn fmt_buses(buses: u32) -> String {
    if buses == 0 {
        "inf".to_string()
    } else {
        buses.to_string()
    }
}

/// Evaluate every grid point.
///
/// Runs in two pooled stages, both on the [`scheduler`]:
///
/// 1. **Transform** — build the [`VariantBundle`] for each
///    `(app, policy)` combination once (platform sweeps share it);
/// 2. **Replay** — simulate the three variants of each point, honouring
///    `cache` (hit ⇒ no simulation).
///
/// Failures (platform validation, simulation errors, worker panics) are
/// per-point [`PointError`]s; the report always covers the whole grid.
pub fn sweep(grid: &SweepGrid, config: &SweepConfig, cache: &SweepCache) -> SweepReport {
    sweep_observed(grid, config, cache, &|_, _| {})
}

/// [`sweep`] with a progress observer: `observe(index, outcome)` is
/// called exactly once per grid point, from whichever worker thread
/// finishes it (so call order follows completion, not grid order — the
/// index identifies the point). This is how the `ovlp serve` daemon
/// streams partial results while a sweep is still running.
pub fn sweep_observed(
    grid: &SweepGrid,
    config: &SweepConfig,
    cache: &SweepCache,
    observe: &(dyn Fn(usize, &PointOutcome) + Sync),
) -> SweepReport {
    let started = std::time::Instant::now();
    let (hits0, misses0) = cache.stats();

    // Stage 1: one variant bundle per (app, policy) combination.
    let combos: Vec<(usize, usize)> = (0..grid.apps.len())
        .flat_map(|a| (0..grid.policies.len()).map(move |p| (a, p)))
        .collect();
    let bundles: Vec<Result<Arc<VariantBundle>, String>> =
        scheduler::run_indexed(combos, config.jobs, config.queue_depth, |_i, (a, p)| {
            Arc::new(build_variants(&grid.apps[a].run, &grid.policies[p]))
        });
    let bundle_for = |point: &SweepPoint| -> &Result<Arc<VariantBundle>, String> {
        &bundles[point.app * grid.policies.len() + point.policy]
    };

    // Stage 2: replay each point (or hit the cache).
    let points = grid.points();
    let outcomes: Vec<PointOutcome> = scheduler::run_indexed(
        points.clone(),
        config.jobs,
        config.queue_depth,
        |i, point| {
            let cancelled = config
                .cancel
                .as_ref()
                .is_some_and(|c| c.load(Ordering::SeqCst));
            let outcome = if cancelled {
                Err(PointError {
                    point,
                    kind: FailKind::Cancelled,
                    message: "job cancelled before this point ran".to_string(),
                })
            } else {
                evaluate_point(grid, &point, i, bundle_for(&point), cache, config)
            };
            observe(i, &outcome);
            outcome
        },
    )
    .into_iter()
    .zip(&points)
    .enumerate()
    .map(|(i, (slot, &point))| match slot {
        Ok(outcome) => outcome,
        // A panic that escaped evaluate_point (possible only outside
        // the per-attempt catch_unwind, e.g. in cache claiming):
        // report it on the point. The observer never heard about this
        // point from a worker, so tell it here.
        Err(message) => {
            let outcome = Err(PointError {
                point,
                kind: FailKind::Panic,
                message,
            });
            observe(i, &outcome);
            outcome
        }
    })
    .collect();

    let (hits1, misses1) = cache.stats();
    SweepReport {
        outcomes,
        cache_hits: hits1 - hits0,
        cache_misses: misses1 - misses0,
        elapsed: started.elapsed(),
    }
}

fn evaluate_point(
    grid: &SweepGrid,
    point: &SweepPoint,
    index: usize,
    bundle: &Result<Arc<VariantBundle>, String>,
    cache: &SweepCache,
    config: &SweepConfig,
) -> PointOutcome {
    let app = &grid.apps[point.app];
    let platform = &grid.platforms[point.platform];
    let policy = &grid.policies[point.policy];
    let fail = |kind: FailKind, message: String| PointError {
        point: *point,
        kind,
        message,
    };

    let key = point_key(app.fingerprint(), platform, policy);
    if let Some(guard) = config.guard.as_deref() {
        if guard.is_quarantined(key) {
            guard.note_rejection();
            return Err(fail(
                FailKind::Quarantined,
                "quarantined after repeated failures".to_string(),
            ));
        }
    }
    // Probed and critpath points bypass the store both ways (stored
    // results carry no metrics or paths, observing results are not
    // stored) and never join an in-flight computation — the probe must
    // observe its own replay.
    let mut claim = if config.probe_window_us.is_none() && !config.critpath {
        match cache.claim(key) {
            Claim::Hit(mut hit) => {
                // The store keeps content-keyed results; re-stamp the
                // grid position so the report refers to *this* sweep's
                // indices.
                hit.point = *point;
                hit.app.clone_from(&app.name);
                return Ok(hit);
            }
            Claim::Compute(c) => Some(c),
        }
    } else {
        None
    };

    platform
        .check()
        .map_err(|e| fail(FailKind::Platform, format!("invalid platform: {e}")))?;
    let bundle = bundle
        .as_ref()
        .map_err(|e| fail(FailKind::Transform, format!("transform failed: {e}")))?;

    let (max_attempts, deadline) = match config.guard.as_deref() {
        Some(g) => (g.policy().max_attempts.max(1), g.policy().deadline),
        None => (1, None),
    };
    let mut attempt: u32 = 1;
    loop {
        let action = config
            .guard
            .as_deref()
            .and_then(|g| g.chaos())
            .and_then(|c| c.point_action(index, attempt));
        match run_attempt(
            bundle,
            platform,
            config.probe_window_us,
            config.critpath,
            config.engine,
            action,
            deadline,
        ) {
            Ok(sim) => {
                let result = PointResult {
                    point: *point,
                    key,
                    app: app.name.clone(),
                    t_original: sim.t_original,
                    t_overlapped: sim.t_overlapped,
                    t_ideal: sim.t_ideal,
                    metrics: sim.metrics,
                    critpaths: sim.critpaths,
                };
                if let Some(claim) = claim.take() {
                    claim.fulfill(&result);
                }
                return Ok(result);
            }
            Err((kind, message)) => {
                let Some(guard) = config.guard.as_deref() else {
                    return Err(fail(kind, message));
                };
                match kind {
                    FailKind::Panic => guard.note_panic(),
                    FailKind::Timeout => guard.note_timeout(),
                    _ => {}
                }
                if !kind.retryable() {
                    return Err(fail(kind, message));
                }
                if attempt < max_attempts {
                    guard.note_retry();
                    std::thread::sleep(guard.policy().backoff(attempt));
                    attempt += 1;
                    continue;
                }
                guard.quarantine(key);
                return Err(fail(
                    FailKind::Quarantined,
                    format!("quarantined after {attempt} attempts: {message}"),
                ));
            }
        }
    }
    // The claim, if still held here, is dropped unfulfilled on every
    // error return above, which abandons the in-flight entry and lets
    // a waiter re-claim the key.
}

/// The pure numeric outcome of one simulated point — everything a
/// [`PointResult`] carries beyond its grid position.
struct SimNumbers {
    t_original: f64,
    t_overlapped: f64,
    t_ideal: f64,
    metrics: Option<Arc<VariantMetrics>>,
    critpaths: Option<Arc<VariantCritPaths>>,
}

/// Run the three-variant replay for one point. Pure: no cache, no
/// claim, no grid bookkeeping — safe to run on a watchdog thread.
fn simulate_point(
    bundle: &VariantBundle,
    platform: &Platform,
    probe_window_us: Option<f64>,
    critpath: bool,
    engine: ReplayEngine,
) -> Result<SimNumbers, String> {
    let simfail = |e: ovlp_machine::SimError| e.to_string();
    let (sim, metrics, critpaths) = match (probe_window_us, critpath) {
        (None, false) => (
            crate::experiments::speedup::run_variants_with(bundle, platform, engine)
                .map_err(simfail)?,
            None,
            None,
        ),
        (Some(us), false) => {
            let (sim, m) = crate::experiments::speedup::run_variants_probed_with(
                bundle,
                platform,
                Time::micros(us),
                engine,
            )
            .map_err(simfail)?;
            (sim, Some(Arc::new(m)), None)
        }
        (None, true) => {
            let (sim, c) =
                crate::experiments::speedup::run_variants_critpath_with(bundle, platform, engine)
                    .map_err(simfail)?;
            (sim, None, Some(Arc::new(c)))
        }
        (Some(us), true) => {
            let (sim, m, c) = crate::experiments::speedup::run_variants_full_with(
                bundle,
                platform,
                Time::micros(us),
                engine,
            )
            .map_err(simfail)?;
            (sim, Some(Arc::new(m)), Some(Arc::new(c)))
        }
    };
    Ok(SimNumbers {
        t_original: sim.original.runtime(),
        t_overlapped: sim.overlapped.runtime(),
        t_ideal: sim.ideal.runtime(),
        metrics,
        critpaths,
    })
}

/// One isolated attempt at a point: chaos action (if armed), then the
/// replay, under `catch_unwind` and — when `deadline` is set — a
/// wall-clock watchdog on a detached thread. The watchdog cannot kill
/// a runaway computation, only stop waiting for it: an overrunning
/// attempt is abandoned and its eventual result sent into a closed
/// channel.
fn run_attempt(
    bundle: &Arc<VariantBundle>,
    platform: &Platform,
    probe_window_us: Option<f64>,
    critpath: bool,
    engine: ReplayEngine,
    action: Option<chaos::ChaosAction>,
    deadline: Option<Duration>,
) -> Result<SimNumbers, (FailKind, String)> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let work = {
        let bundle = Arc::clone(bundle);
        let platform = platform.clone();
        move || {
            match action {
                Some(chaos::ChaosAction::Panic) => panic!("chaos: injected point panic"),
                Some(chaos::ChaosAction::Stall(pause)) => std::thread::sleep(pause),
                None => {}
            }
            simulate_point(&bundle, &platform, probe_window_us, critpath, engine)
        }
    };
    let settle = |outcome: Result<Result<SimNumbers, String>, String>| match outcome {
        Ok(Ok(sim)) => Ok(sim),
        Ok(Err(e)) => Err((FailKind::Sim, format!("simulation failed: {e}"))),
        Err(msg) => Err((FailKind::Panic, format!("point panicked: {msg}"))),
    };
    match deadline {
        None => settle(catch_unwind(AssertUnwindSafe(work)).map_err(panic_message)),
        Some(limit) => {
            let (tx, rx) = std::sync::mpsc::sync_channel(1);
            std::thread::Builder::new()
                .name("ovlp-point-attempt".to_string())
                .spawn(move || {
                    let _ = tx.send(catch_unwind(AssertUnwindSafe(work)).map_err(panic_message));
                })
                .expect("spawn point-attempt thread");
            match rx.recv_timeout(limit) {
                Ok(outcome) => settle(outcome),
                Err(_) => Err((
                    FailKind::Timeout,
                    format!(
                        "point exceeded the {}ms per-attempt deadline",
                        limit.as_millis()
                    ),
                )),
            }
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_apps::synthetic::{Consumption, PatternApp, Production};
    use ovlp_instr::trace_app;

    fn tiny_app() -> SweepApp {
        let app = PatternApp {
            elems: 200,
            iters: 2,
            phase_instr: 50_000,
            production: Production::Linear,
            consumption: Consumption::Linear,
        };
        SweepApp::new("pattern-linear", trace_app(&app, 4).unwrap())
    }

    fn tiny_grid() -> SweepGrid {
        SweepGrid {
            apps: vec![tiny_app()],
            platforms: vec![Platform::marenostrum(0), Platform::marenostrum(2)],
            policies: vec![ChunkPolicy::paper_default(), ChunkPolicy::with_chunks(8)],
        }
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let app = tiny_app();
        let again = tiny_app();
        assert_eq!(
            app.fingerprint(),
            again.fingerprint(),
            "same run, same fingerprint"
        );

        let p = Platform::marenostrum(4);
        assert_eq!(platform_fingerprint(&p), platform_fingerprint(&p.clone()));
        assert_ne!(
            platform_fingerprint(&p),
            platform_fingerprint(&p.with_bandwidth(100.0))
        );
        assert_ne!(
            policy_fingerprint(&ChunkPolicy::with_chunks(2)),
            policy_fingerprint(&ChunkPolicy::with_chunks(4))
        );
    }

    #[test]
    fn rank_count_discriminates_point_keys() {
        // the weak-scaling axis: the same app at two rank counts must
        // hit different content-addressed store entries
        let app = PatternApp {
            elems: 200,
            iters: 2,
            phase_instr: 50_000,
            production: Production::Linear,
            consumption: Consumption::Linear,
        };
        let at4 = SweepApp::new("pattern-linear", trace_app(&app, 4).unwrap());
        let at8 = SweepApp::new("pattern-linear", trace_app(&app, 8).unwrap());
        assert_ne!(at4.fingerprint(), at8.fingerprint());
        let p = Platform::marenostrum(4);
        let policy = ChunkPolicy::paper_default();
        assert_ne!(
            point_key(at4.fingerprint(), &p, &policy),
            point_key(at8.fingerprint(), &p, &policy)
        );
    }

    #[test]
    fn fault_scenarios_get_distinct_fingerprints() {
        let base = Platform::marenostrum(0).with_topology(ovlp_machine::Topology::Crossbar);
        let faulted = base.with_faults("degrade=0.5@1ms:n0->sw".parse().unwrap());
        assert_ne!(platform_fingerprint(&base), platform_fingerprint(&faulted));
        let moved = base.with_faults("degrade=0.5@2ms:n0->sw".parse().unwrap());
        assert_ne!(platform_fingerprint(&faulted), platform_fingerprint(&moved));
        assert_eq!(
            platform_fingerprint(&faulted),
            platform_fingerprint(&faulted.clone()),
            "same schedule, same key"
        );
    }

    #[test]
    fn retention_section_compares_against_fault_free_baseline() {
        let base = Platform::marenostrum(0).with_topology(ovlp_machine::Topology::Crossbar);
        let faulted = base.with_faults("degrade=0.1@0.1ms:n0->sw".parse().unwrap());
        let grid = SweepGrid {
            apps: vec![tiny_app()],
            platforms: vec![base.clone(), faulted],
            policies: vec![ChunkPolicy::paper_default()],
        };
        let r = sweep(&grid, &SweepConfig::with_jobs(2), &SweepCache::new());
        assert_eq!(r.err_count(), 0, "{:?}", r.outcomes);
        let text = r.render_retention(&grid);
        assert!(text.contains("retention"), "{text}");
        assert!(text.contains("degrade=0.1@0.0001s:n0->sw"), "{text}");
        assert!(!text.contains("no fault-free baseline"), "{text}");
        // the main table marks the faulted platform too
        assert!(
            r.render(&grid).contains("faults=degrade"),
            "{}",
            r.render(&grid)
        );

        // a grid without fault scenarios renders no retention section
        let clean = SweepGrid {
            apps: vec![tiny_app()],
            platforms: vec![base],
            policies: vec![ChunkPolicy::paper_default()],
        };
        let rc = sweep(&clean, &SweepConfig::default(), &SweepCache::new());
        assert!(rc.render_retention(&clean).is_empty());
    }

    #[test]
    fn grid_points_are_canonically_ordered() {
        let grid = tiny_grid();
        let pts = grid.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(
            pts[0],
            SweepPoint {
                app: 0,
                platform: 0,
                policy: 0
            }
        );
        assert_eq!(
            pts[1],
            SweepPoint {
                app: 0,
                platform: 0,
                policy: 1
            }
        );
        assert_eq!(
            pts[3],
            SweepPoint {
                app: 0,
                platform: 1,
                policy: 1
            }
        );
    }

    #[test]
    fn sweep_is_worker_count_invariant() {
        let grid = tiny_grid();
        let base = sweep(&grid, &SweepConfig::with_jobs(1), &SweepCache::new());
        assert_eq!(base.err_count(), 0, "{:?}", base.outcomes);
        for jobs in [2, 4] {
            let r = sweep(&grid, &SweepConfig::with_jobs(jobs), &SweepCache::new());
            assert_eq!(r.result_hashes(), base.result_hashes(), "jobs={jobs}");
            assert_eq!(r.render(&grid), base.render(&grid), "jobs={jobs}");
        }
    }

    #[test]
    fn sweep_is_replay_engine_invariant() {
        // The intra-replay parallel engine is bit-identical to the
        // sequential oracle, so it must not change a hash, a render, or
        // a cache key — a cache warmed by one engine serves the other.
        let grid = tiny_grid();
        let seq = sweep(&grid, &SweepConfig::with_jobs(2), &SweepCache::new());
        assert_eq!(seq.err_count(), 0, "{:?}", seq.outcomes);
        let cache = SweepCache::new();
        for workers in [1usize, 4] {
            let cfg = SweepConfig::with_jobs(2).with_engine(ReplayEngine::Parallel { workers });
            let par = sweep(&grid, &cfg, &cache);
            assert_eq!(
                par.result_hashes(),
                seq.result_hashes(),
                "workers={workers}"
            );
            assert_eq!(par.render(&grid), seq.render(&grid), "workers={workers}");
        }
        // second engine ran entirely from the first engine's cache
        let warm = sweep(&grid, &SweepConfig::with_jobs(2), &cache);
        assert_eq!(warm.cache_hits, grid.len() as u64);
        assert_eq!(warm.result_hashes(), seq.result_hashes());

        // probed sweeps agree too, windowed metrics included
        let probed = |engine| {
            let mut cfg = SweepConfig::with_jobs(2).with_engine(engine);
            cfg.probe_window_us = Some(50.0);
            sweep(&grid, &cfg, &SweepCache::new())
        };
        let a = probed(ReplayEngine::Sequential);
        let b = probed(ReplayEngine::Parallel { workers: 4 });
        assert_eq!(a.result_hashes(), b.result_hashes());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
            assert_eq!(x.metrics, y.metrics, "windowed metrics diverged");
        }
    }

    #[test]
    fn cache_serves_repeat_sweeps() {
        let grid = tiny_grid();
        let cache = SweepCache::new();
        let first = sweep(&grid, &SweepConfig::with_jobs(2), &cache);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.cache_misses, grid.len() as u64);
        let second = sweep(&grid, &SweepConfig::with_jobs(2), &cache);
        assert_eq!(second.cache_hits, grid.len() as u64);
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.result_hashes(), first.result_hashes());
        assert_eq!(second.render(&grid), first.render(&grid));
    }

    #[test]
    fn invalid_platform_is_a_point_error_not_a_crash() {
        let mut grid = tiny_grid();
        grid.platforms.push(Platform {
            mips: -1.0,
            ..Platform::default()
        });
        let r = sweep(&grid, &SweepConfig::with_jobs(2), &SweepCache::new());
        assert_eq!(r.outcomes.len(), 6);
        assert_eq!(r.err_count(), 2, "both policies on the bad platform fail");
        for o in &r.outcomes {
            if let Err(e) = o {
                assert_eq!(e.point.platform, 2);
                assert!(e.message.contains("invalid platform"), "{}", e.message);
            }
        }
    }

    fn dummy_result(key: PointKey) -> PointResult {
        PointResult {
            point: SweepPoint {
                app: 0,
                platform: 0,
                policy: 0,
            },
            key,
            app: "dummy".into(),
            t_original: 2.0,
            t_overlapped: 1.0,
            t_ideal: 0.5,
            metrics: None,
            critpaths: None,
        }
    }

    #[test]
    fn inflight_claims_coalesce_exactly_once_per_waiter() {
        let cache = SweepCache::new();
        let key = PointKey(99);
        let Claim::Compute(claim) = cache.claim(key) else {
            panic!("first claim must be a compute claim");
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| match cache.claim(key) {
                Claim::Hit(r) => r.t_original,
                Claim::Compute(_) => panic!("waiter must join, not recompute"),
            });
            // Wait (deterministically) until the waiter has cloned the
            // in-flight entry — i.e. committed to the coalescing path —
            // before publishing: map + our claim hold two refs, the
            // waiter is the third.
            while Arc::strong_count(&claim.entry) < 3 {
                std::thread::yield_now();
            }
            claim.fulfill(&dummy_result(key));
            assert_eq!(waiter.join().unwrap(), 2.0);
        });
        assert_eq!(cache.coalesced(), 1, "waiter joined the in-flight point");
        assert_eq!(
            cache.stats(),
            (0, 1),
            "one miss (the computer), no tier hits"
        );
        // a later claim is a plain memory hit, not a coalesce
        assert!(matches!(cache.claim(key), Claim::Hit(_)));
        assert_eq!(cache.stats().0, 1);
        assert_eq!(cache.coalesced(), 1);
    }

    #[test]
    fn abandoned_claim_hands_the_key_to_a_waiter() {
        let cache = SweepCache::new();
        let key = PointKey(7);
        let claim = match cache.claim(key) {
            Claim::Compute(c) => c,
            Claim::Hit(_) => panic!("empty cache cannot hit"),
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(|| {
                match cache.claim(key) {
                    // Either ordering is legal: the waiter may observe
                    // the abandonment (and become the computer) or may
                    // claim after the entry is already gone.
                    Claim::Compute(c) => c.fulfill(&dummy_result(key)),
                    Claim::Hit(_) => panic!("nothing was ever fulfilled"),
                }
            });
            std::thread::sleep(Duration::from_millis(10));
            drop(claim); // simulate a failed computation
            waiter.join().unwrap();
        });
        assert!(matches!(cache.claim(key), Claim::Hit(_)));
    }

    #[test]
    fn persistent_cache_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("ovlp-sweep-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid();

        let cold = SweepCache::persistent(&dir).unwrap();
        let first = sweep(&grid, &SweepConfig::with_jobs(2), &cold);
        assert_eq!(first.cache_misses, grid.len() as u64);
        assert_eq!(cold.disk().unwrap().entries(), grid.len() as u64);

        // A fresh cache on the same directory — as a new process would
        // open — serves every point from disk, bit-identically.
        let warm = SweepCache::persistent(&dir).unwrap();
        let second = sweep(&grid, &SweepConfig::with_jobs(2), &warm);
        assert_eq!(second.cache_hits, grid.len() as u64);
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.result_hashes(), first.result_hashes());
        assert_eq!(second.render(&grid), first.render(&grid));
        let stats = warm.disk().unwrap().stats();
        assert_eq!(stats.hits, grid.len() as u64);
        assert_eq!(stats.corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_entry_is_recomputed_and_replaced() {
        let dir = std::env::temp_dir().join(format!("ovlp-sweep-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let grid = tiny_grid();
        let cache = SweepCache::persistent(&dir).unwrap();
        let first = sweep(&grid, &SweepConfig::with_jobs(1), &cache);

        // Flip one bit in one stored entry.
        let key = first.outcomes[0].as_ref().unwrap().key;
        let path = cache.disk().unwrap().entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let reopened = SweepCache::persistent(&dir).unwrap();
        let second = sweep(&grid, &SweepConfig::with_jobs(1), &reopened);
        assert_eq!(second.result_hashes(), first.result_hashes());
        let stats = reopened.disk().unwrap().stats();
        assert_eq!(stats.corrupt, 1, "the flipped entry was detected");
        assert_eq!(second.cache_misses, 1, "only the corrupt point re-ran");
        // and the corrupt file was replaced by a valid entry
        let healed = SweepCache::persistent(&dir).unwrap();
        let third = sweep(&grid, &SweepConfig::with_jobs(1), &healed);
        assert_eq!(third.cache_hits, grid.len() as u64);
        assert_eq!(healed.disk().unwrap().stats().corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_render_lists_every_point() {
        let grid = tiny_grid();
        let r = sweep(&grid, &SweepConfig::default(), &SweepCache::new());
        let text = r.render(&grid);
        assert_eq!(text.lines().count(), 2 + grid.len());
        assert!(text.contains("pattern-linear"));
        assert!(text.contains("4 points (4 ok, 0 failed)"));
    }
}
