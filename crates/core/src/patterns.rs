//! Production/consumption pattern analysis — the data behind Table II
//! and Figure 5 of the paper.
//!
//! * **Production** (potential for *advancing sends*): for each send
//!   transfer, at what fraction of its production interval are the
//!   first element, the first quarter, half and the whole message
//!   produced (all elements carry their final values)?
//! * **Consumption** (potential for *post-postponing receptions*): for
//!   each receive transfer, what fraction of its consumption interval
//!   can run given nothing / the first quarter / the first half of the
//!   message? (i.e. when is the first element *outside* that prefix
//!   first loaded?)
//!
//! The per-transfer values are averaged per application; single-element
//! transfers (Alya's reductions) only define the "first element" and
//! "whole" columns — the paper's tables leave the rest blank.

use ovlp_trace::access::{AccessDb, ConsumptionLog, ProductionLog};
use ovlp_trace::Instructions;

/// Averaged production pattern (percent of production interval).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProductionStats {
    /// % of the interval at which the first final element exists.
    pub first: Option<f64>,
    /// % by which a quarter of the elements are final.
    pub quarter: Option<f64>,
    /// % by which half of the elements are final.
    pub half: Option<f64>,
    /// % by which the whole message is final.
    pub whole: Option<f64>,
    /// Transfers the averages cover.
    pub samples: usize,
}

/// Averaged consumption pattern (percent of consumption interval).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConsumptionStats {
    /// % of the interval passable before needing *any* element.
    pub nothing: Option<f64>,
    /// % passable given the first quarter of the message.
    pub quarter: Option<f64>,
    /// % passable given the first half of the message.
    pub half: Option<f64>,
    pub samples: usize,
}

/// Per-transfer production fractions.
///
/// Element production time defaults to the interval start for elements
/// never written (their values predate the interval).
pub fn production_fractions(log: &ProductionLog) -> Option<(f64, Option<f64>, Option<f64>, f64)> {
    let n = log.elems as usize;
    if n == 0 {
        return None;
    }
    let mut times: Vec<Instructions> = (0..n).map(|i| log.produced_at(i)).collect();
    times.sort_unstable();
    let frac = |t: Instructions| -> f64 {
        100.0 * t.fraction_within(log.interval_start, log.interval_end)
    };
    let first = frac(times[0]);
    let whole = frac(*times.last().unwrap());
    // time by which ceil(q*n) elements are final = the ceil(q*n)-th
    // smallest production time
    let kth = |q: f64| -> Option<f64> {
        if n < 4 {
            return None; // quarter/half undefined for tiny messages
        }
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(frac(times[k - 1]))
    };
    Some((first, kth(0.25), kth(0.5), whole))
}

/// Per-transfer consumption fractions.
pub fn consumption_fractions(log: &ConsumptionLog) -> Option<(f64, Option<f64>, Option<f64>)> {
    let n = log.elems as usize;
    if n == 0 {
        return None;
    }
    let frac = |t: Instructions| -> f64 {
        100.0 * t.fraction_within(log.interval_start, log.interval_end)
    };
    // passable-with-prefix-k: first load of any element with index >= k
    let pass = |k: usize| -> f64 {
        (k..n)
            .map(|i| log.needed_at(i))
            .min()
            .map(frac)
            .unwrap_or(100.0)
    };
    let nothing = pass(0);
    let with_prefix = |q: f64| -> Option<f64> {
        if n < 4 {
            return None;
        }
        Some(pass(((q * n as f64).ceil() as usize).min(n - 1)))
    };
    Some((nothing, with_prefix(0.25), with_prefix(0.5)))
}

fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Average the production pattern over every send transfer in `db`.
pub fn production_stats(db: &AccessDb) -> ProductionStats {
    let mut firsts = Vec::new();
    let mut quarters = Vec::new();
    let mut halves = Vec::new();
    let mut wholes = Vec::new();
    let mut samples = 0;
    for log in db.all_productions() {
        if let Some((f, q, h, w)) = production_fractions(log) {
            samples += 1;
            firsts.push(f);
            wholes.push(w);
            if let Some(q) = q {
                quarters.push(q);
            }
            if let Some(h) = h {
                halves.push(h);
            }
        }
    }
    ProductionStats {
        first: mean(&firsts),
        quarter: mean(&quarters),
        half: mean(&halves),
        whole: mean(&wholes),
        samples,
    }
}

/// Average the consumption pattern over every receive transfer in `db`.
pub fn consumption_stats(db: &AccessDb) -> ConsumptionStats {
    let mut nothings = Vec::new();
    let mut quarters = Vec::new();
    let mut halves = Vec::new();
    let mut samples = 0;
    for log in db.all_consumptions() {
        if let Some((z, q, h)) = consumption_fractions(log) {
            samples += 1;
            nothings.push(z);
            if let Some(q) = q {
                quarters.push(q);
            }
            if let Some(h) = h {
                halves.push(h);
            }
        }
    }
    ConsumptionStats {
        nothing: mean(&nothings),
        quarter: mean(&quarters),
        half: mean(&halves),
        samples,
    }
}

/// One point of a Figure 5 scatter: normalized interval time (0..1) ×
/// element offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScatterPoint {
    pub time: f64,
    pub offset: u32,
}

/// Scatter of all stores in a production interval (Figure 5a).
pub fn production_scatter(log: &ProductionLog) -> Vec<ScatterPoint> {
    log.events
        .iter()
        .map(|e| ScatterPoint {
            time: e.at.fraction_within(log.interval_start, log.interval_end),
            offset: e.offset,
        })
        .collect()
}

/// Scatter of all loads in a consumption interval (Figure 5b/5c).
pub fn consumption_scatter(log: &ConsumptionLog) -> Vec<ScatterPoint> {
    log.events
        .iter()
        .map(|e| ScatterPoint {
            time: e.at.fraction_within(log.interval_start, log.interval_end),
            offset: e.offset,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::access::{consumption_log_for_test, production_log_for_test};

    #[test]
    fn ideal_linear_production_matches_paper_ideal_row() {
        // 100 elements produced uniformly: first ~1%, quarter 25%, half
        // 50%, whole 100% (the "ideal" row of Table IIa)
        let times: Vec<Option<u64>> = (0..100).map(|i| Some((i + 1) * 10)).collect();
        let log = production_log_for_test(0, 0, 0, 1000, &times);
        let (f, q, h, w) = production_fractions(&log).unwrap();
        assert!((f - 1.0).abs() < 1e-9, "{f}");
        assert!((q.unwrap() - 25.0).abs() < 1e-9);
        assert!((h.unwrap() - 50.0).abs() < 1e-9);
        assert!((w - 100.0).abs() < 1e-9);
    }

    #[test]
    fn late_production_pattern() {
        // everything produced in the last 1% (the NAS-BT shape)
        let times: Vec<Option<u64>> = (0..100).map(|i| Some(990 + i / 10)).collect();
        let log = production_log_for_test(0, 0, 0, 1000, &times);
        let (f, q, h, w) = production_fractions(&log).unwrap();
        assert!(f >= 99.0);
        assert!(q.unwrap() >= 99.0);
        assert!(w <= 100.0);
        assert!(h.unwrap() <= w);
    }

    #[test]
    fn production_fractions_monotone() {
        let times: Vec<Option<u64>> = (0..40)
            .map(|i| Some(((i * 37) % 1000 + 1) as u64))
            .collect();
        let log = production_log_for_test(0, 0, 0, 1000, &times);
        let (f, q, h, w) = production_fractions(&log).unwrap();
        let q = q.unwrap();
        let h = h.unwrap();
        assert!(f <= q && q <= h && h <= w);
        assert!((0.0..=100.0).contains(&f) && w <= 100.0);
    }

    #[test]
    fn never_written_elements_count_as_preexisting() {
        let log = production_log_for_test(0, 0, 100, 200, &[None, Some(150)]);
        let (f, _, _, w) = production_fractions(&log).unwrap();
        assert_eq!(f, 0.0, "unwritten element is ready at interval start");
        assert!((w - 50.0).abs() < 1e-9);
    }

    #[test]
    fn consumption_linear_matches_ideal_row() {
        // 100 elements loaded in order: nothing ~0%, quarter ~25%, half ~50%
        let times: Vec<Option<u64>> = (0..100).map(|i| Some(i * 10)).collect();
        let log = consumption_log_for_test(0, 0, 0, 1000, &times);
        let (z, q, h) = consumption_fractions(&log).unwrap();
        assert!(z < 1.0);
        assert!((q.unwrap() - 25.0).abs() < 1.0);
        assert!((h.unwrap() - 50.0).abs() < 1.0);
    }

    #[test]
    fn independent_work_then_copy_out() {
        // the NAS-BT shape: nothing until 13.7%, then everything at once
        let times: Vec<Option<u64>> = (0..100).map(|i| Some(137 + i / 30)).collect();
        let log = consumption_log_for_test(0, 0, 0, 1000, &times);
        let (z, q, h) = consumption_fractions(&log).unwrap();
        assert!((z - 13.7).abs() < 0.2);
        assert!(
            (q.unwrap() - 13.7).abs() < 0.5,
            "flat after the copy starts"
        );
        assert!((h.unwrap() - 13.7).abs() < 0.5);
    }

    #[test]
    fn consumption_fractions_monotone_in_prefix() {
        let times: Vec<Option<u64>> = (0..50).map(|i| Some(((i * 613) % 997) as u64)).collect();
        let log = consumption_log_for_test(0, 0, 0, 997, &times);
        let (z, q, h) = consumption_fractions(&log).unwrap();
        assert!(z <= q.unwrap() + 1e-9);
        assert!(q.unwrap() <= h.unwrap() + 1e-9);
    }

    #[test]
    fn never_loaded_message_passes_whole_interval() {
        let log = consumption_log_for_test(0, 0, 0, 100, &[None, None]);
        let (z, _, _) = consumption_fractions(&log).unwrap();
        assert_eq!(z, 100.0);
    }

    #[test]
    fn tiny_messages_leave_quarter_half_blank() {
        let plog = production_log_for_test(0, 0, 0, 100, &[Some(99)]);
        let (_, q, h, _) = production_fractions(&plog).unwrap();
        assert!(q.is_none() && h.is_none(), "Alya's 1-element case");
        let clog = consumption_log_for_test(0, 0, 0, 100, &[Some(1)]);
        let (_, q, h) = consumption_fractions(&clog).unwrap();
        assert!(q.is_none() && h.is_none());
    }

    #[test]
    fn stats_average_over_transfers() {
        let mut db = AccessDb::new(1);
        db.insert_production(production_log_for_test(
            0,
            0,
            0,
            100,
            &[Some(50), Some(50), Some(50), Some(50)],
        ));
        db.insert_production(production_log_for_test(
            0,
            1,
            0,
            100,
            &[Some(100), Some(100), Some(100), Some(100)],
        ));
        let s = production_stats(&db);
        assert_eq!(s.samples, 2);
        assert!((s.first.unwrap() - 75.0).abs() < 1e-9);
        assert!((s.whole.unwrap() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_db_yields_no_stats() {
        let db = AccessDb::new(1);
        assert_eq!(production_stats(&db).samples, 0);
        assert!(production_stats(&db).first.is_none());
        assert_eq!(consumption_stats(&db).samples, 0);
    }

    #[test]
    fn scatter_normalizes_times() {
        use ovlp_trace::access::AccessEvent;
        let mut log = production_log_for_test(0, 0, 0, 200, &[Some(100)]);
        log.events = vec![
            AccessEvent {
                offset: 0,
                at: Instructions(50),
            },
            AccessEvent {
                offset: 0,
                at: Instructions(100),
            },
        ];
        let pts = production_scatter(&log);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].time - 0.25).abs() < 1e-12);
        assert!((pts[1].time - 0.5).abs() < 1e-12);
    }
}

/// Fraction of a consumption interval *after its last load* — trailing
/// computation provably independent of the received data.
///
/// This quantifies the paper's stated future work (§VII: "exploit
/// overlap at the level of the application's computation phases"): a
/// phase-reordering compiler or runtime could hoist this tail ahead of
/// the first use, growing every chunk's postponement window by the
/// returned fraction. Requires scatter capture (returns `None` when the
/// interval recorded no load events).
pub fn independent_tail_fraction(log: &ConsumptionLog) -> Option<f64> {
    let last = log.events.iter().map(|e| e.at).max()?;
    Some(1.0 - last.fraction_within(log.interval_start, log.interval_end))
}

/// Mean independent-tail fraction over all consumption intervals with
/// load events.
pub fn mean_independent_tail(db: &AccessDb) -> Option<f64> {
    let vals: Vec<f64> = db
        .all_consumptions()
        .filter_map(independent_tail_fraction)
        .collect();
    if vals.is_empty() {
        None
    } else {
        Some(vals.iter().sum::<f64>() / vals.len() as f64)
    }
}

#[cfg(test)]
mod tail_tests {
    use super::*;
    use ovlp_trace::access::{consumption_log_for_test, AccessEvent};

    fn with_events(events: &[(u32, u64)], start: u64, end: u64) -> ConsumptionLog {
        let mut log = consumption_log_for_test(0, 0, start, end, &[Some(events[0].1)]);
        log.events = events
            .iter()
            .map(|&(offset, at)| AccessEvent {
                offset,
                at: Instructions(at),
            })
            .collect();
        log
    }

    #[test]
    fn tail_measures_trailing_independence() {
        // loads end at 40% of the interval: 60% tail
        let log = with_events(&[(0, 100), (1, 200), (2, 400)], 0, 1000);
        let t = independent_tail_fraction(&log).unwrap();
        assert!((t - 0.6).abs() < 1e-9, "{t}");
    }

    #[test]
    fn no_events_no_tail_estimate() {
        let mut log = consumption_log_for_test(0, 0, 0, 100, &[Some(5)]);
        log.events.clear();
        assert_eq!(independent_tail_fraction(&log), None);
    }

    #[test]
    fn loads_to_the_end_mean_zero_tail() {
        let log = with_events(&[(0, 1000)], 0, 1000);
        assert!(independent_tail_fraction(&log).unwrap() < 1e-9);
    }

    #[test]
    fn mean_over_db() {
        let mut db = AccessDb::new(1);
        db.insert_consumption(with_events(&[(0, 500)], 0, 1000)); // tail .5
        let mut second = with_events(&[(0, 900)], 0, 1000); // tail .1
        second.transfer = ovlp_trace::TransferId::new(ovlp_trace::Rank(0), 1);
        db.insert_consumption(second);
        let m = mean_independent_tail(&db).unwrap();
        assert!((m - 0.3).abs() < 1e-9, "{m}");
    }
}
