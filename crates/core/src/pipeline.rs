//! The one-call analysis pipeline: one instrumented run in, the three
//! trace variants out.
//!
//! "In every run, the tracing tool generates one non-overlapped
//! (original) and two overlapped (potential) Dimemas traces" (§III-C).

use crate::chunk::ChunkPolicy;
use crate::ideal::ideal_transform;
use crate::transform::transform;
use ovlp_instr::TraceRun;
use ovlp_trace::Trace;

/// The three traces one instrumented run yields.
#[derive(Debug, Clone)]
pub struct VariantBundle {
    /// The legacy execution as traced.
    pub original: Trace,
    /// Overlapped execution under the measured patterns.
    pub overlapped: Trace,
    /// Overlapped execution under ideal (uniform) patterns.
    pub ideal: Trace,
}

/// Build all three variants from one instrumented run.
pub fn build_variants(run: &TraceRun, policy: &ChunkPolicy) -> VariantBundle {
    VariantBundle {
        original: run.trace.clone(),
        overlapped: transform(&run.trace, &run.access, policy),
        ideal: ideal_transform(&run.trace, policy),
    }
}

impl VariantBundle {
    /// App name carried in the traces' metadata.
    pub fn app_name(&self) -> &str {
        self.original
            .meta
            .get("app")
            .map(String::as_str)
            .unwrap_or("app")
    }
}
