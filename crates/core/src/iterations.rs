//! Per-iteration timing analysis.
//!
//! The paper's Fig. 4 discussion looks at "the execution time for the
//! first five iterations" of CG. Applications bracket their iterations
//! with [`Marker::IterBegin`]/[`Marker::IterEnd`]; the simulator stamps
//! each marker with simulated time, and this module turns those stamps
//! into per-iteration durations and comparisons.

use ovlp_machine::{SimResult, Time};
use ovlp_trace::record::Marker;
use std::collections::BTreeMap;

/// Timing of one application iteration across ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationSpan {
    pub iter: u32,
    /// Earliest `IterBegin` across ranks.
    pub begin: Time,
    /// Latest `IterEnd` across ranks.
    pub end: Time,
}

impl IterationSpan {
    pub fn duration(&self) -> Time {
        self.end - self.begin
    }
}

/// Extract global iteration spans from a simulated execution.
///
/// Iterations missing either marker on every rank are skipped; ranks
/// that never emit markers (e.g. rank 0 of a wavefront prologue) simply
/// don't contribute.
pub fn iteration_spans(sim: &SimResult) -> Vec<IterationSpan> {
    let mut begins: BTreeMap<u32, Time> = BTreeMap::new();
    let mut ends: BTreeMap<u32, Time> = BTreeMap::new();
    for rank_markers in &sim.markers {
        for &(marker, t) in rank_markers {
            match marker {
                Marker::IterBegin(n) => {
                    begins
                        .entry(n)
                        .and_modify(|b| *b = (*b).min(t))
                        .or_insert(t);
                }
                Marker::IterEnd(n) => {
                    ends.entry(n).and_modify(|e| *e = (*e).max(t)).or_insert(t);
                }
                Marker::Phase(_) => {}
            }
        }
    }
    begins
        .into_iter()
        .filter_map(|(iter, begin)| {
            let end = *ends.get(&iter)?;
            (end >= begin).then_some(IterationSpan { iter, begin, end })
        })
        .collect()
}

/// Side-by-side per-iteration comparison of two executions (typically
/// original vs overlapped), formatted like the paper's Fig. 4 reading.
pub fn iteration_comparison(a_label: &str, a: &SimResult, b_label: &str, b: &SimResult) -> String {
    let sa = iteration_spans(a);
    let sb = iteration_spans(b);
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6} {:>14} {:>14} {:>9}\n",
        "iter", a_label, b_label, "gain"
    ));
    for (x, y) in sa.iter().zip(sb.iter()) {
        let da = x.duration().as_secs();
        let db = y.duration().as_secs();
        out.push_str(&format!(
            "{:>6} {:>12.3}ms {:>12.3}ms {:>8.1}%\n",
            x.iter,
            da * 1e3,
            db * 1e3,
            100.0 * (1.0 - db / da.max(1e-300)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{simulate, Platform};
    use ovlp_trace::record::Record;
    use ovlp_trace::{Instructions, Rank, Trace};

    fn trace_with_iters() -> Trace {
        let mut t = Trace::new(2);
        for r in 0..2u32 {
            let rt = t.rank_mut(Rank(r));
            for it in 0..3 {
                rt.push(Record::Marker {
                    marker: Marker::IterBegin(it),
                });
                rt.push(Record::Compute {
                    instr: Instructions(1_000_000 * (it as u64 + 1)),
                });
                rt.push(Record::Marker {
                    marker: Marker::IterEnd(it),
                });
            }
        }
        t
    }

    #[test]
    fn spans_cover_each_iteration() {
        let sim = simulate(&trace_with_iters(), &Platform::default()).unwrap();
        let spans = iteration_spans(&sim);
        assert_eq!(spans.len(), 3);
        // durations grow with the compute we gave each iteration
        assert!(spans[1].duration() > spans[0].duration());
        assert!(spans[2].duration() > spans[1].duration());
        // contiguous, ordered
        assert!(spans[0].end <= spans[1].begin + ovlp_machine::Time::micros(1.0));
        assert_eq!(spans[0].iter, 0);
        assert_eq!(spans[2].iter, 2);
    }

    #[test]
    fn no_markers_yields_empty() {
        let mut t = Trace::new(1);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(100),
        });
        let sim = simulate(&t, &Platform::default()).unwrap();
        assert!(iteration_spans(&sim).is_empty());
    }

    #[test]
    fn comparison_renders_gains() {
        let sim = simulate(&trace_with_iters(), &Platform::default()).unwrap();
        let s = iteration_comparison("original", &sim, "overlapped", &sim);
        assert!(s.contains("iter"));
        assert!(s.contains("0.0%"), "{s}");
        assert_eq!(s.lines().count(), 4);
    }
}
