//! The overlap transformation on measured (real) patterns.
//!
//! Implements the trace-generation methodology of §III-C: from the
//! original trace and the access logs, produce the trace of the
//! *potential overlapped execution*:
//!
//! * every matched blocking `Send`/`Recv` pair is split into chunks
//!   (message chunking);
//! * each chunk's send becomes a non-blocking send injected into the
//!   producing burst at the chunk's **last update** time — "the tracer
//!   emits a send record of every chunk at the moment of the last
//!   update of that chunk" (advancing sends);
//! * at the original receive point, a non-blocking receive is posted
//!   for every chunk — "it emits a non-blocking-receive record for each
//!   chunk of the original message";
//! * each chunk's wait is injected at the chunk's **first use** time in
//!   the consuming burst — "the wait for each incoming chunk is at the
//!   point where that chunk is needed for the first time"
//!   (post-postponing receptions);
//! * chunks may arrive before the consuming iteration begins; the
//!   receiver is assumed double-buffered (eager chunk mode), or not
//!   (rendezvous chunk mode — the ablation).
//!
//! Collectives are not transformed (they cannot be chunked — the Alya
//! case), and records already non-blocking in the original are kept
//! verbatim.

use crate::chunk::ChunkPolicy;
use ovlp_trace::record::Record;
use ovlp_trace::trace::RankTrace;
use ovlp_trace::{AccessDb, Bytes, Instructions, Rank, ReqId, Trace, TransferId};
use std::collections::{HashMap, VecDeque};

/// A joint chunking decision for one matched send/recv pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    /// Elements in the message (both sides agree; the chunk count and
    /// boundaries derive from this through the policy).
    pub elems: u32,
}

/// Matched pairs and their chunking decisions, keyed by the transfer id
/// of *either* side.
#[derive(Debug, Default)]
pub(crate) struct MatchDb {
    pub decisions: HashMap<TransferId, Decision>,
    /// Send-side ↔ recv-side pairing (both directions).
    pub peers: HashMap<TransferId, TransferId>,
}

/// Pair blocking sends with blocking receives, channel by channel, in
/// first-in-first-out order (MPI's non-overtaking rule), and decide
/// which pairs are transformable.
///
/// A pair is transformable only when *both* sides can be rewritten
/// consistently: blocking records on both ends and — when `access` is
/// supplied (the real-pattern transform) — production and consumption
/// logs present with matching element counts.
pub(crate) fn match_p2p(trace: &Trace, access: Option<&AccessDb>) -> MatchDb {
    type ChannelKey = (u32, u32, u32); // src, dst, tag
    let mut sends: HashMap<ChannelKey, VecDeque<(TransferId, Bytes)>> = HashMap::new();
    let mut recvs: HashMap<ChannelKey, VecDeque<(TransferId, Bytes)>> = HashMap::new();
    for (r, rt) in trace.ranks.iter().enumerate() {
        let me = r as u32;
        for rec in &rt.records {
            match *rec {
                Record::Send {
                    dst,
                    tag,
                    bytes,
                    transfer,
                    ..
                } if tag.is_user() => {
                    sends
                        .entry((me, dst.get(), tag.0))
                        .or_default()
                        .push_back((transfer, bytes));
                }
                Record::Recv {
                    src,
                    tag,
                    bytes,
                    transfer,
                } if tag.is_user() => {
                    recvs
                        .entry((src.get(), me, tag.0))
                        .or_default()
                        .push_back((transfer, bytes));
                }
                _ => {}
            }
        }
    }

    let mut db = MatchDb::default();
    for (key, mut sq) in sends {
        let Some(rq) = recvs.get_mut(&key) else {
            continue;
        };
        while let (Some((s_tid, s_bytes)), Some((r_tid, r_bytes))) =
            (sq.pop_front(), rq.pop_front())
        {
            if s_bytes != r_bytes {
                continue; // inconsistent channel; leave untransformed
            }
            let elems = match access {
                Some(db_acc) => {
                    let Some(p) = db_acc.production(s_tid) else {
                        continue;
                    };
                    let Some(c) = db_acc.consumption(r_tid) else {
                        continue;
                    };
                    if p.elems != c.elems || p.elems == 0 {
                        continue;
                    }
                    p.elems
                }
                None => {
                    // ideal transform: element granularity from size
                    let e = (s_bytes.get() / 8).max(1);
                    if e > u32::MAX as u64 {
                        continue;
                    }
                    e as u32
                }
            };
            let d = Decision { elems };
            db.decisions.insert(s_tid, d);
            db.decisions.insert(r_tid, d);
            db.peers.insert(s_tid, r_tid);
            db.peers.insert(r_tid, s_tid);
        }
    }
    db
}

/// Byte size of chunk `[lo, hi)` of an `elems`-element, `bytes`-byte
/// message, computed so that chunk sizes sum exactly to `bytes`.
pub(crate) fn chunk_bytes(bytes: Bytes, elems: u32, lo: u32, hi: u32) -> Bytes {
    let b = bytes.get();
    let e = elems as u64;
    Bytes(b * hi as u64 / e - b * lo as u64 / e)
}

/// Rebuild a rank stream from `(instruction-count, record)` events:
/// stable-sorts by position (preserving generation order on ties) and
/// re-inserts `Compute` bursts in the gaps, ending at `total`.
pub(crate) fn rebuild(mut events: Vec<(u64, Record)>, total: u64) -> RankTrace {
    events.sort_by_key(|&(t, _)| t); // stable
    let mut rt = RankTrace::new();
    let mut prev = 0u64;
    for (t, rec) in events {
        let t = t.min(total);
        if t > prev {
            rt.push(Record::Compute {
                instr: Instructions(t - prev),
            });
            prev = t;
        }
        rt.push(rec);
    }
    if total > prev {
        rt.push(Record::Compute {
            instr: Instructions(total - prev),
        });
    }
    rt
}

/// Highest request id used in a rank stream (so injected requests are
/// fresh).
fn max_req(rt: &RankTrace) -> u64 {
    rt.records
        .iter()
        .filter_map(|r| match *r {
            Record::ISend { req, .. } | Record::IRecv { req, .. } | Record::Wait { req } => {
                Some(req.0)
            }
            _ => None,
        })
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

/// Rewrite `trace` into the overlapped trace using the measured
/// production/consumption patterns in `access`.
pub fn transform(trace: &Trace, access: &AccessDb, policy: &ChunkPolicy) -> Trace {
    let matches = match_p2p(trace, Some(access));
    let mut out = Trace::new(trace.nranks());
    out.meta = trace.meta.clone();
    out.meta
        .insert("variant".to_string(), "overlapped".to_string());
    out.meta
        .insert("chunks".to_string(), policy.chunks.to_string());

    for (r, rt) in trace.ranks.iter().enumerate() {
        let rank = Rank(r as u32);
        let mut next_req = max_req(rt);
        let mut fresh_req = || {
            let q = ReqId(next_req);
            next_req += 1;
            q
        };
        let mut events: Vec<(u64, Record)> = Vec::with_capacity(rt.records.len());
        let mut at = 0u64;
        for rec in &rt.records {
            match *rec {
                Record::Compute { instr } => at += instr.get(),
                Record::Send {
                    dst,
                    tag,
                    bytes,
                    transfer,
                    ..
                } if matches.decisions.contains_key(&transfer) => {
                    let d = matches.decisions[&transfer];
                    let plog = access
                        .production(transfer)
                        .expect("decision implies production log");
                    for (k, (lo, hi)) in policy.boundaries(d.elems).into_iter().enumerate() {
                        let ready = plog
                            .range_ready_at(lo as usize, hi as usize)
                            .get()
                            .clamp(plog.interval_start.get(), at);
                        events.push((
                            ready,
                            Record::ISend {
                                dst,
                                tag: tag.chunk(k as u32),
                                bytes: chunk_bytes(bytes, d.elems, lo, hi),
                                mode: policy.mode,
                                req: fresh_req(),
                                transfer,
                            },
                        ));
                    }
                }
                Record::Recv {
                    src,
                    tag,
                    bytes,
                    transfer,
                } if matches.decisions.contains_key(&transfer) => {
                    let d = matches.decisions[&transfer];
                    let clog = access
                        .consumption(transfer)
                        .expect("decision implies consumption log");
                    let bounds = policy.boundaries(d.elems);
                    let mut reqs = Vec::with_capacity(bounds.len());
                    for (k, (lo, hi)) in bounds.iter().enumerate() {
                        let req = fresh_req();
                        reqs.push(req);
                        events.push((
                            at,
                            Record::IRecv {
                                src,
                                tag: tag.chunk(k as u32),
                                bytes: chunk_bytes(bytes, d.elems, *lo, *hi),
                                req,
                                transfer,
                            },
                        ));
                    }
                    for (k, (lo, hi)) in bounds.iter().enumerate() {
                        let need = clog
                            .range_needed_at(*lo as usize, *hi as usize)
                            .get()
                            .clamp(at, clog.interval_end.get());
                        events.push((need, Record::Wait { req: reqs[k] }));
                    }
                }
                other => events.push((at, other)),
            }
        }
        out.ranks[r] = rebuild(events, at);
        debug_assert_eq!(
            out.ranks[r].total_compute(),
            trace.rank(rank).total_compute(),
            "transformation must preserve per-rank compute"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_trace::access::{consumption_log_for_test, production_log_for_test};
    use ovlp_trace::record::SendMode;
    use ovlp_trace::validate::validate;
    use ovlp_trace::Tag;

    /// Hand-built two-rank trace: rank 0 computes 1000 (producing 4
    /// elements along the way) then sends; rank 1 receives then
    /// computes 1000 (consuming along the way).
    fn fixture() -> (Trace, AccessDb) {
        let mut t = Trace::new(2);
        let s_tid = TransferId::new(Rank(0), 0);
        let r_tid = TransferId::new(Rank(1), 0);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(3),
            bytes: Bytes(32),
            mode: SendMode::Eager,
            transfer: s_tid,
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(3),
            bytes: Bytes(32),
            transfer: r_tid,
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(1000),
        });
        let mut db = AccessDb::new(2);
        // elements produced at 200, 400, 600, 800
        db.insert_production(production_log_for_test(
            0,
            0,
            0,
            1000,
            &[Some(200), Some(400), Some(600), Some(800)],
        ));
        // elements consumed at 100, 300, 500, 700 (rank 1 clock: recv at 0)
        db.insert_consumption(consumption_log_for_test(
            1,
            0,
            0,
            1000,
            &[Some(100), Some(300), Some(500), Some(700)],
        ));
        (t, db)
    }

    #[test]
    fn chunked_sends_injected_at_last_store() {
        let (t, db) = fixture();
        let out = transform(&t, &db, &ChunkPolicy::paper_default());
        assert!(validate(&out).is_empty(), "{:?}", validate(&out));
        let r0 = &out.ranks[0].records;
        // Compute(200) ISend#0 Compute(200) ISend#1 ... Compute(200)
        let kinds: Vec<String> = r0.iter().map(|r| r.to_string()).collect();
        assert_eq!(r0.len(), 9, "{kinds:?}");
        assert_eq!(r0[0].compute_len(), Some(Instructions(200)));
        assert!(
            matches!(r0[1], Record::ISend { tag, .. } if tag.chunk_parts() == Some((Tag::user(3), 0)))
        );
        assert_eq!(r0[2].compute_len(), Some(Instructions(200)));
        assert!(matches!(r0[7], Record::ISend { .. }));
        // trailing compute back to 1000 total
        assert_eq!(r0[8].compute_len(), Some(Instructions(200)));
        assert_eq!(out.ranks[0].total_compute(), Instructions(1000));
    }

    #[test]
    fn receptions_postponed_to_first_need() {
        let (t, db) = fixture();
        let out = transform(&t, &db, &ChunkPolicy::paper_default());
        let r1 = &out.ranks[1].records;
        // 4 IRecvs at t=0, then Wait/Compute interleaved at 100/300/500/700
        assert!(matches!(r1[0], Record::IRecv { .. }));
        assert!(matches!(r1[3], Record::IRecv { .. }));
        assert_eq!(r1[4].compute_len(), Some(Instructions(100)));
        assert!(matches!(r1[5], Record::Wait { .. }));
        assert_eq!(r1[6].compute_len(), Some(Instructions(200)));
        assert!(matches!(r1[7], Record::Wait { .. }));
        assert_eq!(out.ranks[1].total_compute(), Instructions(1000));
    }

    #[test]
    fn chunk_bytes_sum_exactly() {
        for (bytes, elems) in [(32u64, 4u32), (100, 7), (8, 1), (1000, 3)] {
            let p = ChunkPolicy::paper_default();
            let total: u64 = p
                .boundaries(elems)
                .into_iter()
                .map(|(lo, hi)| chunk_bytes(Bytes(bytes), elems, lo, hi).get())
                .sum();
            assert_eq!(total, bytes, "bytes={bytes} elems={elems}");
        }
    }

    #[test]
    fn unmatched_records_left_alone() {
        // a send with no access logs is not transformed
        let (t, _) = fixture();
        let empty = AccessDb::new(2);
        let out = transform(&t, &empty, &ChunkPolicy::paper_default());
        assert!(matches!(out.ranks[0].records[1], Record::Send { .. }));
        assert!(matches!(out.ranks[1].records[0], Record::Recv { .. }));
    }

    #[test]
    fn collectives_pass_through() {
        let mut t = Trace::new(2);
        for r in 0..2u32 {
            t.rank_mut(Rank(r)).push(Record::Collective {
                op: ovlp_trace::CollOp::Allreduce,
                bytes_in: Bytes(8),
                bytes_out: Bytes(8),
                root: Rank(0),
                transfer: TransferId::new(Rank(r), 0),
            });
        }
        let out = transform(&t, &AccessDb::new(2), &ChunkPolicy::paper_default());
        assert!(matches!(out.ranks[0].records[0], Record::Collective { .. }));
    }

    #[test]
    fn single_element_message_advanced_but_not_split() {
        let mut t = Trace::new(2);
        let s_tid = TransferId::new(Rank(0), 0);
        let r_tid = TransferId::new(Rank(1), 0);
        t.rank_mut(Rank(0)).push(Record::Compute {
            instr: Instructions(1000),
        });
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(8),
            mode: SendMode::Eager,
            transfer: s_tid,
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(8),
            transfer: r_tid,
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(1000),
        });
        let mut db = AccessDb::new(2);
        db.insert_production(production_log_for_test(0, 0, 0, 1000, &[Some(640)]));
        db.insert_consumption(consumption_log_for_test(1, 0, 0, 1000, &[Some(500)]));
        let out = transform(&t, &db, &ChunkPolicy::paper_default());
        assert!(validate(&out).is_empty());
        let r0 = &out.ranks[0].records;
        // one chunk, isend advanced to 640
        assert_eq!(r0[0].compute_len(), Some(Instructions(640)));
        assert!(matches!(r0[1], Record::ISend { bytes, .. } if bytes == Bytes(8)));
        let r1 = &out.ranks[1].records;
        // irecv at 0, wait postponed to 500
        assert!(matches!(r1[0], Record::IRecv { .. }));
        assert_eq!(r1[1].compute_len(), Some(Instructions(500)));
        assert!(matches!(r1[2], Record::Wait { .. }));
    }

    #[test]
    fn never_loaded_chunks_waited_at_interval_end() {
        let mut t = Trace::new(2);
        t.rank_mut(Rank(0)).push(Record::Send {
            dst: Rank(1),
            tag: Tag::user(0),
            bytes: Bytes(16),
            mode: SendMode::Eager,
            transfer: TransferId::new(Rank(0), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Recv {
            src: Rank(0),
            tag: Tag::user(0),
            bytes: Bytes(16),
            transfer: TransferId::new(Rank(1), 0),
        });
        t.rank_mut(Rank(1)).push(Record::Compute {
            instr: Instructions(800),
        });
        let mut db = AccessDb::new(2);
        db.insert_production(production_log_for_test(0, 0, 0, 0, &[Some(0), Some(0)]));
        // second element never loaded; interval ends at 800
        db.insert_consumption(consumption_log_for_test(1, 0, 0, 800, &[Some(10), None]));
        let out = transform(&t, &db, &ChunkPolicy::paper_default());
        assert!(validate(&out).is_empty());
        let r1 = &out.ranks[1].records;
        // irecv irecv compute(10) wait compute(790) wait
        assert!(matches!(r1[5], Record::Wait { .. }), "{r1:?}");
        assert_eq!(r1[4].compute_len(), Some(Instructions(790)));
    }

    #[test]
    fn compute_totals_always_preserved() {
        let (t, db) = fixture();
        for chunks in [1u32, 2, 3, 4, 8] {
            let out = transform(&t, &db, &ChunkPolicy::with_chunks(chunks));
            for r in 0..2 {
                assert_eq!(
                    out.ranks[r].total_compute(),
                    t.ranks[r].total_compute(),
                    "chunks={chunks} rank={r}"
                );
            }
        }
    }

    #[test]
    fn meta_updated() {
        let (t, db) = fixture();
        let out = transform(&t, &db, &ChunkPolicy::paper_default());
        assert_eq!(
            out.meta.get("variant").map(String::as_str),
            Some("overlapped")
        );
        assert_eq!(out.meta.get("chunks").map(String::as_str), Some("4"));
    }
}
