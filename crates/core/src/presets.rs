//! Platform presets from the paper's experimental setup (§IV).
//!
//! The test bed is Marenostrum: PowerPC 970 2.3 GHz processors on
//! Myrinet at 250 MB/s unidirectional bandwidth. The number of Dimemas
//! buses is calibrated per application so the simulation matches the
//! real runs — Table I:
//!
//! | Sweep3D | POP | Alya | SPECFEM3D | BT | CG |
//! |---------|-----|------|-----------|----|----|
//! | 12      | 12  | 11   | 8         | 22 | 6  |

use ovlp_machine::Platform;

/// Table I: the calibrated Dimemas bus count for each application of
/// the paper's pool. Returns `None` for unknown applications.
pub fn bus_preset(app: &str) -> Option<u32> {
    let key = app.to_ascii_lowercase();
    match key.as_str() {
        "sweep3d" => Some(12),
        "pop" => Some(12),
        "alya" => Some(11),
        "specfem3d" => Some(8),
        "bt" | "nas-bt" | "nas_bt" => Some(22),
        "cg" | "nas-cg" | "nas_cg" => Some(6),
        _ => None,
    }
}

/// All Table I rows in paper order.
pub fn table1() -> Vec<(&'static str, u32)> {
    vec![
        ("sweep3d", 12),
        ("pop", 12),
        ("alya", 11),
        ("specfem3d", 8),
        ("nas-bt", 22),
        ("nas-cg", 6),
    ]
}

/// The Marenostrum platform configured for `app` (unknown apps get
/// unlimited buses).
pub fn marenostrum_for(app: &str) -> Platform {
    Platform::marenostrum(bus_preset(app).unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(bus_preset("Sweep3D"), Some(12));
        assert_eq!(bus_preset("pop"), Some(12));
        assert_eq!(bus_preset("alya"), Some(11));
        assert_eq!(bus_preset("SPECFEM3D"), Some(8));
        assert_eq!(bus_preset("nas-bt"), Some(22));
        assert_eq!(bus_preset("nas-cg"), Some(6));
        assert_eq!(bus_preset("unknown"), None);
    }

    #[test]
    fn marenostrum_platform_matches_test_bed() {
        let p = marenostrum_for("nas-cg");
        assert_eq!(p.buses, 6);
        assert!((p.bandwidth_mbs - 250.0).abs() < 1e-12);
        assert!((p.mips - 2300.0).abs() < 1e-12);
    }

    #[test]
    fn table1_has_six_apps() {
        let t = table1();
        assert_eq!(t.len(), 6);
        for (name, buses) in t {
            assert_eq!(bus_preset(name), Some(buses));
        }
    }
}
