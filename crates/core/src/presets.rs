//! Platform presets from the paper's experimental setup (§IV).
//!
//! The test bed is Marenostrum: PowerPC 970 2.3 GHz processors on
//! Myrinet at 250 MB/s unidirectional bandwidth. The number of Dimemas
//! buses is calibrated per application so the simulation matches the
//! real runs — Table I:
//!
//! | Sweep3D | POP | Alya | SPECFEM3D | BT | CG |
//! |---------|-----|------|-----------|----|----|
//! | 12      | 12  | 11   | 8         | 22 | 6  |

use ovlp_machine::{ContentionModel, Platform, Topology};

/// Table I: the calibrated Dimemas bus count for each application of
/// the paper's pool. Returns `None` for unknown applications.
pub fn bus_preset(app: &str) -> Option<u32> {
    let key = app.to_ascii_lowercase();
    match key.as_str() {
        "sweep3d" => Some(12),
        "pop" => Some(12),
        "alya" => Some(11),
        "specfem3d" => Some(8),
        "bt" | "nas-bt" | "nas_bt" => Some(22),
        "cg" | "nas-cg" | "nas_cg" => Some(6),
        // generated workload (not in Table I): fat-fabric ML cluster,
        // unlimited buses — contention comes from ports/latency only
        "ml" | "ml-allreduce" | "ml_allreduce" => Some(0),
        _ => None,
    }
}

/// All Table I rows in paper order.
pub fn table1() -> Vec<(&'static str, u32)> {
    vec![
        ("sweep3d", 12),
        ("pop", 12),
        ("alya", 11),
        ("specfem3d", 8),
        ("nas-bt", 22),
        ("nas-cg", 6),
    ]
}

/// The Marenostrum platform configured for `app` (unknown apps get
/// unlimited buses).
pub fn marenostrum_for(app: &str) -> Platform {
    Platform::marenostrum(bus_preset(app).unwrap_or(0))
}

/// The Marenostrum platform for `app` with its network replaced by the
/// contention model named by `topology` (`bus`, `crossbar`,
/// `fat-tree:<radix>[:<oversub>]`, `torus:<A>x<B>[x<C>]`). Invalid
/// specs come back as a clean error, never a panic.
pub fn platform_for(app: &str, topology: &str) -> Result<Platform, String> {
    let model = ContentionModel::parse(topology)?;
    Ok(marenostrum_for(app).with_contention(model))
}

/// Named topology presets: Marenostrum-like nodes and links on explicit
/// fabrics, the starting grid for `ovlp sweep --topology`.
pub fn topology_presets() -> Vec<(&'static str, Platform)> {
    let base = Platform::default();
    vec![
        ("crossbar", base.with_topology(Topology::Crossbar)),
        (
            "fat-tree:4",
            base.with_topology(Topology::FatTree {
                radix: 4,
                oversubscription: 1,
            }),
        ),
        (
            "fat-tree:8:2",
            base.with_topology(Topology::FatTree {
                radix: 8,
                oversubscription: 2,
            }),
        ),
        (
            "torus:4x4",
            base.with_topology(Topology::Torus { dims: vec![4, 4] }),
        ),
        (
            "torus:4x4x4",
            base.with_topology(Topology::Torus {
                dims: vec![4, 4, 4],
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        assert_eq!(bus_preset("Sweep3D"), Some(12));
        assert_eq!(bus_preset("pop"), Some(12));
        assert_eq!(bus_preset("alya"), Some(11));
        assert_eq!(bus_preset("SPECFEM3D"), Some(8));
        assert_eq!(bus_preset("nas-bt"), Some(22));
        assert_eq!(bus_preset("nas-cg"), Some(6));
        assert_eq!(bus_preset("unknown"), None);
    }

    #[test]
    fn marenostrum_platform_matches_test_bed() {
        let p = marenostrum_for("nas-cg");
        assert_eq!(p.buses, 6);
        assert!((p.bandwidth_mbs - 250.0).abs() < 1e-12);
        assert!((p.mips - 2300.0).abs() < 1e-12);
    }

    #[test]
    fn platform_for_parses_topologies_and_rejects_garbage() {
        let p = platform_for("nas-cg", "fat-tree:4").unwrap();
        assert_eq!(
            p.contention,
            ContentionModel::Flow(Topology::FatTree {
                radix: 4,
                oversubscription: 1
            })
        );
        assert_eq!(p.buses, 6, "Table I calibration survives");
        assert_eq!(
            platform_for("nas-cg", "bus").unwrap().contention,
            ContentionModel::Bus
        );
        assert!(platform_for("nas-cg", "fat-tree:0").is_err());
        assert!(platform_for("nas-cg", "torus:1x1").is_err());
        assert!(platform_for("nas-cg", "hypercube").is_err());
    }

    #[test]
    fn topology_presets_are_valid() {
        for (name, p) in topology_presets() {
            p.check().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.contention.to_string(), name, "name matches the spec");
        }
    }

    #[test]
    fn table1_has_six_apps() {
        let t = table1();
        assert_eq!(t.len(), 6);
        for (name, buses) in t {
            assert_eq!(bus_preset(name), Some(buses));
        }
    }
}
