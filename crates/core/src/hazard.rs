//! Double-buffering demand analysis.
//!
//! The paper's overlapping technique assumes a double-buffered receiver
//! (§II): a chunk of iteration *i+1* may physically arrive while the
//! receiver is still consuming iteration *i*'s values, so the incoming
//! data must land in a second buffer. This module quantifies how often
//! the simulated overlapped execution actually relies on that
//! assumption: for every channel, it counts messages whose arrival
//! precedes the *consumption* of the previous message on the same
//! channel.
//!
//! A high demand fraction means disabling double buffering (the
//! rendezvous-chunk ablation — see
//! [`ChunkPolicy::mode`](crate::chunk::ChunkPolicy)) will cost real
//! performance; a zero demand means the overlap gains came from
//! advancing/postponing alone.

use ovlp_machine::SimResult;
use std::collections::HashMap;

/// Result of the double-buffering demand analysis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DoubleBufferDemand {
    /// Messages that arrived before their channel predecessor was
    /// consumed (needing a second buffer).
    pub early_arrivals: usize,
    /// Messages with a predecessor on their channel (the denominator).
    pub candidates: usize,
    /// All messages observed.
    pub total_messages: usize,
}

impl DoubleBufferDemand {
    /// Fraction of candidate messages that required double buffering.
    pub fn fraction(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.early_arrivals as f64 / self.candidates as f64
        }
    }
}

/// Analyze a simulated execution for double-buffering demand.
pub fn double_buffer_demand(sim: &SimResult) -> DoubleBufferDemand {
    // channel = (src, dst, tag); comms are in initiation order, which is
    // FIFO per channel
    let mut last_consume: HashMap<(u32, u32, u32), ovlp_machine::Time> = HashMap::new();
    let mut demand = DoubleBufferDemand {
        total_messages: sim.comms.len(),
        ..DoubleBufferDemand::default()
    };
    for c in &sim.comms {
        let key = (c.src.get(), c.dst.get(), c.tag.0);
        if let Some(&prev_consume) = last_consume.get(&key) {
            demand.candidates += 1;
            if c.t_arrive < prev_consume {
                demand.early_arrivals += 1;
            }
        }
        last_consume.insert(key, c.t_consume);
    }
    demand
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovlp_machine::{CommRecord, Time};
    use ovlp_trace::{Bytes, Rank, Tag};

    fn comm(tag: u32, t_arrive: f64, t_consume: f64) -> CommRecord {
        CommRecord {
            src: Rank(0),
            dst: Rank(1),
            tag: Tag::user(tag),
            bytes: Bytes(8),
            t_send: Time::ZERO,
            t_start: Time::ZERO,
            t_arrive: Time::secs(t_arrive),
            t_consume: Time::secs(t_consume),
        }
    }

    fn sim_with(comms: Vec<CommRecord>) -> SimResult {
        SimResult {
            runtime: Time::secs(1.0),
            timelines: vec![],
            comms,
            totals: vec![],
            markers: vec![],
            network: Default::default(),
            links: Vec::new(),
            events_processed: 0,
            queue_peak: 0,
            stale_events: 0,
            fault_log: Vec::new(),
        }
    }

    #[test]
    fn no_overlap_no_demand() {
        // each message consumed before the next arrives
        let sim = sim_with(vec![
            comm(0, 1.0, 1.0),
            comm(0, 2.0, 2.0),
            comm(0, 3.0, 3.0),
        ]);
        let d = double_buffer_demand(&sim);
        assert_eq!(d.early_arrivals, 0);
        assert_eq!(d.candidates, 2);
        assert_eq!(d.fraction(), 0.0);
    }

    #[test]
    fn early_arrival_detected() {
        // second message arrives at 1.5 but the first is consumed at 2.0
        let sim = sim_with(vec![comm(0, 1.0, 2.0), comm(0, 1.5, 2.5)]);
        let d = double_buffer_demand(&sim);
        assert_eq!(d.early_arrivals, 1);
        assert_eq!(d.candidates, 1);
        assert_eq!(d.fraction(), 1.0);
    }

    #[test]
    fn channels_tracked_independently() {
        // early arrival on tag 1 only
        let sim = sim_with(vec![
            comm(0, 1.0, 1.0),
            comm(1, 1.0, 5.0),
            comm(0, 2.0, 2.0), // fine: prev tag-0 consumed at 1.0
            comm(1, 2.0, 6.0), // early: prev tag-1 consumed at 5.0
        ]);
        let d = double_buffer_demand(&sim);
        assert_eq!(d.early_arrivals, 1);
        assert_eq!(d.candidates, 2);
        assert_eq!(d.total_messages, 4);
    }

    #[test]
    fn empty_sim_is_zero() {
        let d = double_buffer_demand(&sim_with(vec![]));
        assert_eq!(d.fraction(), 0.0);
        assert_eq!(d.total_messages, 0);
    }
}
